"""Design-space exploration: sweep the iMARS architecture parameters.

The paper fixes C=32, intra-bank fan-in 4 and a 256-bit RSC bus after a
qualitative trade-off discussion (Sec. III-A).  This example quantifies
those trade-offs with the synthesis estimator and the cost model, printing
the frontier a designer would examine.

Run:  python examples/design_space_exploration.py
"""

from repro.experiments.design_space import (
    sweep_intra_bank_fan_in,
    sweep_intra_mat_fan_in,
    sweep_rsc_width,
)


def print_sweep(title, points, value_label):
    print(f"\n{title}")
    print(f"  {value_label:>10s} {'latency (ns)':>14s} {'energy (pJ)':>13s} {'area proxy':>12s}")
    for point in points:
        marker = "  <- paper" if point.value in (4, 32, 256) and (
            (point.parameter == "intra_bank_fan_in" and point.value == 4)
            or (point.parameter == "intra_mat_fan_in" and point.value == 32)
            or (point.parameter == "rsc_width_bits" and point.value == 256)
        ) else ""
        print(
            f"  {point.value:>10d} {point.latency_ns:>14.1f} "
            f"{point.energy_pj:>13.1f} {point.area_proxy:>12.0f}{marker}"
        )


print("iMARS design-space exploration")
print("=" * 64)

print_sweep(
    "Intra-bank adder-tree fan-in (Criteo ET operation, 4 mats/bank):\n"
    "  fan-in < 4 serialises extra reduction rounds; fan-in > 4 buys\n"
    "  little (one round already) while growing the tree.",
    sweep_intra_bank_fan_in([2, 4, 8, 16]),
    "fan-in",
)

print_sweep(
    "Intra-mat adder-tree fan-in C (one tree invocation):\n"
    "  larger C spans more CMAs -> wire parasitics dominate the delay\n"
    "  (the paper's argument for not growing C past 32).",
    sweep_intra_mat_fan_in([8, 16, 32, 64]),
    "C",
)

print_sweep(
    "RSC bus width (gathering all 26 Criteo bank outputs):\n"
    "  narrow buses serialise beats; wide buses cost wiring area.",
    sweep_rsc_width([64, 128, 256, 512]),
    "bits",
)

print("\nThe paper's configuration (fan-in 4, C=32, 256-bit RSC) sits at the")
print("knee of each curve: near-minimal latency without the area overshoot.")
