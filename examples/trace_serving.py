"""Telemetry-plane demo: trace a serving session and export profiles.

Runs one bursty session through the full serving stack (sharded iMARS
engine, adaptive micro-batching, TinyLFU-admission result cache,
admission control) with the observability plane attached, then:

* prints the per-stage latency/energy attribution and the hit/shed
  counters straight from the in-process metrics registry,
* writes ``out/trace.json`` -- a Chrome trace-event profile; open it at
  https://ui.perfetto.dev or chrome://tracing to see every batch's
  queue -> admission -> cache -> engine -> shard/replica -> merge
  timeline on the simulated clock,
* writes ``out/trace.jsonl`` (one span/instant per line, for jq) and
  ``out/metrics.prom`` (Prometheus text exposition, node-exporter
  textfile-collector compatible),
* re-runs the identical session with telemetry off and checks the
  recommendations and the energy ledger are bit-identical -- tracing
  observes the simulation, it never perturbs it.

Run:  python examples/trace_serving.py
"""

import pathlib

from repro.core import ServeQuery, WorkloadMapping
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.obs import Telemetry, span_children, write_prometheus, write_trace
from repro.serving import (
    AdaptiveBatchConfig,
    AdaptiveMicroBatchScheduler,
    AdmissionConfig,
    AdmissionController,
    BurstyTraffic,
    ServingCache,
    ServingSession,
    TinyLFUAdmission,
    make_sharded_engine,
)

SCALE = 0.03
NUM_CANDIDATES = 24
TOP_K = 5
NUM_REQUESTS = 200
SEED = 0


def build_session(telemetry):
    dataset = MovieLensDataset(scale=SCALE, seed=SEED)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=SEED,
    )
    filtering = YouTubeDNNFiltering(config)
    ranking = YouTubeDNNRanking(config)
    workload = [
        ServeQuery.make(
            dataset.histories[user],
            dataset.demographics[user],
            dataset.ranking_context[user],
        )
        for user in range(dataset.num_users)
    ]
    engine = make_sharded_engine(
        "imars",
        filtering,
        ranking,
        2,
        mapping=WorkloadMapping(movielens_table_specs()),
        num_candidates=NUM_CANDIDATES,
        top_k=TOP_K,
        seed=SEED,
        replicas_per_shard=2,
    )
    batch_one_s = engine.recommend_query(workload[0]).cost.latency_s
    slo_s = 8.0 * batch_one_s
    rate_qps = 24.0 / engine.serve_batch(workload[:16]).cost.latency_s
    traffic = BurstyTraffic(
        calm_qps=0.8 * rate_qps,
        burst_qps=3.0 * rate_qps,
        num_users=dataset.num_users,
        mean_calm_s=20.0 / rate_qps,
        mean_burst_s=20.0 / rate_qps,
        seed=SEED,
        stream=7,
    )
    session = ServingSession(
        engine,
        workload,
        scheduler=AdaptiveMicroBatchScheduler(
            AdaptiveBatchConfig(target_p95_s=slo_s, max_wait_s=0.25 * slo_s)
        ),
        cache=ServingCache(
            capacity=max(4, dataset.num_users // 4),
            rows_per_entry=TOP_K,
            admission=TinyLFUAdmission(seed=SEED),
        ),
        admission=AdmissionController(AdmissionConfig(slo_ms=slo_s * 1e3)),
        label="traced bursty session",
        telemetry=telemetry,
    )
    return session, traffic.generate(NUM_REQUESTS)


def main():
    out = pathlib.Path("out")
    out.mkdir(exist_ok=True)

    telemetry = Telemetry()
    session, requests = build_session(telemetry)
    result = session.run(requests)
    print(result.report.format_row().strip())

    tracer = telemetry.tracer
    tracer.validate()
    children = span_children(tracer.spans)
    roots = [span for span in tracer.spans if span.parent_id is None]
    print(
        f"\ncaptured {len(tracer.spans)} spans / {len(tracer.instants)} "
        f"instants across {tracer.sampled_batches} batches "
        f"({len([s for s in roots if s.name == 'batch'])} batch roots, "
        f"max fan-out {max(len(kids) for kids in children.values())})"
    )

    # Per-stage attribution, straight from the metrics registry.
    latency = telemetry.metrics.get("repro_stage_latency_seconds")
    energy = telemetry.metrics.get("repro_stage_energy_pj")
    print("\nper-stage attribution (mean latency, total energy):")
    for stage in ("queue", "cache_lookup", "engine", "cache_fill", "migration"):
        observed = latency.count(stage=stage, process=session.label)
        if not observed:
            continue
        print(
            f"  {stage:<13s} n={observed:4d} "
            f"mean={latency.mean(stage=stage, process=session.label) * 1e6:9.3f}us "
            f"energy={energy.value(stage=stage, process=session.label) / 1e6:10.4f}uJ"
        )
    hits = telemetry.metrics.get("repro_cache_lookups_total")
    print(
        f"cache lookups: {hits.value(result='hit', process=session.label):.0f} hits / "
        f"{hits.value(result='miss', process=session.label):.0f} misses"
    )

    write_trace(out / "trace.json", tracer)
    write_trace(out / "trace.jsonl", tracer)
    write_prometheus(out / "metrics.prom", telemetry.metrics)
    print(
        f"\nwrote {out / 'trace.json'} (load in https://ui.perfetto.dev), "
        f"{out / 'trace.jsonl'} and {out / 'metrics.prom'}"
    )

    # The invariant the whole plane is built around: observation only.
    untraced_session, untraced_requests = build_session(None)
    untraced = untraced_session.run(untraced_requests)
    identical = all(
        a.items == b.items and a.completion_s == b.completion_s
        for a, b in zip(result.records, untraced.records)
    ) and result.ledger.total() == untraced.ledger.total()
    print(f"tracing perturbed nothing (bit-identical rerun): {identical}")


if __name__ == "__main__":
    main()
