"""Closed-loop autoscaling demo: right-size a multi-tenant deployment.

Builds two MovieLens-shaped tenant corpora, mixes a trace-replay tenant
with a bursty one into a single overloaded request stream, and lets the
autoscaler grow (shards, replicas) -- serving every candidate deployment
through the full stack (replica groups, SLO-aware adaptive batching,
TinyLFU-admission cache with warm-up) -- until both tenants' p95
contracts hold, then prints the trajectory and the chosen deployment.

Run:  python examples/autoscale_serving.py
"""

from repro.core import ServeQuery, WorkloadMapping
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving import (
    AdaptiveBatchConfig,
    AdaptiveMicroBatchScheduler,
    Autoscaler,
    AutoscalerConfig,
    BurstyTraffic,
    MultiTenantTraffic,
    ServingCache,
    ServingSession,
    TenantSpec,
    TinyLFUAdmission,
    TraceReplayTraffic,
    make_sharded_engine,
)

SCALE = 0.03
NUM_CANDIDATES = 24
TOP_K = 5
NUM_REQUESTS = 150


def build_tenant(seed):
    dataset = MovieLensDataset(scale=SCALE, seed=seed)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=seed,
    )
    workload = [
        ServeQuery.make(
            dataset.histories[user],
            dataset.demographics[user],
            dataset.ranking_context[user],
        )
        for user in range(dataset.num_users)
    ]
    return dataset, YouTubeDNNFiltering(config), YouTubeDNNRanking(config), workload


print(f"Generating two tenant corpora (scale={SCALE}) ...")
dataset_a, filtering, ranking, workload_a = build_tenant(seed=0)
dataset_b, _, _, workload_b = build_tenant(seed=1)
mapping = WorkloadMapping(movielens_table_specs())
workload = workload_a + workload_b
print(f"  tenant A: {dataset_a.num_users} users, tenant B: {dataset_b.num_users} users")

print("Calibrating the operating point against one engine ...")
probe = make_sharded_engine(
    "imars", filtering, ranking, 1, mapping=mapping,
    num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=0,
)
batch_one_s = probe.recommend_query(workload[0]).cost.latency_s
capacity_qps = 16 / probe.serve_batch(workload[:16]).cost.latency_s
rate_qps = 2.5 * capacity_qps  # deliberately overloads a single engine
slo_a_ms = 6.0 * batch_one_s * 1e3
slo_b_ms = 12.0 * batch_one_s * 1e3

traffic = MultiTenantTraffic([
    TenantSpec(
        name="movielens",
        traffic=TraceReplayTraffic.from_movielens(dataset_a, 0.6 * rate_qps, seed=0),
        share=0.6,
        p95_slo_ms=slo_a_ms,
    ),
    TenantSpec(
        name="bursty-b",
        traffic=BurstyTraffic(
            calm_qps=0.3 * rate_qps,
            burst_qps=1.5 * rate_qps,
            num_users=dataset_b.num_users,
            mean_calm_s=15.0 / rate_qps,
            mean_burst_s=15.0 / rate_qps,
            seed=0,
            stream=1,
        ),
        share=0.4,
        p95_slo_ms=slo_b_ms,
    ),
])
requests = traffic.generate(NUM_REQUESTS)
span = requests[-1].arrival_s - requests[0].arrival_s
print(f"\n{NUM_REQUESTS} mixed requests over {span * 1e3:.2f} ms "
      f"({NUM_REQUESTS / span:,.0f} q/s offered; "
      f"SLOs: movielens {slo_a_ms:.3f} ms, bursty-b {slo_b_ms:.3f} ms)")


def evaluate(shards, replicas):
    engine = make_sharded_engine(
        "imars", filtering, ranking, shards, mapping=mapping,
        num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=0,
        replicas_per_shard=replicas,
    )
    session = ServingSession(
        engine,
        workload,
        scheduler=AdaptiveMicroBatchScheduler(
            AdaptiveBatchConfig(
                target_p95_s=slo_a_ms / 1e3,
                max_batch_size=16,
                max_wait_s=0.25 * slo_a_ms / 1e3,
            )
        ),
        cache=ServingCache(
            capacity=max(4, traffic.num_users // 4),
            rows_per_entry=TOP_K,
            admission=TinyLFUAdmission(seed=0),
        ),
        label=f"s={shards} r={replicas}",
    )
    session.warm(range(0, traffic.num_users, 8))
    return session.run(requests)


print("\nClosing the loop (start at 1 shard x 1 replica) ...")
outcome = Autoscaler(
    evaluate,
    AutoscalerConfig(
        p95_slo_ms=slo_a_ms,
        tenant_slos_ms={"movielens": slo_a_ms, "bursty-b": slo_b_ms},
        max_shards=3,
        max_replicas=3,
    ),
).run()
print(outcome.format())

shards, replicas = outcome.chosen
print(f"\nChosen deployment: {shards} shard(s) x {replicas} replica(s)")
for tenant, tenant_report in outcome.best.tenant_reports.items():
    print(tenant_report.format_row())
