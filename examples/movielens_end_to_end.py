"""MovieLens end-to-end: train YouTubeDNN, serve on GPU-model vs iMARS.

Reproduces the paper's flagship scenario at example scale:

1. generate a synthetic MovieLens-1M-shaped dataset;
2. train the YouTubeDNN filtering tower (sampled softmax) and ranking net;
3. serve recommendations through both engines -- the FP32/cosine GPU
   baseline and the int8/LSH/fixed-radius iMARS pipeline;
4. report per-query latency, energy, QPS, speedup and recommendation
   agreement.

Run:  python examples/movielens_end_to_end.py
"""

import numpy as np

from repro.core import GPUReferenceEngine, IMARSEngine, WorkloadMapping
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)

SCALE = 0.1  # 604 users / 300 items; raise towards 1.0 for the full shape
NUM_CANDIDATES = 30
TOP_K = 10

print(f"Generating synthetic MovieLens workload (scale={SCALE}) ...")
dataset = MovieLensDataset(scale=SCALE, seed=0)
print(f"  {dataset.num_users} users, {dataset.num_items} items, "
      f"history length {dataset.history_length}")

config = YouTubeDNNConfig(
    num_items=dataset.num_items,
    demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
    seed=0,
)
filtering = YouTubeDNNFiltering(config)
histories, targets = dataset.train_examples()
print("Training the filtering tower (sampled softmax) ...")
losses = filtering.train_retrieval(
    histories, dataset.demographics, targets, epochs=6, seed=0
)
print(f"  loss {losses[0]:.3f} -> {losses[-1]:.3f}")

ranking = YouTubeDNNRanking(config)
users, items, clicks = dataset.ranking_clicks(pairs_per_user=2)
user_vectors = filtering.user_embedding(
    [dataset.histories[u] for u in users], dataset.demographics[users]
)
print("Training the ranking net (BCE on synthetic clicks) ...")
ranking.train_ctr(
    user_vectors,
    filtering.item_table()[items],
    dataset.ranking_context[users],
    clicks,
    epochs=3,
    seed=0,
)

print("\nBuilding both serving engines ...")
mapping = WorkloadMapping(movielens_table_specs())
gpu = GPUReferenceEngine(filtering, ranking, num_candidates=NUM_CANDIDATES, top_k=TOP_K)
imars = IMARSEngine(filtering, ranking, mapping, num_candidates=NUM_CANDIDATES, top_k=TOP_K)
print(f"  iMARS fixed-radius threshold calibrated to {imars.radius} bits")

speedups, reductions, overlaps = [], [], []
for user in range(12):
    query = (
        dataset.histories[user],
        dataset.demographics[user],
        dataset.ranking_context[user],
    )
    gpu_result = gpu.recommend(*query)
    imars_result = imars.recommend(*query)
    speedups.append(imars_result.cost.speedup_over(gpu_result.cost))
    reductions.append(imars_result.cost.energy_reduction_over(gpu_result.cost))
    overlaps.append(
        len(set(gpu_result.items) & set(imars_result.items)) / TOP_K
    )
    if user == 0:
        print(f"\nExample query (user 0, {imars_result.candidate_count} candidates):")
        print(f"  GPU   : top-{TOP_K} {gpu_result.items}")
        print(f"          {gpu_result.cost.latency_us:8.2f} us, "
              f"{gpu_result.cost.energy_uj:9.2f} uJ, {gpu_result.qps:8.0f} q/s")
        print(f"  iMARS : top-{TOP_K} {imars_result.items}")
        print(f"          {imars_result.cost.latency_us:8.2f} us, "
              f"{imars_result.cost.energy_uj:9.4f} uJ, {imars_result.qps:8.0f} q/s")

print(f"\nOver 12 users:")
print(f"  mean speedup          {np.mean(speedups):7.1f}x  (paper: 16.8x)")
print(f"  mean energy reduction {np.mean(reductions):7.1f}x  (paper: 713x)")
print(f"  mean top-{TOP_K} agreement {np.mean(overlaps) * 100:5.1f}%")
