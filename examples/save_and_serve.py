"""Deploy workflow: train once, persist, serve from the saved model.

A downstream user's production loop: train the YouTubeDNN models, save
their parameters to ``.npz`` archives, then bring up a fresh iMARS serving
engine purely from the saved weights and verify it recommends identically.

Run:  python examples/save_and_serve.py
"""

import pathlib
import tempfile


from repro.core import IMARSEngine, WorkloadMapping
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.nn.io import load_module, save_module

# ---------------------------------------------------------------------------
# Train.
# ---------------------------------------------------------------------------
print("Training ...")
dataset = MovieLensDataset(scale=0.08, seed=3)
config = YouTubeDNNConfig(
    num_items=dataset.num_items,
    demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
    seed=3,
)
filtering = YouTubeDNNFiltering(config)
histories, targets = dataset.train_examples()
filtering.train_retrieval(histories, dataset.demographics, targets, epochs=4, seed=3)
ranking = YouTubeDNNRanking(config)

# ---------------------------------------------------------------------------
# Persist.
# ---------------------------------------------------------------------------
workdir = pathlib.Path(tempfile.mkdtemp(prefix="imars_models_"))
filtering_path = save_module(filtering, workdir / "filtering_tower")
ranking_path = save_module(ranking, workdir / "ranking_net")
print(f"Saved: {filtering_path.name} "
      f"({filtering_path.stat().st_size / 1024:.0f} KiB), "
      f"{ranking_path.name} ({ranking_path.stat().st_size / 1024:.0f} KiB)")

# ---------------------------------------------------------------------------
# Restore into fresh model instances and build a serving engine.
# ---------------------------------------------------------------------------
print("Restoring into a fresh serving process ...")
served_filtering = load_module(YouTubeDNNFiltering(config), filtering_path)
served_ranking = load_module(YouTubeDNNRanking(config), ranking_path)
mapping = WorkloadMapping(movielens_table_specs())
engine = IMARSEngine(
    served_filtering, served_ranking, mapping, num_candidates=20, top_k=5, seed=3
)
reference = IMARSEngine(
    filtering, ranking, mapping, num_candidates=20, top_k=5, seed=3
)

# ---------------------------------------------------------------------------
# Verify the restored engine serves identically.
# ---------------------------------------------------------------------------
mismatches = 0
for user in range(10):
    query = (
        dataset.histories[user],
        dataset.demographics[user],
        dataset.ranking_context[user],
    )
    if engine.recommend(*query).items != reference.recommend(*query).items:
        mismatches += 1
result = engine.recommend(
    dataset.histories[0], dataset.demographics[0], dataset.ranking_context[0]
)
print(f"Example recommendation: {result.items} "
      f"({result.cost.latency_us:.1f} us/query, {result.qps:,.0f} q/s)")
print(f"Restored-vs-original mismatches over 10 users: {mismatches}")
assert mismatches == 0
print("Save-and-serve OK.")
