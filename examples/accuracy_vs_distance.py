"""Accuracy vs distance function: the Sec. IV-B study, interactively.

Trains the YouTubeDNN filtering tower on the synthetic MovieLens workload
and evaluates the candidate-search hit rate under the paper's three
configurations -- FP32+cosine, int8+cosine, int8+LSH-Hamming -- plus an
extra sweep over LSH signature lengths showing *why* the paper picked
256 bits.

Run:  python examples/accuracy_vs_distance.py
"""

from repro.experiments.accuracy_study import PAPER_ACCURACY, run_accuracy_study

print("Running the Sec. IV-B accuracy study (trains a model; ~1 s) ...\n")
report = run_accuracy_study(scale=0.2, seed=0)
result = report.extras["result"]

print(f"Workload: {result.num_users} users, {result.num_items} items, "
      f"{result.candidates} candidates per query\n")
print(f"{'configuration':<24s} {'HR (ours)':>10s} {'HR (paper)':>11s}")
for name in ("fp32_cosine", "int8_cosine", "int8_lsh_hamming"):
    print(f"{name:<24s} {result.hit_rates[name]:>9.1%} "
          f"{PAPER_ACCURACY[name]:>10.1%}")

print(f"\nquantisation gap : {result.quantisation_gap * 100:+.1f} pts "
      "(paper: 0.6 pts)")
print(f"distance gap     : {result.distance_gap * 100:+.1f} pts "
      "(paper: 6.0 pts)")
print(f"ordering holds   : {result.ordering_holds()}")
print("\nAbsolute hit rates differ from the real MovieLens-1M (synthetic")
print("substrate); the ordering and gap structure are the reproduction target.")

print("\nSignature-length sweep (same trained model):")
print(f"{'bits':>6s} {'HR int8+LSH':>12s}")
for bits in (32, 64, 128, 256, 512):
    sweep = run_accuracy_study(scale=0.2, signature_bits=bits, seed=0)
    hr = sweep.extras["result"].hit_rates["int8_lsh_hamming"]
    print(f"{bits:>6d} {hr:>11.1%}")
print("\nQuality saturates near 256 bits -- the paper's choice -- while the")
print("signature storage (2 CMAs per ItET entry) keeps growing linearly.")
