"""Online serving demo: live traffic against iMARS vs the GPU baseline.

Builds a small MovieLens-shaped corpus, then simulates one second of
bursty traffic through the full serving stack -- micro-batching
scheduler, 2-way sharded engines, and an LRU result cache -- and prints
the SLO report for each platform.

Run:  python examples/online_serving.py
"""

from repro.core import ServeQuery, WorkloadMapping
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving import (
    BurstyTraffic,
    MicroBatchConfig,
    MicroBatchScheduler,
    ServingCache,
    ServingSession,
    make_sharded_engine,
)

SCALE = 0.04
NUM_SHARDS = 2
NUM_CANDIDATES = 24
TOP_K = 5
NUM_REQUESTS = 250

print(f"Generating synthetic MovieLens workload (scale={SCALE}) ...")
dataset = MovieLensDataset(scale=SCALE, seed=0)
config = YouTubeDNNConfig(
    num_items=dataset.num_items,
    demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
    seed=0,
)
filtering = YouTubeDNNFiltering(config)
ranking = YouTubeDNNRanking(config)
mapping = WorkloadMapping(movielens_table_specs())
workload = [
    ServeQuery.make(
        dataset.histories[user],
        dataset.demographics[user],
        dataset.ranking_context[user],
    )
    for user in range(dataset.num_users)
]
print(f"  {dataset.num_users} users, {dataset.num_items} items")

print(f"Building {NUM_SHARDS}-way sharded engines ...")
engines = {
    "iMARS": make_sharded_engine(
        "imars", filtering, ranking, NUM_SHARDS, mapping=mapping,
        num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=0,
    ),
    "GPU": make_sharded_engine(
        "gpu", filtering, ranking, NUM_SHARDS,
        num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=0,
    ),
}

traffic = BurstyTraffic(
    calm_qps=1500.0,
    burst_qps=8000.0,
    num_users=dataset.num_users,
    mean_calm_s=0.05,
    mean_burst_s=0.02,
    seed=0,
)
requests = traffic.generate(NUM_REQUESTS)
span = requests[-1].arrival_s - requests[0].arrival_s
print(f"\n{NUM_REQUESTS} bursty requests over {span * 1e3:.0f} ms "
      f"({NUM_REQUESTS / span:,.0f} q/s offered)")

print("\nServing (micro-batch <= 8, wait <= 0.5 ms, LRU cache) ...")
for name, engine in engines.items():
    session = ServingSession(
        engine,
        workload,
        scheduler=MicroBatchScheduler(
            MicroBatchConfig(max_batch_size=8, max_wait_s=0.0005)
        ),
        cache=ServingCache(capacity=dataset.num_users // 3, rows_per_entry=TOP_K),
        label=name,
    )
    result = session.run(requests)
    print(result.report.format_row())
    breakdown = result.ledger.energy_breakdown()
    shares = ", ".join(
        f"{category} {fraction * 100:.1f}%" for category, fraction in breakdown.items()
    )
    print(f"    energy breakdown: {shares}")
