"""Heterogeneous serving demo: one iMARS fabric, one GPU, one contract.

Builds a MovieLens-shaped corpus, overloads a single iMARS engine with
Poisson traffic, then serves the same stream three ways -- IMC-only,
GPU-only, and an IMC+GPU spillover fleet whose router keeps queries on
the cheap fabric until its queued work threatens the p95 target.  The
GPU replica serves the *deployed* model (same int8 tables, same LSH
index), so routing never changes a recommendation -- the demo checks
that record-for-record.  Finally it rescales the spillover deployment
mid-run through an online scaler, printing the migration bill, and
turns on admission control to shed the hopeless tail.

Run:  python examples/hetero_serving.py
"""

from repro.core import ServeQuery, WorkloadMapping
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    MicroBatchConfig,
    MicroBatchScheduler,
    OnlineScaler,
    OnlineScalerConfig,
    PoissonTraffic,
    ServingCache,
    ServingSession,
    make_sharded_engine,
)

SCALE = 0.03
NUM_CANDIDATES = 24
TOP_K = 5
NUM_REQUESTS = 300

print(f"Generating a MovieLens-shaped corpus (scale={SCALE}) ...")
dataset = MovieLensDataset(scale=SCALE, seed=0)
config = YouTubeDNNConfig(
    num_items=dataset.num_items,
    demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
    seed=0,
)
filtering, ranking = YouTubeDNNFiltering(config), YouTubeDNNRanking(config)
mapping = WorkloadMapping(movielens_table_specs())
workload = [
    ServeQuery.make(
        dataset.histories[user],
        dataset.demographics[user],
        dataset.ranking_context[user],
    )
    for user in range(dataset.num_users)
]

print("Calibrating the operating point against one iMARS engine ...")
probe = make_sharded_engine(
    "imars", filtering, ranking, 1, mapping=mapping,
    num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=0,
)
batch_one_s = probe.recommend_query(workload[0]).cost.latency_s
capacity_qps = 16 / probe.serve_batch(workload[:16]).cost.latency_s
rate_qps = 5.0 * capacity_qps  # deliberately overloads the lone fabric
slo_s = 6.0 * batch_one_s
requests = PoissonTraffic(
    rate_qps, num_users=dataset.num_users, seed=0, stream=1
).generate(NUM_REQUESTS)
print(f"  offered {rate_qps:,.0f} q/s (5x one fabric); p95 contract {slo_s * 1e3:.3f} ms")

scheduler_config = MicroBatchConfig(max_batch_size=64, max_wait_s=0.25 * slo_s)


def build(name):
    if name == "spillover":
        return make_sharded_engine(
            "imars", filtering, ranking, 1, mapping=mapping,
            num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=0,
            spillover_replicas_per_shard=1, spillover_slo_s=slo_s,
        )
    kind = "imars" if name == "imc-only" else "gpu"
    return make_sharded_engine(
        kind, filtering, ranking, 1,
        mapping=mapping if kind == "imars" else None,
        num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=0,
    )


def serve(name, engine):
    session = ServingSession(
        engine, workload,
        scheduler=MicroBatchScheduler(scheduler_config),
        cache=ServingCache(capacity=max(4, dataset.num_users // 4), rows_per_entry=TOP_K),
        label=name,
    )
    return session.run(requests)


print("\n-- fleet frontier (same traffic, three fleets) --")
results = {name: serve(name, build(name)) for name in ("imc-only", "gpu-only", "spillover")}
for name, result in results.items():
    print(result.report.format_row())
identical = all(
    a.items == b.items
    for a, b in zip(results["imc-only"].records, results["spillover"].records)
)
print(f"spillover recommendations identical to IMC-only: {identical}")
print(f"spillover routed to GPU: {results['spillover'].spill_stats}")

print("\n-- online scale-out (migration charged, no restart) --")


def factory(shards, replicas):
    return make_sharded_engine(
        "imars", filtering, ranking, shards, mapping=mapping,
        num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=0,
        replicas_per_shard=replicas,
    )


scaled_session = ServingSession(
    factory(1, 1), workload,
    scheduler=MicroBatchScheduler(MicroBatchConfig(max_batch_size=16, max_wait_s=0.25 * slo_s)),
    cache=ServingCache(capacity=max(4, dataset.num_users // 4), rows_per_entry=TOP_K),
    label="online-scaled",
    engine_factory=factory,
    deployment=(1, 1),
    scaler=OnlineScaler(OnlineScalerConfig(p95_target_s=slo_s, window=16, cooldown=16)),
)
scaled = scaled_session.run(requests)
print(scaled.report.format_row())
for event in scaled.scale_events:
    print(
        f"  scale event @{event.time_s * 1e3:8.3f}ms "
        f"{event.old_deployment} -> {event.new_deployment}: "
        f"{event.moved_rows} rows migrated, "
        f"{event.invalidated_entries} cache entries invalidated, "
        f"{event.cost.energy_uj:.4f} uJ"
    )

print("\n-- admission control at the ceiling --")
controller = AdmissionController(
    AdmissionConfig(slo_ms=slo_s * 1e3, degraded_top_k=2)
)
guarded = ServingSession(
    factory(2, 2), workload,
    scheduler=MicroBatchScheduler(MicroBatchConfig(max_batch_size=16, max_wait_s=0.25 * slo_s)),
    label="guarded",
    admission=controller,
).run(requests)
print(guarded.report.format_row())
print(f"  admission: {guarded.admission_stats}")
