"""Quickstart: price iMARS operations and run a query on the fabric.

This walks through the three layers of the library in ~60 lines:

1. map a workload's embedding tables onto the iMARS fabric (Table I);
2. price the hardware operations with the analytic cost model (Table III);
3. execute a real lookup + search on the bit-level fabric and check it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import EmbeddingTableSpec, IMARSCostModel, IMARSFabric, WorkloadMapping
from repro.core.mapping import FILTERING

# ---------------------------------------------------------------------------
# 1. Define a small workload and map it onto the fabric.
# ---------------------------------------------------------------------------
specs = [
    EmbeddingTableSpec("user_id", num_entries=6040),
    EmbeddingTableSpec("genre", num_entries=18),
    EmbeddingTableSpec(
        "item", num_entries=3000, kind="itet", pooling_factor=10
    ),
]
mapping = WorkloadMapping(specs)
print("Memory mapping (Table I style):")
print(f"  banks={mapping.active_banks}  mats={mapping.active_mats}  "
      f"cmas={mapping.active_cmas}")
for table in mapping.tables:
    print(f"  {table.spec.name:<8s} -> bank {table.bank_index}, "
          f"{table.total_cmas} CMAs ({table.signature_cmas} for LSH signatures)")

# ---------------------------------------------------------------------------
# 2. Price the stage operations analytically (Table II FoMs underneath).
# ---------------------------------------------------------------------------
model = IMARSCostModel(mapping)
et_op = model.et_operation(FILTERING)
nns = model.nns_operation()
dnn = model.dnn_stack_cost(192, "128-64-32")
print("\nOperation costs:")
print(f"  ET lookup+pool : {et_op.latency_us:8.3f} us  {et_op.energy_uj:8.4f} uJ")
print(f"  TCAM NNS       : {nns.latency_ns:8.3f} ns  {nns.energy_pj:8.1f} pJ")
print(f"  DNN stack      : {dnn.latency_us:8.3f} us  {dnn.energy_pj:8.1f} pJ")

e2e = model.end_to_end(192, "128-64-32", 256, "128-1", num_candidates=72)
print(f"  end-to-end     : {e2e.latency_us:8.3f} us "
      f"-> {1e6 / e2e.latency_us:,.0f} queries/second")

# ---------------------------------------------------------------------------
# 3. Execute on the bit-level fabric (small scale) and verify functionally.
# ---------------------------------------------------------------------------
small_specs = [
    EmbeddingTableSpec("user_id", 64),
    EmbeddingTableSpec("item", 128, kind="itet", pooling_factor=4),
]
small_mapping = WorkloadMapping(small_specs)
fabric = IMARSFabric(small_mapping)
rng = np.random.default_rng(0)

item_table = rng.integers(-100, 100, size=(128, 32))
fabric.load_table("user_id", rng.integers(-100, 100, size=(64, 32)))
fabric.load_table("item", item_table)
signatures = rng.integers(0, 2, size=(128, 256)).astype(np.uint8)
fabric.load_signatures(signatures)

history = [3, 17, 42, 99]
pooled, cost = fabric.lookup_pool("item", history)
assert np.array_equal(pooled, item_table[history].sum(axis=0))
print(f"\nFabric pooling of {len(history)} rows verified exactly "
      f"({cost.latency_ns:.1f} ns in-memory)")

candidates, cost = fabric.nns_search(signatures[7], threshold=10)
print(f"TCAM threshold search returned {len(candidates)} candidates "
      f"(row 7 included: {7 in candidates}) in {cost.latency_ns:.1f} ns")
print("\nQuickstart OK.")
