"""Predictive autoscaling demo: learn the diurnal curve, scale early.

Builds a MovieLens-shaped corpus behind an iMARS engine and drives
three days of seeded diurnal traffic through three control laws on the
same fleet:

* **reactive** -- :class:`~repro.serving.OnlineScaler`: the windowed
  p95 must overshoot the contract before it scales, so every crest is
  served under-provisioned until the controller catches up;
* **predictive** -- a :class:`~repro.serving.TrafficForecaster` fits a
  seasonal model to the arrivals it has observed mid-run, and the
  :class:`~repro.serving.PredictiveScaler` schedules each scale event
  *lead-time early* (lead >= the measured migration latency), so the
  migration stall is paid in the valley;
* **oracle** -- the plan built from the true generator parameters
  (:meth:`~repro.serving.DiurnalTraffic.forecast_model`): the best any
  forecast could do.

Each arm prints its SLO-violation windows, its scale events and its
migration bill.  Everything is seeded: re-running reproduces the same
fits, plans and violations to the last float.

Run:  python examples/forecast_serving.py
"""

from repro.core import ServeQuery, WorkloadMapping
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving import (
    DeploymentCapacity,
    DeploymentCapacityModel,
    DiurnalTraffic,
    MicroBatchConfig,
    MicroBatchScheduler,
    OnlineScaler,
    OnlineScalerConfig,
    PredictiveScaler,
    PriceBook,
    ServingSession,
    TrafficForecaster,
    build_scale_plan,
    make_sharded_engine,
    slo_violation_windows,
)

SCALE = 0.03
NUM_CANDIDATES = 24
TOP_K = 5
NUM_REQUESTS = 480
NUM_PERIODS = 3
SEED = 0

print("Building the corpus and models ...")
dataset = MovieLensDataset(scale=SCALE, seed=SEED)
config = YouTubeDNNConfig(
    num_items=dataset.num_items,
    demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
    seed=SEED,
)
filtering = YouTubeDNNFiltering(config)
ranking = YouTubeDNNRanking(config)
mapping = WorkloadMapping(movielens_table_specs())
workload = [
    ServeQuery.make(
        dataset.histories[user],
        dataset.demographics[user],
        dataset.ranking_context[user],
    )
    for user in range(dataset.num_users)
]


def factory(shards, replicas):
    return make_sharded_engine(
        "imars", filtering, ranking, shards, mapping=mapping,
        num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=SEED,
        replicas_per_shard=replicas,
    )


# Calibrate: per-deployment capacity and energy from batch probes.
probe_queries = [workload[user % len(workload)] for user in range(16)]
batch_one_s = factory(1, 1).recommend_query(workload[0]).cost.latency_s
capacities = []
for shards, replicas in ((1, 1), (1, 2), (2, 1), (2, 2)):
    probe = factory(shards, replicas).serve_batch(probe_queries)
    capacities.append(
        DeploymentCapacity(
            (shards, replicas),
            capacity_qps=16 / probe.cost.latency_s,
            energy_per_request_uj=probe.cost.energy_pj / 16 / 1e6,
        )
    )
capacity_model = DeploymentCapacityModel(capacities, utilization=0.7)
base_qps = 0.6 * capacities[0].capacity_qps
slo_s = 11.0 * batch_one_s
duration_s = NUM_REQUESTS / base_qps
period_s = duration_s / NUM_PERIODS
scheduler_config = MicroBatchConfig(
    max_batch_size=8, max_wait_s=2.0 * batch_one_s
)


def build_session(label, scaler=None):
    return ServingSession(
        factory(1, 1),
        workload,
        scheduler=MicroBatchScheduler(scheduler_config),
        label=label,
        engine_factory=factory,
        deployment=(1, 1),
        scaler=scaler,
        price_book=PriceBook(),
    )


# Measure what a worst-case migration costs; the plan's lead time must
# cover it so the stall never lands on the crest.
migration_s = build_session("probe").scale_to(2, 2).cost.latency_s
lead_time_s = 2.0 * migration_s + 2.0 * batch_one_s
print(f"migration measured {migration_s * 1e6:.2f} us "
      f"-> lead time {lead_time_s * 1e6:.2f} us")

traffic = DiurnalTraffic(
    base_qps=base_qps, num_users=dataset.num_users, amplitude=0.8,
    period_s=period_s, seed=SEED, stream=180,
)
requests = traffic.generate(NUM_REQUESTS)
print(f"{NUM_REQUESTS} requests over {NUM_PERIODS} diurnal periods "
      f"(base {base_qps:,.0f} q/s, crest x1.8, p95 contract "
      f"{slo_s * 1e3:.3f} ms)")

arms = {
    "reactive": OnlineScaler(
        OnlineScalerConfig(
            p95_target_s=slo_s, window=24, cooldown=24,
            relax_watermark=0.45, max_shards=2, max_replicas=2,
        )
    ),
    "predictive": PredictiveScaler(
        TrafficForecaster(period_s=period_s, min_arrivals=48),
        capacity_model,
        lead_time_s=lead_time_s,
        horizon_s=duration_s,
        step_s=period_s / 24,
    ),
    "oracle": build_scale_plan(
        traffic.forecast_model(),
        capacity_model,
        start_s=0.0,
        horizon_s=duration_s,
        step_s=period_s / 24,
        lead_time_s=lead_time_s,
        initial_deployment=(1, 1),
    ),
}

for name, scaler in arms.items():
    result = build_session(f"forecast {name}", scaler=scaler).run(requests)
    violated, total = slo_violation_windows(
        result.records, slo_s, duration_s / 36
    )
    dollars = result.price_ledger.by_category().get("Migration", 0.0)
    print(f"\n-- {name}: {violated}/{total} windows violated, "
          f"migration ${dollars:.9f}")
    print(result.report.format_row())
    for event in result.scale_events:
        print(f"   scale {event.old_deployment} -> {event.new_deployment} "
              f"@ t={event.time_s * 1e3:.3f} ms")
    if name == "predictive" and scaler.model is not None:
        model = scaler.model
        print(f"   fitted: base {model.base_qps:,.0f} q/s "
              f"(true {base_qps:,.0f}), amplitude {model.amplitude:.2f} "
              f"(true 0.80), period {model.period_s * 1e3:.3f} ms "
              f"(true {period_s * 1e3:.3f} ms)")
