"""Fabric utilisation: area, standby power and access locality.

A systems-level tour of the extension models: how big is the fabric, what
does it cost to keep it powered between queries, and how evenly does a
realistic query stream exercise it?

Run:  python examples/fabric_utilization.py
"""

import numpy as np

from repro.core import (
    PAPER_CONFIG,
    StandbyPowerModel,
    TraceSimulator,
    WorkloadMapping,
    fabric_area,
    workload_area,
)
from repro.data.criteo import criteo_table_specs
from repro.data.movielens import movielens_table_specs

# ---------------------------------------------------------------------------
# Area: provisioned fabric vs what each workload activates.
# ---------------------------------------------------------------------------
print("Area accounting (45 nm class)")
print("=" * 60)
full = fabric_area(PAPER_CONFIG)
print(f"Provisioned fabric ({PAPER_CONFIG.total_cmas} CMAs): "
      f"{full.total_mm2:.1f} mm^2")
for component, fraction in full.breakdown().items():
    print(f"  {component:<18s} {fraction * 100:5.1f}%")

movielens_mapping = WorkloadMapping(movielens_table_specs())
criteo_mapping = WorkloadMapping(criteo_table_specs())
for name, mapping in (("MovieLens", movielens_mapping), ("Criteo", criteo_mapping)):
    active = workload_area(mapping)
    print(f"{name:<10s} activates {mapping.active_cmas:>5d} CMAs "
          f"-> {active.total_mm2:7.2f} mm^2")

# ---------------------------------------------------------------------------
# Standby power: the non-volatility benefit.
# ---------------------------------------------------------------------------
print("\nStandby power (fabric idle for 1 s)")
print("=" * 60)
model = StandbyPowerModel()
for technology in ("sram", "fefet"):
    energy = model.standby_energy(PAPER_CONFIG.total_cmas, 1.0, technology)
    print(f"  {technology.upper():<6s}: {energy.energy_uj:>12,.0f} uJ")
print(f"  advantage: {model.retention_advantage():.0f}x "
      "(FeFET cells retain the ETs with no supply)")

# ---------------------------------------------------------------------------
# Access locality: replay a Zipfian query stream.
# ---------------------------------------------------------------------------
print("\nAccess locality (5000 Zipfian MovieLens queries, pooling 10)")
print("=" * 60)
simulator = TraceSimulator(movielens_mapping)
stream = simulator.synthesize_stream(
    5000, itet_name="item", pooling=10, rng=np.random.default_rng(0)
)
trace = simulator.replay(stream)
print(f"bank balance (max/mean): {trace.bank_balance():.2f} "
      "(1.00 = perfectly balanced, by construction of the mapping)")
item_counts = trace.cma_accesses["item"]
total = item_counts.sum()
print("ItET per-CMA access shares (Zipf popularity concentrates lookups):")
for index, count in enumerate(item_counts):
    bar = "#" * int(round(40 * count / total))
    print(f"  CMA {index:>2d}: {count / total * 100:5.1f}% {bar}")
print("\nThe hot head CMA is why the paper's worst case -- all pooled")
print("lookups hitting the same array -- is the honest number to report.")
