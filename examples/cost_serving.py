"""Dollar-cost serving demo: eager vs lazy vs hybrid execution models.

Builds a MovieLens-shaped corpus behind a 2-shard iMARS fleet, attaches
a :class:`~repro.serving.PriceBook` (engine $/hour, cache get/put fees,
storage rent, an off-peak discount for precompute) and drives the same
seeded traffic through the three execution models:

* **lazy** -- every recommendation computed on demand; the result cache
  alone absorbs repeats;
* **eager** -- the users covering 75% of predicted traffic are served
  once before the run and warmed into the cache; that precompute bill
  lands under "Warm-up" at the off-peak discount;
* **hybrid** -- only users with proven recurrence are precomputed, and
  a repetition-aware cache refuses to cache one-off results on the
  demand path.

The workload analyzer sees only the request trace (spikiness,
repetition, valley depth) and picks a model blind -- compare its call
against the printed $/energy/latency frontier.  Two traffic shapes show
why one size does not fit all: a diurnal curve (predictable valley --
precompute country) and a bursty MMPP trace (same repetition, but the
spikes cannot be scheduled around).

Everything is seeded: the printed bills reproduce to the last float.

Run:  python examples/cost_serving.py
"""

from repro.core import ServeQuery, WorkloadMapping
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving import (
    BurstyTraffic,
    DiurnalTraffic,
    EagerExecutionModel,
    HybridExecutionModel,
    LazyExecutionModel,
    MicroBatchConfig,
    MicroBatchScheduler,
    PriceBook,
    RepetitionAwareCache,
    ServingCache,
    ServingSession,
    analyze_trace,
    make_sharded_engine,
    recommend_execution_model,
)

SCALE = 0.03
NUM_CANDIDATES = 24
TOP_K = 5
NUM_REQUESTS = 200
NUM_SHARDS = 2

print(f"Generating a MovieLens-shaped corpus (scale={SCALE}) ...")
dataset = MovieLensDataset(scale=SCALE, seed=0)
config = YouTubeDNNConfig(
    num_items=dataset.num_items,
    demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
    seed=0,
)
filtering, ranking = YouTubeDNNFiltering(config), YouTubeDNNRanking(config)
mapping = WorkloadMapping(movielens_table_specs())
workload = [
    ServeQuery.make(
        dataset.histories[user],
        dataset.demographics[user],
        dataset.ranking_context[user],
    )
    for user in range(dataset.num_users)
]

print("Calibrating the operating point against one iMARS engine ...")
probe = make_sharded_engine(
    "imars", filtering, ranking, 1, mapping=mapping,
    num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=0,
)
batch_one_s = probe.recommend_query(workload[0]).cost.latency_s
capacity_qps = 16 / probe.serve_batch(workload[:16]).cost.latency_s
rate_qps = 0.6 * capacity_qps
duration_s = NUM_REQUESTS / rate_qps
cache_capacity = max(4, dataset.num_users // 3)

book = PriceBook()  # engine $/h, cache fees, storage rent, off-peak x0.6
print(
    f"  offered {rate_qps:,.0f} q/s over {NUM_SHARDS} shards; "
    f"IMC ${book.imc_per_hour:.2f}/h, puts ${book.cache_put_per_million:.2f}/M, "
    f"off-peak x{book.off_peak_discount:.2f}"
)

traces = {
    "diurnal": DiurnalTraffic(
        base_qps=rate_qps, num_users=dataset.num_users,
        amplitude=0.8, period_s=duration_s, seed=0, stream=1,
    ).generate(NUM_REQUESTS),
    "bursty": BurstyTraffic(
        calm_qps=0.5 * rate_qps, burst_qps=4.0 * rate_qps,
        num_users=dataset.num_users,
        # Sojourns measured in requests-at-rate so the MMPP flips state
        # several times inside the (sub-millisecond) simulated run.
        mean_calm_s=24.0 / rate_qps, mean_burst_s=12.0 / rate_qps,
        seed=0, stream=2,
    ).generate(NUM_REQUESTS),
}

models = {
    "lazy": LazyExecutionModel(),
    "eager": EagerExecutionModel(traffic_fraction=0.75),
    "hybrid": HybridExecutionModel(recurrence_threshold=0.5),
}


def session_factory(label, repetition_aware):
    def build():
        cache_cls = RepetitionAwareCache if repetition_aware else ServingCache
        return ServingSession(
            make_sharded_engine(
                "imars", filtering, ranking, NUM_SHARDS, mapping=mapping,
                num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=0,
            ),
            workload,
            scheduler=MicroBatchScheduler(
                MicroBatchConfig(max_batch_size=8, max_wait_s=2.0 * batch_one_s)
            ),
            cache=cache_cls(capacity=cache_capacity, rows_per_entry=TOP_K),
            label=label,
            price_book=book,
        )

    return build


for trace_name, requests in traces.items():
    features = analyze_trace(requests)
    pick = recommend_execution_model(features)
    print(f"\n-- {trace_name} trace --")
    print(features.format_row())
    print(f"  analyzer recommends: '{pick}'")
    for model_name, model in models.items():
        outcome = model.execute(
            session_factory(
                f"{trace_name} {model_name}",
                repetition_aware=(model_name == "hybrid"),
            ),
            requests,
        )
        marker = "  <- analyzer's pick" if model_name == pick else ""
        print(outcome.format_row() + marker)
        if model_name == pick:
            breakdown = outcome.result.price_ledger.by_category()
            rows = ", ".join(
                f"{category} ${dollars:.8f}"
                for category, dollars in sorted(breakdown.items())
            )
            print(f"          bill: {rows}")
