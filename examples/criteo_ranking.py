"""Criteo ranking: train DLRM on synthetic CTR data, price it on iMARS.

The paper's second workload: Facebook DLRM on the Criteo Kaggle dataset,
ranking stage only (Table I right column).  This example:

1. generates synthetic Criteo-shaped data (13 dense + 26 categorical
   features, Zipfian buckets, logistic ground truth);
2. trains a DLRM and reports its held-out AUC;
3. maps the 26 full-size embedding tables onto iMARS (26 banks, 104 mats,
   2860 CMAs) and prices one ranking inference on both platforms.

Run:  python examples/criteo_ranking.py
"""

from repro.core import IMARSCostModel, WorkloadMapping
from repro.core.mapping import RANKING
from repro.data.criteo import CriteoDataset, criteo_table_specs
from repro.gpu.kernels import gpu_dnn_stack, gpu_et_operation, gpu_topk
from repro.metrics.accuracy import auc_score
from repro.models.dlrm import DLRM, DLRMConfig

# ---------------------------------------------------------------------------
# 1. Synthetic Criteo data (scaled buckets for example runtime).
# ---------------------------------------------------------------------------
print("Generating synthetic Criteo CTR data ...")
dataset = CriteoDataset(num_samples=6000, rows_per_table=1000, seed=0)
print(f"  {dataset.num_samples} samples, CTR {dataset.click_rate:.3f}, "
      f"{dataset.num_dense} dense + {dataset.num_sparse} categorical features")

# ---------------------------------------------------------------------------
# 2. Train DLRM (scaled MLPs; Table I geometry shown below for costing).
# ---------------------------------------------------------------------------
config = DLRMConfig(
    categorical_cardinalities=tuple([dataset.rows_per_table] * 26),
    embedding_dim=16,
    bottom_spec="64-32-16",
    top_spec="32-1",
)
model = DLRM(config)
train, test = dataset.split(test_fraction=0.2)
print("Training DLRM ...")
losses = model.train_ctr(
    train["dense"], train["sparse"], train["clicks"],
    epochs=4, batch_size=256, lr=0.02,
)
scores = model.predict_ctr(test["dense"], test["sparse"])
print(f"  loss {losses[0]:.3f} -> {losses[-1]:.3f}; "
      f"held-out AUC {auc_score(test['clicks'], scores):.3f}")

# ---------------------------------------------------------------------------
# 3. Hardware costing at the paper's full scale (28000-row tables).
# ---------------------------------------------------------------------------
print("\nMapping the full-scale Criteo tables onto iMARS ...")
mapping = WorkloadMapping(criteo_table_specs())
row = mapping.table_one_row()
print(f"  banks={row['banks']}  mats={row['mats']}  cmas={row['cmas']} "
      "(Table I: 26 / 104 / 2860)")

cost_model = IMARSCostModel(mapping)
imars_et = cost_model.et_operation(RANKING)
imars_bottom = cost_model.dnn_stack_cost(13, "256-128-32")
imars_top = cost_model.dnn_stack_cost(383, "256-64-1")
imars_total = imars_et.then(imars_bottom).then(imars_top)

gpu_et = gpu_et_operation(26)
gpu_bottom = gpu_dnn_stack(13, "256-128-32")
gpu_top = gpu_dnn_stack(383, "256-64-1")
gpu_interaction = gpu_topk(351)
gpu_total = gpu_et.then(gpu_bottom).then(gpu_interaction).then(gpu_top)

print("\nOne DLRM ranking inference:")
print(f"  GPU   : {gpu_total.latency_us:7.2f} us  {gpu_total.energy_uj:8.2f} uJ")
print(f"  iMARS : {imars_total.latency_us:7.2f} us  {imars_total.energy_uj:8.2f} uJ")
print(f"  speedup {imars_total.speedup_over(gpu_total):5.1f}x (paper: 13.2x), "
      f"energy reduction {imars_total.energy_reduction_over(gpu_total):5.1f}x "
      "(paper: 57.8x)")
