"""Chaos serving demo: kill replicas, dark a shard, watch the fleet heal.

Builds a MovieLens-shaped corpus behind a 2-shard x 2-replica iMARS
fleet, schedules a seeded fault plan over the run's timeline (replica
crashes with restart, one whole-shard outage, 6x stragglers, a
transient-error window, a cache flush) and serves the same Poisson
stream three ways:

* a healthy fleet (no faults) -- the reference tail and energy bill;
* the faulted fleet with resilience OFF -- crashed replicas drop their
  queries, a response missing a corpus slice is rejected, availability
  collapses in proportion to the scheduled downtime;
* the faulted fleet with resilience ON -- timeouts + failover retries,
  tail hedging, per-replica circuit breakers and partial scatter-gather
  keep answering; a dark shard costs *recall* (partial answers from the
  survivors), and all recovery work is billed to the energy ledger
  under "Retry"/"Hedge".

Everything is seeded, so the printed availability, breaker transitions
and recovery bill reproduce exactly.

Run:  python examples/chaos_serving.py
"""

from repro.core import ServeQuery, WorkloadMapping
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving import (
    MicroBatchConfig,
    MicroBatchScheduler,
    PoissonTraffic,
    ResilienceConfig,
    ServingCache,
    ServingSession,
    chaos_scenario,
    make_sharded_engine,
)

SCALE = 0.03
NUM_CANDIDATES = 24
TOP_K = 5
NUM_REQUESTS = 240
NUM_SHARDS = 2
REPLICAS = 2

print(f"Generating a MovieLens-shaped corpus (scale={SCALE}) ...")
dataset = MovieLensDataset(scale=SCALE, seed=0)
config = YouTubeDNNConfig(
    num_items=dataset.num_items,
    demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
    seed=0,
)
filtering, ranking = YouTubeDNNFiltering(config), YouTubeDNNRanking(config)
mapping = WorkloadMapping(movielens_table_specs())
workload = [
    ServeQuery.make(
        dataset.histories[user],
        dataset.demographics[user],
        dataset.ranking_context[user],
    )
    for user in range(dataset.num_users)
]

print("Calibrating the operating point against one iMARS engine ...")
probe = make_sharded_engine(
    "imars", filtering, ranking, 1, mapping=mapping,
    num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=0,
)
batch_one_s = probe.recommend_query(workload[0]).cost.latency_s
capacity_qps = 16 / probe.serve_batch(workload[:16]).cost.latency_s
rate_qps = 0.6 * capacity_qps  # headroom: recovery needs slack to drain
slo_s = 6.0 * batch_one_s
requests = PoissonTraffic(
    rate_qps, num_users=dataset.num_users, seed=0, stream=1
).generate(NUM_REQUESTS)
duration_s = max(request.arrival_s for request in requests)
print(f"  offered {rate_qps:,.0f} q/s over a {NUM_SHARDS}x{REPLICAS} fleet")

plan = chaos_scenario(duration_s, NUM_SHARDS, REPLICAS, seed=0)
print(f"\n-- the fault plan ({len(plan)} seeded events) --")
for event in plan.events:
    target = f"shard {event.shard}" + (
        f" replica {event.replica}" if event.replica is not None else ""
    )
    print(
        f"  {event.kind:<12s} [{event.start_s * 1e3:7.3f}, "
        f"{event.end_s * 1e3:7.3f}] ms  {target}"
        + (f"  x{event.severity:.0f} slower" if event.severity > 1.0 else "")
    )
print(f"  scheduled MTTR: {plan.mttr_s() * 1e3:.3f} ms")

resilience = ResilienceConfig(
    timeout_factor=1.2,
    default_timeout_s=batch_one_s,
    max_retries=1,
    backoff_base_s=0.25 * batch_one_s,
    breaker_failure_threshold=1,
    breaker_cooldown_s=10.0 * batch_one_s,
    hedge_factor=1.5,
    hedge_delay_factor=1.05,
)


def serve(label, faults=None, shields=None):
    session = ServingSession(
        make_sharded_engine(
            "imars", filtering, ranking, NUM_SHARDS, mapping=mapping,
            num_candidates=NUM_CANDIDATES, top_k=TOP_K, seed=0,
            replicas_per_shard=REPLICAS,
        ),
        workload,
        scheduler=MicroBatchScheduler(
            MicroBatchConfig(max_batch_size=8, max_wait_s=0.25 * slo_s)
        ),
        cache=ServingCache(
            capacity=max(4, dataset.num_users // 4), rows_per_entry=TOP_K
        ),
        label=label,
        faults=faults,
        resilience=shields,
    )
    return session.run(requests)


print("\n-- same traffic, three fleets --")
healthy = serve("healthy")
unshielded = serve("resilience-off", faults=plan)
shielded = serve("resilience-on", faults=plan, shields=resilience)
for result in (healthy, unshielded, shielded):
    print(result.report.format_row())

stats = shielded.fault_stats
counters = stats["counters"]
print("\n-- how the shielded fleet survived --")
print(
    f"  {counters['crash_hits']} crashed attempts detected, "
    f"{counters['retries']} retries ({counters['failovers']} failovers), "
    f"{counters['hedges']} hedges, {counters['partial_queries']} partial "
    f"answers (recall loss {stats['recall_loss']:.2f} query-equivalents)"
)
print(
    f"  breaker transitions: {counters['breaker_opens']} opens, "
    f"{counters['breaker_half_opens']} half-opens, "
    f"{counters['breaker_closes']} closes; final states {stats['breakers']}"
)
recovery = shielded.ledger.by_category()
print(
    f"  recovery bill: Retry {recovery['Retry'].energy_uj:.4f} uJ, "
    f"Hedge {recovery['Hedge'].energy_uj:.4f} uJ "
    f"(Serve {recovery['Serve'].energy_uj:.4f} uJ)"
)
print(
    f"  availability {100.0 * shielded.report.availability:.2f}% vs "
    f"{100.0 * unshielded.report.availability:.2f}% unshielded; "
    f"p95 x{shielded.report.p95_ms / healthy.report.p95_ms:.2f} healthy"
)
