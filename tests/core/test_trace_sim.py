"""Tests for the trace-driven bank-utilisation simulator."""

import numpy as np
import pytest

from repro.core.mapping import EmbeddingTableSpec, WorkloadMapping
from repro.core.trace_sim import TraceSimulator
from repro.data.movielens import movielens_table_specs


def _small_simulator():
    specs = [
        EmbeddingTableSpec("user", 600),
        EmbeddingTableSpec("item", 1000, kind="itet", pooling_factor=4),
    ]
    return TraceSimulator(WorkloadMapping(specs))


class TestReplay:
    def test_counts_accumulate(self):
        simulator = _small_simulator()
        trace = simulator.replay(
            [
                {"user": [3], "item": [0, 1]},
                {"user": [3], "item": [700]},
            ]
        )
        assert trace.num_queries == 2
        assert trace.bank_accesses == {"user": 2, "item": 2}
        assert trace.cma_accesses["user"][0] == 2
        assert trace.cma_accesses["item"][0] == 2  # entries 0 and 1
        assert trace.cma_accesses["item"][700 // 256] == 1

    def test_empty_lookup_not_counted(self):
        simulator = _small_simulator()
        trace = simulator.replay([{"user": [], "item": [5]}])
        assert trace.bank_accesses["user"] == 0
        assert trace.bank_accesses["item"] == 1

    def test_unknown_table_rejected(self):
        simulator = _small_simulator()
        with pytest.raises(KeyError):
            simulator.replay([{"nope": [0]}])

    def test_out_of_range_entry_rejected(self):
        simulator = _small_simulator()
        with pytest.raises(IndexError):
            simulator.replay([{"user": [600]}])

    def test_total_cma_accesses_match_entries(self):
        simulator = _small_simulator()
        stream = [{"user": [1, 2, 3], "item": [10, 300, 999]}] * 5
        trace = simulator.replay(stream)
        assert trace.cma_accesses["user"].sum() == 15
        assert trace.cma_accesses["item"].sum() == 15


class TestMetrics:
    def test_bank_balance_of_uniform_stream(self):
        simulator = _small_simulator()
        trace = simulator.replay([{"user": [0], "item": [0]}] * 10)
        assert trace.bank_balance() == pytest.approx(1.0)

    def test_cma_skew_all_in_one(self):
        simulator = _small_simulator()
        trace = simulator.replay([{"item": [1, 2, 3]}] * 4)
        assert trace.cma_skew("item") == pytest.approx(1.0)

    def test_cma_skew_unknown_table_is_zero(self):
        simulator = _small_simulator()
        trace = simulator.replay([])
        assert trace.cma_skew("item") == 0.0


class TestSyntheticStream:
    def test_stream_shape(self):
        simulator = TraceSimulator(WorkloadMapping(movielens_table_specs()))
        stream = simulator.synthesize_stream(
            20, itet_name="item", pooling=5, rng=np.random.default_rng(0)
        )
        assert len(stream) == 20
        for query in stream:
            assert len(query["item"]) == 5
            assert len(query["user_id"]) == 1

    def test_entries_within_table_ranges(self):
        mapping = WorkloadMapping(movielens_table_specs())
        simulator = TraceSimulator(mapping)
        stream = simulator.synthesize_stream(
            50, itet_name="item", rng=np.random.default_rng(1)
        )
        limits = {m.spec.name: m.spec.num_entries for m in mapping.tables}
        for query in stream:
            for name, entries in query.items():
                assert all(0 <= entry < limits[name] for entry in entries)

    def test_zipf_concentrates_item_accesses(self):
        simulator = TraceSimulator(WorkloadMapping(movielens_table_specs()))
        stream = simulator.synthesize_stream(
            500, itet_name="item", pooling=8, rng=np.random.default_rng(2)
        )
        trace = simulator.replay(stream)
        uniform = 1.0 / len(trace.cma_accesses["item"])
        assert trace.cma_skew("item") > 1.5 * uniform

    def test_unknown_itet_rejected(self):
        simulator = _small_simulator()
        with pytest.raises(KeyError):
            simulator.synthesize_stream(5, itet_name="nope")

    def test_invalid_counts_rejected(self):
        simulator = _small_simulator()
        with pytest.raises(ValueError):
            simulator.synthesize_stream(0, itet_name="item")
