"""Tests for the CMA bank (mats + IBC + intra-bank adder tree)."""

import numpy as np
import pytest

from repro.core.bank import Bank
from repro.core.config import ArchitectureConfig


def _small_config(**overrides):
    defaults = dict(cma_rows=8, cmas_per_mat=2, mats_per_bank=4)
    defaults.update(overrides)
    return ArchitectureConfig(**defaults)


class TestGeometry:
    def test_full_bank(self):
        bank = Bank(_small_config())
        assert bank.num_mats == 4
        assert bank.num_cmas == 8
        assert bank.capacity_rows == 64

    def test_partial_mats(self):
        bank = Bank(_small_config(), active_mats=2)
        assert bank.num_mats == 2
        assert bank.capacity_rows == 32

    def test_partial_last_mat(self):
        """Criteo-style activation: 3 full mats + a 14-CMA final mat."""
        bank = Bank(_small_config(), active_mats=3, active_cmas_last_mat=1)
        assert bank.num_cmas == 2 + 2 + 1

    def test_invalid_activation_rejected(self):
        with pytest.raises(ValueError):
            Bank(_small_config(), active_mats=0)
        with pytest.raises(ValueError):
            Bank(_small_config(), active_mats=5)

    def test_locate_spans_mats(self):
        bank = Bank(_small_config())
        assert bank.locate(0) == (0, 0)
        assert bank.locate(15) == (0, 15)
        assert bank.locate(16) == (1, 0)
        assert bank.locate(63) == (3, 15)

    def test_locate_out_of_range_rejected(self):
        bank = Bank(_small_config())
        with pytest.raises(IndexError):
            bank.locate(64)
        with pytest.raises(IndexError):
            bank.locate(-1)


class TestStorage:
    def test_load_table_roundtrip(self):
        bank = Bank(_small_config())
        rng = np.random.default_rng(0)
        table = rng.integers(-60, 60, size=(40, 32))
        bank.load_table(table)
        for entry in (0, 15, 16, 39):
            read, _ = bank.read_entry(entry)
            np.testing.assert_array_equal(read, table[entry])

    def test_oversized_table_rejected(self):
        bank = Bank(_small_config())
        with pytest.raises(ValueError):
            bank.load_table(np.zeros((65, 32), dtype=int))

    def test_wrong_dim_table_rejected(self):
        bank = Bank(_small_config())
        with pytest.raises(ValueError):
            bank.load_table(np.zeros((4, 16), dtype=int))

    def test_load_cost_scales_with_entries(self):
        bank = Bank(_small_config())
        cost = bank.load_table(np.zeros((10, 32), dtype=int))
        foms = bank.config.foms
        assert cost.energy_pj == pytest.approx(
            10 * foms.cma_write.energy_pj, rel=0.1
        )


class TestPooling:
    def test_pooling_exact_across_mats(self):
        bank = Bank(_small_config())
        rng = np.random.default_rng(1)
        table = rng.integers(-30, 30, size=(64, 32))
        bank.load_table(table)
        entries = [0, 17, 33, 50]  # one entry in each mat
        total, _ = bank.pooled_lookup(entries)
        np.testing.assert_array_equal(total, table[entries].sum(axis=0))

    def test_single_mat_pooling_skips_bank_tree(self):
        bank = Bank(_small_config())
        bank.load_table(np.ones((64, 32), dtype=int))
        _, within = bank.pooled_lookup([0, 1])  # one CMA chain
        foms = bank.config.foms
        assert within.latency_ns < foms.intra_bank_add.latency_ns + 20.0

    def test_multi_mat_pooling_charges_bank_tree(self):
        bank = Bank(_small_config())
        bank.load_table(np.ones((64, 32), dtype=int))
        _, across = bank.pooled_lookup([0, 17, 33, 50])
        foms = bank.config.foms
        assert across.latency_ns >= foms.intra_bank_add.latency_ns

    def test_mats_work_in_parallel(self):
        """Four one-read mats cost ~one read + delivery + tree, not four."""
        bank = Bank(_small_config())
        bank.load_table(np.ones((64, 32), dtype=int))
        _, cost = bank.pooled_lookup([0, 17, 33, 50])
        foms = bank.config.foms
        ceiling = (
            foms.cma_read.latency_ns
            + foms.intra_bank_add.latency_ns
            + 10.0  # IBC + controller margin
        )
        assert cost.latency_ns <= ceiling

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            Bank(_small_config()).pooled_lookup([])


class TestSearch:
    def test_search_returns_bank_local_indices(self):
        bank = Bank(_small_config())
        signature = np.zeros(256, dtype=np.uint8)
        for entry in (2, 20, 45):
            bank.write_signature_entry(entry, signature)
        matches, _ = bank.search(signature, threshold=0)
        assert matches == [2, 20, 45]

    def test_search_threshold_behaviour(self):
        bank = Bank(_small_config())
        near = np.zeros(256, dtype=np.uint8)
        far = np.ones(256, dtype=np.uint8)
        bank.write_signature_entry(0, near)
        bank.write_signature_entry(1, far)
        query = np.zeros(256, dtype=np.uint8)
        query[:5] = 1  # distance 5 to near, 251 to far
        assert bank.search(query, 10)[0] == [0]
        assert bank.search(query, 255)[0] == [0, 1]
