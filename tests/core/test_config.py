"""Tests for the architecture configuration."""

import pytest

from repro.circuits.foms import TABLE_II
from repro.core.config import ArchitectureConfig, PAPER_CONFIG
from repro.energy.accounting import Cost


class TestPaperConfig:
    def test_paper_dimensioning(self):
        """Sec. IV: B=32, M=4, C=32, 256x256 CMAs, fan-in-4 bank tree."""
        config = PAPER_CONFIG
        assert config.num_banks == 32
        assert config.mats_per_bank == 4
        assert config.cmas_per_mat == 32
        assert config.cma_rows == config.cma_cols == 256
        assert config.intra_bank_fan_in == 4

    def test_word_geometry(self):
        """32 dims x int8 = one 256-bit word per CMA row."""
        assert PAPER_CONFIG.word_bits == 256
        assert PAPER_CONFIG.word_bits <= PAPER_CONFIG.cma_cols

    def test_bank_capacity_is_128_cmas(self):
        assert PAPER_CONFIG.cmas_per_bank == 128

    def test_ibc_moves_four_words(self):
        assert PAPER_CONFIG.ibc_payload_bits // PAPER_CONFIG.word_bits == 4

    def test_total_capacity(self):
        assert PAPER_CONFIG.total_cmas == 32 * 128
        assert PAPER_CONFIG.rows_per_bank == 128 * 256
        assert PAPER_CONFIG.total_capacity_entries() == 32 * 128 * 256

    def test_default_foms_are_table_ii(self):
        assert PAPER_CONFIG.foms == TABLE_II


class TestValidation:
    def test_zero_banks_rejected(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(num_banks=0)

    def test_fan_in_below_two_rejected(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(intra_bank_fan_in=1)

    def test_word_wider_than_row_rejected(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(embedding_dim=64, embedding_bits=8, cma_cols=256)

    def test_with_foms_override(self):
        modified = TABLE_II.with_overrides(cma_read=Cost(1.0, 1.0))
        config = PAPER_CONFIG.with_foms(modified)
        assert config.foms.cma_read == Cost(1.0, 1.0)
        assert PAPER_CONFIG.foms.cma_read == TABLE_II.cma_read  # original intact
