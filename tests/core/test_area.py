"""Tests for the fabric area model."""

from dataclasses import replace

import pytest

from repro.core.area import AreaModel, fabric_area, workload_area
from repro.core.config import PAPER_CONFIG
from repro.core.mapping import WorkloadMapping
from repro.data.criteo import criteo_table_specs
from repro.data.movielens import movielens_table_specs


class TestAreaModel:
    def test_component_areas_positive(self):
        model = AreaModel()
        assert model.cma_area_um2() > 0.0
        assert model.adder_tree_area_um2(4) > 0.0
        assert model.crossbar_area_um2() > 0.0
        assert model.bus_area_um2(256, 2.0) > 0.0

    def test_tree_area_linear_in_fan_in_minus_one(self):
        model = AreaModel()
        assert model.adder_tree_area_um2(5) == pytest.approx(
            4.0 / 3.0 * model.adder_tree_area_um2(4)
        )

    def test_invalid_args_rejected(self):
        model = AreaModel()
        with pytest.raises(ValueError):
            model.cma_area_um2(rows=0)
        with pytest.raises(ValueError):
            model.adder_tree_area_um2(1)
        with pytest.raises(ValueError):
            model.bus_area_um2(0, 1.0)
        with pytest.raises(ValueError):
            AreaModel(cma_cell_um2=0.0)


class TestFabricArea:
    def test_total_is_component_sum(self):
        area = fabric_area()
        components = (
            area.cma_mm2
            + area.intra_mat_trees_mm2
            + area.intra_bank_trees_mm2
            + area.crossbars_mm2
            + area.interconnect_mm2
        )
        assert area.total_mm2 == pytest.approx(components)

    def test_breakdown_sums_to_one(self):
        assert sum(fabric_area().breakdown().values()) == pytest.approx(1.0)

    def test_cma_arrays_dominate(self):
        assert fabric_area().breakdown()["CMA arrays"] > 0.5

    def test_area_proportional_to_banks(self):
        """'Area footprint increases proportionally to B, M and C.'"""
        base = fabric_area(PAPER_CONFIG)
        doubled = fabric_area(replace(PAPER_CONFIG, num_banks=64))
        assert doubled.cma_mm2 == pytest.approx(2.0 * base.cma_mm2)

    def test_area_proportional_to_c(self):
        base = fabric_area(PAPER_CONFIG)
        doubled = fabric_area(replace(PAPER_CONFIG, cmas_per_mat=64))
        assert doubled.cma_mm2 == pytest.approx(2.0 * base.cma_mm2)

    def test_plausible_total(self):
        assert 10.0 < fabric_area().total_mm2 < 500.0


class TestWorkloadArea:
    def test_activated_matches_table_one_ratio(self):
        """Criteo activates 2860/54 ~ 53x the MovieLens CMA area."""
        movielens = workload_area(WorkloadMapping(movielens_table_specs()))
        criteo = workload_area(WorkloadMapping(criteo_table_specs()))
        assert criteo.cma_mm2 / movielens.cma_mm2 == pytest.approx(
            2860.0 / 54.0, rel=0.01
        )

    def test_activated_less_than_provisioned(self):
        movielens = workload_area(WorkloadMapping(movielens_table_specs()))
        assert movielens.total_mm2 < fabric_area().total_mm2
