"""Tests for the configurable memory array (CMA)."""

import numpy as np
import pytest

from repro.circuits.foms import TABLE_II
from repro.core.cma import CMA, CMAMode


def _small_cma(rows=16):
    return CMA(rows=rows, cols=256, lanes=32, lane_bits=8)


class TestConstruction:
    def test_lane_word_must_fit_columns(self):
        with pytest.raises(ValueError):
            CMA(rows=4, cols=128, lanes=32, lane_bits=8)  # 256 bits > 128 cols

    def test_default_mode_is_ram(self):
        assert _small_cma().mode is CMAMode.RAM


class TestRAMMode:
    def test_word_roundtrip(self):
        cma = _small_cma()
        word = np.arange(32) - 16
        cma.write_word(3, word)
        read, _ = cma.read_word(3)
        np.testing.assert_array_equal(read, word)

    def test_write_cost_is_table_ii(self):
        cma = _small_cma()
        cost = cma.write_word(0, np.zeros(32, dtype=int))
        assert cost.energy_pj == pytest.approx(TABLE_II.cma_write.energy_pj)
        assert cost.latency_ns == pytest.approx(TABLE_II.cma_write.latency_ns)

    def test_read_cost_is_table_ii(self):
        cma = _small_cma()
        cma.write_word(0, np.zeros(32, dtype=int))
        _, cost = cma.read_word(0)
        assert cost.energy_pj == pytest.approx(TABLE_II.cma_read.energy_pj)

    def test_unwritten_row_read_rejected(self):
        with pytest.raises(ValueError):
            _small_cma().read_word(0)

    def test_out_of_range_row_rejected(self):
        with pytest.raises(IndexError):
            _small_cma(rows=4).write_word(4, np.zeros(32, dtype=int))

    def test_wrong_lane_count_rejected(self):
        with pytest.raises(ValueError):
            _small_cma().write_word(0, np.zeros(16, dtype=int))


class TestGPCiMMode:
    def test_pooling_exact_sum(self):
        cma = _small_cma()
        rng = np.random.default_rng(0)
        words = [rng.integers(-40, 40, size=32) for _ in range(5)]
        for row, word in enumerate(words):
            cma.write_word(row, word)
        total, _ = cma.pool_rows(range(5))
        np.testing.assert_array_equal(total, np.sum(words, axis=0))

    def test_pooling_chain_cost_structure(self):
        """L lookups: L-1 x (add + write) after a mode switch (IV-C1)."""
        cma = _small_cma()
        for row in range(10):
            cma.write_word(row, np.zeros(32, dtype=int))
        cma.switch_mode(CMAMode.GPCIM)  # pre-switch so chain cost is pure
        _, cost = cma.pool_rows(range(10))
        expected = 9 * (TABLE_II.cma_add.latency_ns + TABLE_II.cma_write.latency_ns)
        assert cost.latency_ns == pytest.approx(expected)

    def test_single_row_pool_is_a_read(self):
        cma = _small_cma()
        cma.write_word(2, np.ones(32, dtype=int))
        _, cost = cma.pool_rows([2])
        assert cost.latency_ns == pytest.approx(TABLE_II.cma_read.latency_ns, abs=0.6)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            _small_cma().pool_rows([])


class TestTCAMMode:
    def test_signature_search_threshold(self):
        cma = CMA(rows=8, cols=64, lanes=4, lane_bits=8)
        rng = np.random.default_rng(1)
        signatures = rng.integers(0, 2, size=(8, 64)).astype(np.uint8)
        for row in range(8):
            cma.write_signature(row, signatures[row])
        query = signatures[5].copy()
        query[:3] ^= 1  # distance 3 to row 5
        flags, _ = cma.search(query, threshold=3)
        assert flags[5]
        flags_tight, _ = cma.search(query, threshold=2)
        assert not flags_tight[5]

    def test_search_cost_is_table_ii(self):
        cma = CMA(rows=4, cols=64, lanes=4, lane_bits=8)
        cma.write_signature(0, np.zeros(64, dtype=np.uint8))
        _, cost = cma.search(np.zeros(64, dtype=np.uint8), threshold=0)
        assert cost.energy_pj == pytest.approx(TABLE_II.cma_search.energy_pj)

    def test_unwritten_rows_never_match(self):
        cma = CMA(rows=4, cols=64, lanes=4, lane_bits=8)
        cma.write_signature(1, np.zeros(64, dtype=np.uint8))
        flags, _ = cma.search(np.zeros(64, dtype=np.uint8), threshold=64)
        assert flags.tolist() == [False, True, False, False]

    def test_hamming_distances_verification_helper(self):
        cma = CMA(rows=2, cols=8, lanes=1, lane_bits=8)
        cma.write_signature(0, [0, 0, 0, 0, 1, 1, 1, 1])
        distances = cma.hamming_distances([1, 1, 1, 1, 1, 1, 1, 1])
        assert distances[0] == 4
        assert distances[1] == 9  # invalid row: cols + 1

    def test_invalid_query_rejected(self):
        cma = CMA(rows=2, cols=8, lanes=1, lane_bits=8)
        with pytest.raises(ValueError):
            cma.search([0, 1], threshold=0)
        with pytest.raises(ValueError):
            cma.search([2] * 8, threshold=0)


class TestModeSwitching:
    def test_same_mode_switch_free(self):
        cma = _small_cma()
        assert cma.switch_mode(CMAMode.RAM).latency_ns == 0.0

    def test_switch_charges_cost(self):
        cma = _small_cma()
        cost = cma.switch_mode(CMAMode.TCAM)
        assert cost.latency_ns > 0.0
        assert cma.mode is CMAMode.TCAM

    def test_operations_switch_modes_implicitly(self):
        cma = _small_cma()
        cma.write_word(0, np.zeros(32, dtype=int))
        assert cma.mode is CMAMode.RAM
        cma.write_word(1, np.zeros(32, dtype=int))
        cma.pool_rows([0, 1])
        assert cma.mode is CMAMode.GPCIM

    def test_valid_row_count(self):
        cma = _small_cma()
        assert cma.valid_row_count == 0
        cma.write_word(0, np.zeros(32, dtype=int))
        cma.write_word(5, np.zeros(32, dtype=int))
        assert cma.valid_row_count == 2
