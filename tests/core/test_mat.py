"""Tests for the mat (C CMAs + intra-mat adder tree)."""

import numpy as np
import pytest

from repro.core.config import ArchitectureConfig
from repro.core.mat import Mat


def _small_config():
    """4 CMAs of 8 rows each keep the functional tests fast."""
    return ArchitectureConfig(cma_rows=8, cmas_per_mat=4)


class TestGeometry:
    def test_default_mat_has_c_cmas(self):
        mat = Mat(_small_config())
        assert mat.num_cmas == 4
        assert mat.capacity_rows == 32

    def test_partial_activation(self):
        mat = Mat(_small_config(), active_cmas=2)
        assert mat.num_cmas == 2
        assert mat.capacity_rows == 16

    def test_invalid_activation_rejected(self):
        with pytest.raises(ValueError):
            Mat(_small_config(), active_cmas=0)
        with pytest.raises(ValueError):
            Mat(_small_config(), active_cmas=9)

    def test_locate_fills_cmas_in_order(self):
        mat = Mat(_small_config())
        assert mat.locate(0) == (0, 0)
        assert mat.locate(7) == (0, 7)
        assert mat.locate(8) == (1, 0)
        assert mat.locate(31) == (3, 7)

    def test_locate_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            Mat(_small_config()).locate(32)


class TestStorageAndPooling:
    def test_entry_roundtrip_across_cmas(self):
        mat = Mat(_small_config())
        rng = np.random.default_rng(0)
        words = {}
        for entry in (0, 7, 8, 20, 31):
            word = rng.integers(-50, 50, size=32)
            mat.write_entry(entry, word)
            words[entry] = word
        for entry, word in words.items():
            read, _ = mat.read_entry(entry)
            np.testing.assert_array_equal(read, word)

    def test_pooled_lookup_exact_within_one_cma(self):
        mat = Mat(_small_config())
        rng = np.random.default_rng(1)
        words = [rng.integers(-30, 30, size=32) for _ in range(4)]
        for entry, word in enumerate(words):
            mat.write_entry(entry, word)
        total, _ = mat.pooled_lookup(range(4))
        np.testing.assert_array_equal(total, np.sum(words, axis=0))

    def test_pooled_lookup_exact_across_cmas(self):
        mat = Mat(_small_config())
        rng = np.random.default_rng(2)
        entries = [0, 9, 17, 30]  # four different CMAs
        words = [rng.integers(-30, 30, size=32) for _ in entries]
        for entry, word in zip(entries, words):
            mat.write_entry(entry, word)
        total, _ = mat.pooled_lookup(entries)
        np.testing.assert_array_equal(total, np.sum(words, axis=0))

    def test_cross_cma_pooling_charges_tree(self):
        mat = Mat(_small_config())
        for entry in (0, 9):
            mat.write_entry(entry, np.ones(32, dtype=int))
        # Within one CMA: serial chain, no tree.
        mat.write_entry(1, np.ones(32, dtype=int))
        _, chain_cost = mat.pooled_lookup([0, 1])
        # Across two CMAs: parallel reads + one intra-mat tree add.
        _, tree_cost = mat.pooled_lookup([0, 9])
        foms = mat.config.foms
        assert tree_cost.latency_ns == pytest.approx(
            foms.cma_read.latency_ns + foms.intra_mat_add.latency_ns, abs=1.0
        )
        assert chain_cost.latency_ns == pytest.approx(
            foms.cma_add.latency_ns + foms.cma_write.latency_ns, abs=1.0
        )

    def test_parallel_cma_chains_take_max_latency(self):
        mat = Mat(_small_config())
        for entry in list(range(4)) + list(range(8, 12)):
            mat.write_entry(entry, np.ones(32, dtype=int))
        _, one_chain = mat.pooled_lookup(range(4))
        _, two_chains = mat.pooled_lookup(list(range(4)) + list(range(8, 12)))
        foms = mat.config.foms
        # Two equal-length chains run concurrently: only the tree is added.
        assert two_chains.latency_ns == pytest.approx(
            one_chain.latency_ns + foms.intra_mat_add.latency_ns, abs=1.0
        )
        # ... but both chains' energy is charged.
        assert two_chains.energy_pj > 1.8 * one_chain.energy_pj

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            Mat(_small_config()).pooled_lookup([])


class TestSearch:
    def test_search_across_cmas_priority_order(self):
        config = ArchitectureConfig(cma_rows=8, cmas_per_mat=4)
        mat = Mat(config)
        signature = np.zeros(256, dtype=np.uint8)
        for entry in (3, 9, 25):
            mat.write_signature_entry(entry, signature)
        matches, _ = mat.search(signature, threshold=0)
        assert matches == [3, 9, 25]  # CMA-major then row order

    def test_search_latency_is_one_array_search(self):
        """All CMAs search in parallel -- O(1) array time."""
        config = ArchitectureConfig(cma_rows=8, cmas_per_mat=4)
        mat = Mat(config)
        query = np.zeros(256, dtype=np.uint8)
        other = np.ones(256, dtype=np.uint8)
        for entry in (0, 10, 20, 30):
            mat.write_signature_entry(entry, other)
        matches, cost = mat.search(query, threshold=0)
        assert matches == []
        foms = config.foms
        # One parallel search + mode switches; no per-CMA serialisation.
        assert cost.latency_ns < 2.0 * (foms.cma_search.latency_ns + 0.5)

    def test_search_energy_scales_with_cma_count(self):
        config = ArchitectureConfig(cma_rows=8, cmas_per_mat=4)
        narrow = Mat(config, active_cmas=1)
        wide = Mat(config, active_cmas=4)
        query = np.zeros(256, dtype=np.uint8)
        narrow.write_signature_entry(0, query)
        wide.write_signature_entry(0, query)
        _, narrow_cost = narrow.search(query, threshold=300)
        _, wide_cost = wide.search(query, threshold=300)
        assert wide_cost.energy_pj > narrow_cost.energy_pj
