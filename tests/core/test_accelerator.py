"""Tests for the iMARS analytic cost model."""

import pytest

from repro.core.accelerator import IMARSCostModel
from repro.core.calibration import ZERO_PERIPHERAL
from repro.core.mapping import FILTERING, RANKING, WorkloadMapping
from repro.data.criteo import criteo_table_specs
from repro.data.movielens import movielens_table_specs
from repro.energy.accounting import Ledger


def _ml_model(**kwargs):
    return IMARSCostModel(WorkloadMapping(movielens_table_specs()), **kwargs)


def _ck_model(**kwargs):
    return IMARSCostModel(WorkloadMapping(criteo_table_specs()), **kwargs)


class TestETOperation:
    def test_movielens_filtering_latency_near_published(self):
        cost = _ml_model().et_operation(FILTERING)
        assert cost.latency_us == pytest.approx(0.21, rel=0.10)

    def test_criteo_latency_near_published(self):
        cost = _ck_model().et_operation(RANKING)
        assert cost.latency_us == pytest.approx(0.24, rel=0.05)

    def test_criteo_slower_than_movielens(self):
        """More banks -> longer RSC serialisation (the Table III ordering)."""
        ml = _ml_model().et_operation(FILTERING)
        ck = _ck_model().et_operation(RANKING)
        assert ck.latency_ns > ml.latency_ns

    def test_latency_independent_of_peripheral(self):
        fitted = _ml_model().et_operation(FILTERING)
        dynamic = _ml_model(peripheral=ZERO_PERIPHERAL).et_operation(FILTERING)
        assert fitted.latency_ns == pytest.approx(dynamic.latency_ns)
        assert fitted.energy_pj > dynamic.energy_pj

    def test_pooling_factor_drives_latency(self):
        shallow = _ml_model(worst_case_pooling=2).et_operation(FILTERING)
        deep = _ml_model(worst_case_pooling=20).et_operation(FILTERING)
        assert deep.latency_ns > shallow.latency_ns

    def test_ledger_records_category(self):
        ledger = Ledger()
        _ml_model().et_operation(FILTERING, ledger=ledger)
        assert "ET Lookup" in ledger.categories()

    def test_invalid_pooling_rejected(self):
        with pytest.raises(ValueError):
            IMARSCostModel(
                WorkloadMapping(movielens_table_specs()), worst_case_pooling=0
            )


class TestNNSOperation:
    def test_search_is_one_array_latency(self):
        model = _ml_model()
        cost = model.nns_operation()
        assert cost.latency_ns == pytest.approx(0.2)

    def test_search_energy_scales_with_signature_cmas(self):
        model = _ml_model()
        cost = model.nns_operation()
        signature_cmas = model.mapping.itet().signature_cmas
        foms = model.config.foms
        assert cost.energy_pj == pytest.approx(
            signature_cmas * foms.cma_search.energy_pj
        )

    def test_drain_adds_per_candidate_cost(self):
        model = _ml_model()
        bare = model.nns_operation()
        drained = model.nns_operation(include_drain=True, num_candidates=50)
        assert drained.latency_ns > bare.latency_ns
        assert drained.energy_pj > bare.energy_pj

    def test_nns_without_itet_rejected(self):
        with pytest.raises(ValueError):
            _ck_model().nns_operation()


class TestDNNStack:
    def test_single_tile_layers(self):
        model = _ml_model()
        cost = model.dnn_stack_cost(192, "128-64-32")
        matmul = model.config.foms.crossbar_matmul
        assert cost.latency_ns >= 3 * matmul.latency_ns

    def test_row_tiles_add_latency(self):
        model = _ml_model()
        small = model.dnn_stack_cost(256, "64")
        tall = model.dnn_stack_cost(512, "64")
        assert tall.latency_ns > small.latency_ns

    def test_lsh_projection_single_row_tile(self):
        model = _ml_model()
        cost = model.lsh_projection_cost()
        matmul = model.config.foms.crossbar_matmul
        assert cost.latency_ns == pytest.approx(matmul.latency_ns)
        assert cost.energy_pj == pytest.approx(2 * matmul.energy_pj)  # 2 col tiles


class TestComposedPipelines:
    def test_end_to_end_dominated_by_ranking(self):
        """Sec. IV-C3: per-candidate ranking dominates the query."""
        model = _ml_model()
        ledger = Ledger()
        model.end_to_end(192, "128-64-32", 256, "128-1", num_candidates=72, ledger=ledger)
        fractions = ledger.latency_breakdown()
        assert fractions["Ranking"] > 0.8

    def test_more_candidates_cost_more(self):
        model = _ml_model()
        few = model.end_to_end(192, "128-64-32", 256, "128-1", num_candidates=10)
        many = model.end_to_end(192, "128-64-32", 256, "128-1", num_candidates=100)
        assert many.latency_ns > few.latency_ns
        assert many.energy_pj > few.energy_pj

    def test_filtering_query_includes_all_steps(self):
        model = _ml_model()
        ledger = Ledger()
        model.filtering_query(192, "128-64-32", num_candidates=72, ledger=ledger)
        assert set(ledger.categories()) == {"ET Lookup", "DNN Stack", "NNS"}

    def test_topk_cost_bounded_by_k(self):
        model = _ml_model()
        foms = model.config.foms
        cost = model.topk_operation(100, k=10)
        ceiling = 10 * (foms.cma_search.latency_ns + foms.cma_read.latency_ns)
        assert cost.latency_ns <= ceiling + 1e-9

    def test_invalid_candidate_count_rejected(self):
        model = _ml_model()
        with pytest.raises(ValueError):
            model.filtering_query(192, "128-64-32", num_candidates=0)

    def test_ranking_only_query_matches_criteo_protocol(self):
        model = _ck_model()
        ledger = Ledger()
        cost = model.ranking_only_query(13, "256-128-32", ledger=ledger)
        assert cost.latency_ns > 0
        assert "ET Lookup" in ledger.categories()


class TestCombineModes:
    def test_add_charges_inter_bank_tree(self):
        model = _ml_model(peripheral=ZERO_PERIPHERAL)
        concat = model.et_operation(RANKING, combine="concat")
        added = model.et_operation(RANKING, combine="add")
        foms = model.config.foms
        # 7 tables through a fan-in-4 tree: 2 rounds.
        expected_extra = 2 * foms.intra_bank_add.latency_ns
        assert added.latency_ns - concat.latency_ns == pytest.approx(expected_extra)

    def test_concat_is_default(self):
        model = _ml_model(peripheral=ZERO_PERIPHERAL)
        assert model.et_operation(RANKING) == model.et_operation(
            RANKING, combine="concat"
        )

    def test_invalid_combine_rejected(self):
        with pytest.raises(ValueError):
            _ml_model().et_operation(RANKING, combine="multiply")

    def test_calibration_unaffected_by_add_mode(self):
        """Table III anchors use concat; the fit must not drift."""
        model = _ml_model()
        assert model.et_operation(FILTERING).energy_uj == pytest.approx(0.40, rel=0.01)
