"""Tests for the near-memory adder trees."""

import numpy as np
import pytest

from repro.core.adder_tree import AdderTree, reduction_rounds
from repro.energy.accounting import Cost


class TestReductionRounds:
    def test_single_input_is_free(self):
        assert reduction_rounds(1, 4) == 0
        assert reduction_rounds(0, 4) == 0

    def test_within_fan_in_one_round(self):
        assert reduction_rounds(2, 4) == 1
        assert reduction_rounds(4, 4) == 1

    def test_paper_k_gt_4_needs_extra_rounds(self):
        """Sec. III-A1: K > 4 mats need multiple intra-bank rounds."""
        assert reduction_rounds(5, 4) == 2
        assert reduction_rounds(7, 4) == 2
        assert reduction_rounds(8, 4) == 3
        assert reduction_rounds(10, 4) == 3

    def test_binary_tree_rounds(self):
        assert reduction_rounds(8, 2) == 7  # each round retires one input

    def test_invalid_fan_in_rejected(self):
        with pytest.raises(ValueError):
            reduction_rounds(4, 1)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            reduction_rounds(-1, 4)


class TestAdderTree:
    def test_exact_sum(self):
        tree = AdderTree(fan_in=4, add_cost=Cost(1.0, 1.0))
        words = [np.array([1, -2, 300]), np.array([4, 5, -6]), np.array([7, 8, 9])]
        total, _ = tree.reduce(words)
        np.testing.assert_array_equal(total, [12, 11, 303])

    def test_single_input_costs_nothing(self):
        tree = AdderTree(fan_in=4, add_cost=Cost(10.0, 10.0))
        total, cost = tree.reduce([np.array([5, 5])])
        assert cost.energy_pj == 0.0
        np.testing.assert_array_equal(total, [5, 5])

    def test_cost_matches_round_count(self):
        tree = AdderTree(fan_in=4, add_cost=Cost(956.0, 44.2))
        _, cost = tree.reduce([np.ones(2)] * 10)
        assert cost.latency_ns == pytest.approx(3 * 44.2)
        assert cost.energy_pj == pytest.approx(3 * 956.0)

    def test_cost_for_agrees_with_reduce(self):
        tree = AdderTree(fan_in=4, add_cost=Cost(2.0, 3.0))
        for count in (1, 2, 4, 5, 9, 17):
            _, measured = tree.reduce([np.zeros(1)] * count)
            assert measured == tree.cost_for(count)

    def test_mismatched_shapes_rejected(self):
        tree = AdderTree(fan_in=2, add_cost=Cost(1.0, 1.0))
        with pytest.raises(ValueError):
            tree.reduce([np.zeros(2), np.zeros(3)])

    def test_empty_input_rejected(self):
        tree = AdderTree(fan_in=2, add_cost=Cost(1.0, 1.0))
        with pytest.raises(ValueError):
            tree.reduce([])

    def test_sum_order_independent(self):
        rng = np.random.default_rng(0)
        words = [rng.integers(-100, 100, size=4) for _ in range(11)]
        tree = AdderTree(fan_in=4, add_cost=Cost(1.0, 1.0))
        total, _ = tree.reduce(words)
        np.testing.assert_array_equal(total, np.sum(words, axis=0))
