"""Tests for the item buffer and the CTR buffer."""

import pytest

from repro.circuits.foms import TABLE_II
from repro.core.buffers import CTRBuffer, ItemBuffer


class TestItemBuffer:
    def test_store_and_drain(self):
        buffer = ItemBuffer(capacity=8)
        buffer.store([4, 9, 1])
        items, _ = buffer.drain()
        assert items == [4, 9, 1]

    def test_capacity_truncates(self):
        buffer = ItemBuffer(capacity=2)
        buffer.store([1, 2, 3, 4])
        assert len(buffer) == 2
        assert buffer.peek() == [1, 2]

    def test_store_cost_per_entry(self):
        buffer = ItemBuffer(capacity=16)
        cost = buffer.store([1, 2, 3])
        assert cost.energy_pj == pytest.approx(3 * TABLE_II.cma_write.energy_pj)

    def test_restore_replaces(self):
        buffer = ItemBuffer(capacity=8)
        buffer.store([1, 2])
        buffer.store([7])
        assert buffer.peek() == [7]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ItemBuffer(capacity=0)


class TestCTRBuffer:
    def test_topk_returns_best_ctrs(self):
        buffer = CTRBuffer(capacity=16)
        scores = {10: 0.2, 11: 0.9, 12: 0.5, 13: 0.7}
        for item, ctr in scores.items():
            buffer.store(item, ctr)
        winners, _ = buffer.top_k(2)
        assert winners == [11, 13]

    def test_topk_all_when_k_exceeds_entries(self):
        buffer = CTRBuffer()
        buffer.store(1, 0.5)
        winners, _ = buffer.top_k(10)
        assert winners == [1]

    def test_topk_of_empty_buffer(self):
        winners, cost = CTRBuffer().top_k(3)
        assert winners == []
        assert cost.energy_pj == 0.0

    def test_tie_break_by_insertion_order(self):
        """Equal quantised scores drain in priority (insertion) order."""
        buffer = CTRBuffer()
        buffer.store(5, 0.5)
        buffer.store(9, 0.5)
        winners, _ = buffer.top_k(2)
        assert winners == [5, 9]

    def test_threshold_sweep_cost_counts_searches(self):
        buffer = CTRBuffer()
        for item, ctr in enumerate((0.1, 0.4, 0.9)):
            buffer.store(item, ctr)
        _, cost = buffer.top_k(2)
        # Two distinct quantised score levels stepped through.
        assert cost.energy_pj == pytest.approx(2 * TABLE_II.cma_search.energy_pj)

    def test_quantisation_affects_ordering_granularity(self):
        """Scores closer than one fixed-point step become ties."""
        buffer = CTRBuffer(score_bits=4)  # 15 levels
        buffer.store(0, 0.50)
        buffer.store(1, 0.52)  # same 4-bit level as 0.50
        winners, _ = buffer.top_k(1)
        assert winners == [0]  # insertion order wins the tie

    def test_ctr_range_enforced(self):
        with pytest.raises(ValueError):
            CTRBuffer().store(0, 1.5)

    def test_capacity_overflow_rejected(self):
        buffer = CTRBuffer(capacity=1)
        buffer.store(0, 0.5)
        with pytest.raises(RuntimeError):
            buffer.store(1, 0.5)

    def test_clear(self):
        buffer = CTRBuffer()
        buffer.store(0, 0.5)
        buffer.clear()
        assert len(buffer) == 0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            CTRBuffer().top_k(0)


class TestItemBufferEdgeCases:
    def test_empty_store_is_free(self):
        buffer = ItemBuffer(capacity=4)
        cost = buffer.store([])
        assert len(buffer) == 0
        assert cost.energy_pj == 0.0
        assert cost.latency_ns == 0.0

    def test_empty_drain_is_free(self):
        buffer = ItemBuffer(capacity=4)
        items, cost = buffer.drain()
        assert items == []
        assert cost.energy_pj == 0.0

    def test_capacity_one(self):
        buffer = ItemBuffer(capacity=1)
        cost = buffer.store([7, 8, 9])
        assert buffer.peek() == [7]
        assert cost == TABLE_II.cma_write
        items, _ = buffer.drain()
        assert items == [7]


class TestCTRBufferEdgeCases:
    def test_topk_empty_input_is_free(self):
        buffer = CTRBuffer(capacity=4)
        winners, cost = buffer.top_k(3)
        assert winners == []
        assert cost.energy_pj == 0.0
        assert cost.latency_ns == 0.0

    def test_tie_exactly_at_topk_boundary(self):
        """A tie straddling the k-th slot resolves by insertion order."""
        buffer = CTRBuffer(capacity=8)
        for item, ctr in [(1, 0.9), (2, 0.5), (3, 0.5), (4, 0.5), (5, 0.1)]:
            buffer.store(item, ctr)
        winners, _ = buffer.top_k(2)
        # Items 2, 3, 4 tie at the boundary; the earliest-stored wins slot 2.
        assert winners == [1, 2]
        winners, _ = buffer.top_k(3)
        assert winners == [1, 2, 3]

    def test_tied_scores_need_one_extra_threshold_step(self):
        buffer = CTRBuffer(capacity=8)
        for item, ctr in [(1, 0.9), (2, 0.5), (3, 0.5)]:
            buffer.store(item, ctr)
        _, cost_boundary = buffer.top_k(2)
        # The sweep admits {0.9} then {0.9, 0.5, 0.5}: two searches even
        # though the second step over-admits past k.
        assert cost_boundary == TABLE_II.cma_search.repeated(2)

    def test_capacity_one_behaviour(self):
        buffer = CTRBuffer(capacity=1)
        buffer.store(42, 0.7)
        winners, cost = buffer.top_k(1)
        assert winners == [42]
        assert cost == TABLE_II.cma_search
        with pytest.raises(RuntimeError):
            buffer.store(43, 0.1)

    def test_all_equal_scores_single_search(self):
        buffer = CTRBuffer(capacity=4)
        for item in range(4):
            buffer.store(item, 0.25)
        winners, cost = buffer.top_k(2)
        assert winners == [0, 1]  # insertion order among full ties
        assert cost == TABLE_II.cma_search
