"""Tests for the embedding-table -> hardware mapping (Table I logic)."""

import pytest

from repro.core.config import ArchitectureConfig, PAPER_CONFIG
from repro.core.mapping import (
    FILTERING,
    RANKING,
    EmbeddingTableSpec,
    WorkloadMapping,
    next_power_of_two,
)


class TestNextPowerOfTwo:
    def test_values(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(118) == 128  # the paper's worked example

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestSpecValidation:
    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingTableSpec("t", 0)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingTableSpec("t", 10, kind="cache")

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingTableSpec("t", 10, stages=frozenset({"serving"}))

    def test_empty_stages_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingTableSpec("t", 10, stages=frozenset())

    def test_shared_flag(self):
        both = EmbeddingTableSpec("t", 10)
        only = EmbeddingTableSpec("t", 10, stages=frozenset({RANKING}))
        assert both.is_shared
        assert not only.is_shared


class TestPerTableMapping:
    def test_uiet_cma_count_is_ceil(self):
        mapping = WorkloadMapping([EmbeddingTableSpec("u", 6040)], PAPER_CONFIG)
        table = mapping.tables[0]
        assert table.embedding_cmas == 24  # ceil(6040 / 256)
        assert table.signature_cmas == 0
        assert table.embedding_mats == 1

    def test_tiny_table_one_cma(self):
        mapping = WorkloadMapping([EmbeddingTableSpec("g", 3)], PAPER_CONFIG)
        assert mapping.tables[0].embedding_cmas == 1

    def test_itet_doubles_cmas_for_signatures(self):
        """'2 CMAs to store a single entry': embedding word + signature."""
        mapping = WorkloadMapping(
            [EmbeddingTableSpec("item", 3000, kind="itet")], PAPER_CONFIG
        )
        table = mapping.tables[0]
        assert table.embedding_cmas == 12
        assert table.signature_cmas == 12
        assert table.total_cmas == 24
        # RAM-mode and TCAM-mode CMAs sit in separate mats.
        assert table.embedding_mats == 1
        assert table.signature_mats == 1
        assert table.total_mats == 2

    def test_provisioning_power_of_two(self):
        mapping = WorkloadMapping([EmbeddingTableSpec("c", 30000)], PAPER_CONFIG)
        assert mapping.tables[0].provisioned_cmas == 128

    def test_table_exceeding_bank_rejected(self):
        # > 128 provisioned CMAs cannot fit one bank.
        with pytest.raises(ValueError):
            WorkloadMapping([EmbeddingTableSpec("huge", 40000)], PAPER_CONFIG)


class TestWorkloadMapping:
    def test_one_bank_per_feature(self):
        specs = [EmbeddingTableSpec(f"f{i}", 100) for i in range(5)]
        mapping = WorkloadMapping(specs, PAPER_CONFIG)
        assert mapping.active_banks == 5
        assert [table.bank_index for table in mapping.tables] == list(range(5))

    def test_too_many_features_rejected(self):
        specs = [EmbeddingTableSpec(f"f{i}", 10) for i in range(33)]
        with pytest.raises(ValueError):
            WorkloadMapping(specs, PAPER_CONFIG)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMapping(
                [EmbeddingTableSpec("a", 10), EmbeddingTableSpec("a", 20)],
                PAPER_CONFIG,
            )

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMapping([], PAPER_CONFIG)

    def test_stage_filtering(self):
        specs = [
            EmbeddingTableSpec("both", 10),
            EmbeddingTableSpec("rank_only", 10, stages=frozenset({RANKING})),
        ]
        mapping = WorkloadMapping(specs, PAPER_CONFIG)
        assert len(mapping.tables_for_stage(FILTERING)) == 1
        assert len(mapping.tables_for_stage(RANKING)) == 2

    def test_unknown_stage_rejected(self):
        mapping = WorkloadMapping([EmbeddingTableSpec("a", 10)], PAPER_CONFIG)
        with pytest.raises(ValueError):
            mapping.tables_for_stage("serving")

    def test_itet_accessor(self):
        specs = [
            EmbeddingTableSpec("u", 10),
            EmbeddingTableSpec("item", 100, kind="itet"),
        ]
        mapping = WorkloadMapping(specs, PAPER_CONFIG)
        assert mapping.has_itet()
        assert mapping.itet().spec.name == "item"

    def test_missing_itet_raises(self):
        mapping = WorkloadMapping([EmbeddingTableSpec("u", 10)], PAPER_CONFIG)
        assert not mapping.has_itet()
        with pytest.raises(ValueError):
            mapping.itet()

    def test_custom_architecture_changes_counts(self):
        config = ArchitectureConfig(cma_rows=128, cmas_per_mat=16, mats_per_bank=4)
        mapping = WorkloadMapping([EmbeddingTableSpec("u", 6040)], config)
        assert mapping.tables[0].embedding_cmas == 48  # ceil(6040/128)
        assert mapping.tables[0].embedding_mats == 3
