"""Tests for the RSC bus and IBC network models."""

import pytest

from repro.core.interconnect import IBCNetwork, RSCBus


class TestRSCBus:
    def test_single_word_one_beat(self):
        bus = RSCBus(width_bits=256, beat_ns=0.7)
        assert bus.transfer(256).latency_ns == pytest.approx(0.7)

    def test_serialisation_beats(self):
        bus = RSCBus(width_bits=256, beat_ns=0.7)
        assert bus.transfer(1024).latency_ns == pytest.approx(4 * 0.7)

    def test_zero_payload_free(self):
        bus = RSCBus()
        cost = bus.transfer(0)
        assert cost.latency_ns == 0.0
        assert cost.energy_pj == 0.0

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            RSCBus().transfer(-1)

    def test_gather_serialises_sources(self):
        """The shared-bus term behind Criteo's slower ET op (Table III)."""
        bus = RSCBus(width_bits=256, beat_ns=0.7)
        movielens = bus.gather(7, 256)
        criteo = bus.gather(26, 256)
        assert criteo.latency_ns == pytest.approx(26.0 / 7.0 * movielens.latency_ns)

    def test_energy_scales_with_bits_and_length(self):
        short = RSCBus(length_mm=1.0).transfer(256)
        long = RSCBus(length_mm=4.0).transfer(256)
        assert long.energy_pj == pytest.approx(4.0 * short.energy_pj)


class TestIBCNetwork:
    def test_four_words_per_shot(self):
        ibc = IBCNetwork(payload_bits=1024, word_bits=256)
        assert ibc.words_per_shot == 4

    def test_shot_counts(self):
        ibc = IBCNetwork(payload_bits=1024, word_bits=256)
        assert ibc.shots_for(0) == 0
        assert ibc.shots_for(4) == 1
        assert ibc.shots_for(5) == 2
        assert ibc.shots_for(104) == 26

    def test_deliver_zero_words_free(self):
        assert IBCNetwork().deliver(0).energy_pj == 0.0

    def test_deliver_latency_scales_with_shots(self):
        ibc = IBCNetwork(beat_ns=0.5)
        assert ibc.deliver(8).latency_ns == pytest.approx(2 * 0.5)

    def test_negative_words_rejected(self):
        with pytest.raises(ValueError):
            IBCNetwork().shots_for(-1)
