"""Tests for the fitted peripheral-energy model."""

import pytest

from repro.core.accelerator import IMARSCostModel
from repro.core.calibration import (
    PeripheralModel,
    ZERO_PERIPHERAL,
    default_peripheral,
    fit_peripheral_model,
)
from repro.core.mapping import FILTERING, RANKING, WorkloadMapping
from repro.data.criteo import criteo_table_specs
from repro.data.movielens import movielens_table_specs
from repro.energy.accounting import Cost


class TestPeripheralModel:
    def test_zero_model_charges_nothing(self):
        assert ZERO_PERIPHERAL.energy_pj(100, 10, 1000.0) == 0.0

    def test_energy_linear_in_arrays_and_time(self):
        model = PeripheralModel(pj_per_cma_ns=2.0, pj_per_bank_ns=10.0)
        assert model.energy_pj(5, 2, 100.0) == pytest.approx((10.0 + 20.0) * 100.0)

    def test_charge_preserves_latency(self):
        model = PeripheralModel(pj_per_cma_ns=1.0, pj_per_bank_ns=0.0)
        charged = model.charge(Cost(10.0, 50.0), active_cmas=4, active_banks=1)
        assert charged.latency_ns == 50.0
        assert charged.energy_pj == pytest.approx(10.0 + 4 * 50.0)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            PeripheralModel(pj_per_cma_ns=-1.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ZERO_PERIPHERAL.energy_pj(-1, 0, 1.0)


class TestFit:
    def test_anchors_reproduced_exactly(self):
        """The fitted model lands on both Table III anchor energies."""
        peripheral = fit_peripheral_model()
        ml = IMARSCostModel(
            WorkloadMapping(movielens_table_specs()), peripheral=peripheral
        )
        ck = IMARSCostModel(
            WorkloadMapping(criteo_table_specs()), peripheral=peripheral
        )
        assert ml.et_operation(FILTERING).energy_uj == pytest.approx(0.40, rel=0.01)
        assert ck.et_operation(RANKING).energy_uj == pytest.approx(6.88, rel=0.01)

    def test_held_out_validation_within_five_percent(self):
        """MovieLens ranking (0.46 uJ) is NOT an anchor -- prediction check."""
        peripheral = fit_peripheral_model()
        ml = IMARSCostModel(
            WorkloadMapping(movielens_table_specs()), peripheral=peripheral
        )
        assert ml.et_operation(RANKING).energy_uj == pytest.approx(0.46, rel=0.05)

    def test_coefficients_positive(self):
        peripheral = fit_peripheral_model()
        assert peripheral.pj_per_cma_ns > 0.0
        assert peripheral.pj_per_bank_ns > 0.0

    def test_default_peripheral_cached(self):
        assert default_peripheral() is default_peripheral()

    def test_unreachable_targets_rejected(self):
        with pytest.raises(RuntimeError):
            fit_peripheral_model(target_a_uj=1e-9, target_b_uj=1e-9)
