"""Tests for the standby-power model."""

import pytest

from repro.core.config import PAPER_CONFIG
from repro.core.power import StandbyPowerModel, standby_comparison


class TestStandbyModel:
    def test_fefet_leaks_far_less_than_sram(self):
        model = StandbyPowerModel()
        assert model.retention_advantage() > 100.0

    def test_energy_linear_in_time_and_arrays(self):
        model = StandbyPowerModel()
        one = model.standby_energy(1, 1.0, "sram")
        many = model.standby_energy(10, 2.0, "sram")
        assert many.energy_pj == pytest.approx(20.0 * one.energy_pj)

    def test_energy_unit_sanity(self):
        """1800 uW for 1 s is 1800 uJ."""
        model = StandbyPowerModel()
        cost = model.standby_energy(1, 1.0, "sram")
        assert cost.energy_uj == pytest.approx(1800.0)

    def test_unknown_technology_rejected(self):
        with pytest.raises(ValueError):
            StandbyPowerModel().standby_energy(1, 1.0, "dram")

    def test_negative_args_rejected(self):
        model = StandbyPowerModel()
        with pytest.raises(ValueError):
            model.standby_energy(-1, 1.0)
        with pytest.raises(ValueError):
            model.standby_energy(1, -1.0)

    def test_invalid_constants_rejected(self):
        with pytest.raises(ValueError):
            StandbyPowerModel(sram_cma_leakage_uw=0.0)

    def test_zero_fefet_leakage_infinite_advantage(self):
        model = StandbyPowerModel(fefet_cma_leakage_uw=0.0)
        assert model.retention_advantage() == float("inf")


class TestFabricComparison:
    def test_comparison_structure(self):
        result = standby_comparison(PAPER_CONFIG, idle_seconds=0.5)
        assert result["num_cmas"] == PAPER_CONFIG.total_cmas
        assert result["sram_energy_uj"] > result["fefet_energy_uj"]
        assert result["advantage"] == pytest.approx(
            result["sram_energy_uj"] / result["fefet_energy_uj"]
        )
