"""Tests for the end-to-end engines (GPU reference vs iMARS)."""

import numpy as np
import pytest

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import GPUReferenceEngine, IMARSEngine
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)


@pytest.fixture(scope="module")
def trained_setup():
    dataset = MovieLensDataset(scale=0.05, seed=0)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=0,
    )
    filtering = YouTubeDNNFiltering(config)
    histories, targets = dataset.train_examples()
    filtering.train_retrieval(histories, dataset.demographics, targets, epochs=2, seed=0)
    ranking = YouTubeDNNRanking(config)
    mapping = WorkloadMapping(movielens_table_specs())
    return dataset, filtering, ranking, mapping


def _query(dataset, user=0):
    return (
        dataset.histories[user],
        dataset.demographics[user],
        dataset.ranking_context[user],
    )


class TestGPUEngine:
    def test_returns_topk_items(self, trained_setup):
        dataset, filtering, ranking, _ = trained_setup
        engine = GPUReferenceEngine(filtering, ranking, num_candidates=15, top_k=5)
        result = engine.recommend(*_query(dataset))
        assert len(result.items) == 5
        assert result.candidate_count == 15
        assert all(0 <= item < dataset.num_items for item in result.items)

    def test_ledger_covers_all_stages(self, trained_setup):
        dataset, filtering, ranking, _ = trained_setup
        engine = GPUReferenceEngine(filtering, ranking, num_candidates=15, top_k=5)
        result = engine.recommend(*_query(dataset))
        assert {"ET Lookup", "DNN Stack", "NNS", "Ranking", "TopK"} <= set(
            result.ledger.categories()
        )

    def test_qps_consistent_with_latency(self, trained_setup):
        dataset, filtering, ranking, _ = trained_setup
        engine = GPUReferenceEngine(filtering, ranking, num_candidates=15, top_k=5)
        result = engine.recommend(*_query(dataset))
        assert result.qps == pytest.approx(1e9 / result.cost.latency_ns)

    def test_invalid_params_rejected(self, trained_setup):
        _, filtering, ranking, _ = trained_setup
        with pytest.raises(ValueError):
            GPUReferenceEngine(filtering, ranking, num_candidates=0)


class TestIMARSEngine:
    def test_returns_topk_items(self, trained_setup):
        dataset, filtering, ranking, mapping = trained_setup
        engine = IMARSEngine(filtering, ranking, mapping, num_candidates=15, top_k=5)
        result = engine.recommend(*_query(dataset))
        assert len(result.items) == 5
        assert 1 <= result.candidate_count <= 15

    def test_radius_calibrated_positive(self, trained_setup):
        _, filtering, ranking, mapping = trained_setup
        engine = IMARSEngine(filtering, ranking, mapping, num_candidates=15)
        assert 0 < engine.radius <= 256

    def test_imars_beats_gpu_on_latency_and_energy(self, trained_setup):
        dataset, filtering, ranking, mapping = trained_setup
        gpu = GPUReferenceEngine(filtering, ranking, num_candidates=15, top_k=5)
        imars = IMARSEngine(filtering, ranking, mapping, num_candidates=15, top_k=5)
        query = _query(dataset)
        gpu_result = gpu.recommend(*query)
        imars_result = imars.recommend(*query)
        assert imars_result.cost.speedup_over(gpu_result.cost) > 5.0
        assert imars_result.cost.energy_reduction_over(gpu_result.cost) > 50.0

    def test_functional_agreement_with_gpu(self, trained_setup):
        """The IMC substitutions keep most recommendations identical."""
        dataset, filtering, ranking, mapping = trained_setup
        gpu = GPUReferenceEngine(filtering, ranking, num_candidates=15, top_k=5)
        imars = IMARSEngine(filtering, ranking, mapping, num_candidates=15, top_k=5)
        overlaps = []
        for user in range(8):
            query = _query(dataset, user)
            gpu_items = set(gpu.recommend(*query).items)
            imars_items = set(imars.recommend(*query).items)
            overlaps.append(len(gpu_items & imars_items) / 5.0)
        assert float(np.mean(overlaps)) >= 0.5

    def test_item_table_is_quantised(self, trained_setup):
        _, filtering, ranking, mapping = trained_setup
        engine = IMARSEngine(filtering, ranking, mapping, num_candidates=15)
        original = filtering.item_table()
        assert not np.array_equal(engine.item_table, original)  # int8 grid
        assert np.abs(engine.item_table - original).max() < 0.05

    def test_empty_radius_falls_back_to_nearest(self, trained_setup):
        dataset, filtering, ranking, mapping = trained_setup
        engine = IMARSEngine(filtering, ranking, mapping, num_candidates=15, top_k=3)
        engine.radius = 0  # force near-empty candidate sets
        result = engine.recommend(*_query(dataset))
        assert result.candidate_count >= 1
        assert len(result.items) >= 1


class TestAnalogServing:
    def test_analog_engine_agrees_with_digital(self, trained_setup):
        """Analog crossbar scoring (8-bit converters) barely moves top-k."""
        dataset, filtering, ranking, mapping = trained_setup
        digital = IMARSEngine(filtering, ranking, mapping, num_candidates=15, top_k=5)
        analog = IMARSEngine(
            filtering, ranking, mapping, num_candidates=15, top_k=5, analog_dnn=True
        )
        overlaps = []
        for user in range(6):
            query = _query(dataset, user)
            digital_items = set(digital.recommend(*query).items)
            analog_items = set(analog.recommend(*query).items)
            overlaps.append(len(digital_items & analog_items) / 5.0)
        assert float(np.mean(overlaps)) >= 0.6

    def test_analog_scores_in_unit_interval(self, trained_setup):
        dataset, filtering, ranking, mapping = trained_setup
        engine = IMARSEngine(
            filtering, ranking, mapping, num_candidates=10, top_k=3, analog_dnn=True
        )
        result = engine.recommend(*_query(dataset))
        assert len(result.items) == 3
