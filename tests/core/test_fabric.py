"""Tests for the executable fabric and the flow trace."""

import numpy as np
import pytest

from repro.core.config import ArchitectureConfig
from repro.core.fabric import FlowTrace, IMARSFabric
from repro.core.mapping import FILTERING, RANKING, EmbeddingTableSpec, WorkloadMapping


def _toy_fabric():
    config = ArchitectureConfig()
    specs = [
        EmbeddingTableSpec("user", 32),
        EmbeddingTableSpec("item", 64, kind="itet"),
    ]
    mapping = WorkloadMapping(specs, config)
    return IMARSFabric(mapping, config), config


class TestFlowTrace:
    def test_empty_trace_valid(self):
        assert FlowTrace().follows_published_order()

    def test_in_order_steps_pass(self):
        trace = FlowTrace()
        for label in ("1a", "1b*", "1b", "1c", "1d"):
            trace.mark(label)
        assert trace.follows_published_order()

    def test_out_of_order_steps_fail(self):
        trace = FlowTrace()
        trace.mark("2e")
        trace.mark("1a")
        assert not trace.follows_published_order()

    def test_repeats_allowed(self):
        """Per-candidate 2a..2d repetitions keep first-occurrence order."""
        trace = FlowTrace()
        for label in ("1a", "2a", "2b", "2a", "2b", "2e"):
            trace.mark(label)
        assert trace.first_occurrences() == ["1a", "2a", "2b", "2e"]
        assert trace.follows_published_order()


class TestFabricStorage:
    def test_load_and_lookup(self):
        fabric, _ = _toy_fabric()
        table = np.arange(32 * 32).reshape(32, 32) % 100 - 50
        fabric.load_table("user", table)
        pooled, _ = fabric.lookup_pool("user", [3])
        np.testing.assert_array_equal(pooled, table[3])

    def test_unknown_table_rejected(self):
        fabric, _ = _toy_fabric()
        with pytest.raises(KeyError):
            fabric.load_table("nope", np.zeros((4, 32), dtype=int))

    def test_lookup_before_load_rejected(self):
        fabric, _ = _toy_fabric()
        with pytest.raises(KeyError):
            fabric.lookup_pool("user", [0])

    def test_loaded_tables_listing(self):
        fabric, _ = _toy_fabric()
        fabric.load_table("user", np.zeros((4, 32), dtype=int))
        assert fabric.loaded_tables() == ["user"]

    def test_signature_shape_enforced(self):
        fabric, _ = _toy_fabric()
        with pytest.raises(ValueError):
            fabric.load_signatures(np.zeros((4, 100), dtype=np.uint8))


class TestFabricOperations:
    def test_stage_lookup_pools_exactly(self):
        fabric, _ = _toy_fabric()
        rng = np.random.default_rng(0)
        user_table = rng.integers(-20, 20, size=(32, 32))
        item_table = rng.integers(-20, 20, size=(64, 32))
        fabric.load_table("user", user_table)
        fabric.load_table("item", item_table)
        results, _ = fabric.stage_lookup(
            FILTERING, {"user": [5], "item": [1, 2, 3]}
        )
        np.testing.assert_array_equal(results["user"], user_table[5])
        np.testing.assert_array_equal(results["item"], item_table[1:4].sum(axis=0))

    def test_stage_lookup_rejects_inactive_tables(self):
        config = ArchitectureConfig()
        specs = [
            EmbeddingTableSpec("rank_only", 16, stages=frozenset({RANKING})),
            EmbeddingTableSpec("item", 32, kind="itet"),
        ]
        fabric = IMARSFabric(WorkloadMapping(specs, config), config)
        fabric.load_table("rank_only", np.zeros((16, 32), dtype=int))
        with pytest.raises(ValueError):
            fabric.stage_lookup(FILTERING, {"rank_only": [0]})

    def test_nns_search_matches_reference_distances(self):
        fabric, config = _toy_fabric()
        rng = np.random.default_rng(1)
        signatures = rng.integers(0, 2, size=(64, 256)).astype(np.uint8)
        fabric.load_signatures(signatures)
        query = signatures[7]
        candidates, _ = fabric.nns_search(query, threshold=0)
        reference = fabric.verify_signature_distances(query)
        assert candidates == [int(i) for i in np.flatnonzero(reference == 0)]

    def test_nns_before_signatures_rejected(self):
        fabric, _ = _toy_fabric()
        with pytest.raises(RuntimeError):
            fabric.nns_search(np.zeros(256, dtype=np.uint8), 0)

    def test_full_query_trace_order(self):
        fabric, _ = _toy_fabric()
        rng = np.random.default_rng(2)
        fabric.load_table("user", rng.integers(-20, 20, size=(32, 32)))
        fabric.load_table("item", rng.integers(-20, 20, size=(64, 32)))
        signatures = rng.integers(0, 2, size=(64, 256)).astype(np.uint8)
        fabric.load_signatures(signatures)

        fabric.stage_lookup(FILTERING, {"user": [0], "item": [0, 1]})
        fabric.mark_dnn(FILTERING, "dense")
        fabric.mark_dnn(FILTERING, "main")
        candidates, _ = fabric.nns_search(signatures[0], threshold=10)
        for item in candidates[:3]:
            fabric.mark_dnn(RANKING, "start")
            fabric.stage_lookup(RANKING, {"item": [item]})
            fabric.mark_dnn(RANKING, "dense")
            fabric.score_candidate(item, 0.5)
        fabric.select_topk(2)
        assert fabric.trace.follows_published_order()

    def test_score_and_topk(self):
        fabric, _ = _toy_fabric()
        fabric.score_candidate(10, 0.3)
        fabric.score_candidate(11, 0.8)
        winners, _ = fabric.select_topk(1)
        assert winners == [11]

    def test_unknown_dnn_phase_rejected(self):
        fabric, _ = _toy_fabric()
        with pytest.raises(ValueError):
            fabric.mark_dnn(FILTERING, "warmup")


class TestMultiMatSignatures:
    def test_signatures_spanning_multiple_mats(self):
        """> 256 signatures spill into a second CMA/mat and still search."""
        config = ArchitectureConfig()
        specs = [EmbeddingTableSpec("item", 600, kind="itet")]
        fabric = IMARSFabric(WorkloadMapping(specs, config), config)
        rng = np.random.default_rng(5)
        signatures = rng.integers(0, 2, size=(600, 256)).astype(np.uint8)
        fabric.load_signatures(signatures)
        # Probe one signature from each CMA's range.
        for probe in (10, 300, 599):
            hits, _ = fabric.nns_search(signatures[probe], threshold=0)
            assert probe in hits

    def test_search_priority_order_across_cmas(self):
        config = ArchitectureConfig()
        specs = [EmbeddingTableSpec("item", 600, kind="itet")]
        fabric = IMARSFabric(WorkloadMapping(specs, config), config)
        shared = np.zeros((600, 256), dtype=np.uint8)
        fabric.load_signatures(shared)
        hits, _ = fabric.nns_search(np.zeros(256, dtype=np.uint8), threshold=0)
        assert hits == sorted(hits)
        assert len(hits) == 256  # item buffer capacity caps the drain
