"""Tests for the counter-based controller and its fixed schedule."""

import pytest

from repro.core.controller import Controller, ScheduleEntry


class TestMatGroups:
    def test_groups_of_four(self):
        controller = Controller(group_size=4)
        assert controller.mat_groups(10) == [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9)]

    def test_exact_multiple(self):
        controller = Controller(group_size=4)
        assert controller.mat_groups(8) == [(0, 1, 2, 3), (4, 5, 6, 7)]

    def test_zero_mats_empty(self):
        assert Controller().mat_groups(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Controller().mat_groups(-1)


class TestSchedule:
    def test_predetermined_order(self):
        """Banks in order; within a bank, Mat-1, Mat-2, ... in groups of 4
        (the router-free guarantee of Sec. III-A3)."""
        controller = Controller(group_size=4)
        entries = list(controller.schedule([2, 0, 5]))
        assert entries == [
            ScheduleEntry(bank=0, mats=(0, 1)),
            ScheduleEntry(bank=2, mats=(0, 1, 2, 3)),
            ScheduleEntry(bank=2, mats=(4,)),
        ]

    def test_deactivated_banks_skipped(self):
        controller = Controller()
        entries = list(controller.schedule([0, 0, 1]))
        assert all(entry.bank == 2 for entry in entries)

    def test_no_conflicting_mat_assignments(self):
        """Every (bank, mat) pair appears exactly once."""
        controller = Controller(group_size=4)
        seen = set()
        for entry in controller.schedule([3, 7, 4]):
            for mat in entry.mats:
                key = (entry.bank, mat)
                assert key not in seen
                seen.add(key)
        assert len(seen) == 3 + 7 + 4

    def test_negative_mat_count_rejected(self):
        with pytest.raises(ValueError):
            list(Controller().schedule([-1]))


class TestSequencingCost:
    def test_scales_with_entries(self):
        controller = Controller(cycle_energy_pj=0.35, cycle_ns=0.5)
        cost = controller.sequencing_cost(10)
        assert cost.energy_pj == pytest.approx(3.5)
        assert cost.latency_ns == pytest.approx(5.0)

    def test_zero_entries_free(self):
        assert Controller().sequencing_cost(0).energy_pj == 0.0

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            Controller().sequencing_cost(-1)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            Controller(group_size=0)
        with pytest.raises(ValueError):
            Controller(cycle_ns=0.0)
