"""Tests for the crossbar-bank DNN stack."""

import numpy as np
import pytest

from repro.core.config import PAPER_CONFIG
from repro.core.dnn_stack import CrossbarBank, layer_tiles
from repro.nn.mlp import build_mlp


class TestLayerTiles:
    def test_small_layer_one_tile(self):
        assert layer_tiles(128, 64) == (1, 1)

    def test_wide_output_splits_columns(self):
        assert layer_tiles(13, 256) == (1, 2)

    def test_tall_input_splits_rows(self):
        assert layer_tiles(383, 256) == (2, 2)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            layer_tiles(0, 10)


class TestDigitalForward:
    def test_matches_reference_mlp(self):
        rng = np.random.default_rng(0)
        mlp = build_mlp(20, "16-8", rng=rng)
        bank = CrossbarBank(mlp)
        x = rng.normal(size=(3, 20))
        outputs, _ = bank.forward(x)
        np.testing.assert_allclose(outputs, mlp(x))

    def test_cost_counts_layers_and_tiles(self):
        mlp = build_mlp(192, "128-64-32")
        bank = CrossbarBank(mlp)
        matmul = PAPER_CONFIG.foms.crossbar_matmul
        cost = bank.stack_cost()
        # Three single-row-tile layers: 3 x 225 ns plus bus transfers.
        assert cost.latency_ns >= 3 * matmul.latency_ns
        assert cost.latency_ns < 3 * matmul.latency_ns + 20.0

    def test_row_tiles_serialise_latency(self):
        narrow = CrossbarBank(build_mlp(256, "64"))
        tall = CrossbarBank(build_mlp(512, "64"))  # 2 row tiles
        assert tall.stack_cost().latency_ns > narrow.stack_cost().latency_ns

    def test_col_tiles_parallel_latency_but_energy(self):
        narrow = CrossbarBank(build_mlp(64, "128"))
        wide = CrossbarBank(build_mlp(64, "256"))  # 2 col tiles
        assert wide.stack_cost().energy_pj > narrow.stack_cost().energy_pj
        # Column tiles fire together: compute latency is identical; only
        # the wider output's bus serialisation (4 extra beats) differs.
        assert wide.stack_cost().latency_ns == pytest.approx(
            narrow.stack_cost().latency_ns, abs=5.0
        )

    def test_total_tiles(self):
        bank = CrossbarBank(build_mlp(383, "256-64-1"))
        # 383->256: 2x2=4; 256->64: 1x1; 64->1: 1x1.
        assert bank.total_tiles == 6

    def test_forward_cost_equals_stack_cost(self):
        mlp = build_mlp(16, "8-4")
        bank = CrossbarBank(mlp)
        _, forward_cost = bank.forward(np.zeros((1, 16)))
        assert forward_cost == bank.stack_cost()

    def test_mlp_without_linear_rejected(self):
        from repro.nn.layers import ReLU
        from repro.nn.module import Sequential

        with pytest.raises(ValueError):
            CrossbarBank(Sequential([ReLU()]))


class TestAnalogForward:
    def test_analog_close_to_digital(self):
        rng = np.random.default_rng(1)
        mlp = build_mlp(24, "16-8", rng=rng)
        digital = CrossbarBank(mlp)
        analog = CrossbarBank(mlp, analog=True)
        x = rng.normal(size=(2, 24))
        exact, _ = digital.forward(x)
        approx, _ = analog.forward(x)
        # 8-bit converters: small but nonzero deviation.
        assert np.abs(approx - exact).max() < 0.25 * np.abs(exact).max() + 0.1
        assert np.corrcoef(exact.reshape(-1), approx.reshape(-1))[0, 1] > 0.99

    def test_analog_multi_tile_layer(self):
        """Layers wider than one tile still compute correctly."""
        rng = np.random.default_rng(2)
        mlp = build_mlp(300, "200", rng=rng)  # 2 row tiles x 2 col tiles
        digital = CrossbarBank(mlp)
        analog = CrossbarBank(mlp, analog=True)
        x = rng.normal(size=(1, 300))
        exact, _ = digital.forward(x)
        approx, _ = analog.forward(x)
        assert np.corrcoef(exact.reshape(-1), approx.reshape(-1))[0, 1] > 0.99
