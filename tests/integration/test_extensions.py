"""Integration tests for the extension experiments (A3, A4, A5) and CLI."""

import pytest

from repro.cli import EXPERIMENTS, main
from repro.experiments.area_study import run_area_study
from repro.experiments.batch_throughput import (
    gpu_batched_query_us,
    imars_pipelined_qps,
    run_batch_throughput,
)
from repro.experiments.variation_study import run_variation_study


class TestVariationStudy:
    @pytest.fixture(scope="class")
    def report(self):
        return run_variation_study()

    def test_all_claims_hold(self, report):
        assert report.all_within(0.0), report.format()

    def test_hr_monotone_in_noise_at_zero_guard(self, report):
        points = [
            p for p in report.extras["points"] if p.guard_band == 0
        ]
        points.sort(key=lambda p: p.noise_sigma)
        assert points[0].hit_rate >= points[-1].hit_rate

    def test_candidates_grow_with_guard_band(self, report):
        by_guard = {}
        for p in report.extras["points"]:
            if p.noise_sigma == 0.0:
                by_guard[p.guard_band] = p.mean_candidates
        guards = sorted(by_guard)
        assert by_guard[guards[0]] < by_guard[guards[-1]]


class TestBatchThroughput:
    def test_batch_one_anchors_published_protocol(self):
        qps = 1e6 / gpu_batched_query_us(1)
        assert qps == pytest.approx(1311.0, rel=0.10)

    def test_per_query_latency_monotone_in_batch(self):
        latencies = [gpu_batched_query_us(b) for b in (1, 4, 16, 64)]
        assert all(a > b for a, b in zip(latencies, latencies[1:]))

    def test_imars_pipelined_exceeds_serial(self):
        # Pipelining can only help vs the 19.4k q/s serial figure.
        assert imars_pipelined_qps() > 19000.0

    def test_report_claims_hold(self):
        report = run_batch_throughput()
        numeric = [c for c in report.comparisons if c.unit == ""]
        flags = [c for c in numeric if c.published == 1]
        for comparison in flags:
            assert comparison.measured == 1, comparison.format_row()

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            gpu_batched_query_us(0)


class TestAreaStudy:
    def test_all_claims_hold(self):
        report = run_area_study()
        assert report.all_within(0.01), report.format()


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E2"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_lowercase_id(self, capsys):
        assert main(["run", "e3"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "E99"]) == 2

    def test_save_writes_report(self, tmp_path, capsys):
        assert main(["run", "E2", "--save", str(tmp_path)]) == 0
        assert (tmp_path / "E2.txt").exists()

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
            "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9",
            "E-SERVE", "E-AUTOSCALE", "E-HETERO", "E-CHAOS", "E-COST",
            "E-FORECAST",
        }
