"""Tests for the shared experiment report infrastructure."""

import pytest

from repro.experiments.common import ExperimentReport, PaperComparison, relative_error


class TestRelativeError:
    def test_signed(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(9.0, 10.0) == pytest.approx(-0.1)

    def test_zero_published_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestPaperComparison:
    def test_within_tolerance(self):
        comparison = PaperComparison("x", published=100.0, measured=104.0)
        assert comparison.within(0.05)
        assert not comparison.within(0.03)

    def test_format_row_contains_both_values(self):
        row = PaperComparison("speedup", 16.8, 15.5, "x").format_row()
        assert "16.8" in row
        assert "15.5" in row
        assert "speedup" in row


class TestExperimentReport:
    def test_add_and_worst_error(self):
        report = ExperimentReport("T", "title")
        report.add("a", 10.0, 10.0)
        report.add("b", 10.0, 12.0)
        assert report.worst_error() == pytest.approx(0.2)

    def test_empty_report_worst_error_none(self):
        assert ExperimentReport("T", "title").worst_error() is None

    def test_all_within(self):
        report = ExperimentReport("T", "title")
        report.add("a", 10.0, 10.5)
        assert report.all_within(0.10)
        assert not report.all_within(0.01)

    def test_format_includes_notes(self):
        report = ExperimentReport("T", "my experiment")
        report.add("a", 1.0, 1.0)
        report.note("a caveat")
        text = report.format()
        assert "[T] my experiment" in text
        assert "a caveat" in text
