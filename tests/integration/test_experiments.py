"""Integration: every experiment driver reproduces its paper artefact.

These tests assert the *reproduction claims* of EXPERIMENTS.md: exact
matches where the pipeline is deterministic (Table I, Table II registry),
tight tolerances where models are calibrated (Table III), and shape/order
assertions where the substrate is synthetic (accuracy, end-to-end).
"""

import pytest

from repro.experiments import (
    run_accuracy_study,
    run_design_space,
    run_end_to_end,
    run_fig2,
    run_flow_trace,
    run_lsh_sweep,
    run_nns_comparison,
    run_table1,
    run_table2,
    run_table3,
)


class TestTable1:
    def test_all_counts_exact(self):
        report = run_table1()
        assert report.all_within(0.0), report.format()


class TestTable2:
    def test_registry_exact_and_derivation_close(self):
        report = run_table2()
        assert report.all_within(0.03), report.format()


class TestFig2:
    def test_every_share_within_three_points(self):
        report = run_fig2()
        for comparison in report.comparisons:
            assert abs(comparison.measured - comparison.published) < 0.03, (
                comparison.format_row()
            )


class TestTable3:
    def test_gpu_cells_within_two_percent(self):
        report = run_table3()
        gpu_rows = [c for c in report.comparisons if "GPU" in c.name]
        assert gpu_rows
        for comparison in gpu_rows:
            assert comparison.within(0.02), comparison.format_row()

    def test_imars_cells_within_ten_percent(self):
        report = run_table3()
        imars_rows = [c for c in report.comparisons if "iMARS" in c.name]
        assert imars_rows
        for comparison in imars_rows:
            assert comparison.within(0.10), comparison.format_row()

    def test_speedups_and_reductions_within_ten_percent(self):
        report = run_table3()
        factor_rows = [
            c for c in report.comparisons if "speedup" in c.name or "reduction" in c.name
        ]
        for comparison in factor_rows:
            assert comparison.within(0.10), comparison.format_row()


class TestNNSComparison:
    def test_gpu_rows_exact_and_imars_wins_big(self):
        report = run_nns_comparison()
        by_name = {c.name: c for c in report.comparisons}
        assert by_name["GPU cosine latency"].within(0.02)
        assert by_name["GPU LSH latency"].within(0.02)
        # iMARS search wins by >= 4 orders of magnitude on both axes.
        assert by_name["iMARS latency improvement over GPU LSH"].measured > 1e4
        assert by_name["iMARS energy improvement over GPU LSH"].measured > 1e4


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        return run_end_to_end()

    def test_movielens_speedup_shape(self, report):
        comparison = [c for c in report.comparisons if c.name == "MovieLens speedup"][0]
        # Published 16.8x; shape target: an order-10 win within ~25%.
        assert comparison.within(0.25), comparison.format_row()

    def test_movielens_energy_order_of_magnitude(self, report):
        comparison = [
            c for c in report.comparisons if c.name == "MovieLens energy reduction"
        ][0]
        assert 300.0 < comparison.measured < 1500.0, comparison.format_row()

    def test_gpu_qps_near_published(self, report):
        comparison = [c for c in report.comparisons if c.name == "MovieLens GPU QPS"][0]
        assert comparison.within(0.10), comparison.format_row()

    def test_imars_qps_order(self, report):
        comparison = [c for c in report.comparisons if c.name == "MovieLens iMARS QPS"][0]
        assert comparison.within(0.25), comparison.format_row()

    def test_criteo_factors(self, report):
        speed = [c for c in report.comparisons if c.name == "Criteo speedup"][0]
        energy = [c for c in report.comparisons if c.name == "Criteo energy reduction"][0]
        assert speed.within(0.30), speed.format_row()
        assert energy.within(0.15), energy.format_row()

    def test_dnn_stack_improvement(self, report):
        comparison = [
            c for c in report.comparisons if c.name == "DNN stack latency improvement"
        ][0]
        assert comparison.within(0.05), comparison.format_row()

    def test_imars_wins_everywhere(self, report):
        movielens = report.extras["movielens"]
        criteo = report.extras["criteo"]
        assert movielens.speedup > 1.0
        assert movielens.energy_reduction > 1.0
        assert criteo.speedup > 1.0
        assert criteo.energy_reduction > 1.0


class TestAccuracyStudy:
    @pytest.fixture(scope="class")
    def report(self):
        return run_accuracy_study()

    def test_ordering_holds(self, report):
        assert report.extras["result"].ordering_holds()

    def test_hr_in_paper_regime(self, report):
        """All three HRs land in the published neighbourhood (0.15-0.40)."""
        for name, value in report.extras["result"].hit_rates.items():
            assert 0.15 < value < 0.40, (name, value)

    def test_distance_gap_exceeds_quantisation_gap(self, report):
        result = report.extras["result"]
        assert result.distance_gap >= result.quantisation_gap >= 0.0
        assert result.distance_gap > 0.0


class TestStructuralExperiments:
    def test_flow_trace_fully_valid(self):
        report = run_flow_trace()
        assert report.all_within(0.0), report.format()

    def test_design_space_claims_hold(self):
        report = run_design_space()
        assert report.all_within(0.0), report.format()

    def test_lsh_sweep_claims_hold(self):
        report = run_lsh_sweep()
        for comparison in report.comparisons:
            if comparison.unit == "frac":
                assert comparison.within(0.05), comparison.format_row()
            else:
                assert comparison.within(0.0), comparison.format_row()
