"""Integration: full trained-model recommendation pipelines on both engines."""

import numpy as np
import pytest

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import GPUReferenceEngine, IMARSEngine
from repro.data.criteo import CriteoDataset
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.metrics.accuracy import auc_score, hit_rate
from repro.models.dlrm import DLRM, DLRMConfig
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)


@pytest.fixture(scope="module")
def movielens_stack():
    dataset = MovieLensDataset(scale=0.08, seed=1)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=1,
    )
    filtering = YouTubeDNNFiltering(config)
    histories, targets = dataset.train_examples()
    filtering.train_retrieval(histories, dataset.demographics, targets, epochs=4, seed=1)
    ranking = YouTubeDNNRanking(config)
    users, items, clicks = dataset.ranking_clicks(pairs_per_user=2)
    user_vectors = filtering.user_embedding(
        [dataset.histories[u] for u in users], dataset.demographics[users]
    )
    item_vectors = filtering.item_table()[items]
    ranking.train_ctr(
        user_vectors, item_vectors, dataset.ranking_context[users], clicks,
        epochs=3, seed=1,
    )
    return dataset, filtering, ranking


class TestMovieLensEndToEnd:
    def test_trained_retrieval_beats_chance(self, movielens_stack):
        dataset, filtering, _ = movielens_stack
        from repro.nns.exact import cosine_topk

        users = dataset.test_users(limit=150)
        user_vectors = filtering.user_embedding(
            [dataset.histories[u] for u in users], dataset.demographics[users]
        )
        table = filtering.item_table()
        candidates = max(5, dataset.num_items // 30)
        retrieved = [list(cosine_topk(v, table, candidates)[0]) for v in user_vectors]
        hr = hit_rate(retrieved, dataset.test_positives[users])
        chance = candidates / dataset.num_items
        assert hr > 2.0 * chance

    def test_both_engines_agree_and_imars_wins(self, movielens_stack):
        dataset, filtering, ranking = movielens_stack
        mapping = WorkloadMapping(movielens_table_specs())
        gpu = GPUReferenceEngine(filtering, ranking, num_candidates=20, top_k=5)
        imars = IMARSEngine(filtering, ranking, mapping, num_candidates=20, top_k=5)
        speedups, reductions, overlaps = [], [], []
        for user in range(6):
            query = (
                dataset.histories[user],
                dataset.demographics[user],
                dataset.ranking_context[user],
            )
            gpu_result = gpu.recommend(*query)
            imars_result = imars.recommend(*query)
            speedups.append(imars_result.cost.speedup_over(gpu_result.cost))
            reductions.append(
                imars_result.cost.energy_reduction_over(gpu_result.cost)
            )
            overlaps.append(
                len(set(gpu_result.items) & set(imars_result.items)) / 5.0
            )
        assert min(speedups) > 5.0
        assert min(reductions) > 50.0
        assert float(np.mean(overlaps)) >= 0.4


class TestCriteoEndToEnd:
    def test_dlrm_trains_on_synthetic_criteo(self):
        dataset = CriteoDataset(num_samples=4000, rows_per_table=500, seed=2)
        config = DLRMConfig(
            categorical_cardinalities=tuple([dataset.rows_per_table] * 26),
            bottom_spec="32-16-8",
            top_spec="16-1",
            embedding_dim=8,
        )
        model = DLRM(config)
        train, test = dataset.split(test_fraction=0.25)
        model.train_ctr(
            train["dense"], train["sparse"], train["clicks"],
            epochs=4, batch_size=128, lr=0.02,
        )
        scores = model.predict_ctr(test["dense"], test["sparse"])
        assert auc_score(test["clicks"], scores) > 0.65
