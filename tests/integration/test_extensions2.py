"""Integration tests for the A6/A7/A8 extension experiments."""

import pytest

from repro.experiments.analog_accuracy import run_analog_accuracy
from repro.experiments.standby_power import run_standby_power
from repro.experiments.trace_locality import run_trace_locality


class TestAnalogAccuracy:
    @pytest.fixture(scope="class")
    def report(self):
        return run_analog_accuracy()

    def test_all_claims_hold(self, report):
        assert report.all_within(0.0), report.format()

    def test_auc_degrades_with_sigma_at_fixed_adc(self, report):
        points = [p for p in report.extras["points"] if p.adc_bits == 8]
        points.sort(key=lambda p: p.conductance_sigma)
        # Noise can wiggle individual points; the endpoints must order.
        assert points[0].auc > points[-1].auc - 0.002

    def test_all_points_remain_usable(self, report):
        """Even the harshest analog point keeps the model above chance."""
        assert min(p.auc for p in report.extras["points"]) > 0.6


class TestStandbyPower:
    @pytest.fixture(scope="class")
    def report(self):
        return run_standby_power()

    def test_all_claims_hold(self, report):
        assert report.all_within(0.0), report.format()

    def test_totals_monotone_in_load(self, report):
        rows = report.extras["rows"]
        fefet = [row["fefet_total_uj_per_s"] for row in rows]
        assert all(a <= b for a, b in zip(fefet, fefet[1:]))

    def test_advantage_factor(self, report):
        assert report.extras["comparison"]["advantage"] == pytest.approx(200.0)


class TestTraceLocality:
    @pytest.fixture(scope="class")
    def report(self):
        return run_trace_locality()

    def test_all_claims_hold(self, report):
        assert report.all_within(0.0), report.format()

    def test_collision_fraction_reported(self, report):
        assert 0.0 <= report.extras["collision_fraction"] <= 1.0

    def test_access_conservation(self, report):
        """Every pooled lookup lands in exactly one CMA."""
        trace = report.extras["trace"]
        assert trace.cma_accesses["item"].sum() == trace.num_queries * 10
