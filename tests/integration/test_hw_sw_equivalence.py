"""Integration: the bit-level fabric computes what the NumPy reference does.

These tests close the loop between the two evaluation paths of the repo:
the executable CMA fabric (FeFET-cell bit matrices, in-memory adds, TCAM
matches) and the software reference (NumPy sums, Hamming distances).
"""

import numpy as np
import pytest

from repro.core.config import ArchitectureConfig
from repro.core.fabric import IMARSFabric
from repro.core.mapping import FILTERING, EmbeddingTableSpec, WorkloadMapping
from repro.lsh.hyperplane import RandomHyperplaneLSH
from repro.lsh.hamming import pairwise_hamming
from repro.nns.fixed_radius import fixed_radius_candidates
from repro.quant.int8 import quantize_symmetric


@pytest.fixture(scope="module")
def loaded_fabric():
    config = ArchitectureConfig()
    specs = [
        EmbeddingTableSpec("user", 80),
        EmbeddingTableSpec("genre", 12),
        EmbeddingTableSpec("item", 300, kind="itet", pooling_factor=6),
    ]
    mapping = WorkloadMapping(specs, config)
    fabric = IMARSFabric(mapping, config)
    rng = np.random.default_rng(42)
    tables = {
        "user": rng.integers(-100, 100, size=(80, 32)),
        "genre": rng.integers(-100, 100, size=(12, 32)),
        "item": rng.integers(-100, 100, size=(300, 32)),
    }
    for name, table in tables.items():
        fabric.load_table(name, table)
    embeddings = rng.normal(size=(300, 32))
    hasher = RandomHyperplaneLSH(32, 256, seed=1)
    signatures = hasher.signatures(embeddings)
    fabric.load_signatures(signatures)
    return fabric, tables, embeddings, hasher, signatures


class TestPoolingEquivalence:
    def test_random_pools_match_numpy(self, loaded_fabric):
        fabric, tables, *_ = loaded_fabric
        rng = np.random.default_rng(0)
        for _ in range(10):
            indices = rng.choice(300, size=rng.integers(1, 12), replace=False)
            pooled, _ = fabric.lookup_pool("item", list(indices))
            np.testing.assert_array_equal(pooled, tables["item"][indices].sum(axis=0))

    def test_pools_spanning_multiple_cmas(self, loaded_fabric):
        fabric, tables, *_ = loaded_fabric
        indices = [0, 255, 256, 299]  # crosses the first/second CMA boundary
        pooled, _ = fabric.lookup_pool("item", indices)
        np.testing.assert_array_equal(pooled, tables["item"][indices].sum(axis=0))

    def test_repeated_index_counts_twice(self, loaded_fabric):
        fabric, tables, *_ = loaded_fabric
        pooled, _ = fabric.lookup_pool("user", [3, 3])
        np.testing.assert_array_equal(pooled, 2 * tables["user"][3])

    def test_stage_lookup_parallel_banks(self, loaded_fabric):
        fabric, tables, *_ = loaded_fabric
        results, cost = fabric.stage_lookup(
            FILTERING, {"user": [1], "item": [5, 6, 7]}
        )
        np.testing.assert_array_equal(results["user"], tables["user"][1])
        np.testing.assert_array_equal(
            results["item"], tables["item"][5:8].sum(axis=0)
        )
        assert cost.latency_ns > 0


class TestNNSEquivalence:
    def test_fabric_search_equals_software_fixed_radius(self, loaded_fabric):
        fabric, _, embeddings, hasher, signatures = loaded_fabric
        rng = np.random.default_rng(1)
        for _ in range(5):
            query_vec = rng.normal(size=32)
            query_sig = hasher.signature(query_vec)
            distances = pairwise_hamming(query_sig, signatures)
            radius = int(np.sort(distances)[10])
            hardware, _ = fabric.nns_search(query_sig, radius)
            software = fixed_radius_candidates(distances, radius)
            assert hardware == [int(i) for i in software]

    def test_zero_radius_finds_exact_signature(self, loaded_fabric):
        fabric, _, _, _, signatures = loaded_fabric
        hits, _ = fabric.nns_search(signatures[123], 0)
        assert 123 in hits


class TestQuantisedTableEquivalence:
    def test_int8_table_loads_and_pools(self):
        """Quantise a float table, load it, pool in-memory, dequantise."""
        config = ArchitectureConfig()
        specs = [EmbeddingTableSpec("emb", 64)]
        fabric = IMARSFabric(WorkloadMapping(specs, config), config)
        rng = np.random.default_rng(2)
        float_table = rng.normal(0.0, 1.0, size=(64, 32))
        quantised = quantize_symmetric(float_table)  # per-tensor: shared scale
        fabric.load_table("emb", quantised.data.astype(np.int64))
        indices = [4, 9, 13]
        pooled_int, _ = fabric.lookup_pool("emb", indices)
        pooled_float = pooled_int * float(np.asarray(quantised.scale))
        reference = float_table[indices].sum(axis=0)
        step = float(np.asarray(quantised.scale))
        assert np.abs(pooled_float - reference).max() <= len(indices) * step
