"""Tests for the synthetic Criteo workload."""

import numpy as np
import pytest

from repro.core.mapping import RANKING, WorkloadMapping
from repro.data.criteo import (
    CRITEO_NUM_DENSE,
    CRITEO_NUM_SPARSE,
    CRITEO_ROWS_PER_TABLE,
    CriteoDataset,
    criteo_table_specs,
)


class TestTableSpecs:
    def test_26_ranking_only_tables(self):
        specs = criteo_table_specs()
        assert len(specs) == 26
        assert all(spec.stages == frozenset({RANKING}) for spec in specs)
        assert all(spec.kind == "uiet" for spec in specs)

    def test_table_one_counts(self):
        """26 banks, 104 mats, 2860 CMAs (Table I)."""
        mapping = WorkloadMapping(criteo_table_specs())
        assert mapping.table_one_row() == {"banks": 26, "mats": 104, "cmas": 2860}

    def test_per_table_geometry(self):
        """28000 rows -> 110 CMAs -> 4 mats per table."""
        mapping = WorkloadMapping(criteo_table_specs())
        table = mapping.tables[0]
        assert table.embedding_cmas == 110
        assert table.embedding_mats == 4
        assert table.signature_cmas == 0  # no ItET for Criteo

    def test_rows_override(self):
        specs = criteo_table_specs(rows_per_table=1000)
        assert all(spec.num_entries == 1000 for spec in specs)


class TestDataset:
    def test_full_shape_constants(self):
        assert CRITEO_NUM_DENSE == 13
        assert CRITEO_NUM_SPARSE == 26
        assert CRITEO_ROWS_PER_TABLE == 28000

    def test_scaled_shapes(self):
        dataset = CriteoDataset(scale=0.02, seed=0)
        assert dataset.dense.shape == (dataset.num_samples, 13)
        assert dataset.sparse.shape == (dataset.num_samples, 26)
        assert dataset.clicks.shape == (dataset.num_samples,)

    def test_sparse_indices_within_tables(self):
        dataset = CriteoDataset(scale=0.02, seed=1)
        assert dataset.sparse.min() >= 0
        assert dataset.sparse.max() < dataset.rows_per_table

    def test_dense_standardised(self):
        dataset = CriteoDataset(scale=0.05, seed=2)
        assert np.abs(dataset.dense.mean(axis=0)).max() < 0.1
        assert np.abs(dataset.dense.std(axis=0) - 1.0).max() < 0.1

    def test_click_rate_plausible(self):
        dataset = CriteoDataset(scale=0.05, seed=3)
        assert 0.05 < dataset.click_rate < 0.6

    def test_clicks_are_learnable(self):
        """The ground truth is logistic in the features: dense features must
        carry signal (clicked rows differ in mean from unclicked)."""
        dataset = CriteoDataset(scale=0.05, seed=4)
        clicked = dataset.dense[dataset.clicks == 1]
        unclicked = dataset.dense[dataset.clicks == 0]
        separation = np.abs(clicked.mean(axis=0) - unclicked.mean(axis=0)).max()
        assert separation > 0.05

    def test_split_partition(self):
        dataset = CriteoDataset(scale=0.02, seed=5)
        train, test = dataset.split(test_fraction=0.25)
        assert train["dense"].shape[0] + test["dense"].shape[0] == dataset.num_samples
        assert test["clicks"].shape[0] == pytest.approx(0.25 * dataset.num_samples, abs=2)

    def test_invalid_split_fraction_rejected(self):
        with pytest.raises(ValueError):
            CriteoDataset(scale=0.02).split(test_fraction=0.0)

    def test_deterministic_given_seed(self):
        a = CriteoDataset(scale=0.02, seed=7)
        b = CriteoDataset(scale=0.02, seed=7)
        np.testing.assert_array_equal(a.clicks, b.clicks)
        np.testing.assert_array_equal(a.sparse, b.sparse)
