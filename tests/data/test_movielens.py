"""Tests for the synthetic MovieLens workload."""

import numpy as np
import pytest

from repro.core.mapping import FILTERING, RANKING, WorkloadMapping
from repro.data.movielens import (
    MOVIELENS_NUM_ITEMS,
    MOVIELENS_NUM_USERS,
    MovieLensDataset,
    movielens_table_specs,
)


class TestTableSpecs:
    def test_seven_tables(self):
        assert len(movielens_table_specs()) == 7

    def test_table_one_counts(self):
        """The core Table I reproduction: 7 banks, 8 mats, 54 CMAs."""
        mapping = WorkloadMapping(movielens_table_specs())
        assert mapping.table_one_row() == {"banks": 7, "mats": 8, "cmas": 54}

    def test_uiet_share_structure(self):
        mapping = WorkloadMapping(movielens_table_specs())
        filtering = mapping.stage_summary(FILTERING)
        ranking = mapping.stage_summary(RANKING)
        assert filtering["uiet_tables"] == 5
        assert ranking["uiet_tables"] == 6
        assert ranking["shared_uiet_tables"] == 5

    def test_single_itet_with_movielens_size(self):
        mapping = WorkloadMapping(movielens_table_specs())
        itet = mapping.itet()
        assert itet.spec.num_entries == MOVIELENS_NUM_ITEMS

    def test_extreme_cardinalities_match_paper_statement(self):
        """'ETs have a maximum of 6040 entries and a minimum of 3 entries.'"""
        sizes = [spec.num_entries for spec in movielens_table_specs()]
        assert max(sizes) == MOVIELENS_NUM_USERS == 6040
        assert min(sizes) == 3

    def test_history_pooling_parameter(self):
        specs = movielens_table_specs(history_pooling=7)
        itet = [spec for spec in specs if spec.kind == "itet"][0]
        assert itet.pooling_factor == 7


class TestDataset:
    def test_scaled_shapes(self):
        dataset = MovieLensDataset(scale=0.05, seed=0)
        assert dataset.num_users < MOVIELENS_NUM_USERS
        assert len(dataset.histories) == dataset.num_users
        assert dataset.demographics.shape == (dataset.num_users, 5)
        assert dataset.ranking_context.shape == (dataset.num_users, 6)
        assert dataset.test_positives.shape == (dataset.num_users,)

    def test_histories_have_requested_length(self):
        dataset = MovieLensDataset(scale=0.05, history_length=6, seed=0)
        assert all(len(history) == 6 for history in dataset.histories)

    def test_item_indices_in_range(self):
        dataset = MovieLensDataset(scale=0.05, seed=1)
        for history in dataset.histories:
            assert all(0 <= item < dataset.num_items for item in history)
        assert dataset.test_positives.max() < dataset.num_items

    def test_demographic_columns_respect_cardinalities(self):
        dataset = MovieLensDataset(scale=0.05, seed=2)
        cardinalities = [dataset.num_users, 3, 7, 21, 450]
        for column, cardinality in enumerate(cardinalities):
            assert dataset.demographics[:, column].max() < cardinality
            assert dataset.demographics[:, column].min() >= 0

    def test_deterministic_given_seed(self):
        a = MovieLensDataset(scale=0.05, seed=5)
        b = MovieLensDataset(scale=0.05, seed=5)
        np.testing.assert_array_equal(a.test_positives, b.test_positives)
        assert a.histories == b.histories

    def test_train_examples_exclude_test_positive(self):
        dataset = MovieLensDataset(scale=0.05, seed=3, exploration=0.0)
        inputs, targets = dataset.train_examples()
        assert len(inputs) == dataset.num_users
        for history, inp, target in zip(dataset.histories, inputs, targets):
            assert inp == history[:-1]
            assert target == history[-1]

    def test_exploration_bounds(self):
        with pytest.raises(ValueError):
            MovieLensDataset(scale=0.05, exploration=1.0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            MovieLensDataset(scale=0.0)

    def test_ranking_clicks_shapes(self):
        dataset = MovieLensDataset(scale=0.05, seed=4)
        users, items, clicks = dataset.ranking_clicks(pairs_per_user=2)
        assert users.shape == items.shape == clicks.shape
        assert set(np.unique(clicks)).issubset({0, 1})

    def test_test_users_limit(self):
        dataset = MovieLensDataset(scale=0.05, seed=0)
        assert len(dataset.test_users(limit=10)) == 10
