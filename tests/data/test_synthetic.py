"""Tests for the synthetic-data machinery."""

import numpy as np
import pytest

from repro.data.synthetic import (
    LatentFactorModel,
    sample_zipf,
    train_test_split_indices,
    zipf_probabilities,
)


class TestZipf:
    def test_probabilities_normalised(self):
        assert zipf_probabilities(100).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        probabilities = zipf_probabilities(50)
        assert all(a >= b for a, b in zip(probabilities, probabilities[1:]))

    def test_head_dominates(self):
        probabilities = zipf_probabilities(1000, exponent=1.05)
        assert probabilities[:10].sum() > 0.25

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, exponent=0.0)

    def test_sampling_skews_to_head(self):
        samples = sample_zipf(100, 5000, rng=np.random.default_rng(0))
        head_fraction = (samples < 10).mean()
        assert head_fraction > 0.3


class TestLatentFactorModel:
    def test_shapes(self):
        model = LatentFactorModel(num_users=10, num_items=20, latent_dim=4)
        assert model.user_factors.shape == (10, 4)
        assert model.item_factors.shape == (20, 4)
        assert model.popularity_bias.shape == (20,)

    def test_affinities_deterministic(self):
        a = LatentFactorModel(5, 8, seed=3).affinities(2)
        b = LatentFactorModel(5, 8, seed=3).affinities(2)
        np.testing.assert_array_equal(a, b)

    def test_interaction_probabilities_normalised(self):
        model = LatentFactorModel(4, 30)
        assert model.interaction_probabilities(0).sum() == pytest.approx(1.0)

    def test_history_prefers_high_affinity_items(self):
        model = LatentFactorModel(2, 100, temperature=0.3, seed=0)
        history = model.sample_history(0, 200)
        sampled_affinity = model.affinities(0)[history].mean()
        mean_affinity = model.affinities(0).mean()
        assert sampled_affinity > mean_affinity

    def test_click_rate_reflects_affinity(self):
        model = LatentFactorModel(1, 50, seed=1)
        affinities = model.affinities(0)
        best = int(np.argmax(affinities))
        worst = int(np.argmin(affinities))
        best_clicks = sum(model.sample_click(0, best) for _ in range(100))
        worst_clicks = sum(model.sample_click(0, worst) for _ in range(100))
        assert best_clicks > worst_clicks

    def test_out_of_range_user_rejected(self):
        with pytest.raises(IndexError):
            LatentFactorModel(2, 3).affinities(5)

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            LatentFactorModel(2, 3, temperature=0.0)


class TestSplit:
    def test_partition_properties(self):
        train, test = train_test_split_indices(100, 0.2)
        assert len(train) + len(test) == 100
        assert len(set(train) & set(test)) == 0
        assert len(test) == 20

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            train_test_split_indices(10, 1.5)
