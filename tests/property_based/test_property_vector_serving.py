"""Hypothesis pin: vectorised serving is bit-identical to the scalar oracle.

The tentpole contract of the vectorised multi-query serving core, checked
over arbitrary inputs:

* for ANY batch -- any size (including empty), any duplication pattern --
  the vectorised kernels return bit-identical items and CTR scores and
  charge identical per-query ledgers (hence identical total energy) to
  the scalar reference path (``use_vector_kernels=False``);
* the pin holds across router topologies: plain engines, corpus shards,
  replica groups, and heterogeneous GPU-spillover groups;
* it survives arbitrary cache states: a full serving session (scheduler,
  dedup window, result cache, warm-up) records the same items and the
  same ledger totals whichever path serves the misses.

Engines are built once and *shared* across examples on purpose: both
paths observe the same call history, so any state the engines carry
(EWMA telemetry, routing counters) must stay in lockstep too -- a
stronger statement than single-batch equivalence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import GPUSpilloverEngine, IMARSEngine, ServeQuery
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving.cache import ServingCache
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.traffic import Request

_STATE: dict = {}


def _setup():
    """Tiny corpus + one vec/scalar engine pair per topology (built once)."""
    if _STATE:
        return _STATE
    dataset = MovieLensDataset(scale=0.03, seed=0)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=0,
    )
    filtering = YouTubeDNNFiltering(config)
    ranking = YouTubeDNNRanking(config)
    mapping = WorkloadMapping(movielens_table_specs())
    workload = [
        ServeQuery.make(
            dataset.histories[user],
            dataset.demographics[user],
            dataset.ranking_context[user],
        )
        for user in range(dataset.num_users)
    ]

    def engine(vectorised):
        return IMARSEngine(
            filtering, ranking, mapping, seed=0, use_vector_kernels=vectorised
        )

    def gpu(vectorised):
        return GPUSpilloverEngine(
            filtering, ranking, mapping, seed=0, use_vector_kernels=vectorised
        )

    def sharded(vectorised, **topology):
        return make_sharded_engine(
            "imars",
            filtering,
            ranking,
            mapping=mapping,
            seed=0,
            use_vector_kernels=vectorised,
            **topology,
        )

    _STATE["workload"] = workload
    _STATE["pairs"] = {
        "imars": (engine(True), engine(False)),
        "gpu-spillover-engine": (gpu(True), gpu(False)),
        "shards": (
            sharded(True, num_shards=3),
            sharded(False, num_shards=3),
        ),
        "replicas": (
            sharded(True, num_shards=2, replicas_per_shard=2),
            sharded(False, num_shards=2, replicas_per_shard=2),
        ),
        "spillover-group": (
            sharded(
                True,
                num_shards=2,
                spillover_replicas_per_shard=1,
                spillover_slo_s=0.5,
            ),
            sharded(
                False,
                num_shards=2,
                spillover_replicas_per_shard=1,
                spillover_slo_s=0.5,
            ),
        ),
    }
    return _STATE


def _snapshot(results):
    return [
        (
            result.items,
            tuple(result.scores),
            result.candidate_count,
            result.cost,
            tuple(result.ledger),
        )
        for result in results
    ]


@given(
    topology=st.sampled_from(
        ["imars", "gpu-spillover-engine", "shards", "replicas", "spillover-group"]
    ),
    indices=st.lists(st.integers(0, 180), min_size=0, max_size=24),
)
@settings(max_examples=40)
def test_vectorised_batches_bit_identical(topology, indices):
    state = _setup()
    workload = state["workload"]
    vectorised, scalar = state["pairs"][topology]
    queries = [workload[index % len(workload)] for index in indices]
    vec_batch = vectorised.serve_batch(queries)
    ref_batch = scalar.serve_batch(queries)
    assert _snapshot(vec_batch.results) == _snapshot(ref_batch.results)
    assert vec_batch.cost == ref_batch.cost
    # Identical ledgers imply identical total energy; assert it
    # explicitly anyway -- it is the billing invariant downstream
    # studies depend on.
    assert sum(
        result.cost.energy_pj for result in vec_batch.results
    ) == sum(result.cost.energy_pj for result in ref_batch.results)


@given(
    warm_users=st.lists(st.integers(0, 180), max_size=8),
    stream=st.lists(st.integers(0, 180), min_size=1, max_size=30),
    capacity=st.integers(1, 64),
)
@settings(max_examples=15)
def test_sessions_identical_across_cache_states(warm_users, stream, capacity):
    """A full session (scheduler + dedup + cache + warm-up) serves the
    same items and charges the same ledger whichever path runs."""
    state = _setup()
    workload = state["workload"]
    requests = [
        Request(request_id=index, arrival_s=index * 1e-4, user=user)
        for index, user in enumerate(stream)
    ]
    outcomes = []
    for vectorised in (True, False):
        # Fresh engines per run: a session's EWMA history must not leak
        # between the two paths being compared.
        engine = IMARSEngine(
            *_models(),
            seed=0,
            use_vector_kernels=vectorised,
        )
        session = ServingSession(
            engine,
            workload,
            scheduler=MicroBatchScheduler(
                MicroBatchConfig(max_batch_size=8, max_wait_s=2e-4)
            ),
            cache=ServingCache(capacity=capacity, rows_per_entry=4),
        )
        if warm_users:
            session.warm(warm_users)
        result = session.run(requests)
        outcomes.append(
            (
                [(record.request.request_id, record.items, record.cache_hit)
                 for record in result.records],
                result.ledger.total(),
                tuple(result.ledger),
            )
        )
    assert outcomes[0] == outcomes[1]


def _models():
    """(filtering, ranking, mapping) shared by fresh session engines."""
    state = _setup()
    prototype = state["pairs"]["imars"][0]
    return (
        prototype.filtering_model,
        prototype.ranking_model,
        prototype.mapping,
    )
