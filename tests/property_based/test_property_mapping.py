"""Hypothesis property tests for the ET -> hardware mapping invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PAPER_CONFIG
from repro.core.mapping import EmbeddingTableSpec, WorkloadMapping, next_power_of_two

#: Entry counts that fit a single bank under the paper config
#: (<= 64 provisioned CMAs x 256 rows for ItETs, which double their CMAs).
table_sizes = st.integers(min_value=1, max_value=8000)
kinds = st.sampled_from(["uiet", "itet"])


@given(st.lists(st.tuples(table_sizes, kinds), min_size=1, max_size=16))
@settings(max_examples=100)
def test_mapping_invariants(tables):
    specs = [
        EmbeddingTableSpec(f"t{i}", size, kind=kind)
        for i, (size, kind) in enumerate(tables)
    ]
    mapping = WorkloadMapping(specs, PAPER_CONFIG)

    # One bank per feature, banks indexed contiguously.
    assert mapping.active_banks == len(specs)
    assert [t.bank_index for t in mapping.tables] == list(range(len(specs)))

    for table in mapping.tables:
        spec = table.spec
        expected_cmas = math.ceil(spec.num_entries / PAPER_CONFIG.cma_rows)
        assert table.embedding_cmas == expected_cmas
        # ItETs double for signatures, UIETs store none.
        if spec.kind == "itet":
            assert table.signature_cmas == table.embedding_cmas
        else:
            assert table.signature_cmas == 0
        # Mats cover the CMAs without waste beyond one mat's granularity.
        assert table.embedding_mats == math.ceil(
            table.embedding_cmas / PAPER_CONFIG.cmas_per_mat
        )
        # Provisioning is the next power of two and fits a bank.
        assert table.provisioned_cmas == next_power_of_two(table.total_cmas)
        assert table.provisioned_cmas <= PAPER_CONFIG.cmas_per_bank
        # Capacity actually holds the table: rows across the CMAs suffice.
        assert table.embedding_cmas * PAPER_CONFIG.cma_rows >= spec.num_entries

    # Aggregates are sums of per-table values.
    assert mapping.active_cmas == sum(t.total_cmas for t in mapping.tables)
    assert mapping.active_mats == sum(t.total_mats for t in mapping.tables)


@given(st.integers(min_value=1, max_value=10**7))
@settings(max_examples=200)
def test_next_power_of_two_properties(value):
    result = next_power_of_two(value)
    assert result >= value
    assert result & (result - 1) == 0  # is a power of two
    assert result < 2 * value or value == 1
