"""Hypothesis property tests for TCAM search invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imc.tcam import TCAMArray

bit_rows = st.lists(
    st.lists(st.integers(min_value=0, max_value=1), min_size=16, max_size=16),
    min_size=1,
    max_size=12,
)
bit_query = st.lists(st.integers(min_value=0, max_value=1), min_size=16, max_size=16)


def _array_from(rows):
    array = TCAMArray(len(rows), 16)
    for index, row in enumerate(rows):
        array.write_row(index, np.array(row, dtype=np.int8))
    return array


@given(bit_rows, bit_query)
@settings(max_examples=100)
def test_threshold_monotonicity(rows, query):
    """Raising the threshold can only add matches, never remove them."""
    array = _array_from(rows)
    query = np.array(query, dtype=np.int8)
    previous = set()
    for threshold in range(0, 17, 4):
        current = set(array.matching_rows(query, threshold))
        assert previous <= current
        previous = current


@given(bit_rows)
@settings(max_examples=100)
def test_stored_row_matches_itself(rows):
    array = _array_from(rows)
    for index, row in enumerate(rows):
        assert index in array.matching_rows(np.array(row, dtype=np.int8), 0)


@given(bit_rows, bit_query)
@settings(max_examples=100)
def test_full_threshold_matches_everything(rows, query):
    array = _array_from(rows)
    matches = array.matching_rows(np.array(query, dtype=np.int8), 16)
    assert matches == list(range(len(rows)))


@given(bit_rows, bit_query)
@settings(max_examples=100)
def test_distances_bounded_by_width(rows, query):
    array = _array_from(rows)
    distances = array.hamming_distances(np.array(query, dtype=np.int8))
    assert (distances[: len(rows)] <= 16).all()
    assert (distances >= 0).all()


@given(bit_rows, bit_query)
@settings(max_examples=100)
def test_complement_query_distance(rows, query):
    """d(row, q) + d(row, ~q) = width for fully-specified rows."""
    array = _array_from(rows)
    query = np.array(query, dtype=np.int8)
    complement = (1 - query).astype(np.int8)
    d_q = array.hamming_distances(query)[: len(rows)]
    d_c = array.hamming_distances(complement)[: len(rows)]
    assert ((d_q + d_c) == 16).all()


@given(bit_rows, bit_query)
@settings(max_examples=50)
def test_priority_order_ascending(rows, query):
    array = _array_from(rows)
    matches = array.matching_rows(np.array(query, dtype=np.int8), 8)
    assert matches == sorted(matches)
