"""Hypothesis properties of the observability plane.

* :class:`SimClock` is bitwise the ``now += gap`` float loop it replaced
  and never moves backwards;
* histogram renders are internally consistent for arbitrary observations
  (cumulative buckets monotone, +Inf bucket equals the count, quantiles
  monotone in q);
* for arbitrary traffic through a real :class:`ServingSession`, the
  trace validates, sequential stage spans tile inside their batch span
  (per-stage durations sum to at most the batch wall-clock), every
  request span matches its record exactly -- and the traced run is
  bit-identical to the untraced one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import BatchResult, QueryResult, ServeQuery
from repro.energy.accounting import Cost, Ledger
from repro.obs import SimClock, Telemetry, span_children
from repro.obs.metrics import Histogram
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingSession
from repro.serving.traffic import Request

# -- clock ----------------------------------------------------------------


@given(
    gaps=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        max_size=50,
    ),
    start=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
)
def test_clock_is_bitwise_the_float_loop(gaps, start):
    clock = SimClock(start_s=start)
    now = float(start)
    for gap in gaps:
        now += gap
        assert clock.advance(gap) == now  # exact equality, by contract


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50
    )
)
def test_clock_advance_to_is_monotone(times):
    clock = SimClock()
    previous = 0.0
    for time_s in times:
        assert clock.advance_to(time_s) >= previous
        assert clock.now_s == max(previous, time_s)
        previous = clock.now_s


# -- histogram render consistency ----------------------------------------


@given(
    observations=st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=60)
def test_histogram_render_is_consistent(observations):
    histogram = Histogram("h", "", buckets=(0.1, 1.0, 10.0, 100.0))
    for value in observations:
        histogram.observe(value)
    lines = histogram.render()
    bucket_counts = [
        int(line.rsplit(" ", 1)[1]) for line in lines if "_bucket" in line
    ]
    assert bucket_counts == sorted(bucket_counts)  # cumulative => monotone
    assert bucket_counts[-1] == len(observations)  # +Inf catches everything
    assert histogram.count() == len(observations)
    assert abs(histogram.sum() - sum(observations)) <= 1e-6 * max(
        1.0, sum(observations)
    )
    quantiles = [histogram.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 1.0)]
    assert quantiles == sorted(quantiles)


# -- traced sessions over arbitrary traffic ------------------------------

_SEQUENTIAL_STAGES = {"queue", "cache-lookup", "engine", "cache-fill", "migration"}


class _StubEngine:
    """Deterministic engine: fixed items, size-proportional cost."""

    def __init__(self, top_k=3):
        self.top_k = top_k

    def _one(self, query):
        return QueryResult(
            items=list(range(self.top_k)),
            candidate_count=8,
            cost=Cost(energy_pj=10.0, latency_ns=500.0),
            ledger=Ledger(),
            scores=[float(self.top_k - rank) for rank in range(self.top_k)],
        )

    def recommend_query(self, query):
        return self._one(query)

    def serve_batch(self, queries):
        results = [self._one(query) for query in queries]
        return BatchResult(
            results=results,
            cost=Cost(
                energy_pj=10.0 * len(results), latency_ns=200.0 * len(results)
            ),
        )


@st.composite
def request_streams(draw):
    num_users = draw(st.integers(min_value=1, max_value=5))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2e-6, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    users = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_users - 1),
            min_size=len(gaps),
            max_size=len(gaps),
        )
    )
    clock = SimClock()
    requests = [
        Request(request_id=index, arrival_s=clock.advance(gap), user=user)
        for index, (gap, user) in enumerate(zip(gaps, users))
    ]
    return num_users, requests


@given(stream=request_streams())
@settings(max_examples=40, deadline=None)
def test_traced_session_spans_tile_and_runs_are_identical(stream):
    num_users, requests = stream
    workload = [ServeQuery.make([u], [u], [u]) for u in range(num_users)]

    def run(telemetry):
        return ServingSession(
            _StubEngine(),
            workload,
            scheduler=MicroBatchScheduler(
                MicroBatchConfig(max_batch_size=4, max_wait_s=1e-6)
            ),
            label="property session",
            telemetry=telemetry,
        ).run(requests)

    telemetry = Telemetry()
    traced = run(telemetry)
    untraced = run(None)

    # bit-identity: tracing observed, never perturbed
    assert [r.items for r in traced.records] == [r.items for r in untraced.records]
    assert [r.completion_s for r in traced.records] == [
        r.completion_s for r in untraced.records
    ]
    assert traced.ledger.total() == untraced.ledger.total()

    tracer = telemetry.tracer
    tracer.validate()
    roots = [span for span in tracer.spans if span.parent_id is None]
    assert len(roots) == len(traced.batches)
    children = span_children(tracer.spans)
    for root in roots:
        # sequential per-stage durations sum to <= the batch wall-clock
        stage_sum = sum(
            child.duration_s
            for child in children.get(root.span_id, [])
            if child.name in _SEQUENTIAL_STAGES
        )
        assert stage_sum <= root.duration_s + 1e-12

    request_spans = {
        span.attrs["request_id"]: span
        for span in tracer.spans
        if span.name == "request"
    }
    assert len(request_spans) == len(traced.records)
    for record in traced.records:
        span = request_spans[record.request.request_id]
        assert span.start_s == record.request.arrival_s
        assert span.end_s == record.completion_s
        assert span.duration_s == record.latency_s
