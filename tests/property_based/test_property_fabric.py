"""Hypothesis property tests for the bank hierarchy and GPCiM pooling."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bank import Bank
from repro.core.config import ArchitectureConfig
from repro.imc.gpcim import GPCiMArray

_SMALL = ArchitectureConfig(cma_rows=8, cmas_per_mat=2, mats_per_bank=4)


@st.composite
def bank_with_table(draw):
    """A loaded small bank plus its reference table."""
    num_entries = draw(st.integers(min_value=1, max_value=64))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    table = np.random.default_rng(seed).integers(-100, 100, size=(num_entries, 32))
    bank = Bank(_SMALL)
    bank.load_table(table)
    return bank, table


@given(bank_with_table(), st.data())
@settings(max_examples=40, deadline=None)
def test_bank_pooling_equals_numpy_sum(loaded, data):
    bank, table = loaded
    count = data.draw(st.integers(min_value=1, max_value=8))
    entries = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=table.shape[0] - 1),
            min_size=count,
            max_size=count,
        )
    )
    pooled, cost = bank.pooled_lookup(entries)
    np.testing.assert_array_equal(pooled, table[entries].sum(axis=0))
    assert cost.latency_ns > 0.0
    assert cost.energy_pj > 0.0


@given(bank_with_table())
@settings(max_examples=40, deadline=None)
def test_bank_locate_roundtrip(loaded):
    bank, table = loaded
    for entry in range(table.shape[0]):
        mat_index, local = bank.locate(entry)
        assert 0 <= mat_index < bank.num_mats
        read, _ = bank.read_entry(entry)
        np.testing.assert_array_equal(read, table[entry])


lane_rows = st.lists(
    st.lists(st.integers(min_value=-128, max_value=127), min_size=4, max_size=4),
    min_size=1,
    max_size=8,
)


@given(lane_rows)
@settings(max_examples=100)
def test_gpcim_accumulate_matches_numpy(rows):
    array = GPCiMArray(rows=len(rows), lanes=4)
    for index, values in enumerate(rows):
        array.write_row(index, values)
    total = array.accumulate_rows(range(len(rows)))
    np.testing.assert_array_equal(total, np.sum(rows, axis=0))


@given(lane_rows)
@settings(max_examples=50)
def test_gpcim_saturating_accumulate_bounded(rows):
    array = GPCiMArray(rows=len(rows), lanes=4)
    for index, values in enumerate(rows):
        array.write_row(index, values)
    clamped = array.accumulate_rows(range(len(rows)), saturate=True)
    assert clamped.min() >= -128
    assert clamped.max() <= 127
