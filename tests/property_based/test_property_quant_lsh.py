"""Hypothesis property tests for quantisation and LSH invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.lsh.hamming import hamming_distance, pack_bits, unpack_bits
from repro.lsh.hyperplane import RandomHyperplaneLSH
from repro.quant.int8 import dequantize, quantize_asymmetric, quantize_symmetric

float_matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8)
    ),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, width=64),
)


@given(float_matrices)
@settings(max_examples=100)
def test_symmetric_quantisation_error_bounded(values):
    tensor = quantize_symmetric(values)
    step = np.abs(values).max() / 127.0 if np.abs(values).max() > 0 else 1.0
    assert np.abs(dequantize(tensor) - values).max() <= 0.5 * step + 1e-9


@given(float_matrices)
@settings(max_examples=100)
def test_symmetric_quantisation_idempotent(values):
    """Quantising an already-quantised tensor is exact."""
    once = dequantize(quantize_symmetric(values))
    twice = dequantize(quantize_symmetric(once))
    np.testing.assert_allclose(once, twice, atol=1e-9)


@given(float_matrices)
@settings(max_examples=100)
def test_symmetric_preserves_sign(values):
    tensor = quantize_symmetric(values)
    recovered = dequantize(tensor)
    # No sign flips: recovered * original >= 0 elementwise (up to the
    # values that round to zero).
    product = recovered * values
    assert (product >= -1e-9).all()


@given(float_matrices)
@settings(max_examples=50)
def test_asymmetric_range_covered(values):
    tensor = quantize_asymmetric(values)
    recovered = dequantize(tensor)
    span = values.max() - values.min()
    tolerance = span / 255.0 + 1e-9 if span > 0 else 1e-9
    assert recovered.min() >= values.min() - tolerance
    assert recovered.max() <= values.max() + tolerance


bit_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=64)
    ),
    elements=st.integers(min_value=0, max_value=1),
)


@given(bit_matrices)
@settings(max_examples=100)
def test_pack_unpack_roundtrip(bits):
    packed = pack_bits(bits)
    np.testing.assert_array_equal(unpack_bits(packed, bits.shape[1]), bits)


vectors = arrays(
    dtype=np.float64,
    shape=st.just((12,)),
    elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, width=64),
)


@given(vectors, st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=100)
def test_lsh_scale_invariance(vector, scale):
    if np.linalg.norm(vector) < 1e-6:
        return  # direction undefined
    hasher = RandomHyperplaneLSH(12, 64, seed=0)
    np.testing.assert_array_equal(
        hasher.signature(vector), hasher.signature(scale * vector)
    )


@given(vectors, vectors)
@settings(max_examples=100)
def test_lsh_hamming_symmetry(a, b):
    hasher = RandomHyperplaneLSH(12, 64, seed=0)
    sig_a, sig_b = hasher.signature(a), hasher.signature(b)
    assert hamming_distance(sig_a, sig_b) == hamming_distance(sig_b, sig_a)


@given(vectors, vectors, vectors)
@settings(max_examples=50)
def test_lsh_triangle_inequality(a, b, c):
    """Hamming over signatures is a metric: triangle inequality holds."""
    hasher = RandomHyperplaneLSH(12, 64, seed=0)
    sig_a, sig_b, sig_c = (hasher.signature(v) for v in (a, b, c))
    d_ab = hamming_distance(sig_a, sig_b)
    d_bc = hamming_distance(sig_b, sig_c)
    d_ac = hamming_distance(sig_a, sig_c)
    assert d_ac <= d_ab + d_bc
