"""Hypothesis property tests for the crossbar MVM (ideal configuration)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.imc.crossbar import CrossbarArray, CrossbarConfig

_IDEAL = CrossbarConfig(rows=8, cols=4, dac_bits=0, adc_bits=0, conductance_sigma=0.0)

weights_st = arrays(
    dtype=np.float64,
    shape=st.just((8, 4)),
    elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, width=64),
)
inputs_st = arrays(
    dtype=np.float64,
    shape=st.just((8,)),
    elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, width=64),
)


def _tile(weights):
    tile = CrossbarArray(_IDEAL)
    tile.program(weights)
    return tile


@given(weights_st, inputs_st)
@settings(max_examples=100)
def test_ideal_matvec_exact(weights, inputs):
    np.testing.assert_allclose(
        _tile(weights).matvec(inputs), inputs @ weights, rtol=1e-9, atol=1e-9
    )


@given(weights_st, inputs_st, inputs_st)
@settings(max_examples=50)
def test_matvec_additivity(weights, a, b):
    """Ideal analog MVM is linear: f(a + b) = f(a) + f(b)."""
    tile = _tile(weights)
    combined = tile.matvec(a + b)
    separate = tile.matvec(a) + tile.matvec(b)
    np.testing.assert_allclose(combined, separate, rtol=1e-9, atol=1e-9)


@given(weights_st, inputs_st, st.floats(min_value=-5.0, max_value=5.0, allow_nan=False))
@settings(max_examples=50)
def test_matvec_homogeneity(weights, inputs, scalar):
    tile = _tile(weights)
    np.testing.assert_allclose(
        tile.matvec(scalar * inputs),
        scalar * tile.matvec(inputs),
        rtol=1e-9,
        atol=1e-8,
    )


@given(weights_st)
@settings(max_examples=50)
def test_zero_input_zero_output(weights):
    assert np.allclose(_tile(weights).matvec(np.zeros(8)), 0.0)


@given(weights_st, inputs_st)
@settings(max_examples=50)
def test_adc_quantisation_bounded(weights, inputs):
    """8-bit ADC output stays within half a step of the exact product."""
    config = CrossbarConfig(rows=8, cols=4, dac_bits=0, adc_bits=8)
    tile = CrossbarArray(config)
    tile.program(weights)
    exact = inputs @ weights
    outputs = tile.matvec(inputs)
    max_abs = np.abs(exact).max()
    if max_abs == 0.0:
        np.testing.assert_allclose(outputs, exact, atol=1e-12)
    else:
        step = max_abs / 127.0
        assert np.abs(outputs - exact).max() <= 0.5 * step + 1e-9
