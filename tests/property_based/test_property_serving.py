"""Hypothesis property tests for the serving layer.

The serving subsystem's contracts, checked over arbitrary inputs:

* the micro-batch scheduler never emits a batch above the size cap and
  never holds a request past the wait window (fixed and adaptive);
* scatter-gather top-k over shards (and replica groups) equals the
  unsharded top-k;
* cost-aware spillover routing never changes recommendations: for any
  queue state (busy history, work/energy estimates, target, headroom)
  the heterogeneous group's serve_batch equals the IMC-only reference;
* every cache lookup -- hit and miss alike -- charges probe energy, and
  the ledger total equals the sum of the charged costs;
* SLO percentiles are monotone (p50 <= p95 <= p99 <= max) for arbitrary
  request records, globally and per tenant.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import BatchResult, QueryResult, ServeQuery
from repro.energy.accounting import Cost, Ledger
from repro.serving.cache import ServingCache, TinyLFUAdmission
from repro.serving.scheduler import (
    AdaptiveBatchConfig,
    AdaptiveMicroBatchScheduler,
    MicroBatchConfig,
    MicroBatchScheduler,
)
from repro.serving.shard import ReplicaGroup, ShardedEngine, partition_corpus
from repro.serving.slo import RequestRecord, summarize, summarize_tenants
from repro.serving.traffic import Request


# -- scheduler admission invariants --------------------------------------


@st.composite
def request_streams(draw):
    """Sorted arrival times from non-negative gaps (possibly bursty)."""
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    arrivals = np.cumsum(gaps)
    return [
        Request(request_id=index, arrival_s=float(arrival), user=index)
        for index, arrival in enumerate(arrivals)
    ]


def _service_times(seed, scale=0.05):
    rng = np.random.default_rng(seed)
    return lambda batch: float(rng.uniform(0.0, scale))


@given(
    requests=request_streams(),
    max_batch_size=st.integers(min_value=1, max_value=8),
    max_wait_s=st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60)
def test_scheduler_admission_invariants(requests, max_batch_size, max_wait_s, seed):
    config = MicroBatchConfig(max_batch_size=max_batch_size, max_wait_s=max_wait_s)
    batches = MicroBatchScheduler(config).run(requests, _service_times(seed))
    served = [request.request_id for batch in batches for request in batch.requests]
    # Every request is served exactly once, in arrival order.
    assert sorted(served) == [request.request_id for request in requests]
    for batch in batches:
        # Never above the size cap.
        assert 1 <= len(batch) <= max_batch_size
        # Never held past the wait window after the batch opened.
        assert batch.dispatch_s <= batch.open_s + max_wait_s + 1e-12
        # The window cannot open before its first member arrives.
        assert batch.open_s >= batch.requests[0].arrival_s - 1e-12
        # No request dispatches before it arrives.
        for request in batch.requests:
            assert batch.dispatch_s >= request.arrival_s - 1e-12


@given(
    requests=request_streams(),
    target_p95_s=st.floats(min_value=1e-3, max_value=0.5, allow_nan=False),
    max_batch_size=st.integers(min_value=2, max_value=16),
    window=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60)
def test_adaptive_scheduler_respects_bounds(
    requests, target_p95_s, max_batch_size, window, seed
):
    config = AdaptiveBatchConfig(
        target_p95_s=target_p95_s,
        window=window,
        max_batch_size=max_batch_size,
        max_wait_s=0.5 * target_p95_s,
    )
    scheduler = AdaptiveMicroBatchScheduler(config)
    batches = scheduler.run(requests, _service_times(seed))
    served = [request.request_id for batch in batches for request in batch.requests]
    assert sorted(served) == [request.request_id for request in requests]
    for batch in batches:
        # Whatever the controller retuned to, the configured bounds hold:
        # no batch above the outer cap, no hold past the outer window.
        assert 1 <= len(batch) <= config.max_batch_size
        assert batch.dispatch_s <= batch.open_s + config.max_wait_s + 1e-12
    for decision in scheduler.knob_history:
        assert config.min_batch_size <= decision["max_batch_size"] <= config.max_batch_size
        assert config.min_wait_s <= decision["max_wait_s"] <= config.max_wait_s + 1e-12


# -- scatter-gather merge equals unsharded top-k -------------------------


class _MatrixEngine:
    """Fake engine scoring items from a fixed (query x item) table."""

    def __init__(self, scores, query_index, item_subset, top_k):
        self.scores = scores
        self.query_index = query_index
        self.item_subset = np.asarray(item_subset)
        self.top_k = top_k

    def _one(self, query):
        row = self.scores[self.query_index[query]][self.item_subset]
        order = np.argsort(-row, kind="stable")[: self.top_k]
        return QueryResult(
            items=[int(self.item_subset[position]) for position in order],
            candidate_count=int(self.item_subset.size),
            cost=Cost(energy_pj=1.0, latency_ns=1.0),
            ledger=Ledger(),
            scores=[float(row[position]) for position in order],
        )

    def recommend_query(self, query):
        return self._one(query)

    def serve_batch(self, queries):
        results = [self._one(query) for query in queries]
        return BatchResult(
            results=results, cost=Cost(energy_pj=len(results), latency_ns=1.0)
        )

    def merge_cost(self, num_entries):
        return Cost(energy_pj=0.1, latency_ns=0.1)


@given(
    num_items=st.integers(min_value=1, max_value=40),
    num_queries=st.integers(min_value=1, max_value=6),
    num_shards=st.integers(min_value=1, max_value=5),
    replicas=st.integers(min_value=1, max_value=3),
    top_k=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60)
def test_scatter_gather_topk_equals_unsharded(
    num_items, num_queries, num_shards, replicas, top_k, seed
):
    num_shards = min(num_shards, num_items)
    top_k = min(top_k, num_items)
    rng = np.random.default_rng(seed)
    # Globally distinct scores: the top-k ordering is unambiguous.
    scores = rng.permutation(num_queries * num_items).reshape(
        num_queries, num_items
    ).astype(np.float64)
    queries = [ServeQuery.make([index], [index], [index]) for index in range(num_queries)]
    query_index = {query: index for index, query in enumerate(queries)}

    unsharded = _MatrixEngine(scores, query_index, np.arange(num_items), top_k)
    shards = []
    for subset in partition_corpus(num_items, num_shards):
        members = [
            _MatrixEngine(scores, query_index, subset, top_k)
            for _ in range(replicas)
        ]
        shards.append(members[0] if replicas == 1 else ReplicaGroup(members))
    sharded = ShardedEngine(shards, top_k=top_k)

    expected = unsharded.serve_batch(queries)
    merged = sharded.serve_batch(queries)
    for expected_result, merged_result in zip(expected.results, merged.results):
        assert merged_result.items == expected_result.items
        assert merged_result.scores == expected_result.scores


# -- spillover routing never changes recommendations ----------------------


class _HeteroEngine(_MatrixEngine):
    """Matrix engine with a configurable speed/energy profile.

    Models one member of a heterogeneous replica group: same functional
    scores (the spillover contract), different observed occupancy and
    energy estimates for the router to chew on.
    """

    def __init__(
        self,
        scores,
        query_index,
        item_subset,
        top_k,
        latency_est=None,
        energy_est=None,
    ):
        super().__init__(scores, query_index, item_subset, top_k)
        self.expected_query_latency_s = latency_est
        self.expected_query_energy_pj = energy_est


@given(
    num_items=st.integers(min_value=1, max_value=30),
    num_queries=st.integers(min_value=1, max_value=10),
    num_shards=st.integers(min_value=1, max_value=3),
    num_replicas=st.integers(min_value=2, max_value=4),
    top_k=st.integers(min_value=1, max_value=6),
    p95_target_s=st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
    spill_headroom=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    profile_seed=st.integers(min_value=0, max_value=2**16),
    rounds=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60)
def test_spillover_routing_never_changes_recommendations(
    num_items,
    num_queries,
    num_shards,
    num_replicas,
    top_k,
    p95_target_s,
    spill_headroom,
    profile_seed,
    rounds,
    seed,
):
    """For ANY queue state -- arbitrary busy history, latency/energy
    estimates (including unobserved members), target and headroom -- the
    heterogeneous group's top-k equals the IMC-only reference's."""
    num_shards = min(num_shards, num_items)
    top_k = min(top_k, num_items)
    rng = np.random.default_rng(seed)
    scores = rng.permutation(num_queries * num_items).reshape(
        num_queries, num_items
    ).astype(np.float64)
    queries = [
        ServeQuery.make([index], [index], [index]) for index in range(num_queries)
    ]
    query_index = {query: index for index, query in enumerate(queries)}

    profile_rng = np.random.default_rng(profile_seed)

    def replica_profile():
        latency = (
            None
            if profile_rng.random() < 0.3
            else float(profile_rng.uniform(1e-6, 2.0 * p95_target_s))
        )
        energy = (
            None
            if profile_rng.random() < 0.3
            else float(profile_rng.uniform(1.0, 1e6))
        )
        return latency, energy

    unsharded = _MatrixEngine(scores, query_index, np.arange(num_items), top_k)
    shards = []
    for subset in partition_corpus(num_items, num_shards):
        members = []
        for _ in range(num_replicas):
            latency, energy = replica_profile()
            members.append(
                _HeteroEngine(
                    scores, query_index, subset, top_k,
                    latency_est=latency, energy_est=energy,
                )
            )
        group = ReplicaGroup(
            members, p95_target_s=p95_target_s, spill_headroom=spill_headroom
        )
        # Arbitrary pre-existing queue state.
        group.busy_s = [
            float(value)
            for value in profile_rng.uniform(0.0, 5.0, size=num_replicas)
        ]
        shards.append(group)
    sharded = ShardedEngine(shards, top_k=top_k)

    for _ in range(rounds):
        expected = unsharded.serve_batch(queries)
        merged = sharded.serve_batch(queries)
        for expected_result, merged_result in zip(expected.results, merged.results):
            assert merged_result.items == expected_result.items
            assert merged_result.scores == expected_result.scores

    for group in shards:
        total_assigned = sum(group.assigned)
        assert 0 <= group.spilled <= total_assigned
        assert total_assigned == rounds * num_queries


# -- cache energy accounting ---------------------------------------------


@given(
    keys=st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=80),
    capacity=st.integers(min_value=1, max_value=8),
    with_admission=st.booleans(),
)
@settings(max_examples=60)
def test_cache_charges_hits_and_misses(keys, capacity, with_admission):
    admission = TinyLFUAdmission(sample_size=16, seed=0) if with_admission else None
    cache = ServingCache(capacity=capacity, rows_per_entry=3, admission=admission)
    ledger = Ledger()
    charged = Cost()
    for key in keys:
        value, cost = cache.lookup(key)
        # Hit and miss alike pay the CMA probe: energy is always charged.
        assert cost.energy_pj > 0.0
        ledger.charge("Cache", cost)
        charged = charged.then(cost)
        if value is None:
            fill = cache.insert(key, ("result", key))
            assert fill.energy_pj >= 0.0
            ledger.charge("Cache", fill)
            charged = charged.then(fill)
        else:
            assert value == ("result", key)
        assert len(cache) <= capacity
    total = ledger.total()
    assert total.energy_pj == charged.energy_pj
    assert total.latency_ns == charged.latency_ns
    assert cache.hits + cache.misses == len(keys)
    if admission is None:
        assert cache.rejections == 0


# -- SLO percentile monotonicity -----------------------------------------


@st.composite
def request_records(draw):
    count = draw(st.integers(min_value=1, max_value=50))
    records = []
    for index in range(count):
        arrival = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
        wait = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        records.append(
            RequestRecord(
                request=Request(
                    request_id=index,
                    arrival_s=arrival,
                    user=index,
                    tenant=draw(st.sampled_from(["alpha", "beta", "gamma"])),
                ),
                completion_s=arrival + wait,
                batch_size=draw(st.integers(min_value=1, max_value=8)),
                cache_hit=draw(st.booleans()),
                items=(1, 2, 3),
            )
        )
    return records


@given(records=request_records(), energy_pj=st.floats(min_value=0.0, max_value=1e9))
@settings(max_examples=60)
def test_slo_percentiles_monotone(records, energy_pj):
    ledger = Ledger()
    ledger.charge("Serve", Cost(energy_pj=energy_pj, latency_ns=1.0))
    report = summarize(records, ledger)
    assert report.p50_ms <= report.p95_ms <= report.p99_ms <= report.max_ms
    assert 0.0 <= report.cache_hit_rate <= 1.0
    assert report.num_requests == len(records)
    tenant_reports = summarize_tenants(records, ledger)
    for tenant_report in tenant_reports.values():
        assert tenant_report.p50_ms <= tenant_report.p95_ms <= tenant_report.p99_ms
    # Pro-rata energy attribution conserves the session total.
    total_uj = sum(
        tenant_report.energy_per_request_uj * tenant_report.num_requests
        for tenant_report in tenant_reports.values()
    )
    assert total_uj == pytest.approx(ledger.total().energy_uj, rel=1e-9, abs=1e-12)
    assert sum(r.num_requests for r in tenant_reports.values()) == len(records)
