"""Hypothesis property tests for the Cost algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.accounting import Cost, ZERO_COST

costs = st.builds(
    Cost,
    energy_pj=st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    latency_ns=st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
)


@given(costs, costs)
def test_sequential_composition_commutative(a, b):
    assert a.then(b) == b.then(a)


@given(costs, costs, costs)
@settings(max_examples=50)
def test_sequential_composition_associative(a, b, c):
    left = (a.then(b)).then(c)
    right = a.then(b.then(c))
    # Associative up to floating-point rounding.
    assert left.energy_pj == pytest.approx(right.energy_pj, rel=1e-12, abs=1e-9)
    assert left.latency_ns == pytest.approx(right.latency_ns, rel=1e-12, abs=1e-9)


@given(costs)
def test_zero_is_identity(a):
    assert a.then(ZERO_COST) == a
    assert a.alongside(ZERO_COST) == a


@given(costs, costs)
def test_parallel_never_slower_than_sequential(a, b):
    assert a.alongside(b).latency_ns <= a.then(b).latency_ns


@given(costs, costs)
def test_parallel_and_sequential_same_energy(a, b):
    assert a.alongside(b).energy_pj == a.then(b).energy_pj


@given(costs, st.integers(min_value=0, max_value=1000))
def test_repeated_equals_folded_sequence(a, n):
    folded = Cost.sequence([a] * n)
    repeated = a.repeated(n)
    assert abs(folded.energy_pj - repeated.energy_pj) <= 1e-6 * max(1.0, repeated.energy_pj)
    assert abs(folded.latency_ns - repeated.latency_ns) <= 1e-6 * max(1.0, repeated.latency_ns)


@given(costs, st.integers(min_value=1, max_value=1000))
def test_broadcast_latency_invariant(a, n):
    spread = a.broadcast(n)
    assert spread.latency_ns == a.latency_ns
    assert spread.energy_pj >= a.energy_pj or n == 0


@given(costs, costs)
def test_speedup_reciprocal(a, b):
    # Subnormal latencies lose precision in the division; stay in the
    # physically meaningful range.
    if a.latency_ns > 1e-6 and b.latency_ns > 1e-6:
        product = a.speedup_over(b) * b.speedup_over(a)
        assert abs(product - 1.0) < 1e-9
