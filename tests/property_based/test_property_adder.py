"""Hypothesis property tests for adder trees and in-memory addition."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adder_tree import AdderTree, reduction_rounds
from repro.energy.accounting import Cost
from repro.imc.gpcim import pack_lanes, ripple_add_bits, unpack_lanes

word_lists = st.lists(
    st.lists(st.integers(min_value=-1000, max_value=1000), min_size=4, max_size=4),
    min_size=1,
    max_size=20,
)


@given(word_lists, st.integers(min_value=2, max_value=8))
@settings(max_examples=100)
def test_tree_sum_exact_for_any_fan_in(words, fan_in):
    tree = AdderTree(fan_in=fan_in, add_cost=Cost(1.0, 1.0))
    arrays = [np.array(word) for word in words]
    total, _ = tree.reduce(arrays)
    np.testing.assert_array_equal(total, np.sum(arrays, axis=0))


@given(st.integers(min_value=0, max_value=200), st.integers(min_value=2, max_value=16))
def test_reduction_rounds_sufficient(num_inputs, fan_in):
    """Simulating the round-by-round reduction terminates in the predicted
    number of rounds."""
    rounds = reduction_rounds(num_inputs, fan_in)
    pending = num_inputs
    performed = 0
    while pending > 1:
        batch = min(fan_in, pending)
        pending = pending - batch + 1
        performed += 1
    assert performed == rounds


@given(word_lists, st.integers(min_value=2, max_value=6))
@settings(max_examples=50)
def test_tree_cost_monotone_in_input_count(words, fan_in):
    tree = AdderTree(fan_in=fan_in, add_cost=Cost(3.0, 5.0))
    arrays = [np.array(word) for word in words]
    full = tree.cost_for(len(arrays))
    half = tree.cost_for(max(1, len(arrays) // 2))
    assert full.latency_ns >= half.latency_ns


@given(
    st.integers(min_value=0, max_value=2**10 - 1),
    st.integers(min_value=0, max_value=2**10 - 1),
)
@settings(max_examples=200)
def test_ripple_add_matches_integers(a, b):
    width = 11
    bits_a = np.array([(a >> i) & 1 for i in range(width)], dtype=np.int8)
    bits_b = np.array([(b >> i) & 1 for i in range(width)], dtype=np.int8)
    total, carry = ripple_add_bits(bits_a, bits_b)
    value = sum(int(bit) << i for i, bit in enumerate(total)) + (carry << width)
    assert value == a + b


@given(
    st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=32),
    st.integers(min_value=2, max_value=16),
)
@settings(max_examples=100)
def test_lane_packing_roundtrip_any_width(lanes, lane_bits):
    low, high = -(1 << (lane_bits - 1)), (1 << (lane_bits - 1)) - 1
    clipped = [max(low, min(high, lane)) for lane in lanes]
    bits = pack_lanes(clipped, lane_bits)
    assert unpack_lanes(bits, lane_bits).tolist() == clipped
