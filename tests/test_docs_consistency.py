"""The docs tree is code: it must agree with what the CLI registers.

``docs/experiments.md`` carries one ``## <ID> -- <title>`` section per
experiment.  These tests hold the catalog and the CLI registry to
set-equality in both directions, so adding an experiment without
documenting it (or documenting one that does not exist) fails tier-1,
not review.
"""

import re
from pathlib import Path

from repro.cli import EXPERIMENTS, SERVING_EXPERIMENTS

DOCS = Path(__file__).resolve().parent.parent / "docs"

# "## E7 -- ..." / "## A3 -- ..." / "## E-FORECAST -- ..." (em dash in
# the prose; any dash variant accepted here).
_HEADING = re.compile(r"^## ([EA]\d+|E-[A-Z]+)\b", re.MULTILINE)


def _catalog_ids() -> set:
    text = (DOCS / "experiments.md").read_text(encoding="utf-8")
    return set(_HEADING.findall(text))


def test_every_cli_experiment_is_cataloged():
    missing = set(EXPERIMENTS) - _catalog_ids()
    assert not missing, f"experiments missing from docs/experiments.md: {sorted(missing)}"


def test_every_cataloged_experiment_exists_in_cli():
    stale = _catalog_ids() - set(EXPERIMENTS)
    assert not stale, f"docs/experiments.md documents unknown experiments: {sorted(stale)}"


def test_catalog_has_no_duplicate_sections():
    text = (DOCS / "experiments.md").read_text(encoding="utf-8")
    ids = _HEADING.findall(text)
    assert len(ids) == len(set(ids)), "duplicate experiment sections in docs/experiments.md"


def test_serving_experiments_documented_as_telemetry_capable():
    # The catalog's preamble names exactly the experiments that accept
    # --trace-out/--metrics-out, which the CLI enforces at parse time.
    text = (DOCS / "experiments.md").read_text(encoding="utf-8")
    preamble = text.split("---", 1)[0]
    named = set(re.findall(r"`(E-[A-Z]+)`", preamble))
    assert named == set(SERVING_EXPERIMENTS), (
        f"telemetry-capable list out of date: docs name {sorted(named)}, "
        f"CLI enforces {sorted(SERVING_EXPERIMENTS)}"
    )


def test_docs_tree_cross_links_resolve():
    # Relative markdown links between the doc pages must point at files
    # that exist (catches renames).
    link = re.compile(r"\]\((?!https?://)([^)#]+)\)")
    for page in DOCS.glob("*.md"):
        for target in link.findall(page.read_text(encoding="utf-8")):
            resolved = (page.parent / target).resolve()
            assert resolved.exists(), f"{page.name} links to missing {target}"
