"""Tests for the GPCiM functional model (in-memory logic and addition)."""

import numpy as np
import pytest

from repro.imc.gpcim import GPCiMArray, pack_lanes, ripple_add_bits, unpack_lanes


class TestBitPacking:
    def test_roundtrip_positive_and_negative(self):
        values = [0, 1, -1, 127, -128, 42, -42, 100]
        bits = pack_lanes(values, lane_bits=8)
        assert unpack_lanes(bits, lane_bits=8).tolist() == values

    def test_packed_width(self):
        assert pack_lanes([0] * 32, lane_bits=8).shape == (256,)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_lanes([200], lane_bits=8)

    def test_unpack_bad_length_rejected(self):
        with pytest.raises(ValueError):
            unpack_lanes(np.zeros(10, dtype=np.int64), lane_bits=8)


class TestRippleAdd:
    def test_matches_integer_addition(self):
        for a, b in [(0, 0), (1, 1), (5, 7), (100, 27), (255, 0)]:
            bits_a = np.array([(a >> i) & 1 for i in range(9)], dtype=np.int8)
            bits_b = np.array([(b >> i) & 1 for i in range(9)], dtype=np.int8)
            total, carry = ripple_add_bits(bits_a, bits_b)
            value = sum(int(bit) << i for i, bit in enumerate(total))
            assert value + (carry << 9) == a + b

    def test_carry_out_on_overflow(self):
        bits = np.ones(4, dtype=np.int8)  # 15
        one = np.array([1, 0, 0, 0], dtype=np.int8)
        total, carry = ripple_add_bits(bits, one)
        assert carry == 1
        assert total.tolist() == [0, 0, 0, 0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ripple_add_bits(np.zeros(4, dtype=np.int8), np.zeros(5, dtype=np.int8))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            ripple_add_bits(np.array([0, 2], dtype=np.int8), np.array([0, 1], dtype=np.int8))


class TestGPCiMArray:
    def test_write_read_roundtrip(self):
        array = GPCiMArray(rows=4, lanes=8)
        values = [1, -2, 3, -4, 5, -6, 7, -8]
        array.write_row(0, values)
        assert array.read_row(0).tolist() == values

    def test_unwritten_row_read_rejected(self):
        with pytest.raises(ValueError):
            GPCiMArray(rows=2, lanes=4).read_row(0)

    def test_boolean_ops_match_numpy(self):
        array = GPCiMArray(rows=2, lanes=4)
        array.write_row(0, [3, 5, 0, -1])
        array.write_row(1, [6, 3, 7, 1])
        bits_a = pack_lanes([3, 5, 0, -1], 8)
        bits_b = pack_lanes([6, 3, 7, 1], 8)
        assert np.array_equal(array.bitwise(0, 1, "and"), bits_a & bits_b)
        assert np.array_equal(array.bitwise(0, 1, "or"), bits_a | bits_b)
        assert np.array_equal(array.bitwise(0, 1, "xor"), bits_a ^ bits_b)

    def test_unknown_boolean_op_rejected(self):
        array = GPCiMArray(rows=2, lanes=4)
        array.write_row(0, [0, 0, 0, 0])
        array.write_row(1, [0, 0, 0, 0])
        with pytest.raises(ValueError):
            array.bitwise(0, 1, "nand")

    def test_add_rows_lane_wise(self):
        array = GPCiMArray(rows=2, lanes=4)
        array.write_row(0, [10, -10, 100, 0])
        array.write_row(1, [5, -5, 50, -1])
        assert array.add_rows(0, 1).tolist() == [15, -15, 127, -1]  # 150 saturates

    def test_add_rows_saturates_low(self):
        array = GPCiMArray(rows=2, lanes=1)
        array.write_row(0, [-100])
        array.write_row(1, [-100])
        assert array.add_rows(0, 1).tolist() == [-128]

    def test_accumulate_exact_with_wide_accumulator(self):
        array = GPCiMArray(rows=4, lanes=2)
        rows = [[100, -100], [100, -100], [100, -100], [27, 3]]
        for index, values in enumerate(rows):
            array.write_row(index, values)
        total = array.accumulate_rows(range(4))
        assert total.tolist() == [327, -297]  # exact, beyond int8 range

    def test_accumulate_empty_is_zero(self):
        array = GPCiMArray(rows=2, lanes=3)
        assert array.accumulate_rows([]).tolist() == [0, 0, 0]

    def test_accumulate_saturating_mode_clamps(self):
        array = GPCiMArray(rows=3, lanes=1)
        for index in range(3):
            array.write_row(index, [100])
        assert array.accumulate_rows(range(3), saturate=True).tolist() == [127]

    def test_word_bits_property(self):
        assert GPCiMArray(rows=1, lanes=32, lane_bits=8).word_bits == 256
