"""Tests for the functional TCAM array."""

import numpy as np
import pytest

from repro.imc.tcam import DONT_CARE, TCAMArray


def _bits(string):
    return np.array([int(char) for char in string], dtype=np.int8)


class TestWritePath:
    def test_write_and_read_back(self):
        array = TCAMArray(4, 8)
        array.write_row(1, _bits("10110010"))
        assert array.stored_row(1).tolist() == [1, 0, 1, 1, 0, 0, 1, 0]

    def test_care_mask_stores_dont_care(self):
        array = TCAMArray(2, 4)
        array.write_row(0, _bits("1010"), care_mask=[True, False, True, False])
        stored = array.stored_row(0)
        assert stored[1] == DONT_CARE
        assert stored[3] == DONT_CARE

    def test_bulk_write(self):
        array = TCAMArray(8, 4)
        matrix = np.array([[1, 0, 1, 0], [0, 1, 0, 1]], dtype=np.int8)
        array.write_rows(3, matrix)
        assert array.valid_rows.tolist() == [False] * 3 + [True, True] + [False] * 3

    def test_out_of_range_row_rejected(self):
        with pytest.raises(IndexError):
            TCAMArray(2, 4).write_row(5, _bits("1010"))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            TCAMArray(2, 4).write_row(0, _bits("10"))

    def test_non_binary_bits_rejected(self):
        with pytest.raises(ValueError):
            TCAMArray(2, 4).write_row(0, np.array([0, 1, 2, 0], dtype=np.int8))

    def test_invalidate_removes_from_search(self):
        array = TCAMArray(2, 4)
        array.write_row(0, _bits("1010"))
        assert array.matching_rows(_bits("1010")) == [0]
        array.invalidate_row(0)
        assert array.matching_rows(_bits("1010")) == []


class TestSearch:
    def test_exact_match_single_row(self):
        array = TCAMArray(4, 6)
        array.write_row(2, _bits("110011"))
        flags = array.search_exact(_bits("110011"))
        assert flags.tolist() == [False, False, True, False]

    def test_hamming_distances_correct(self):
        array = TCAMArray(3, 5)
        array.write_row(0, _bits("00000"))
        array.write_row(1, _bits("11111"))
        array.write_row(2, _bits("10101"))
        distances = array.hamming_distances(_bits("10100"))
        assert distances[:3].tolist() == [2.0, 3.0, 1.0]

    def test_invalid_rows_report_worse_than_max(self):
        array = TCAMArray(2, 4)
        array.write_row(0, _bits("1111"))
        distances = array.hamming_distances(_bits("1111"))
        assert distances[1] == 5.0  # cols + 1

    def test_dont_care_never_mismatches(self):
        array = TCAMArray(1, 4)
        # Stored 1,X,X,1: the two X cells can never discharge the matchline.
        array.write_row(0, _bits("1001"), care_mask=[True, False, False, True])
        assert array.hamming_distances(_bits("1111"))[0] == 0.0
        assert array.search_threshold(_bits("1111"), 0)[0]
        # Flipping a *cared* bit does count.
        assert array.hamming_distances(_bits("0111"))[0] == 1.0

    def test_threshold_search_is_fixed_radius(self):
        array = TCAMArray(4, 8)
        array.write_row(0, _bits("00000000"))
        array.write_row(1, _bits("00000011"))
        array.write_row(2, _bits("00001111"))
        array.write_row(3, _bits("11111111"))
        assert array.matching_rows(_bits("00000000"), threshold=2) == [0, 1]
        assert array.matching_rows(_bits("00000000"), threshold=4) == [0, 1, 2]

    def test_nearest_row(self):
        array = TCAMArray(3, 4)
        array.write_row(0, _bits("0000"))
        array.write_row(1, _bits("0111"))
        array.write_row(2, _bits("1111"))
        assert array.nearest_row(_bits("0011")) == 1

    def test_nearest_row_empty_array(self):
        assert TCAMArray(3, 4).nearest_row(_bits("0011")) == -1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            TCAMArray(2, 4).search_threshold(_bits("0000"), -1)

    def test_noise_perturbs_distances_reproducibly(self):
        array = TCAMArray(4, 16)
        rng = np.random.default_rng(7)
        for row in range(4):
            array.write_row(row, rng.integers(0, 2, 16).astype(np.int8))
        query = rng.integers(0, 2, 16).astype(np.int8)
        noisy_a = array.hamming_distances(query, noise_sigma=0.5, rng=np.random.default_rng(3))
        noisy_b = array.hamming_distances(query, noise_sigma=0.5, rng=np.random.default_rng(3))
        clean = array.hamming_distances(query)
        assert np.array_equal(noisy_a, noisy_b)
        assert not np.array_equal(noisy_a, clean)

    def test_search_time_independent_of_row_count(self):
        """Structural O(1) property: one search call touches all rows at once
        (no per-row Python iteration in the hot path)."""
        small = TCAMArray(4, 32)
        large = TCAMArray(1024, 32)
        query = np.zeros(32, dtype=np.int8)
        # Both complete through a single vectorised comparison.
        assert small.hamming_distances(query).shape == (4,)
        assert large.hamming_distances(query).shape == (1024,)
