"""Tests for the analog crossbar MVM model."""

import numpy as np
import pytest

from repro.imc.crossbar import CrossbarArray, CrossbarConfig


def _ideal_config(rows=16, cols=8):
    return CrossbarConfig(
        rows=rows, cols=cols, dac_bits=0, adc_bits=0, conductance_sigma=0.0
    )


class TestConfig:
    def test_invalid_conductance_range_rejected(self):
        with pytest.raises(ValueError):
            CrossbarConfig(g_min_us=5.0, g_max_us=1.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            CrossbarConfig(conductance_sigma=-0.1)

    def test_paper_tile_dimensions(self):
        config = CrossbarConfig()
        assert (config.rows, config.cols) == (256, 128)


class TestIdealOperation:
    def test_matvec_exact_without_noise_or_quantisation(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(0.0, 1.0, size=(16, 8))
        inputs = rng.normal(0.0, 1.0, size=16)
        tile = CrossbarArray(_ideal_config())
        tile.program(weights)
        np.testing.assert_allclose(tile.matvec(inputs), inputs @ weights, rtol=1e-10)

    def test_zero_weights_zero_output(self):
        tile = CrossbarArray(_ideal_config())
        tile.program(np.zeros((16, 8)))
        assert np.allclose(tile.matvec(np.ones(16)), 0.0)

    def test_matvec_before_program_rejected(self):
        with pytest.raises(RuntimeError):
            CrossbarArray(_ideal_config()).matvec(np.ones(16))

    def test_wrong_weight_shape_rejected(self):
        with pytest.raises(ValueError):
            CrossbarArray(_ideal_config()).program(np.zeros((4, 4)))

    def test_wrong_input_shape_rejected(self):
        tile = CrossbarArray(_ideal_config())
        tile.program(np.zeros((16, 8)))
        with pytest.raises(ValueError):
            tile.matvec(np.ones(5))


class TestNonIdealities:
    def test_adc_quantisation_bounds_error(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(0.0, 1.0, size=(16, 8))
        inputs = rng.normal(0.0, 1.0, size=16)
        exact = inputs @ weights
        config = CrossbarConfig(rows=16, cols=8, dac_bits=0, adc_bits=8)
        tile = CrossbarArray(config)
        tile.program(weights)
        outputs = tile.matvec(inputs)
        step = np.abs(exact).max() / 127.0
        assert np.abs(outputs - exact).max() <= step

    def test_lower_adc_resolution_increases_error(self):
        rng = np.random.default_rng(2)
        weights = rng.normal(0.0, 1.0, size=(32, 8))
        inputs = rng.normal(0.0, 1.0, size=32)
        exact = inputs @ weights
        errors = {}
        for bits in (4, 8):
            config = CrossbarConfig(rows=32, cols=8, dac_bits=0, adc_bits=bits)
            tile = CrossbarArray(config)
            tile.program(weights)
            errors[bits] = np.abs(tile.matvec(inputs) - exact).mean()
        assert errors[4] > errors[8]

    def test_conductance_noise_perturbs_output(self):
        rng = np.random.default_rng(3)
        weights = rng.normal(0.0, 1.0, size=(16, 8))
        inputs = rng.normal(0.0, 1.0, size=16)
        noisy_config = CrossbarConfig(
            rows=16, cols=8, dac_bits=0, adc_bits=0, conductance_sigma=0.05
        )
        tile = CrossbarArray(noisy_config, rng=np.random.default_rng(9))
        tile.program(weights)
        outputs = tile.matvec(inputs)
        exact = inputs @ weights
        assert not np.allclose(outputs, exact)
        # ... but remains correlated with the true product.
        correlation = np.corrcoef(outputs, exact)[0, 1]
        assert correlation > 0.95

    def test_noise_applied_at_program_time_is_deterministic_per_seed(self):
        weights = np.eye(16, 8)
        config = CrossbarConfig(rows=16, cols=8, dac_bits=0, adc_bits=0, conductance_sigma=0.1)
        tile_a = CrossbarArray(config, rng=np.random.default_rng(5))
        tile_b = CrossbarArray(config, rng=np.random.default_rng(5))
        tile_a.program(weights)
        tile_b.program(weights)
        inputs = np.ones(16)
        np.testing.assert_allclose(tile_a.matvec(inputs), tile_b.matvec(inputs))
