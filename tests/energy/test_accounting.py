"""Unit tests for the Cost/Ledger composition algebra."""

import pytest

from repro.energy.accounting import Cost, Ledger, ZERO_COST


class TestCostConstruction:
    def test_default_is_zero(self):
        assert Cost() == ZERO_COST

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            Cost(energy_pj=-1.0, latency_ns=1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Cost(energy_pj=1.0, latency_ns=-1.0)

    def test_costs_are_immutable(self):
        cost = Cost(1.0, 2.0)
        with pytest.raises(AttributeError):
            cost.energy_pj = 5.0


class TestUnitConversions:
    def test_energy_unit_chain(self):
        cost = Cost(energy_pj=2.5e6, latency_ns=1.0)
        assert cost.energy_uj == pytest.approx(2.5)
        assert cost.energy_mj == pytest.approx(2.5e-3)

    def test_latency_unit_chain(self):
        cost = Cost(energy_pj=1.0, latency_ns=1500.0)
        assert cost.latency_us == pytest.approx(1.5)
        assert cost.latency_s == pytest.approx(1.5e-6)

    def test_power_watts(self):
        # 22 uJ over 1 us is 22 W (the GPU ET-op operating point).
        cost = Cost(energy_pj=22e6, latency_ns=1000.0)
        assert cost.power_w == pytest.approx(22.0)

    def test_power_of_zero_latency_is_zero(self):
        assert Cost(energy_pj=10.0, latency_ns=0.0).power_w == 0.0


class TestComposition:
    def test_sequential_adds_both(self):
        combined = Cost(1.0, 2.0).then(Cost(3.0, 4.0))
        assert combined == Cost(4.0, 6.0)

    def test_plus_operator_is_sequential(self):
        assert Cost(1.0, 2.0) + Cost(3.0, 4.0) == Cost(4.0, 6.0)

    def test_parallel_takes_max_latency(self):
        combined = Cost(1.0, 2.0).alongside(Cost(3.0, 9.0))
        assert combined == Cost(4.0, 9.0)

    def test_or_operator_is_parallel(self):
        assert (Cost(1.0, 2.0) | Cost(3.0, 9.0)) == Cost(4.0, 9.0)

    def test_repeated_scales_both(self):
        assert Cost(2.0, 3.0).repeated(4) == Cost(8.0, 12.0)

    def test_repeated_zero_is_free(self):
        assert Cost(2.0, 3.0).repeated(0) == ZERO_COST

    def test_repeated_negative_rejected(self):
        with pytest.raises(ValueError):
            Cost(1.0, 1.0).repeated(-1)

    def test_mul_operator(self):
        assert 3 * Cost(2.0, 1.0) == Cost(6.0, 3.0)

    def test_broadcast_scales_energy_only(self):
        spread = Cost(2.0, 3.0).broadcast(5)
        assert spread == Cost(10.0, 3.0)

    def test_broadcast_zero_copies(self):
        assert Cost(2.0, 3.0).broadcast(0) == ZERO_COST

    def test_sequence_fold(self):
        total = Cost.sequence([Cost(1.0, 1.0)] * 3)
        assert total == Cost(3.0, 3.0)

    def test_concurrent_fold(self):
        total = Cost.concurrent([Cost(1.0, 5.0), Cost(2.0, 3.0)])
        assert total == Cost(3.0, 5.0)

    def test_empty_sequence_is_zero(self):
        assert Cost.sequence([]) == ZERO_COST

    def test_composition_associativity(self):
        a, b, c = Cost(1, 2), Cost(3, 4), Cost(5, 6)
        assert (a + b) + c == a + (b + c)

    def test_parallel_commutativity(self):
        a, b = Cost(1, 9), Cost(3, 2)
        assert (a | b) == (b | a)


class TestImprovementFactors:
    def test_speedup_over(self):
        fast, slow = Cost(1.0, 10.0), Cost(1.0, 100.0)
        assert fast.speedup_over(slow) == pytest.approx(10.0)

    def test_energy_reduction_over(self):
        lean, fat = Cost(2.0, 1.0), Cost(200.0, 1.0)
        assert lean.energy_reduction_over(fat) == pytest.approx(100.0)

    def test_zero_latency_speedup_is_infinite(self):
        assert Cost(1.0, 0.0).speedup_over(Cost(1.0, 5.0)) == float("inf")


class TestLedger:
    def test_charge_and_total(self):
        ledger = Ledger()
        ledger.charge("a", Cost(1.0, 2.0))
        ledger.charge("b", Cost(3.0, 4.0))
        assert ledger.total() == Cost(4.0, 6.0)

    def test_by_category_accumulates(self):
        ledger = Ledger()
        ledger.charge("a", Cost(1.0, 1.0))
        ledger.charge("a", Cost(2.0, 2.0))
        assert ledger.by_category()["a"] == Cost(3.0, 3.0)

    def test_categories_preserve_first_seen_order(self):
        ledger = Ledger()
        for name in ("z", "a", "z", "m"):
            ledger.charge(name, Cost(1.0, 1.0))
        assert ledger.categories() == ["z", "a", "m"]

    def test_latency_breakdown_sums_to_one(self):
        ledger = Ledger()
        ledger.charge("a", Cost(0.0, 3.0))
        ledger.charge("b", Cost(0.0, 1.0))
        fractions = ledger.latency_breakdown()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["a"] == pytest.approx(0.75)

    def test_energy_breakdown(self):
        ledger = Ledger()
        ledger.charge("a", Cost(9.0, 1.0))
        ledger.charge("b", Cost(1.0, 1.0))
        assert ledger.energy_breakdown()["a"] == pytest.approx(0.9)

    def test_empty_ledger_breakdown_is_empty(self):
        assert Ledger().latency_breakdown() == {}

    def test_extend_merges_entries(self):
        first, second = Ledger(), Ledger()
        first.charge("a", Cost(1.0, 1.0))
        second.charge("b", Cost(2.0, 2.0))
        first.extend(second)
        assert len(first) == 2
        assert first.total() == Cost(3.0, 3.0)

    def test_iteration_yields_entries(self):
        ledger = Ledger()
        ledger.charge("a", Cost(1.0, 1.0))
        entries = list(ledger)
        assert entries == [("a", Cost(1.0, 1.0))]
