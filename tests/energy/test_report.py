"""Tests for the text report formatters."""

import pytest

from repro.energy.accounting import Cost
from repro.energy.report import format_breakdown, format_comparison, format_cost_table


class TestFormatBreakdown:
    def test_contains_title_and_percentages(self):
        text = format_breakdown("Filtering", {"ET Lookup": 0.53, "NNS": 0.11})
        assert "Filtering" in text
        assert "53.0%" in text
        assert "11.0%" in text

    def test_one_line_per_entry(self):
        text = format_breakdown("t", {"a": 0.5, "b": 0.5})
        assert len(text.splitlines()) == 3  # title + 2 rows


class TestFormatCostTable:
    def test_contains_operation_rows(self):
        text = format_cost_table("Table II", {"CMA read": Cost(3.2, 0.3)})
        assert "CMA read" in text
        assert "3.2" in text
        assert "0.3" in text

    def test_header_labels_units(self):
        text = format_cost_table("t", {})
        assert "Energy (pJ)" in text
        assert "Latency (ns)" in text


class TestFormatComparison:
    def test_speedup_column_computed(self):
        gpu = Cost(energy_pj=200e6, latency_ns=10e3)  # 200 uJ, 10 us
        imars = Cost(energy_pj=0.4e6, latency_ns=0.2e3)  # 0.4 uJ, 0.2 us
        text = format_comparison("Table III", [("movielens", gpu, imars)])
        assert "movielens" in text
        assert "50.0x" in text  # 10 us / 0.2 us
        assert "500.0x" in text  # 200 uJ / 0.4 uJ

    def test_custom_platform_names(self):
        text = format_comparison(
            "t", [], baseline_name="CPU", candidate_name="FPGA"
        )
        assert "CPU" in text
        assert "FPGA" in text


class TestMergeBreakdowns:
    def test_average_of_two(self):
        from repro.energy.report import merge_breakdowns

        merged = merge_breakdowns({"a": 0.6, "b": 0.4}, {"a": 0.2, "b": 0.8})
        assert merged == {"a": pytest.approx(0.4), "b": pytest.approx(0.6)}

    def test_empty_input(self):
        from repro.energy.report import merge_breakdowns

        assert merge_breakdowns() == {}

    def test_missing_keys_treated_as_zero(self):
        from repro.energy.report import merge_breakdowns

        merged = merge_breakdowns({"a": 1.0}, {})
        assert merged["a"] == pytest.approx(0.5)
