"""Tests for throughput/improvement metrics."""

import pytest

from repro.energy.accounting import Cost
from repro.metrics.throughput import energy_reduction, queries_per_second, speedup


class TestQPS:
    def test_paper_scale_example(self):
        """45.4 us per query is ~22025 queries per second (Sec. IV-C3)."""
        per_query = Cost(energy_pj=1.0, latency_ns=45.4e3)
        assert queries_per_second(per_query) == pytest.approx(22026, rel=0.001)

    def test_zero_latency_rejected(self):
        with pytest.raises(ValueError):
            queries_per_second(Cost(1.0, 0.0))


class TestImprovements:
    def test_speedup(self):
        assert speedup(Cost(1, 100), Cost(1, 10)) == pytest.approx(10.0)

    def test_energy_reduction(self):
        assert energy_reduction(Cost(713, 1), Cost(1, 1)) == pytest.approx(713.0)

    def test_zero_candidate_latency_rejected(self):
        with pytest.raises(ValueError):
            speedup(Cost(1, 1), Cost(1, 0))

    def test_zero_candidate_energy_rejected(self):
        with pytest.raises(ValueError):
            energy_reduction(Cost(1, 1), Cost(0, 1))
