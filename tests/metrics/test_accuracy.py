"""Tests for accuracy metrics."""

import numpy as np
import pytest

from repro.metrics.accuracy import auc_score, hit_rate, recall_at_k


class TestHitRate:
    def test_paper_definition(self):
        """HR = hits / test users."""
        retrieved = [[1, 2, 3], [4, 5], [7]]
        positives = [2, 9, 7]
        assert hit_rate(retrieved, positives) == pytest.approx(2.0 / 3.0)

    def test_all_hits(self):
        assert hit_rate([[0], [1]], [0, 1]) == 1.0

    def test_no_hits(self):
        assert hit_rate([[0], [1]], [5, 5]) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            hit_rate([[0]], [0, 1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hit_rate([], [])

    def test_accepts_numpy_positives(self):
        assert hit_rate([[3]], np.array([3])) == 1.0


class TestRecallAtK:
    def test_partial_recall(self):
        retrieved = [[1, 2, 3, 4]]
        relevant = [[1, 9]]
        assert recall_at_k(retrieved, relevant, k=4) == pytest.approx(0.5)

    def test_k_truncates(self):
        retrieved = [[9, 9, 1]]
        relevant = [[1]]
        assert recall_at_k(retrieved, relevant, k=2) == 0.0
        assert recall_at_k(retrieved, relevant, k=3) == 1.0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k([[1]], [[1]], k=0)

    def test_queries_without_relevant_skipped(self):
        assert recall_at_k([[1], [2]], [[1], []], k=1) == 1.0

    def test_all_empty_relevant_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k([[1]], [[]], k=1)


class TestAUC:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(labels, scores) == 1.0

    def test_inverted_scores(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(labels, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=2000)
        scores = rng.random(2000)
        assert auc_score(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_averaged(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert auc_score(labels, scores) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            auc_score(np.array([1, 1]), np.array([0.5, 0.6]))

    def test_matches_naive_pair_counting(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=60)
        if labels.sum() in (0, 60):
            labels[0] = 1 - labels[0]
        scores = rng.random(60)
        positives = scores[labels == 1]
        negatives = scores[labels == 0]
        wins = sum(
            1.0 if p > n else (0.5 if p == n else 0.0)
            for p in positives
            for n in negatives
        )
        naive = wins / (len(positives) * len(negatives))
        assert auc_score(labels, scores) == pytest.approx(naive)
