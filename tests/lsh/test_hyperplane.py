"""Tests for random-hyperplane (SimHash) LSH."""

import numpy as np
import pytest

from repro.lsh.hyperplane import RandomHyperplaneLSH, expected_collision_probability


class TestSignatures:
    def test_shape_and_binary(self):
        hasher = RandomHyperplaneLSH(8, signature_bits=64, seed=0)
        signatures = hasher.signatures(np.random.default_rng(0).normal(size=(5, 8)))
        assert signatures.shape == (5, 64)
        assert set(np.unique(signatures)).issubset({0, 1})

    def test_deterministic_given_seed(self):
        vector = np.random.default_rng(1).normal(size=16)
        a = RandomHyperplaneLSH(16, 128, seed=7).signature(vector)
        b = RandomHyperplaneLSH(16, 128, seed=7).signature(vector)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        vector = np.random.default_rng(1).normal(size=16)
        a = RandomHyperplaneLSH(16, 128, seed=1).signature(vector)
        b = RandomHyperplaneLSH(16, 128, seed=2).signature(vector)
        assert not np.array_equal(a, b)

    def test_scale_invariance(self):
        """SimHash depends only on direction -- cosine's key property."""
        hasher = RandomHyperplaneLSH(12, 64, seed=0)
        vector = np.random.default_rng(2).normal(size=12)
        np.testing.assert_array_equal(
            hasher.signature(vector), hasher.signature(10.0 * vector)
        )

    def test_identical_vectors_distance_zero(self):
        hasher = RandomHyperplaneLSH(8, 256, seed=0)
        vector = np.random.default_rng(3).normal(size=8)
        signature = hasher.signature(vector)
        assert hasher.hamming_to_items(signature, signature[None, :])[0] == 0

    def test_opposite_vectors_distance_full(self):
        hasher = RandomHyperplaneLSH(8, 256, seed=0)
        vector = np.random.default_rng(4).normal(size=8)
        sig_pos = hasher.signature(vector)
        sig_neg = hasher.signature(-vector)
        # Every hyperplane separates v from -v (ignoring measure-zero ties).
        assert hasher.hamming_to_items(sig_pos, sig_neg[None, :])[0] == 256

    def test_wrong_dimension_rejected(self):
        with pytest.raises(ValueError):
            RandomHyperplaneLSH(8, 64).signature(np.zeros(9))

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            RandomHyperplaneLSH(0, 64)
        with pytest.raises(ValueError):
            RandomHyperplaneLSH(8, 0)


class TestCollisionTheory:
    def test_orthogonal_vectors_agree_half_the_time(self):
        assert expected_collision_probability(0.0) == pytest.approx(0.5)

    def test_identical_vectors_always_agree(self):
        assert expected_collision_probability(1.0) == pytest.approx(1.0)

    def test_opposite_vectors_never_agree(self):
        assert expected_collision_probability(-1.0) == pytest.approx(0.0)

    def test_empirical_collision_matches_theory(self):
        """Large signatures: measured agreement -> 1 - theta/pi."""
        rng = np.random.default_rng(5)
        hasher = RandomHyperplaneLSH(24, 8192, seed=11)
        for _ in range(3):
            a = rng.normal(size=24)
            b = a + rng.normal(scale=0.7, size=24)
            cosine = float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))
            sig_a, sig_b = hasher.signatures(np.stack([a, b]))
            measured = float((sig_a == sig_b).mean())
            assert measured == pytest.approx(
                expected_collision_probability(cosine), abs=0.03
            )

    def test_expected_hamming_monotone_in_angle(self):
        """Closer vectors -> smaller expected signature distance."""
        rng = np.random.default_rng(6)
        hasher = RandomHyperplaneLSH(16, 4096, seed=3)
        base = rng.normal(size=16)
        distances = []
        for noise in (0.1, 0.5, 2.0):
            other = base + rng.normal(scale=noise, size=16)
            sig_a, sig_b = hasher.signatures(np.stack([base, other]))
            distances.append(int((sig_a != sig_b).sum()))
        assert distances[0] < distances[1] < distances[2]
