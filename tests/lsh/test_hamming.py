"""Tests for the Hamming-distance utilities."""

import numpy as np
import pytest

from repro.lsh.hamming import (
    hamming_distance,
    hamming_matrix,
    pack_bits,
    pairwise_hamming,
    unpack_bits,
)


class TestPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(5, 37)).astype(np.uint8)
        packed = pack_bits(bits)
        np.testing.assert_array_equal(unpack_bits(packed, 37), bits)

    def test_packed_width(self):
        assert pack_bits(np.zeros((2, 16), dtype=np.uint8)).shape == (2, 2)
        assert pack_bits(np.zeros((2, 17), dtype=np.uint8)).shape == (2, 3)

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.full((1, 8), 3, dtype=np.uint8))

    def test_unpack_too_many_bits_rejected(self):
        with pytest.raises(ValueError):
            unpack_bits(np.zeros((1, 1), dtype=np.uint8), 9)


class TestDistances:
    def test_hamming_distance_simple(self):
        assert hamming_distance([1, 0, 1, 1], [1, 1, 1, 0]) == 2

    def test_distance_to_self_is_zero(self):
        bits = np.random.default_rng(1).integers(0, 2, 64)
        assert hamming_distance(bits, bits) == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hamming_distance([1, 0], [1, 0, 1])

    def test_pairwise_matches_naive(self):
        rng = np.random.default_rng(2)
        query = rng.integers(0, 2, 100).astype(np.uint8)
        items = rng.integers(0, 2, size=(20, 100)).astype(np.uint8)
        fast = pairwise_hamming(query, items)
        naive = np.array([hamming_distance(query, row) for row in items])
        np.testing.assert_array_equal(fast, naive)

    def test_pairwise_popcount_handles_padding(self):
        """Widths that are not byte multiples must not count pad bits."""
        query = np.ones(13, dtype=np.uint8)
        items = np.zeros((1, 13), dtype=np.uint8)
        assert pairwise_hamming(query, items)[0] == 13

    def test_matrix_symmetry_and_diagonal(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=(6, 32)).astype(np.uint8)
        matrix = hamming_matrix(bits, bits)
        np.testing.assert_array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    def test_matrix_triangle_inequality(self):
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, size=(5, 24)).astype(np.uint8)
        d = hamming_matrix(bits, bits)
        for i in range(5):
            for j in range(5):
                for k in range(5):
                    assert d[i, j] <= d[i, k] + d[k, j]

    def test_matrix_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hamming_matrix(np.zeros((2, 8)), np.zeros((2, 9)))
