"""Tests for exact (FAISS-flat substitute) nearest-neighbour search."""

import numpy as np
import pytest

from repro.nns.exact import (
    cosine_similarities,
    cosine_topk,
    inner_product_topk,
    topk_indices,
)


class TestTopKIndices:
    def test_returns_sorted_descending(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert topk_indices(scores, 3).tolist() == [1, 3, 2]

    def test_k_larger_than_n_clamps(self):
        assert len(topk_indices(np.array([1.0, 2.0]), 10)) == 2

    def test_k_below_one_rejected(self):
        with pytest.raises(ValueError):
            topk_indices(np.array([1.0]), 0)

    def test_matches_full_argsort(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=500)
        fast = topk_indices(scores, 25)
        slow = np.argsort(-scores)[:25]
        np.testing.assert_array_equal(fast, slow)


class TestCosine:
    def test_self_similarity_is_one(self):
        items = np.random.default_rng(1).normal(size=(10, 8))
        similarities = cosine_similarities(items[3], items)
        assert similarities[3] == pytest.approx(1.0)

    def test_scale_invariance(self):
        items = np.random.default_rng(2).normal(size=(5, 4))
        query = items[0]
        np.testing.assert_allclose(
            cosine_similarities(query, items),
            cosine_similarities(5.0 * query, items),
        )

    def test_zero_norm_item_gets_zero(self):
        items = np.zeros((2, 4))
        items[1] = [1.0, 0.0, 0.0, 0.0]
        similarities = cosine_similarities(np.ones(4), items)
        assert similarities[0] == 0.0

    def test_topk_finds_planted_neighbour(self):
        rng = np.random.default_rng(3)
        items = rng.normal(size=(200, 16))
        target = 57
        query = items[target] + rng.normal(scale=0.05, size=16)
        winners, scores = cosine_topk(query, items, 5)
        assert winners[0] == target
        assert scores[0] > 0.95

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cosine_topk(np.zeros(4), np.zeros((3, 5)), 2)


class TestInnerProduct:
    def test_prefers_large_norm_items(self):
        """Unlike cosine, IP rewards magnitude."""
        query = np.array([1.0, 0.0])
        items = np.array([[1.0, 0.0], [10.0, 0.0]])
        winners, _ = inner_product_topk(query, items, 1)
        assert winners[0] == 1
        cos_winners, _ = cosine_topk(query, items, 2)
        # Cosine ties; stable order keeps index 0 first.
        assert cos_winners.tolist() == [0, 1]

    def test_scores_are_dot_products(self):
        rng = np.random.default_rng(4)
        items = rng.normal(size=(20, 6))
        query = rng.normal(size=6)
        winners, scores = inner_product_topk(query, items, 20)
        np.testing.assert_allclose(scores, (items @ query)[winners])
