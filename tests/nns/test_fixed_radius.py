"""Tests for fixed-radius candidate selection."""

import numpy as np
import pytest

from repro.nns.fixed_radius import (
    calibrate_population_radius,
    cap_candidates,
    fixed_radius_candidates,
)


class TestFixedRadius:
    def test_selects_within_radius_ascending(self):
        distances = np.array([5, 1, 9, 3, 1])
        np.testing.assert_array_equal(
            fixed_radius_candidates(distances, 3), [1, 3, 4]
        )

    def test_radius_zero(self):
        distances = np.array([0, 1, 0])
        np.testing.assert_array_equal(fixed_radius_candidates(distances, 0), [0, 2])

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            fixed_radius_candidates(np.array([1]), -1)

    def test_empty_result_possible(self):
        assert fixed_radius_candidates(np.array([9, 9]), 1).size == 0


class TestPopulationCalibration:
    def test_mean_count_near_target(self):
        rng = np.random.default_rng(0)
        rows = [rng.integers(0, 128, size=1000) for _ in range(16)]
        radius = calibrate_population_radius(rows, target_mean_candidates=75, max_radius=128)
        counts = [(row <= radius).sum() for row in rows]
        assert abs(np.mean(counts) - 75) < 20

    def test_larger_target_larger_radius(self):
        rng = np.random.default_rng(1)
        rows = [rng.integers(0, 64, size=500) for _ in range(8)]
        small = calibrate_population_radius(rows, 10, 64)
        large = calibrate_population_radius(rows, 200, 64)
        assert small <= large

    def test_no_rows_rejected(self):
        with pytest.raises(ValueError):
            calibrate_population_radius([], 10, 64)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            calibrate_population_radius([np.array([1])], 0.0, 64)


class TestCapCandidates:
    def test_under_cap_untouched(self):
        candidates = np.array([1, 5, 9])
        distances = np.arange(10)
        np.testing.assert_array_equal(
            cap_candidates(candidates, distances, 5), candidates
        )

    def test_over_cap_keeps_closest(self):
        candidates = np.array([0, 1, 2, 3])
        distances = np.array([9, 1, 5, 2])
        kept = cap_candidates(candidates, distances, 2)
        np.testing.assert_array_equal(kept, [1, 3])  # the two smallest distances

    def test_result_sorted_by_index(self):
        candidates = np.array([3, 0, 2])
        distances = np.array([1, 9, 1, 1])
        kept = cap_candidates(candidates, distances, 2)
        assert list(kept) == sorted(kept)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            cap_candidates(np.array([0]), np.array([1]), 0)
