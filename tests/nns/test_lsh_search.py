"""Tests for the LSH-Hamming index."""

import numpy as np
import pytest

from repro.lsh.hamming import pairwise_hamming
from repro.nns.lsh_search import LSHHammingIndex


def _index(num_items=300, dim=16, bits=256, seed=0):
    items = np.random.default_rng(seed).normal(size=(num_items, dim))
    return items, LSHHammingIndex(items, signature_bits=bits, seed=seed)


class TestConstruction:
    def test_signature_matrix_shape(self):
        _, index = _index(num_items=50, bits=128)
        assert index.item_signatures.shape == (50, 128)

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            LSHHammingIndex(np.zeros((0, 8)))

    def test_1d_items_rejected(self):
        with pytest.raises(ValueError):
            LSHHammingIndex(np.zeros(8))


class TestSearch:
    def test_exact_item_found_at_distance_zero(self):
        items, index = _index()
        winners, distances = index.search_topk(items[42], 1)
        assert winners[0] == 42
        assert distances[0] == 0

    def test_topk_orders_by_distance(self):
        items, index = _index()
        _, distances = index.search_topk(items[0] * 1.01, 10)
        assert all(a <= b for a, b in zip(distances, distances[1:]))

    def test_distances_match_manual_computation(self):
        items, index = _index(num_items=40)
        query = np.random.default_rng(9).normal(size=16)
        expected = pairwise_hamming(
            index.query_signature(query), index.item_signatures
        )
        np.testing.assert_array_equal(index.distances(query), expected)

    def test_radius_search_is_fixed_radius(self):
        items, index = _index()
        query = items[10]
        distances = index.distances(query)
        radius = int(np.sort(distances)[5])
        found = index.search_radius(query, radius)
        np.testing.assert_array_equal(found, np.flatnonzero(distances <= radius))

    def test_radius_zero_finds_self(self):
        items, index = _index()
        assert 7 in index.search_radius(items[7], 0)

    def test_negative_radius_rejected(self):
        items, index = _index()
        with pytest.raises(ValueError):
            index.search_radius(items[0], -1)

    def test_recall_against_exact_cosine(self):
        """LSH top-k substantially overlaps exact cosine top-k (Sec. III-B's
        justification for the substitution)."""
        from repro.nns.exact import cosine_topk

        items, index = _index(num_items=500, bits=256, seed=1)
        rng = np.random.default_rng(2)
        overlaps = []
        for _ in range(20):
            query = rng.normal(size=16)
            exact, _ = cosine_topk(query, items, 10)
            approx, _ = index.search_topk(query, 10)
            overlaps.append(len(set(exact) & set(approx)) / 10.0)
        assert float(np.mean(overlaps)) > 0.5


class TestRadiusCalibration:
    def test_calibrated_radius_reaches_target(self):
        items, index = _index()
        query = np.random.default_rng(3).normal(size=16)
        radius = index.calibrate_radius(query, target_count=25)
        assert len(index.search_radius(query, radius)) >= 25

    def test_smaller_target_smaller_radius(self):
        items, index = _index()
        query = np.random.default_rng(4).normal(size=16)
        assert index.calibrate_radius(query, 5) <= index.calibrate_radius(query, 50)

    def test_invalid_target_rejected(self):
        items, index = _index()
        with pytest.raises(ValueError):
            index.calibrate_radius(items[0], 0)
