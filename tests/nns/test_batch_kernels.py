"""Batched serving kernels pinned against their scalar references.

Every multi-query kernel the vectorised serve path runs -- packed-word
Hamming scans, batched fixed-radius selection, multi-query top-k and the
histogram radius calibration -- must return exactly what the per-query
reference code returns, element for element.  These tests pin that
contract over exhaustive small cases and randomised fuzzing.
"""

import numpy as np
import pytest

from repro.lsh.hamming import (
    hamming_matrix,
    hamming_matrix_packed,
    pack_bits_u64,
    pairwise_hamming,
    unpack_bits,
)
from repro.nns.exact import topk_indices_batch
from repro.nns.fixed_radius import (
    calibrate_population_radius,
    cap_candidates,
    fixed_radius_candidates,
    fixed_radius_candidates_batch,
)


class TestPackedHamming:
    @pytest.mark.parametrize("num_bits", [1, 7, 63, 64, 65, 127, 256])
    def test_matches_unpacked_matrix(self, num_bits):
        rng = np.random.default_rng(num_bits)
        queries = rng.integers(0, 2, size=(5, num_bits), dtype=np.uint8)
        items = rng.integers(0, 2, size=(11, num_bits), dtype=np.uint8)
        packed = hamming_matrix_packed(
            pack_bits_u64(queries), pack_bits_u64(items)
        )
        np.testing.assert_array_equal(packed, hamming_matrix(queries, items))

    def test_matches_pairwise(self):
        rng = np.random.default_rng(1)
        queries = rng.integers(0, 2, size=(4, 256), dtype=np.uint8)
        items = rng.integers(0, 2, size=(9, 256), dtype=np.uint8)
        packed = hamming_matrix_packed(
            pack_bits_u64(queries), pack_bits_u64(items)
        )
        for row, query in enumerate(queries):
            np.testing.assert_array_equal(
                packed[row], pairwise_hamming(query, items)
            )

    def test_pad_bits_do_not_count(self):
        # Widths that are not multiples of 64 pad with zero bits; the
        # distance between identical rows must stay zero.
        bits = np.ones((2, 65), dtype=np.uint8)
        packed = pack_bits_u64(bits)
        assert packed.shape[1] == 2
        np.testing.assert_array_equal(
            hamming_matrix_packed(packed, packed), np.zeros((2, 2))
        )

    def test_word_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hamming_matrix_packed(
                np.zeros((1, 2), dtype=np.uint64),
                np.zeros((1, 3), dtype=np.uint64),
            )

    def test_pack_roundtrip_through_bytes(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, size=(3, 100), dtype=np.uint8)
        words = pack_bits_u64(bits)
        recovered = unpack_bits(words.view(np.uint8), 100)
        np.testing.assert_array_equal(recovered, bits)


class TestTopkIndicesBatch:
    @staticmethod
    def reference(matrix, k, counts=None):
        rows = []
        for index, row in enumerate(matrix):
            masked = np.asarray(row, dtype=np.float64).copy()
            if counts is not None:
                masked[int(counts[index]) :] = -np.inf
            rows.append(np.argsort(-masked, kind="stable")[:k])
        return np.asarray(rows)

    def test_matches_stable_argsort(self):
        rng = np.random.default_rng(0)
        for trial in range(50):
            num_queries = int(rng.integers(1, 8))
            width = int(rng.integers(1, 30))
            k = int(rng.integers(1, width + 4))
            # Heavy ties: scores drawn from a handful of values.
            matrix = rng.choice([0.1, 0.5, 0.5, 0.9], size=(num_queries, width))
            got = topk_indices_batch(matrix, k)
            np.testing.assert_array_equal(
                got, self.reference(matrix, min(k, width))
            )

    def test_valid_counts_mask_padding(self):
        rng = np.random.default_rng(1)
        for trial in range(50):
            num_queries = int(rng.integers(1, 8))
            width = int(rng.integers(2, 20))
            k = int(rng.integers(1, width + 2))
            counts = rng.integers(1, width + 1, size=num_queries)
            matrix = rng.choice([0.2, 0.7, 0.7], size=(num_queries, width))
            got = topk_indices_batch(matrix, k, valid_counts=counts)
            np.testing.assert_array_equal(
                got, self.reference(matrix, min(k, width), counts)
            )

    def test_empty_batch(self):
        assert topk_indices_batch(np.empty((0, 5)), 3).shape == (0, 3)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            topk_indices_batch(np.zeros((1, 3)), 0)


class TestFixedRadiusBatch:
    @staticmethod
    def reference_row(distances, radius, cap):
        candidates = fixed_radius_candidates(distances, radius)
        if candidates.shape[0] == 0:
            candidates = np.array([int(np.argmin(distances))])
        return cap_candidates(candidates, distances, cap)

    def test_matches_scalar_chain(self):
        rng = np.random.default_rng(0)
        for trial in range(100):
            num_queries = int(rng.integers(1, 10))
            num_items = int(rng.integers(1, 40))
            radius = int(rng.integers(0, 12))
            cap = int(rng.integers(1, 15))
            distances = rng.integers(0, 16, size=(num_queries, num_items))
            padded, counts = fixed_radius_candidates_batch(
                distances, radius, cap
            )
            for row in range(num_queries):
                expected = self.reference_row(distances[row], radius, cap)
                assert counts[row] == expected.shape[0]
                np.testing.assert_array_equal(
                    padded[row, : counts[row]], expected
                )
                # Padding is the one-past-the-end sentinel only.
                assert (padded[row, counts[row] :] == num_items).all()

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            fixed_radius_candidates_batch(np.zeros((1, 2)), -1, 3)
        with pytest.raises(ValueError):
            fixed_radius_candidates_batch(np.zeros((1, 2)), 1, 0)
        with pytest.raises(ValueError):
            fixed_radius_candidates_batch(np.zeros(3), 1, 1)


class TestCalibratePopulationRadiusPin:
    @staticmethod
    def reference(distance_rows, target, max_radius):
        # The pre-vectorisation implementation: scan radii, per-radius
        # per-row counting, stop once the gap stops shrinking.
        rows = [np.asarray(row, dtype=np.int64) for row in distance_rows]
        best_radius, best_gap = 0, float("inf")
        for radius in range(max_radius + 1):
            mean_count = float(
                np.mean([(row <= radius).sum() for row in rows])
            )
            gap = abs(mean_count - target)
            if gap < best_gap:
                best_radius, best_gap = radius, gap
        return best_radius

    def test_identical_radius_selection(self):
        rng = np.random.default_rng(0)
        for trial in range(60):
            num_rows = int(rng.integers(1, 8))
            num_items = int(rng.integers(1, 50))
            max_radius = int(rng.integers(0, 40))
            target = float(rng.uniform(0.5, 30.0))
            rows = [
                rng.integers(0, max(1, max_radius + 10), size=num_items)
                for _ in range(num_rows)
            ]
            assert calibrate_population_radius(
                rows, target, max_radius
            ) == self.reference(rows, target, max_radius)

    def test_ragged_rows(self):
        rows = [np.array([0, 1, 5]), np.array([2])]
        assert calibrate_population_radius(rows, 2.0, 8) == self.reference(
            rows, 2.0, 8
        )

    def test_negative_distances_rejected(self):
        with pytest.raises(ValueError):
            calibrate_population_radius([np.array([-1, 2])], 1.0, 4)
