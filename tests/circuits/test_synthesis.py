"""Tests for the adder-tree / serial-bus synthesis estimator."""

import pytest

from repro.circuits.synthesis import AdderTreeSynthesis, SerialBusSynthesis


class TestAdderTreeStructure:
    def test_fan_in_f_needs_f_minus_1_adders(self):
        tree = AdderTreeSynthesis(fan_in=8)
        assert tree.num_adders == 7

    def test_balanced_depth(self):
        assert AdderTreeSynthesis(fan_in=2).num_levels == 1
        assert AdderTreeSynthesis(fan_in=4).num_levels == 2
        assert AdderTreeSynthesis(fan_in=32).num_levels == 5
        assert AdderTreeSynthesis(fan_in=33).num_levels == 6

    def test_fan_in_below_two_rejected(self):
        with pytest.raises(ValueError):
            AdderTreeSynthesis(fan_in=1)

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            AdderTreeSynthesis(fan_in=4, span_mm=-1.0)

    def test_area_scales_with_fan_in_and_width(self):
        small = AdderTreeSynthesis(fan_in=4, width_bits=64)
        large = AdderTreeSynthesis(fan_in=8, width_bits=256)
        assert large.area_fa_equivalents() > small.area_fa_equivalents()


class TestCalibratedDesignPoints:
    """The estimator is fitted to land on the paper's two Table II trees."""

    def test_intra_mat_point(self):
        tree = AdderTreeSynthesis(fan_in=32, width_bits=256, span_mm=0.4)
        cost = tree.add_cost()
        assert cost.energy_pj == pytest.approx(137.0, rel=0.03)
        assert cost.latency_ns == pytest.approx(14.7, rel=0.03)

    def test_intra_bank_point(self):
        tree = AdderTreeSynthesis(fan_in=4, width_bits=256, span_mm=4.4)
        cost = tree.add_cost()
        assert cost.energy_pj == pytest.approx(956.0, rel=0.03)
        assert cost.latency_ns == pytest.approx(44.2, rel=0.03)

    def test_wire_span_dominates_bank_tree(self):
        """The fan-in-4 bank tree is slower than the fan-in-32 mat tree
        purely because of its physical span -- the paper's counterintuitive
        Table II ordering."""
        short_span = AdderTreeSynthesis(fan_in=4, width_bits=256, span_mm=0.4)
        long_span = AdderTreeSynthesis(fan_in=4, width_bits=256, span_mm=4.4)
        assert long_span.add_cost().latency_ns > short_span.add_cost().latency_ns
        mat_tree = AdderTreeSynthesis(fan_in=32, width_bits=256, span_mm=0.4)
        assert long_span.add_cost().latency_ns > mat_tree.add_cost().latency_ns


class TestSerialBus:
    def test_beats_round_up(self):
        bus = SerialBusSynthesis(width_bits=256)
        assert bus.beats_for(256) == 1
        assert bus.beats_for(257) == 2
        assert bus.beats_for(0) == 0

    def test_zero_payload_is_free(self):
        bus = SerialBusSynthesis(width_bits=256)
        cost = bus.transfer_cost(0)
        assert cost.energy_pj == 0.0
        assert cost.latency_ns == 0.0

    def test_narrow_bus_serialises(self):
        narrow = SerialBusSynthesis(width_bits=64)
        wide = SerialBusSynthesis(width_bits=512)
        payload = 1024
        assert narrow.transfer_cost(payload).latency_ns > wide.transfer_cost(payload).latency_ns

    def test_energy_scales_with_payload_not_width(self):
        bus = SerialBusSynthesis(width_bits=128)
        assert bus.transfer_cost(2048).energy_pj == pytest.approx(
            2.0 * bus.transfer_cost(1024).energy_pj
        )

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            SerialBusSynthesis(width_bits=0)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            SerialBusSynthesis(width_bits=64).beats_for(-1)
