"""Tests for the Preisach FeFET device model."""

import numpy as np
import pytest

from repro.circuits.fefet import FeFET, FeFETParams, memory_window


class TestParams:
    def test_defaults_valid(self):
        FeFETParams()

    def test_negative_ps_rejected(self):
        with pytest.raises(ValueError):
            FeFETParams(ps_uc_cm2=-1.0)

    def test_pr_above_ps_rejected(self):
        with pytest.raises(ValueError):
            FeFETParams(ps_uc_cm2=10.0, pr_uc_cm2=20.0)

    def test_nonpositive_coercive_rejected(self):
        with pytest.raises(ValueError):
            FeFETParams(vc_v=0.0)


class TestHysteresis:
    def test_initial_state_is_erased(self):
        device = FeFET()
        assert device.stored_bit == 0
        assert device.polarisation_uc_cm2 < 0.0

    def test_program_flips_polarisation_positive(self):
        device = FeFET()
        device.program()
        assert device.polarisation_uc_cm2 > 0.0
        assert device.stored_bit == 1

    def test_erase_after_program_restores_zero(self):
        device = FeFET()
        device.program()
        device.erase()
        assert device.stored_bit == 0

    def test_write_bit_roundtrip(self):
        device = FeFET()
        for bit in (1, 0, 1, 1, 0):
            device.write_bit(bit)
            assert device.stored_bit == bit

    def test_write_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            FeFET().write_bit(2)

    def test_sub_coercive_pulse_barely_moves_state(self):
        device = FeFET()
        device.erase()
        before = device.polarisation_uc_cm2
        device.apply_pulse(0.1)  # well below Vc = 1 V
        after = device.polarisation_uc_cm2
        assert abs(after - before) < 0.1 * device.params.ps_uc_cm2

    def test_saturating_pulse_reaches_near_ps(self):
        device = FeFET()
        device.apply_pulse(5.0)
        assert device.polarisation_uc_cm2 > 0.95 * device.params.ps_uc_cm2

    def test_hysteresis_is_history_dependent(self):
        # Ascending to +2V from erased vs from programmed must differ.
        from_erased = FeFET()
        from_erased.apply_pulse(1.2)
        from_programmed = FeFET()
        from_programmed.program()
        from_programmed.apply_pulse(1.2)
        assert from_programmed.polarisation_uc_cm2 > from_erased.polarisation_uc_cm2

    def test_polarisation_monotone_under_increasing_pulses(self):
        device = FeFET()
        values = []
        for amplitude in np.linspace(0.0, 4.0, 9):
            device.apply_pulse(float(amplitude))
            values.append(device.polarisation_uc_cm2)
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


class TestSensing:
    def test_programmed_device_conducts_more(self):
        device = FeFET()
        device.erase()
        off_current = device.read_current_ma()
        device.program()
        on_current = device.read_current_ma()
        assert on_current > off_current

    def test_below_threshold_cuts_off(self):
        device = FeFET()
        device.erase()  # high VT
        assert device.read_current_ma(vgs_v=0.2) == 0.0

    def test_memory_window_positive_and_near_spec(self):
        window = memory_window()
        params = FeFETParams()
        assert window > 0.0
        assert window == pytest.approx(params.window_v, rel=0.15)

    def test_vth_variation_applied(self):
        params = FeFETParams(vth_sigma_v=0.1)
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(2)
        first = FeFET(params, rng=rng_a)
        second = FeFET(params, rng=rng_b)
        assert first.vth_v != second.vth_v
