"""Tests for the CAM / RAM sense amplifiers and the priority encoder."""

import numpy as np
import pytest

from repro.circuits.sense_amp import CAMSenseAmp, PriorityEncoder, RAMSenseAmp


class TestCAMSenseAmp:
    def test_current_below_reference_is_match(self):
        amp = CAMSenseAmp()
        assert amp.decide(mismatch_current_ma=0.1, reference_current_ma=0.5)

    def test_current_above_reference_is_mismatch(self):
        amp = CAMSenseAmp()
        assert not amp.decide(mismatch_current_ma=0.9, reference_current_ma=0.5)

    def test_negative_reference_rejected(self):
        with pytest.raises(ValueError):
            CAMSenseAmp().decide(0.1, -0.5)

    def test_vectorised_rows(self):
        amp = CAMSenseAmp()
        flags = amp.decide_rows([0.1, 0.9, 0.3], reference_current_ma=0.5)
        assert flags.tolist() == [True, False, True]


class TestRAMSenseAmp:
    def test_single_reference_binary_decision(self):
        amp = RAMSenseAmp()
        assert amp.sense_bit(amp.reference_low_ma * 2.0) == 1
        assert amp.sense_bit(amp.reference_low_ma * 0.5) == 0

    def test_dual_reference_counts_cells(self):
        amp = RAMSenseAmp()
        assert amp.sense_dual(0.0) == 0
        assert amp.sense_dual(0.05) == 1
        assert amp.sense_dual(0.1) == 2

    def test_dual_sense_implements_boolean_logic(self):
        """count==2 is AND, count>=1 is OR, count==1 is XOR."""
        amp = RAMSenseAmp()
        cell_on = 0.05  # one conducting cell's current
        for a in (0, 1):
            for b in (0, 1):
                count = amp.sense_dual(cell_on * (a + b))
                assert (count == 2) == bool(a and b)
                assert (count >= 1) == bool(a or b)
                assert (count == 1) == bool(a ^ b)


class TestPriorityEncoder:
    def test_encodes_ascending_indices(self):
        encoder = PriorityEncoder()
        assert encoder.encode([False, True, False, True]) == [1, 3]

    def test_first_returns_lowest_index(self):
        encoder = PriorityEncoder()
        assert encoder.first([False, False, True, True]) == 2

    def test_first_with_no_match(self):
        assert PriorityEncoder().first([False, False]) == -1

    def test_accepts_numpy_flags(self):
        flags = np.array([True, False, True])
        assert PriorityEncoder().encode(flags) == [0, 2]
