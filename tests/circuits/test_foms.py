"""Tests for the Table II FoM registry and derivation."""

import pytest

from repro.circuits.foms import (
    TABLE_II,
    derive_foms,
    intra_bank_tree,
    intra_mat_tree,
)
from repro.energy.accounting import Cost


class TestRegistry:
    def test_pinned_values_match_table_ii(self):
        assert TABLE_II.cma_write == Cost(49.1, 10.0)
        assert TABLE_II.cma_read == Cost(3.2, 0.3)
        assert TABLE_II.cma_add == Cost(108.0, 8.1)
        assert TABLE_II.cma_search == Cost(13.8, 0.2)
        assert TABLE_II.intra_mat_add == Cost(137.0, 14.7)
        assert TABLE_II.intra_bank_add == Cost(956.0, 44.2)
        assert TABLE_II.crossbar_matmul == Cost(13.8, 225.0)

    def test_as_table_has_all_seven_rows(self):
        assert len(TABLE_II.as_table()) == 7

    def test_with_overrides_replaces_selected(self):
        modified = TABLE_II.with_overrides(cma_read=Cost(1.0, 1.0))
        assert modified.cma_read == Cost(1.0, 1.0)
        assert modified.cma_write == TABLE_II.cma_write

    def test_search_is_fastest_operation(self):
        """O(1) parallel search is the cheapest-latency CMA op (Table II)."""
        table = TABLE_II
        assert table.cma_search.latency_ns < table.cma_read.latency_ns
        assert table.cma_read.latency_ns < table.cma_add.latency_ns
        assert table.cma_add.latency_ns < table.cma_write.latency_ns


class TestDerivation:
    def test_default_derivation_close_to_published(self):
        derived = derive_foms()
        assert derived.intra_mat_add.energy_pj == pytest.approx(137.0, rel=0.03)
        assert derived.intra_mat_add.latency_ns == pytest.approx(14.7, rel=0.03)
        assert derived.intra_bank_add.energy_pj == pytest.approx(956.0, rel=0.03)
        assert derived.intra_bank_add.latency_ns == pytest.approx(44.2, rel=0.03)

    def test_derivation_preserves_cma_rows(self):
        derived = derive_foms()
        assert derived.cma_read == TABLE_II.cma_read
        assert derived.crossbar_matmul == TABLE_II.crossbar_matmul

    def test_larger_intra_mat_fan_in_is_slower(self):
        small = derive_foms(intra_mat_fan_in=8)
        large = derive_foms(intra_mat_fan_in=64)
        assert large.intra_mat_add.latency_ns > small.intra_mat_add.latency_ns

    def test_intra_mat_tree_span_scales_with_fan_in(self):
        assert intra_mat_tree(64).span_mm == pytest.approx(0.8)
        assert intra_mat_tree(16).span_mm == pytest.approx(0.2)

    def test_intra_bank_tree_span_fixed(self):
        assert intra_bank_tree(2).span_mm == intra_bank_tree(16).span_mm

    def test_invalid_fan_ins_rejected(self):
        with pytest.raises(ValueError):
            intra_mat_tree(1)
        with pytest.raises(ValueError):
            intra_bank_tree(0)
