"""Tests for the TCAM / RAM / dummy-reference FeFET cell models."""

import pytest

from repro.circuits.cells import DummyReferenceCell, RAMCell, TCAMCell, TernaryValue


class TestTernaryValue:
    def test_from_bit(self):
        assert TernaryValue.from_bit(0) is TernaryValue.ZERO
        assert TernaryValue.from_bit(1) is TernaryValue.ONE

    def test_from_invalid_bit(self):
        with pytest.raises(ValueError):
            TernaryValue.from_bit(3)


class TestTCAMCell:
    def test_stored_one_matches_query_one(self):
        cell = TCAMCell()
        cell.write(TernaryValue.ONE)
        assert cell.matches(1)
        assert not cell.matches(0)

    def test_stored_zero_matches_query_zero(self):
        cell = TCAMCell()
        cell.write(TernaryValue.ZERO)
        assert cell.matches(0)
        assert not cell.matches(1)

    def test_dont_care_matches_both(self):
        cell = TCAMCell()
        cell.write(TernaryValue.DONT_CARE)
        assert cell.matches(0)
        assert cell.matches(1)

    def test_mismatch_draws_more_current_than_match(self):
        cell = TCAMCell()
        cell.write(TernaryValue.ONE)
        match_current = cell.mismatch_current_ma(1)
        mismatch_current = cell.mismatch_current_ma(0)
        assert mismatch_current > match_current

    def test_dont_care_draws_negligible_current(self):
        cell = TCAMCell()
        cell.write(TernaryValue.DONT_CARE)
        reference = DummyReferenceCell().reference_current_ma(threshold_bits=0.0)
        assert cell.mismatch_current_ma(0) < reference
        assert cell.mismatch_current_ma(1) < reference

    def test_invalid_query_bit_rejected(self):
        with pytest.raises(ValueError):
            TCAMCell().mismatch_current_ma(2)

    def test_analog_row_distance_equals_digital_hamming(self):
        """Summed cell currents, thresholded, recover the Hamming distance."""
        stored = [1, 0, 1, 1, 0, 0, 1, 0]
        query = [1, 1, 0, 1, 0, 1, 1, 1]
        cells = []
        for bit in stored:
            cell = TCAMCell()
            cell.write(TernaryValue.from_bit(bit))
            cells.append(cell)
        row_current = sum(cell.mismatch_current_ma(q) for cell, q in zip(cells, query))
        unit = DummyReferenceCell().reference_current_ma(threshold_bits=0.0) * 2.0
        analog_distance = round(row_current / unit)
        digital_distance = sum(s != q for s, q in zip(stored, query))
        assert analog_distance == digital_distance


class TestRAMCell:
    def test_roundtrip(self):
        cell = RAMCell()
        for bit in (1, 0, 1):
            cell.write(bit)
            assert cell.read() == bit

    def test_one_conducts_more_than_zero(self):
        cell = RAMCell()
        cell.write(1)
        on_current = cell.read_current_ma()
        cell.write(0)
        off_current = cell.read_current_ma()
        assert on_current > off_current


class TestDummyReferenceCell:
    def test_reference_scales_with_threshold(self):
        dummy = DummyReferenceCell()
        assert dummy.reference_current_ma(4.0) > dummy.reference_current_ma(1.0)

    def test_half_bit_margin(self):
        """Threshold t sits between t and t+1 mismatching cells."""
        dummy = DummyReferenceCell()
        unit = dummy.reference_current_ma(0.0) * 2.0  # one cell's current
        reference = dummy.reference_current_ma(threshold_bits=2.0)
        assert 2.0 * unit < reference < 3.0 * unit

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            DummyReferenceCell().reference_current_ma(-1.0)
