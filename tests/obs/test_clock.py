"""SimClock: monotonicity and bit-exact equivalence with bare floats."""

import pytest

from repro.obs.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_s == 0.0

    def test_custom_start(self):
        assert SimClock(start_s=1.5).now_s == 1.5

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="before zero"):
            SimClock(start_s=-0.1)

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(0.25) == 0.25
        assert clock.advance(0.25) == 0.5
        assert clock.now_s == 0.5

    def test_advance_rejects_negative_delta(self):
        clock = SimClock(start_s=1.0)
        with pytest.raises(ValueError, match="only move forward"):
            clock.advance(-1e-9)
        assert clock.now_s == 1.0

    def test_advance_zero_is_allowed(self):
        clock = SimClock(start_s=2.0)
        assert clock.advance(0.0) == 2.0

    def test_bitwise_identical_to_bare_float_accumulation(self):
        """The contract the serving refactors rely on: one addition per
        advance, in call order, so replacing ``now += gap`` loops with a
        clock reproduces every timestamp bit-for-bit."""
        gaps = [0.1, 1e-7, 0.3333333333333333, 2.5e-4, 7.1, 1e-12]
        clock = SimClock()
        now = 0.0
        for gap in gaps:
            now += gap
            assert clock.advance(gap) == now  # exact, not approx

    def test_advance_to_jumps_forward(self):
        clock = SimClock()
        assert clock.advance_to(3.0) == 3.0
        assert clock.now_s == 3.0

    def test_advance_to_ignores_the_past(self):
        clock = SimClock(start_s=5.0)
        assert clock.advance_to(2.0) == 5.0
        assert clock.now_s == 5.0

    def test_latest_does_not_mutate(self):
        clock = SimClock(start_s=4.0)
        assert clock.latest(9.0) == 9.0
        assert clock.latest(1.0) == 4.0
        assert clock.now_s == 4.0

    def test_elapsed_since(self):
        clock = SimClock(start_s=10.0)
        assert clock.elapsed_since(4.0) == 6.0
        assert clock.elapsed_since(12.0) == -2.0

    def test_repr_mentions_now(self):
        assert "3.5" in repr(SimClock(start_s=3.5))
