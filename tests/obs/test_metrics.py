"""MetricsRegistry: instrument semantics and Prometheus text rendering."""

import math

import pytest

from repro.energy.accounting import Cost, Ledger
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value_per_label_set(self):
        counter = Counter("c", "help")
        counter.inc(process="a")
        counter.inc(2.0, process="a")
        counter.inc(5.0, process="b")
        assert counter.value(process="a") == 3.0
        assert counter.value(process="b") == 5.0
        assert counter.value(process="missing") == 0.0
        assert counter.total() == 8.0

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c", "").inc(-1.0)

    def test_label_order_does_not_matter(self):
        counter = Counter("c", "")
        counter.inc(1.0, a="x", b="y")
        assert counter.value(b="y", a="x") == 1.0

    def test_render(self):
        counter = Counter("requests_total", "Requests.")
        counter.inc(2.0, outcome="served")
        counter.inc(1.0, outcome="shed")
        lines = counter.render()
        assert lines[0] == "# HELP requests_total Requests."
        assert lines[1] == "# TYPE requests_total counter"
        assert 'requests_total{outcome="served"} 2' in lines
        assert 'requests_total{outcome="shed"} 1' in lines


class TestGauge:
    def test_set_add_value(self):
        gauge = Gauge("g", "")
        gauge.set(4.0, shard="0")
        gauge.add(-1.5, shard="0")
        assert gauge.value(shard="0") == 2.5

    def test_render_type_line(self):
        gauge = Gauge("g", "h")
        gauge.set(1.25)
        assert gauge.render() == ["# HELP g h", "# TYPE g gauge", "g 1.25"]


class TestHistogram:
    def test_observe_count_sum_mean(self):
        histogram = Histogram("h", "", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 20.0):
            histogram.observe(value, stage="queue")
        assert histogram.count(stage="queue") == 3
        assert histogram.sum(stage="queue") == 22.5
        assert histogram.mean(stage="queue") == 7.5
        assert histogram.count(stage="other") == 0
        assert histogram.sum(stage="other") == 0.0
        assert histogram.mean(stage="other") == 0.0

    def test_bucket_boundary_is_inclusive(self):
        """Prometheus ``le`` semantics: a value equal to a bound counts
        in that bucket."""
        histogram = Histogram("h", "", buckets=(1.0, 10.0))
        histogram.observe(1.0)
        lines = histogram.render()
        assert 'h_bucket{le="1"} 1' in lines

    def test_quantile_returns_bucket_upper_bound(self):
        histogram = Histogram("h", "", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 100.0
        assert histogram.quantile(0.0, missing="series") == 0.0
        histogram.observe(1000.0)
        assert histogram.quantile(1.0) == math.inf

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("h", "", buckets=(1.0,)).quantile(1.5)

    def test_buckets_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", "", buckets=())

    def test_render_cumulative_buckets(self):
        histogram = Histogram("h", "H.", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value, stage="s")
        lines = histogram.render()
        assert 'h_bucket{stage="s",le="1"} 1' in lines
        assert 'h_bucket{stage="s",le="10"} 2' in lines
        assert 'h_bucket{stage="s",le="+Inf"} 3' in lines
        assert 'h_sum{stage="s"} 55.5' in lines
        assert 'h_count{stage="s"} 3' in lines

    def test_default_bucket_constants_are_increasing(self):
        for buckets in (LATENCY_BUCKETS_S, BATCH_SIZE_BUCKETS):
            assert list(buckets) == sorted(buckets)
            assert len(set(buckets)) == len(buckets)


class TestRegistry:
    def test_idempotent_declaration(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help")
        second = registry.counter("c", "ignored on re-declare")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(ValueError, match="already declared"):
            registry.gauge("c")

    def test_get_and_families_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("z")
        registry.counter("a")
        assert registry.get("a").kind == "counter"
        assert registry.get("missing") is None
        assert [family.name for family in registry.families()] == ["a", "z"]

    def test_record_ledger_joins_energy_attribution(self):
        ledger = Ledger(name="session")
        ledger.charge("Engine", Cost(energy_pj=100.0, latency_ns=1.0))
        ledger.charge("Cache", Cost(energy_pj=25.0, latency_ns=1.0))
        ledger.charge("Engine", Cost(energy_pj=50.0, latency_ns=1.0))
        registry = MetricsRegistry()
        registry.record_ledger(ledger, process="run")
        per_category = registry.get("repro_energy_category_pj")
        assert per_category.value(process="run", category="Engine") == 150.0
        assert per_category.value(process="run", category="Cache") == 25.0
        assert registry.get("repro_energy_total_pj").value(process="run") == 175.0

    def test_disabled_registry_skips_ledger(self):
        ledger = Ledger()
        ledger.charge("Engine", Cost(energy_pj=1.0, latency_ns=1.0))
        registry = MetricsRegistry(enabled=False)
        registry.record_ledger(ledger, process="run")
        assert registry.get("repro_energy_total_pj") is None

    def test_render_prometheus_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b_total", "B.").inc(3, x="1")
            registry.counter("a_total", "A.").inc(1.0, x="2")
            registry.counter("a_total").inc(2.0, x="1")
            registry.histogram("h", "H.", buckets=(1.0,)).observe(0.5)
            return registry.render_prometheus()

        text = build()
        assert text == build()  # byte-identical across identical runs
        assert text.endswith("\n")
        lines = text.splitlines()
        # families sorted by name, series sorted by label key
        assert lines.index("# TYPE a_total counter") < lines.index(
            "# TYPE b_total counter"
        )
        assert lines.index('a_total{x="1"} 2') < lines.index('a_total{x="2"} 1')

    def test_render_empty_registry(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_label_escaping(self):
        counter = Counter("c", "")
        counter.inc(1.0, label='with "quotes" and \\slash')
        rendered = "\n".join(counter.render())
        assert '\\"quotes\\"' in rendered
        assert "\\\\slash" in rendered
