"""Exporters: JSONL schema, Chrome trace-event schema, Prometheus files."""

import json

from repro.obs.exporters import (
    chrome_trace_events,
    write_chrome_trace,
    write_prometheus,
    write_trace,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def _two_process_tracer() -> Tracer:
    tracer = Tracer()
    tracer.set_process("fleet-a")
    tracer.start_batch(0)
    tracer.open("batch", 0.0, track="main", size=2)
    tracer.add("queue", 0.0, 0.1, category="queue")
    tracer.add("shard0", 0.1, 0.2, track="shard0", shard=0)
    tracer.close(0.3)
    tracer.end_batch()
    tracer.instant("scale-event", 0.25, old=1, new=2)
    tracer.set_process("fleet-b")
    tracer.start_batch(0)
    tracer.add("batch", 0.5, 0.9, track="main")
    tracer.end_batch()
    return tracer


class TestJsonl:
    def test_one_valid_object_per_line_spans_then_instants(self, tmp_path):
        tracer = _two_process_tracer()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, tracer)
        lines = path.read_text().splitlines()
        objects = [json.loads(line) for line in lines]
        assert len(objects) == len(tracer.spans) + len(tracer.instants)
        kinds = [obj["type"] for obj in objects]
        assert kinds == ["span"] * len(tracer.spans) + ["instant"] * len(
            tracer.instants
        )
        for obj in objects:
            assert {"name", "category", "process", "track", "attrs"} <= set(obj)
        spans = [obj for obj in objects if obj["type"] == "span"]
        assert all(
            obj["duration_s"] == obj["end_s"] - obj["start_s"] for obj in spans
        )

    def test_deterministic_bytes(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace_jsonl(first, _two_process_tracer())
        write_trace_jsonl(second, _two_process_tracer())
        assert first.read_bytes() == second.read_bytes()


class TestChrome:
    def test_event_schema(self):
        tracer = _two_process_tracer()
        events = chrome_trace_events(tracer)
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == len(tracer.spans)
        assert len(instants) == len(tracer.instants)
        # timestamps are microseconds
        queue = next(e for e in complete if e["name"] == "queue")
        assert queue["ts"] == 0.0
        assert abs(queue["dur"] - 0.1e6) < 1e-6
        assert all(e["s"] == "p" for e in instants)
        # one process_name per process, one thread_name per (process, track)
        process_names = [
            e["args"]["name"] for e in metadata if e["name"] == "process_name"
        ]
        assert process_names == ["fleet-a", "fleet-b"]
        thread_names = [
            (e["pid"], e["args"]["name"])
            for e in metadata
            if e["name"] == "thread_name"
        ]
        assert (1, "main") in thread_names
        assert (1, "shard0") in thread_names
        assert (1, "control") in thread_names

    def test_pids_and_tids_are_consistent(self):
        events = chrome_trace_events(_two_process_tracer())
        pid_by_name = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e.get("name") == "process_name"
        }
        assert len(set(pid_by_name.values())) == len(pid_by_name)
        spans = [e for e in events if e["ph"] == "X"]
        fleet_b = [e for e in spans if e["pid"] == pid_by_name["fleet-b"]]
        assert len(fleet_b) == 1 and fleet_b[0]["name"] == "batch"

    def test_document_wrapper(self, tmp_path):
        path = tmp_path / "trace.json"
        tracer = _two_process_tracer()
        write_chrome_trace(path, tracer, metadata={"experiment": "unit"})
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        assert document["displayTimeUnit"] == "ms"
        other = document["otherData"]
        assert other["clock"] == "simulation"
        assert other["spans"] == len(tracer.spans)
        assert other["instants"] == len(tracer.instants)
        assert other["experiment"] == "unit"

    def test_deterministic_bytes(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(first, _two_process_tracer())
        write_chrome_trace(second, _two_process_tracer())
        assert first.read_bytes() == second.read_bytes()


class TestDispatch:
    def test_write_trace_picks_format_by_extension(self, tmp_path):
        tracer = _two_process_tracer()
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        write_trace(jsonl, tracer)
        write_trace(chrome, tracer)
        # JSONL: every line parses on its own; Chrome: one document
        assert all(json.loads(line) for line in jsonl.read_text().splitlines())
        assert "traceEvents" in json.loads(chrome.read_text())


class TestPrometheusFile:
    def test_write_prometheus(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_batches_total", "Batches.").inc(3, process="p")
        path = tmp_path / "metrics.prom"
        write_prometheus(path, registry)
        text = path.read_text()
        assert "# TYPE repro_batches_total counter" in text
        assert 'repro_batches_total{process="p"} 3' in text
        assert text.endswith("\n")
