"""Tracer: span-tree well-formedness, sampling, and the recording API."""

import pytest

from repro.obs.tracer import Instant, Span, Tracer, span_children


def _traced_batch(tracer, batch_index=0):
    """Record one representative batch: root + nested engine + leaves."""
    tracer.start_batch(batch_index)
    tracer.open("batch", 0.0, track="main", size=2)
    tracer.add("queue", 0.0, 0.1, category="queue")
    tracer.open("engine", 0.1, queries=2)
    tracer.add("kernel", 0.1, 0.25, category="kernel", kernel="vector")
    tracer.close(0.3, energy_pj=42.0)
    tracer.close(0.4)
    tracer.end_batch()


class TestSpan:
    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            Span(
                span_id=0,
                parent_id=None,
                name="bad",
                category="serve",
                start_s=1.0,
                end_s=0.5,
                process="p",
                track="main",
            )

    def test_duration(self):
        span = Span(0, None, "s", "serve", 1.0, 1.5, "p", "main")
        assert span.duration_s == 0.5

    def test_as_dict_schema(self):
        span = Span(3, 1, "s", "serve", 1.0, 1.5, "p", "main", {"k": 2})
        data = span.as_dict()
        assert data["type"] == "span"
        assert data["span_id"] == 3
        assert data["parent_id"] == 1
        assert data["duration_s"] == 0.5
        assert data["attrs"] == {"k": 2}
        # the export dict is a copy, not a view of the span's attrs
        data["attrs"]["k"] = 99
        assert span.attrs["k"] == 2

    def test_instant_as_dict_schema(self):
        event = Instant("scale-event", 2.0, "control", "p", "control", {"n": 1})
        data = event.as_dict()
        assert data["type"] == "instant"
        assert data["time_s"] == 2.0
        assert data["attrs"] == {"n": 1}


class TestRecording:
    def test_nesting_and_parent_links(self):
        tracer = Tracer()
        _traced_batch(tracer)
        by_name = {span.name: span for span in tracer.spans}
        assert set(by_name) == {"batch", "queue", "engine", "kernel"}
        assert by_name["batch"].parent_id is None
        assert by_name["queue"].parent_id == by_name["batch"].span_id
        assert by_name["engine"].parent_id == by_name["batch"].span_id
        assert by_name["kernel"].parent_id == by_name["engine"].span_id
        tracer.validate()

    def test_close_merges_attrs(self):
        tracer = Tracer()
        _traced_batch(tracer)
        engine = next(s for s in tracer.spans if s.name == "engine")
        assert engine.attrs == {"queries": 2, "energy_pj": 42.0}

    def test_cursor_tracks_innermost_open_span(self):
        tracer = Tracer()
        tracer.start_batch(0)
        assert tracer.cursor_s == 0.0
        assert tracer.cursor_track == "main"
        tracer.open("batch", 1.0, track="main")
        tracer.open("engine", 1.5, track="shard0")
        assert tracer.cursor_s == 1.5
        assert tracer.cursor_track == "shard0"
        tracer.close(2.0)
        assert tracer.cursor_s == 1.0
        tracer.close(2.5)
        tracer.end_batch()

    def test_children_inherit_the_open_track(self):
        tracer = Tracer()
        tracer.start_batch(0)
        tracer.open("batch", 0.0, track="main")
        tracer.add("queue", 0.0, 0.1)
        tracer.close(0.2)
        tracer.end_batch()
        queue = next(s for s in tracer.spans if s.name == "queue")
        assert queue.track == "main"

    def test_set_process_stamps_spans(self):
        tracer = Tracer()
        tracer.set_process("fleet-a")
        _traced_batch(tracer)
        assert all(span.process == "fleet-a" for span in tracer.spans)
        with pytest.raises(ValueError, match="non-empty"):
            tracer.set_process("")

    def test_len_counts_spans(self):
        tracer = Tracer()
        _traced_batch(tracer)
        assert len(tracer) == 4


class TestSampling:
    def test_sample_every_n_batches(self):
        tracer = Tracer(sample_every=2)
        for index in range(4):
            sampled = tracer.start_batch(index)
            assert sampled == (index % 2 == 0)
            if sampled:
                tracer.add("batch", 0.0, 1.0)
            tracer.end_batch()
        assert tracer.seen_batches == 4
        assert tracer.sampled_batches == 2
        assert len(tracer.spans) == 2

    def test_unsampled_batch_records_nothing(self):
        tracer = Tracer(sample_every=2)
        tracer.start_batch(1)  # not sampled
        assert tracer.open("batch", 0.0) is None
        assert tracer.close(1.0) is None  # no-op, not an error
        assert tracer.add("queue", 0.0, 0.5) is None
        tracer.end_batch()
        assert tracer.spans == []

    def test_instants_ignore_batch_sampling(self):
        tracer = Tracer(sample_every=1000)
        tracer.start_batch(1)  # not sampled
        assert tracer.instant("scale-event", 0.5) is not None
        tracer.end_batch()
        assert len(tracer.instants) == 1

    def test_disabled_tracer_records_nothing_at_all(self):
        tracer = Tracer(enabled=False)
        assert tracer.start_batch(0) is False
        assert tracer.add("queue", 0.0, 1.0) is None
        assert tracer.instant("scale-event", 0.5) is None
        tracer.end_batch()
        assert tracer.spans == [] and tracer.instants == []

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError, match="sample_every"):
            Tracer(sample_every=0)


class TestProtocolErrors:
    def test_close_without_open_raises_when_active(self):
        tracer = Tracer()
        tracer.start_batch(0)
        with pytest.raises(RuntimeError, match="without a matching open"):
            tracer.close(1.0)

    def test_start_batch_with_open_spans_raises(self):
        tracer = Tracer()
        tracer.start_batch(0)
        tracer.open("batch", 0.0)
        with pytest.raises(RuntimeError, match="left .* open"):
            tracer.start_batch(1)

    def test_end_batch_with_open_spans_raises(self):
        tracer = Tracer()
        tracer.start_batch(0)
        tracer.open("batch", 0.0)
        with pytest.raises(RuntimeError, match="still open"):
            tracer.end_batch()


class TestValidate:
    def _span(self, span_id, parent_id, start_s, end_s, process="p"):
        return Span(span_id, parent_id, "s", "serve", start_s, end_s, process, "main")

    def test_unknown_parent(self):
        tracer = Tracer()
        tracer.spans.append(self._span(0, 99, 0.0, 1.0))
        with pytest.raises(ValueError, match="unknown parent"):
            tracer.validate()

    def test_child_escaping_parent(self):
        tracer = Tracer()
        tracer.spans.append(self._span(0, None, 0.0, 1.0))
        tracer.spans.append(self._span(1, 0, 0.5, 1.5))
        with pytest.raises(ValueError, match="escapes parent"):
            tracer.validate()

    def test_cross_process_parentage(self):
        tracer = Tracer()
        tracer.spans.append(self._span(0, None, 0.0, 1.0, process="a"))
        tracer.spans.append(self._span(1, 0, 0.2, 0.8, process="b"))
        with pytest.raises(ValueError, match="crosses processes"):
            tracer.validate()

    def test_float_noise_tolerated(self):
        tracer = Tracer()
        tracer.spans.append(self._span(0, None, 0.0, 1.0))
        tracer.spans.append(self._span(1, 0, -1e-15, 1.0 + 1e-15))
        tracer.validate()  # within _EPS


def test_span_children_groups_by_parent():
    tracer = Tracer()
    _traced_batch(tracer)
    children = span_children(tracer.spans)
    by_name = {span.name: span for span in tracer.spans}
    assert [s.name for s in children[None]] == ["batch"]
    assert [s.name for s in children[by_name["batch"].span_id]] == [
        "queue",
        "engine",
    ]
    assert [s.name for s in children[by_name["engine"].span_id]] == ["kernel"]
