"""Unit + integration tests for forecast-driven predictive autoscaling.

The fit is a deterministic closed-form solve, so every assertion here is
exact-repeatable: synthetic arrival series are generated from the same
seeded thinning process ``DiurnalTraffic`` uses, and fit quality is
judged where it matters for control -- the predicted *peak* rate that
picks deployments -- not on per-parameter point estimates.
"""

import numpy as np
import pytest

from repro.obs import Telemetry
from repro.serving.autoscaler import ScheduledScalePlan
from repro.serving.forecast import (
    DeploymentCapacity,
    DeploymentCapacityModel,
    ForecastModel,
    PredictiveScaler,
    TrafficForecaster,
    build_scale_plan,
    plan_scale_events,
)
from repro.serving.scheduler import Batch, MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.slo import slo_violation_windows
from repro.serving.traffic import DiurnalTraffic


def _sample_arrivals(model, end_s, seed=0):
    """Lewis-Shedler thinning against the model -- DiurnalTraffic's sampler."""
    rng = np.random.default_rng(seed)
    peak = model.peak_rate(0.0, model.period_s)
    arrivals, t = [], 0.0
    while t < end_s:
        t += rng.exponential(1.0 / peak)
        if rng.random() * peak <= float(model.rate_at(t)):
            arrivals.append(t)
    return arrivals


class TestForecastModel:
    def test_matches_diurnal_generator_curve(self):
        traffic = DiurnalTraffic(
            base_qps=80.0, num_users=32, amplitude=0.6, period_s=3.0
        )
        model = traffic.forecast_model()
        for t in (0.0, 0.4, 1.1, 2.9):
            assert float(model.rate_at(t)) == pytest.approx(traffic.rate_at(t))
        assert model.residual_rms_qps == 0.0

    def test_rate_clamps_at_zero(self):
        model = ForecastModel(
            base_qps=10.0, amplitude=0.0, period_s=1.0, trend_qps_per_s=-5.0
        )
        assert float(model.rate_at(100.0)) == 0.0

    def test_peak_rate_finds_the_crest(self):
        model = ForecastModel(base_qps=100.0, amplitude=0.5, period_s=4.0)
        assert model.peak_rate(0.0, 4.0) == pytest.approx(150.0, rel=1e-3)
        # A window past the crest peaks at its opening edge (rate is
        # falling there), well under the true crest.
        assert model.peak_rate(2.0, 3.0) <= 100.0 < model.peak_rate(0.0, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ForecastModel(base_qps=1.0, amplitude=1.0, period_s=1.0)
        with pytest.raises(ValueError):
            ForecastModel(base_qps=1.0, amplitude=0.5, period_s=0.0)
        with pytest.raises(ValueError):
            ForecastModel(
                base_qps=1.0, amplitude=0.5, period_s=1.0
            ).peak_rate(1.0, 0.0)


class TestTrafficForecaster:
    def test_recovers_peak_rate_from_thinned_arrivals(self):
        true = ForecastModel(base_qps=60.0, amplitude=0.6, period_s=8.0)
        forecaster = TrafficForecaster(period_s=8.0)
        forecaster.observe_many(_sample_arrivals(true, 8.0, seed=1))
        assert forecaster.ready
        fitted = forecaster.fit()
        assert fitted.period_s == 8.0
        true_peak = true.peak_rate(0.0, 8.0)
        assert fitted.peak_rate(0.0, 8.0) == pytest.approx(true_peak, rel=0.15)
        assert fitted.residual_rms_qps > 0.0  # honest about sampling noise

    def test_partial_window_still_predicts_the_unseen_peak(self):
        # The E-forecast situation: fit during the valley/early ramp,
        # predict the crest that has not happened yet.
        true = ForecastModel(base_qps=60.0, amplitude=0.6, period_s=8.0)
        forecaster = TrafficForecaster(period_s=8.0)
        forecaster.observe_many(_sample_arrivals(true, 3.0, seed=2))
        fitted = forecaster.fit()
        assert fitted.peak_rate(0.0, 8.0) == pytest.approx(
            true.peak_rate(0.0, 8.0), rel=0.3
        )

    def test_period_grid_search_picks_the_true_period(self):
        true = ForecastModel(base_qps=60.0, amplitude=0.6, period_s=4.0)
        forecaster = TrafficForecaster(
            period_candidates_s=(1.0, 2.0, 4.0, 16.0), bins=32
        )
        forecaster.observe_many(_sample_arrivals(true, 8.0, seed=3))
        assert forecaster.fit().period_s == 4.0

    def test_flat_traffic_fits_near_zero_amplitude(self):
        rng = np.random.default_rng(4)
        forecaster = TrafficForecaster(period_s=4.0)
        forecaster.observe_many(np.cumsum(rng.exponential(1 / 50.0, size=400)))
        fitted = forecaster.fit()
        assert fitted.amplitude < 0.15
        assert fitted.base_qps == pytest.approx(50.0, rel=0.2)

    def test_ready_gates_on_count_and_span(self):
        forecaster = TrafficForecaster(period_s=10.0, min_arrivals=16)
        assert not forecaster.ready
        forecaster.observe_many(np.linspace(0.0, 0.1, 16))  # tiny span
        assert not forecaster.ready
        with pytest.raises(ValueError):
            forecaster.fit()
        forecaster.observe_many(np.linspace(0.0, 5.0, 16))
        assert forecaster.ready

    def test_fit_is_deterministic(self):
        arrivals = _sample_arrivals(
            ForecastModel(base_qps=40.0, amplitude=0.5, period_s=6.0), 6.0
        )
        fits = []
        for _ in range(2):
            forecaster = TrafficForecaster(period_s=6.0)
            forecaster.observe_many(arrivals)
            fits.append(forecaster.fit())
        assert fits[0] == fits[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficForecaster()  # neither period nor candidates
        with pytest.raises(ValueError):
            TrafficForecaster(period_s=-1.0)
        with pytest.raises(ValueError):
            TrafficForecaster(period_s=1.0, bins=2)
        with pytest.raises(ValueError):
            TrafficForecaster(period_s=1.0, min_arrivals=4)
        with pytest.raises(ValueError):
            TrafficForecaster(period_s=1.0, min_span_fraction=0.0)
        with pytest.raises(ValueError):
            TrafficForecaster(period_candidates_s=(1.0, 0.0))


def _capacity_model(utilization=0.7):
    return DeploymentCapacityModel(
        [
            DeploymentCapacity((1, 1), 100.0, energy_per_request_uj=10.0),
            DeploymentCapacity((1, 2), 200.0, energy_per_request_uj=10.5),
            DeploymentCapacity((2, 2), 400.0, energy_per_request_uj=12.0),
        ],
        utilization=utilization,
    )


class TestDeploymentCapacityModel:
    def test_picks_cheapest_adequate_deployment(self):
        capacity = _capacity_model()
        assert capacity.required_deployment(30.0) == (1, 1)
        assert capacity.required_deployment(100.0) == (1, 2)
        assert capacity.required_deployment(250.0) == (2, 2)

    def test_energy_order_beats_size_order(self):
        # A big-but-cheap deployment outranks a small-but-hungry one.
        capacity = DeploymentCapacityModel(
            [
                DeploymentCapacity((1, 1), 100.0, energy_per_request_uj=20.0),
                DeploymentCapacity((2, 2), 400.0, energy_per_request_uj=5.0),
            ],
            utilization=0.5,
        )
        assert capacity.required_deployment(10.0) == (2, 2)

    def test_overload_falls_back_to_largest_capacity(self):
        assert _capacity_model().required_deployment(10_000.0) == (2, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeploymentCapacityModel([])
        with pytest.raises(ValueError):
            _capacity_model(utilization=0.0)
        with pytest.raises(ValueError):
            DeploymentCapacityModel(
                [
                    DeploymentCapacity((1, 1), 10.0),
                    DeploymentCapacity((1, 1), 20.0),
                ]
            )
        with pytest.raises(ValueError):
            DeploymentCapacity((0, 1), 10.0)
        with pytest.raises(ValueError):
            DeploymentCapacity((1, 1), 0.0)
        with pytest.raises(ValueError):
            _capacity_model().required_deployment(-1.0)


class TestPlanScaleEvents:
    def test_ramp_fires_lead_time_early(self):
        model = ForecastModel(base_qps=60.0, amplitude=0.6, period_s=8.0)
        capacity = _capacity_model()
        events = plan_scale_events(
            model, capacity, start_s=0.0, horizon_s=8.0, step_s=0.25,
            lead_time_s=0.5, initial_deployment=(1, 1),
        )
        assert events, "the crest needs (1, 2): expected a scale-out"
        fire_s, deployment = events[0]
        assert deployment == (1, 2)
        # The rate crosses 0.7 * 100 qps at sin = 1/6; the event fires
        # half a second before that window opens.
        crossing_s = 8.0 / (2 * np.pi) * np.arcsin((70.0 / 60.0 - 1.0) / 0.6)
        assert fire_s == pytest.approx(crossing_s - 0.5, abs=0.3)

    def test_scale_in_after_the_crest_with_headroom(self):
        model = ForecastModel(base_qps=60.0, amplitude=0.6, period_s=8.0)
        events = plan_scale_events(
            model, _capacity_model(), start_s=0.0, horizon_s=8.0, step_s=0.25,
            lead_time_s=0.5, initial_deployment=(1, 1),
        )
        deployments = [deployment for _, deployment in events]
        assert deployments == [(1, 2), (1, 1)]
        # Scale-in is conservative: it happens after the symmetric
        # crossing, never before the crest.
        assert events[1][0] > 8.0 / 4

    def test_flat_forecast_plans_nothing(self):
        model = ForecastModel(base_qps=30.0, amplitude=0.0, period_s=8.0)
        plan = build_scale_plan(
            model, _capacity_model(), start_s=0.0, horizon_s=8.0, step_s=0.5,
            lead_time_s=0.5,
        )
        assert isinstance(plan, ScheduledScalePlan)
        assert plan.events == []

    def test_lead_time_clamps_at_start(self):
        model = ForecastModel(base_qps=120.0, amplitude=0.0, period_s=8.0)
        events = plan_scale_events(
            model, _capacity_model(), start_s=2.0, horizon_s=4.0, step_s=0.5,
            lead_time_s=10.0, initial_deployment=(1, 1),
        )
        assert events[0] == (2.0, (1, 2))

    def test_validation(self):
        model = ForecastModel(base_qps=10.0, amplitude=0.0, period_s=1.0)
        capacity = _capacity_model()
        with pytest.raises(ValueError):
            plan_scale_events(
                model, capacity, start_s=0.0, horizon_s=0.0, step_s=0.1,
                lead_time_s=0.0, initial_deployment=(1, 1),
            )
        with pytest.raises(ValueError):
            plan_scale_events(
                model, capacity, start_s=0.0, horizon_s=1.0, step_s=0.0,
                lead_time_s=0.0, initial_deployment=(1, 1),
            )
        with pytest.raises(ValueError):
            plan_scale_events(
                model, capacity, start_s=0.0, horizon_s=1.0, step_s=0.1,
                lead_time_s=-1.0, initial_deployment=(1, 1),
            )
        with pytest.raises(ValueError):
            plan_scale_events(
                model, capacity, start_s=0.0, horizon_s=1.0, step_s=0.1,
                lead_time_s=0.0, initial_deployment=(1, 1),
                scale_in_headroom=0.9,
            )


def _predictive(act=True, **overrides):
    kwargs = dict(
        lead_time_s=0.2, horizon_s=8.0, step_s=0.25, act=act,
        fit_after_arrivals=64,
    )
    kwargs.update(overrides)
    return PredictiveScaler(
        TrafficForecaster(period_s=8.0, min_arrivals=64),
        _capacity_model(),
        **kwargs,
    )


class _FakeRequest:
    def __init__(self, arrival_s):
        self.arrival_s = arrival_s


def _feed(scaler, arrivals, batch_size=16, current=(1, 1)):
    """Drive observe() with fake batches; returns the non-None decisions."""
    decisions = []
    for start in range(0, len(arrivals), batch_size):
        chunk = arrivals[start:start + batch_size]
        batch = Batch(
            requests=[_FakeRequest(a) for a in chunk],
            open_s=chunk[0],
            dispatch_s=chunk[-1],
        )
        decision = scaler.observe(batch, 0.01, [], current)
        if decision is not None:
            decisions.append(decision)
            current = decision
    return decisions


class TestPredictiveScaler:
    def test_fits_once_then_fires_the_plan(self):
        true = ForecastModel(base_qps=60.0, amplitude=0.6, period_s=8.0)
        arrivals = _sample_arrivals(true, 8.0, seed=5)
        scaler = _predictive()
        decisions = _feed(scaler, arrivals)
        assert scaler.model is not None
        assert scaler.planned_events
        assert decisions, "the crest must trigger a scale-out"
        assert decisions[0] == (1, 2)

    def test_act_false_observes_and_plans_but_never_decides(self):
        true = ForecastModel(base_qps=60.0, amplitude=0.6, period_s=8.0)
        arrivals = _sample_arrivals(true, 8.0, seed=5)
        scaler = _predictive(act=False)
        assert _feed(scaler, arrivals) == []
        # The whole machinery still ran -- observation-only means no
        # *decisions*, not no forecasts.
        assert scaler.model is not None

    def test_no_op_decisions_are_suppressed(self):
        # A plan event targeting the deployment the session already runs
        # must not surface (scale_to would treat it as a no-op anyway,
        # but the scaler should not even propose paying the call).
        scaler = _predictive()
        scaler.model = ForecastModel(base_qps=1.0, amplitude=0.0, period_s=8.0)
        scaler._plan = ScheduledScalePlan([(0.5, (1, 2))])
        batch = Batch(requests=[], open_s=1.0, dispatch_s=1.0)
        assert scaler.observe(batch, 0.01, [], (1, 2)) is None
        # Consumed: it does not re-fire for a different current either.
        assert scaler.observe(batch, 0.01, [], (1, 1)) is None

    def test_telemetry_emits_forecast_instants_and_metrics(self):
        telemetry = Telemetry(enabled=True)
        true = ForecastModel(base_qps=60.0, amplitude=0.6, period_s=8.0)
        scaler = _predictive()
        scaler.attach_telemetry(telemetry)
        _feed(scaler, _sample_arrivals(true, 8.0, seed=6))
        names = [instant.name for instant in telemetry.tracer.instants]
        assert "forecast-fit" in names
        fits = telemetry.metrics.get("repro_forecast_fits_total")
        planned = telemetry.metrics.get("repro_forecast_planned_events_total")
        assert fits is not None and fits.total() == 1.0
        assert planned is not None
        assert planned.total() == len(scaler.planned_events)

    def test_validation(self):
        forecaster = TrafficForecaster(period_s=8.0)
        capacity = _capacity_model()
        with pytest.raises(ValueError):
            PredictiveScaler(
                forecaster, capacity, lead_time_s=-1.0, horizon_s=1.0,
                step_s=0.1,
            )
        with pytest.raises(ValueError):
            PredictiveScaler(
                forecaster, capacity, lead_time_s=0.0, horizon_s=0.0,
                step_s=0.1,
            )
        with pytest.raises(ValueError):
            PredictiveScaler(
                forecaster, capacity, lead_time_s=0.0, horizon_s=1.0,
                step_s=0.0,
            )


class TestSloViolationWindows:
    def test_counts_windows_not_requests(self, serving_setup):
        # Reuse real records from a tiny session so the record contract
        # (shed/failed exclusion) is honoured end to end.
        dataset, filtering, ranking, mapping, workload = serving_setup
        engine = make_sharded_engine(
            "imars", filtering, ranking, 1, mapping=mapping,
            num_candidates=12, top_k=4, seed=0,
        )
        requests = DiurnalTraffic(
            40.0, num_users=dataset.num_users, amplitude=0.7, period_s=2.0,
            seed=0, stream=7,
        ).generate(80)
        session = ServingSession(
            engine, workload,
            scheduler=MicroBatchScheduler(
                MicroBatchConfig(max_batch_size=8, max_wait_s=0.0)
            ),
        )
        records = session.run(requests).records
        # A generous target violates nowhere; an impossible one violates
        # every occupied window; occupied counts are equal.
        none_violated, occupied = slo_violation_windows(records, 1e3, 0.25)
        all_violated, occupied_too = slo_violation_windows(records, 1e-9, 0.25)
        assert none_violated == 0
        assert all_violated == occupied == occupied_too > 1

    def test_empty_and_validation(self):
        assert slo_violation_windows([], 1.0, 1.0) == (0, 0)
        with pytest.raises(ValueError):
            slo_violation_windows([], 0.0, 1.0)
        with pytest.raises(ValueError):
            slo_violation_windows([], 1.0, 0.0)


class TestPredictiveSessionIntegration:
    def test_predictive_scaler_scales_a_real_session(self, serving_setup):
        dataset, filtering, ranking, mapping, workload = serving_setup

        def factory(shards, replicas):
            return make_sharded_engine(
                "imars", filtering, ranking, shards, mapping=mapping,
                num_candidates=12, top_k=4, seed=0,
                replicas_per_shard=replicas,
            )

        probe = factory(1, 1)
        batch_one_s = probe.recommend_query(workload[0]).cost.latency_s
        capacity_one = 8.0 / probe.serve_batch(workload[:8]).cost.latency_s
        period_s = 200.0 * batch_one_s
        traffic = DiurnalTraffic(
            0.8 * capacity_one, num_users=dataset.num_users, amplitude=0.7,
            period_s=period_s, seed=0, stream=11,
        )
        requests = traffic.generate(160)
        capacity = DeploymentCapacityModel(
            [
                DeploymentCapacity((1, 1), capacity_one, 10.0),
                DeploymentCapacity((1, 2), 2.0 * capacity_one, 10.5),
            ],
            utilization=0.7,
        )
        scaler = PredictiveScaler(
            TrafficForecaster(period_s=period_s, min_arrivals=32),
            capacity,
            lead_time_s=4.0 * batch_one_s,
            horizon_s=period_s,
            step_s=period_s / 32.0,
            fit_after_arrivals=32,
        )
        session = ServingSession(
            factory(1, 1), workload,
            scheduler=MicroBatchScheduler(
                MicroBatchConfig(max_batch_size=8, max_wait_s=0.0)
            ),
            engine_factory=factory,
            deployment=(1, 1),
            scaler=scaler,
        )
        result = session.run(requests)
        assert scaler.model is not None
        assert result.scale_events, "the predicted crest must trigger scale_to"
        assert result.scale_events[0].new_deployment == (1, 2)
        assert "Migration" in result.ledger.by_category()
