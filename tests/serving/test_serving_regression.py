"""Deterministic-replay regression tests for the serving stack.

PR 2 established the seeded_rng stream contract: one master seed, many
streams, so a whole serving run is reproducible from one number.  These
tests pin it end to end: a fixed-seed session produces a byte-identical
SLO report across two independently constructed runs, at every
(shards, replicas) deployment shape, and the E-AUTOSCALE closed loop
converges to the same (shards, replicas) every time.
"""

import pytest

from repro.experiments.autoscale_study import run_autoscale_study
from repro.experiments.cost_study import run_cost_study
from repro.serving.cache import ServingCache, TinyLFUAdmission
from repro.serving.scheduler import AdaptiveBatchConfig, AdaptiveMicroBatchScheduler
from repro.serving.session import ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.traffic import PoissonTraffic


def _run_once(serving_setup, shards, replicas):
    """Build the whole stack from seed 0 and serve one Poisson stream."""
    dataset, filtering, ranking, mapping, workload = serving_setup
    engine = make_sharded_engine(
        "imars",
        filtering,
        ranking,
        shards,
        mapping=mapping,
        num_candidates=24,
        top_k=5,
        seed=0,
        replicas_per_shard=replicas,
    )
    rate_qps = 8.0 / engine.recommend_query(workload[0]).cost.latency_s
    requests = PoissonTraffic(
        rate_qps, num_users=dataset.num_users, seed=0, stream=3
    ).generate(64)
    session = ServingSession(
        engine,
        workload,
        scheduler=AdaptiveMicroBatchScheduler(
            AdaptiveBatchConfig(target_p95_s=0.001, max_batch_size=8)
        ),
        cache=ServingCache(
            capacity=16, rows_per_entry=5, admission=TinyLFUAdmission(seed=0)
        ),
        label=f"replay s={shards} r={replicas}",
    )
    session.warm(range(8))
    return session.run(requests)


@pytest.mark.parametrize("shards,replicas", [(1, 1), (2, 1), (1, 2), (2, 2)])
def test_slo_report_byte_identical_across_runs(serving_setup, shards, replicas):
    first = _run_once(serving_setup, shards, replicas)
    second = _run_once(serving_setup, shards, replicas)
    # Byte-identical SLO reports: same floats, same formatting.
    assert repr(first.report.as_dict()) == repr(second.report.as_dict())
    assert first.report.format_row() == second.report.format_row()
    # And the functional outputs match item for item.
    assert [record.items for record in first.records] == [
        record.items for record in second.records
    ]
    assert first.cache_stats == second.cache_stats


def test_replication_never_changes_recommendations(serving_setup):
    # Replicas share slice and seed, so R must not affect what is served.
    single = _run_once(serving_setup, 2, 1)
    replicated = _run_once(serving_setup, 2, 2)
    assert [record.items for record in single.records] == [
        record.items for record in replicated.records
    ]


def test_autoscale_study_convergence_pinned():
    """E-AUTOSCALE's closed loop is a deterministic artefact: it converges,
    and always to the same (shards, replicas), on every traffic pattern."""
    report = run_autoscale_study(seed=0)
    assert report.all_within(0.0), report.format()
    chosen = report.extras["chosen"]
    # >= 2 traffic patterns converge to an SLO-meeting config (acceptance
    # criterion); with the default operating point all three do, and the
    # min-energy choice is replication (it adds throughput without the
    # merge/candidate overhead sharding pays).
    assert chosen == {
        "poisson": (1, 2),
        "bursty": (1, 2),
        "multi-tenant": (1, 2),
    }
    rerun = run_autoscale_study(seed=0)
    assert rerun.extras["chosen"] == chosen
    for name, outcome in report.extras["outcomes"].items():
        twin = rerun.extras["outcomes"][name]
        assert [step.config_key for step in outcome.steps] == [
            step.config_key for step in twin.steps
        ]
        assert repr(outcome.best.report.as_dict()) == repr(
            twin.best.report.as_dict()
        )


def test_cost_study_frontier_pinned():
    """E-COST's $/energy/latency frontier is a deterministic artefact:
    the analyzer's picks and the dollar totals replay bit-identically,
    and hybrid never costs more than the worse of eager/lazy."""
    report = run_cost_study(seed=0)
    assert report.all_within(0.0), report.format()
    assert report.extras["recommendations"] == {
        "diurnal": "eager",
        "bursty": "hybrid",
    }
    rerun = run_cost_study(seed=0)
    assert rerun.extras["recommendations"] == report.extras["recommendations"]
    for trace_name, arms in report.extras["outcomes"].items():
        twins = rerun.extras["outcomes"][trace_name]
        for model_name, outcome in arms.items():
            twin = twins[model_name]
            assert outcome.dollars == twin.dollars
            assert list(outcome.result.price_ledger) == list(
                twin.result.price_ledger
            )
            assert [record.items for record in outcome.result.records] == [
                record.items for record in twin.result.records
            ]
        eager_vs_lazy = max(arms["eager"].dollars, arms["lazy"].dollars)
        assert arms["hybrid"].dollars <= eager_vs_lazy
