"""Tests for the result cache: LRU, TinyLFU admission, energy accounting."""

import pytest

from repro.circuits.foms import TABLE_II
from repro.energy.accounting import Cost
from repro.serving.cache import (
    CountMinSketch,
    RepetitionAwareCache,
    ServingCache,
    TinyLFUAdmission,
)


def test_miss_then_hit():
    cache = ServingCache(capacity=2, rows_per_entry=3)
    value, miss_cost = cache.lookup("q1")
    assert value is None
    assert miss_cost == TABLE_II.cma_search  # probe only
    cache.insert("q1", ("result",))
    value, hit_cost = cache.lookup("q1")
    assert value == ("result",)
    # Hit pays the probe plus the per-row read-out.
    expected = TABLE_II.cma_search.then(TABLE_II.cma_read.repeated(3))
    assert hit_cost == expected
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)


def test_insert_cost_scales_with_rows():
    cache = ServingCache(capacity=2, rows_per_entry=5)
    cost = cache.insert("q", "v")
    assert cost == TABLE_II.cma_write.repeated(5)


def test_lru_eviction_order():
    cache = ServingCache(capacity=2)
    cache.insert("a", 1)
    cache.insert("b", 2)
    cache.lookup("a")  # refresh a -> b becomes LRU
    cache.insert("c", 3)
    assert "a" in cache and "c" in cache
    assert "b" not in cache
    assert cache.evictions == 1


def test_reinsert_refreshes_without_eviction():
    cache = ServingCache(capacity=2)
    cache.insert("a", 1)
    cache.insert("a", 2)  # refresh, not a second entry
    assert len(cache) == 1
    assert cache.lookup("a")[0] == 2
    assert cache.evictions == 0


def test_stats_snapshot():
    cache = ServingCache(capacity=4, rows_per_entry=2)
    cache.lookup("x")
    cache.insert("x", 0)
    cache.lookup("x")
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == 1
    assert stats["insertions"] == 1


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ServingCache(capacity=0)
    with pytest.raises(ValueError):
        ServingCache(capacity=1, rows_per_entry=0)
    with pytest.raises(ValueError):
        CountMinSketch(width=0)
    with pytest.raises(ValueError):
        TinyLFUAdmission(sample_size=0)


class TestCountMinSketch:
    def test_estimate_upper_bounds_true_count(self):
        sketch = CountMinSketch(width=64, depth=4, seed=0)
        truth = {}
        for key in [1, 2, 1, 3, 1, 2, 4, 1]:
            sketch.increment(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count
        assert sketch.estimate("never-seen") >= 0

    def test_halving_ages_counters(self):
        sketch = CountMinSketch(width=64, depth=4, seed=0)
        for _ in range(8):
            sketch.increment("hot")
        before = sketch.estimate("hot")
        sketch.halve()
        assert sketch.estimate("hot") == before // 2


class TestTinyLFUAdmission:
    def test_doorkeeper_promotes_on_second_sighting(self):
        admission = TinyLFUAdmission(sample_size=1000, seed=0)
        admission.record("k")
        assert admission.estimate("k") == 1  # doorkeeper only
        admission.record("k")
        assert admission.estimate("k") >= 2  # sketch + doorkeeper

    def test_admit_prefers_the_more_frequent_key(self):
        admission = TinyLFUAdmission(sample_size=1000, seed=0)
        for _ in range(5):
            admission.record("popular")
        admission.record("one-off")
        assert admission.admit("popular", "one-off")
        assert not admission.admit("one-off", "popular")

    def test_ties_favour_the_newcomer(self):
        admission = TinyLFUAdmission(sample_size=1000, seed=0)
        admission.record("a")
        admission.record("b")
        assert admission.admit("a", "b")

    def test_window_reset_halves_and_clears_doorkeeper(self):
        admission = TinyLFUAdmission(sample_size=4, seed=0)
        for _ in range(4):
            admission.record("k")
        assert admission.resets == 1
        # Doorkeeper cleared, sketch halved: the estimate decayed.
        assert admission.estimate("k") < 4


class TestCacheAdmission:
    def _full_cache_with_popular_resident(self):
        cache = ServingCache(
            capacity=2, rows_per_entry=2, admission=TinyLFUAdmission(seed=0)
        )
        for _ in range(4):
            cache.lookup("hot")  # builds hot's frequency
        cache.insert("hot", "H")
        cache.lookup("warm")
        cache.insert("warm", "W")
        return cache

    def test_unpopular_newcomer_rejected_and_charges_nothing(self):
        cache = self._full_cache_with_popular_resident()
        cache.lookup("cold")  # first sighting: doorkeeper only
        cost = cache.insert("cold", "C")
        assert cost == Cost()  # no CMA rows written
        assert cache.rejections == 1
        assert "cold" not in cache
        assert "hot" in cache and "warm" in cache  # victim survived
        assert cache.stats()["rejections"] == 1

    def test_popular_newcomer_displaces_the_lru_victim(self):
        cache = self._full_cache_with_popular_resident()
        for _ in range(6):
            cache.lookup("rising")  # now clearly more popular than "hot"
        cost = cache.insert("rising", "R")
        assert cost.energy_pj > 0.0
        assert "rising" in cache
        assert "hot" not in cache  # LRU victim evicted
        assert cache.evictions == 1

    def test_without_admission_every_insert_is_accepted(self):
        cache = ServingCache(capacity=1, rows_per_entry=2)
        cache.insert("a", 1)
        cache.insert("b", 2)
        assert cache.rejections == 0
        assert cache.evictions == 1


class TestWarmup:
    def test_warm_fills_cold_capacity_only(self):
        cache = ServingCache(capacity=2, rows_per_entry=3)
        cost = cache.warm([("a", 1), ("b", 2), ("c", 3)])
        assert len(cache) == 2
        assert "a" in cache and "b" in cache and "c" not in cache
        assert cache.evictions == 0  # warm-up never evicts
        assert cost == TABLE_II.cma_write.repeated(3).repeated(2)

    def test_warm_skips_duplicates(self):
        cache = ServingCache(capacity=4, rows_per_entry=1)
        cache.warm([("a", 1), ("a", 2), ("b", 3)])
        assert len(cache) == 2
        assert cache.lookup("a")[0] == 1  # first value wins

    def test_warmed_entries_hit(self):
        cache = ServingCache(capacity=4, rows_per_entry=1)
        cache.warm([("a", 1)])
        value, _ = cache.lookup("a")
        assert value == 1
        assert cache.hits == 1 and cache.misses == 0


class TestAdmissionStateLifecycle:
    """Regression: flush/invalidate used to leave the TinyLFU sketch and
    doorkeeper untouched, so pre-wipe popularity kept ruling on a store
    that no longer existed."""

    def test_flush_resets_popularity_history(self):
        cache = ServingCache(
            capacity=1, rows_per_entry=2, admission=TinyLFUAdmission(seed=0)
        )
        for _ in range(5):
            cache.lookup("stale")
        cache.insert("stale", "S")
        resets_before = cache.admission.resets
        cache.flush()
        assert cache.admission.resets == resets_before + 1
        assert cache.admission.estimate("stale") == 0

    def test_stale_head_cannot_displace_the_post_flush_working_set(self):
        # Pre-fix failure mode: "stale" kept its pre-flush counts, so a
        # single post-flush sighting out-voted the genuinely-recurring
        # new resident and evicted it.
        cache = ServingCache(
            capacity=1, rows_per_entry=2, admission=TinyLFUAdmission(seed=0)
        )
        for _ in range(5):
            cache.lookup("stale")
        cache.insert("stale", "S")
        cache.flush()
        cache.lookup("fresh")
        cache.lookup("fresh")
        cache.insert("fresh", "F")
        cache.lookup("stale")  # one sighting since the restart
        cache.insert("stale", "S")
        assert "fresh" in cache
        assert "stale" not in cache

    def test_invalidate_ages_popularity_history(self):
        cache = ServingCache(
            capacity=4, rows_per_entry=2, admission=TinyLFUAdmission(seed=0)
        )
        for _ in range(8):
            cache.lookup("doomed")
        cache.insert("doomed", ((1,), (0.5,)))
        estimate_before = cache.admission.estimate("doomed")
        resets_before = cache.admission.resets
        dropped, _ = cache.invalidate([1])
        assert dropped == 1
        assert cache.admission.resets == resets_before + 1
        # Aged, not erased: a partial invalidation halves the counts.
        assert 0 < cache.admission.estimate("doomed") < estimate_before

    def test_invalidate_without_victims_leaves_history_alone(self):
        cache = ServingCache(
            capacity=4, rows_per_entry=2, admission=TinyLFUAdmission(seed=0)
        )
        cache.lookup("kept")
        cache.insert("kept", ((1,), (0.5,)))
        resets_before = cache.admission.resets
        dropped, _ = cache.invalidate([99])
        assert dropped == 0
        assert cache.admission.resets == resets_before

    def test_flush_without_admission_is_safe(self):
        cache = ServingCache(capacity=2, rows_per_entry=1)
        cache.insert("a", 1)
        assert cache.flush() == 1
        assert len(cache) == 0


class TestRepetitionAwareCache:
    def test_validation(self):
        with pytest.raises(ValueError, match="min repeats"):
            RepetitionAwareCache(capacity=2, min_repeats=0)
        with pytest.raises(ValueError, match="window"):
            RepetitionAwareCache(capacity=2, window=0)

    def test_first_time_key_is_bypassed_for_free(self):
        cache = RepetitionAwareCache(capacity=4, rows_per_entry=2)
        cache.lookup("once")
        cost = cache.insert("once", 1)
        assert cost == Cost()
        assert "once" not in cache
        assert cache.bypassed == 1
        assert cache.stats()["bypassed"] == 1

    def test_recurring_key_is_admitted(self):
        cache = RepetitionAwareCache(
            capacity=4, rows_per_entry=2, min_repeats=2
        )
        cache.lookup("again")
        cache.lookup("again")
        cost = cache.insert("again", 1)
        assert cost.energy_pj > 0.0
        assert "again" in cache
        assert cache.bypassed == 0

    def test_resident_refresh_lands_even_below_threshold(self):
        # window=3: the third access ages "a" down to count 1, under
        # min_repeats -- but "a" is resident, so its refresh still lands.
        cache = RepetitionAwareCache(
            capacity=4, rows_per_entry=2, min_repeats=2, window=3
        )
        cache.lookup("a")
        cache.lookup("a")
        cache.insert("a", 1)
        cache.lookup("b")  # triggers aging
        assert cache.seen("a") < cache.min_repeats
        cost = cache.insert("a", 2)
        assert cost.energy_pj > 0.0
        assert cache.lookup("a")[0] == 2
        assert cache.bypassed == 0

    def test_warm_bypasses_the_filter_and_seeds_the_profile(self):
        cache = RepetitionAwareCache(
            capacity=2, rows_per_entry=2, min_repeats=3
        )
        cost = cache.warm([("w", 1), ("x", 2), ("y", 3)])
        assert cost.energy_pj > 0.0
        assert len(cache) == 2  # capacity-capped, never evicts
        assert "w" in cache and "x" in cache and "y" not in cache
        assert cache.seen("w") == 3
        assert cache.bypassed == 0

    def test_recurrence_score_is_the_repeat_mle(self):
        cache = RepetitionAwareCache(capacity=4)
        assert cache.recurrence_score("ghost") == 0.0
        for _ in range(4):
            cache.lookup("k")
        assert cache.recurrence_score("k") == pytest.approx(3 / 4)

    def test_flush_clears_the_recurrence_profile(self):
        cache = RepetitionAwareCache(
            capacity=4, rows_per_entry=2, min_repeats=2
        )
        cache.lookup("a")
        cache.lookup("a")
        cache.insert("a", 1)
        cache.flush()
        assert cache.seen("a") == 0
        assert cache.stats()["tracked_keys"] == 0
        # Post-restart, "a" must earn its way back in.
        assert cache.insert("a", 1) == Cost()
        assert cache.bypassed == 1

    def test_window_aging_drops_one_off_keys(self):
        cache = RepetitionAwareCache(capacity=4, window=4)
        for key in ("a", "b", "c", "d"):
            cache.lookup(key)
        assert cache.stats()["tracked_keys"] == 0  # 1 // 2 == 0: all aged out
