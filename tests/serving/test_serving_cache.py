"""Tests for the result cache: LRU, TinyLFU admission, energy accounting."""

import pytest

from repro.circuits.foms import TABLE_II
from repro.energy.accounting import Cost
from repro.serving.cache import CountMinSketch, ServingCache, TinyLFUAdmission


def test_miss_then_hit():
    cache = ServingCache(capacity=2, rows_per_entry=3)
    value, miss_cost = cache.lookup("q1")
    assert value is None
    assert miss_cost == TABLE_II.cma_search  # probe only
    cache.insert("q1", ("result",))
    value, hit_cost = cache.lookup("q1")
    assert value == ("result",)
    # Hit pays the probe plus the per-row read-out.
    expected = TABLE_II.cma_search.then(TABLE_II.cma_read.repeated(3))
    assert hit_cost == expected
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)


def test_insert_cost_scales_with_rows():
    cache = ServingCache(capacity=2, rows_per_entry=5)
    cost = cache.insert("q", "v")
    assert cost == TABLE_II.cma_write.repeated(5)


def test_lru_eviction_order():
    cache = ServingCache(capacity=2)
    cache.insert("a", 1)
    cache.insert("b", 2)
    cache.lookup("a")  # refresh a -> b becomes LRU
    cache.insert("c", 3)
    assert "a" in cache and "c" in cache
    assert "b" not in cache
    assert cache.evictions == 1


def test_reinsert_refreshes_without_eviction():
    cache = ServingCache(capacity=2)
    cache.insert("a", 1)
    cache.insert("a", 2)  # refresh, not a second entry
    assert len(cache) == 1
    assert cache.lookup("a")[0] == 2
    assert cache.evictions == 0


def test_stats_snapshot():
    cache = ServingCache(capacity=4, rows_per_entry=2)
    cache.lookup("x")
    cache.insert("x", 0)
    cache.lookup("x")
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == 1
    assert stats["insertions"] == 1


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ServingCache(capacity=0)
    with pytest.raises(ValueError):
        ServingCache(capacity=1, rows_per_entry=0)
    with pytest.raises(ValueError):
        CountMinSketch(width=0)
    with pytest.raises(ValueError):
        TinyLFUAdmission(sample_size=0)


class TestCountMinSketch:
    def test_estimate_upper_bounds_true_count(self):
        sketch = CountMinSketch(width=64, depth=4, seed=0)
        truth = {}
        for key in [1, 2, 1, 3, 1, 2, 4, 1]:
            sketch.increment(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count
        assert sketch.estimate("never-seen") >= 0

    def test_halving_ages_counters(self):
        sketch = CountMinSketch(width=64, depth=4, seed=0)
        for _ in range(8):
            sketch.increment("hot")
        before = sketch.estimate("hot")
        sketch.halve()
        assert sketch.estimate("hot") == before // 2


class TestTinyLFUAdmission:
    def test_doorkeeper_promotes_on_second_sighting(self):
        admission = TinyLFUAdmission(sample_size=1000, seed=0)
        admission.record("k")
        assert admission.estimate("k") == 1  # doorkeeper only
        admission.record("k")
        assert admission.estimate("k") >= 2  # sketch + doorkeeper

    def test_admit_prefers_the_more_frequent_key(self):
        admission = TinyLFUAdmission(sample_size=1000, seed=0)
        for _ in range(5):
            admission.record("popular")
        admission.record("one-off")
        assert admission.admit("popular", "one-off")
        assert not admission.admit("one-off", "popular")

    def test_ties_favour_the_newcomer(self):
        admission = TinyLFUAdmission(sample_size=1000, seed=0)
        admission.record("a")
        admission.record("b")
        assert admission.admit("a", "b")

    def test_window_reset_halves_and_clears_doorkeeper(self):
        admission = TinyLFUAdmission(sample_size=4, seed=0)
        for _ in range(4):
            admission.record("k")
        assert admission.resets == 1
        # Doorkeeper cleared, sketch halved: the estimate decayed.
        assert admission.estimate("k") < 4


class TestCacheAdmission:
    def _full_cache_with_popular_resident(self):
        cache = ServingCache(
            capacity=2, rows_per_entry=2, admission=TinyLFUAdmission(seed=0)
        )
        for _ in range(4):
            cache.lookup("hot")  # builds hot's frequency
        cache.insert("hot", "H")
        cache.lookup("warm")
        cache.insert("warm", "W")
        return cache

    def test_unpopular_newcomer_rejected_and_charges_nothing(self):
        cache = self._full_cache_with_popular_resident()
        cache.lookup("cold")  # first sighting: doorkeeper only
        cost = cache.insert("cold", "C")
        assert cost == Cost()  # no CMA rows written
        assert cache.rejections == 1
        assert "cold" not in cache
        assert "hot" in cache and "warm" in cache  # victim survived
        assert cache.stats()["rejections"] == 1

    def test_popular_newcomer_displaces_the_lru_victim(self):
        cache = self._full_cache_with_popular_resident()
        for _ in range(6):
            cache.lookup("rising")  # now clearly more popular than "hot"
        cost = cache.insert("rising", "R")
        assert cost.energy_pj > 0.0
        assert "rising" in cache
        assert "hot" not in cache  # LRU victim evicted
        assert cache.evictions == 1

    def test_without_admission_every_insert_is_accepted(self):
        cache = ServingCache(capacity=1, rows_per_entry=2)
        cache.insert("a", 1)
        cache.insert("b", 2)
        assert cache.rejections == 0
        assert cache.evictions == 1


class TestWarmup:
    def test_warm_fills_cold_capacity_only(self):
        cache = ServingCache(capacity=2, rows_per_entry=3)
        cost = cache.warm([("a", 1), ("b", 2), ("c", 3)])
        assert len(cache) == 2
        assert "a" in cache and "b" in cache and "c" not in cache
        assert cache.evictions == 0  # warm-up never evicts
        assert cost == TABLE_II.cma_write.repeated(3).repeated(2)

    def test_warm_skips_duplicates(self):
        cache = ServingCache(capacity=4, rows_per_entry=1)
        cache.warm([("a", 1), ("a", 2), ("b", 3)])
        assert len(cache) == 2
        assert cache.lookup("a")[0] == 1  # first value wins

    def test_warmed_entries_hit(self):
        cache = ServingCache(capacity=4, rows_per_entry=1)
        cache.warm([("a", 1)])
        value, _ = cache.lookup("a")
        assert value == 1
        assert cache.hits == 1 and cache.misses == 0
