"""Tests for the LRU result cache and its energy accounting."""

import pytest

from repro.circuits.foms import TABLE_II
from repro.serving.cache import ServingCache


def test_miss_then_hit():
    cache = ServingCache(capacity=2, rows_per_entry=3)
    value, miss_cost = cache.lookup("q1")
    assert value is None
    assert miss_cost == TABLE_II.cma_search  # probe only
    cache.insert("q1", ("result",))
    value, hit_cost = cache.lookup("q1")
    assert value == ("result",)
    # Hit pays the probe plus the per-row read-out.
    expected = TABLE_II.cma_search.then(TABLE_II.cma_read.repeated(3))
    assert hit_cost == expected
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)


def test_insert_cost_scales_with_rows():
    cache = ServingCache(capacity=2, rows_per_entry=5)
    cost = cache.insert("q", "v")
    assert cost == TABLE_II.cma_write.repeated(5)


def test_lru_eviction_order():
    cache = ServingCache(capacity=2)
    cache.insert("a", 1)
    cache.insert("b", 2)
    cache.lookup("a")  # refresh a -> b becomes LRU
    cache.insert("c", 3)
    assert "a" in cache and "c" in cache
    assert "b" not in cache
    assert cache.evictions == 1


def test_reinsert_refreshes_without_eviction():
    cache = ServingCache(capacity=2)
    cache.insert("a", 1)
    cache.insert("a", 2)  # refresh, not a second entry
    assert len(cache) == 1
    assert cache.lookup("a")[0] == 2
    assert cache.evictions == 0


def test_stats_snapshot():
    cache = ServingCache(capacity=4, rows_per_entry=2)
    cache.lookup("x")
    cache.insert("x", 0)
    cache.lookup("x")
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == 1
    assert stats["insertions"] == 1


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ServingCache(capacity=0)
    with pytest.raises(ValueError):
        ServingCache(capacity=1, rows_per_entry=0)
