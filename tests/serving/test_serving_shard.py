"""Tests for serve_batch, corpus sharding, replica groups and the router."""

import numpy as np
import pytest

from repro.core.pipeline import GPUReferenceEngine, IMARSEngine
from repro.serving.shard import (
    ReplicaGroup,
    ShardedEngine,
    make_sharded_engine,
    partition_corpus,
)


def test_partition_covers_corpus_without_overlap():
    parts = partition_corpus(10, 3)
    assert len(parts) == 3
    merged = np.sort(np.concatenate(parts))
    assert np.array_equal(merged, np.arange(10))
    sizes = [part.size for part in parts]
    assert max(sizes) - min(sizes) <= 1


def test_partition_validation():
    with pytest.raises(ValueError):
        partition_corpus(4, 5)
    with pytest.raises(ValueError):
        partition_corpus(4, 0)


class TestServeBatch:
    def test_batch_of_one_matches_recommend(self, serving_setup):
        _, filtering, ranking, mapping, workload = serving_setup
        engine = IMARSEngine(filtering, ranking, mapping, num_candidates=12, top_k=4)
        single = engine.recommend_query(workload[0])
        batch = engine.serve_batch([workload[0]])
        assert batch.results[0].items == single.items
        assert batch.cost.latency_ns == pytest.approx(single.cost.latency_ns)
        assert batch.cost.energy_pj == pytest.approx(single.cost.energy_pj)

    def test_gpu_batching_amortises_latency_not_results(self, serving_setup):
        _, filtering, ranking, _, workload = serving_setup
        engine = GPUReferenceEngine(filtering, ranking, num_candidates=12, top_k=4)
        queries = workload[:4]
        batch = engine.serve_batch(queries)
        sequential = sum(result.cost.latency_ns for result in batch.results)
        assert batch.cost.latency_ns < sequential  # launches paid once
        for query, result in zip(queries, batch.results):
            assert result.items == engine.recommend_query(query).items

    def test_imars_pipelining_bounded_by_slowest_stage(self, serving_setup):
        _, filtering, ranking, mapping, workload = serving_setup
        engine = IMARSEngine(filtering, ranking, mapping, num_candidates=12, top_k=4)
        batch = engine.serve_batch(workload[:4])
        sequential = sum(result.cost.latency_ns for result in batch.results)
        first = batch.results[0].cost.latency_ns
        assert first < batch.cost.latency_ns < sequential
        # Energy is not amortised: every stage still runs per query.
        assert batch.cost.energy_pj == pytest.approx(
            sum(result.cost.energy_pj for result in batch.results)
        )

    def test_scores_sorted_descending(self, serving_setup):
        _, filtering, ranking, mapping, workload = serving_setup
        engine = IMARSEngine(filtering, ranking, mapping, num_candidates=12, top_k=4)
        result = engine.recommend_query(workload[0])
        assert len(result.scores) == len(result.items)
        assert result.scores == sorted(result.scores, reverse=True)


class TestItemSubset:
    def test_subset_returns_global_ids_only(self, serving_setup):
        dataset, filtering, ranking, mapping, workload = serving_setup
        subset = np.arange(dataset.num_items // 2)
        for engine in (
            GPUReferenceEngine(
                filtering, ranking, num_candidates=8, top_k=4, item_subset=subset
            ),
            IMARSEngine(
                filtering, ranking, mapping,
                num_candidates=8, top_k=4, item_subset=subset,
            ),
        ):
            result = engine.recommend_query(workload[0])
            assert set(result.items) <= set(int(item) for item in subset)

    def test_subset_validation(self, serving_setup):
        _, filtering, ranking, _, _ = serving_setup
        with pytest.raises(ValueError):
            GPUReferenceEngine(filtering, ranking, item_subset=[])
        with pytest.raises(ValueError):
            GPUReferenceEngine(filtering, ranking, item_subset=[0, 0])
        with pytest.raises(ValueError):
            GPUReferenceEngine(filtering, ranking, item_subset=[10_000_000])

    def test_gpu_shard_nns_cost_scales_with_slice(self, serving_setup):
        dataset, filtering, ranking, _, workload = serving_setup
        full = GPUReferenceEngine(filtering, ranking, num_candidates=8, top_k=4)
        half = GPUReferenceEngine(
            filtering, ranking, num_candidates=8, top_k=4,
            item_subset=np.arange(dataset.num_items // 2),
        )
        full_nns = full.recommend_query(workload[0]).ledger.by_category()["NNS"]
        half_nns = half.recommend_query(workload[0]).ledger.by_category()["NNS"]
        assert half_nns.latency_ns < full_nns.latency_ns


class TestShardedEngine:
    def test_single_shard_router_matches_engine(self, serving_setup):
        _, filtering, ranking, mapping, workload = serving_setup
        plain = IMARSEngine(
            filtering, ranking, mapping, num_candidates=12, top_k=4, seed=0
        )
        routed = make_sharded_engine(
            "imars", filtering, ranking, 1, mapping=mapping,
            num_candidates=12, top_k=4, seed=0,
        )
        for query in workload[:3]:
            assert routed.recommend_query(query).items == plain.recommend_query(query).items

    def test_sharding_cuts_latency_and_merges_topk(self, serving_setup):
        _, filtering, ranking, mapping, workload = serving_setup
        single = make_sharded_engine(
            "imars", filtering, ranking, 1, mapping=mapping,
            num_candidates=12, top_k=4, seed=0,
        )
        sharded = make_sharded_engine(
            "imars", filtering, ranking, 3, mapping=mapping,
            num_candidates=12, top_k=4, seed=0,
        )
        one = single.recommend_query(workload[0])
        three = sharded.recommend_query(workload[0])
        assert three.cost.latency_ns < one.cost.latency_ns
        assert len(three.items) == 4
        assert three.scores == sorted(three.scores, reverse=True)
        assert "Merge" in three.ledger.categories()

    def test_shards_partition_results(self, serving_setup):
        dataset, filtering, ranking, mapping, workload = serving_setup
        sharded = make_sharded_engine(
            "gpu", filtering, ranking, 2, num_candidates=12, top_k=4, seed=0
        )
        # Each shard serves only its slice; merged ids stay in-corpus and
        # unique.
        result = sharded.recommend_query(workload[0])
        assert len(set(result.items)) == len(result.items)
        assert all(0 <= item < dataset.num_items for item in result.items)

    def test_gather_cost_composition(self, serving_setup):
        _, filtering, ranking, mapping, workload = serving_setup
        sharded = make_sharded_engine(
            "imars", filtering, ranking, 2, mapping=mapping,
            num_candidates=12, top_k=4, seed=0,
        )
        batch = sharded.serve_batch(workload[:2])
        shard_batches = [shard.serve_batch(workload[:2]) for shard in sharded.shards]
        slowest = max(sb.cost.latency_ns for sb in shard_batches)
        total_energy = sum(sb.cost.energy_pj for sb in shard_batches)
        # Scatter latency = slowest shard (+ merge); energy adds across shards.
        assert batch.cost.latency_ns >= slowest
        assert batch.cost.energy_pj >= total_energy

    def test_router_validation(self):
        with pytest.raises(ValueError):
            ShardedEngine([], top_k=4)
        with pytest.raises(ValueError):
            make_sharded_engine("unknown", None, None, 1)

    def test_imars_requires_mapping(self, serving_setup):
        _, filtering, ranking, _, _ = serving_setup
        with pytest.raises(ValueError):
            make_sharded_engine("imars", filtering, ranking, 2, mapping=None)


class TestReplicaGroup:
    def _engines(self, serving_setup, replicas):
        _, filtering, ranking, mapping, _ = serving_setup
        return make_sharded_engine(
            "imars", filtering, ranking, 2, mapping=mapping,
            num_candidates=12, top_k=4, seed=0, replicas_per_shard=replicas,
        )

    def test_replication_never_changes_recommendations(self, serving_setup):
        _, _, _, _, workload = serving_setup
        single = self._engines(serving_setup, 1)
        tripled = self._engines(serving_setup, 3)
        batch = workload[:6]
        for lhs, rhs in zip(
            single.serve_batch(batch).results, tripled.serve_batch(batch).results
        ):
            assert lhs.items == rhs.items
            assert lhs.scores == rhs.scores

    def test_replication_cuts_occupancy_not_energy(self, serving_setup):
        _, _, _, _, workload = serving_setup
        batch = workload[:6]
        single = self._engines(serving_setup, 1).serve_batch(batch)
        doubled = self._engines(serving_setup, 2).serve_batch(batch)
        # The dispatch round splits across replicas: the group's occupancy
        # (slowest member) drops, while the work (energy) is unchanged.
        assert doubled.cost.latency_ns < single.cost.latency_ns
        assert doubled.cost.energy_pj == pytest.approx(single.cost.energy_pj)

    def test_assignment_levels_work_deterministically(self, serving_setup):
        _, filtering, ranking, mapping, _ = serving_setup
        replicas = [
            IMARSEngine(
                filtering, ranking, mapping, num_candidates=12, top_k=4, seed=0
            )
            for _ in range(3)
        ]
        group = ReplicaGroup(replicas)
        assignment = group.assign(7)
        positions = sorted(position for member in assignment for position in member)
        assert positions == list(range(7))  # every query placed exactly once
        sizes = [len(member) for member in assignment]
        assert max(sizes) - min(sizes) <= 1  # levelled before any history
        assert group.assign(7) == assignment  # deterministic replan

    def test_busy_time_accumulates_and_balances(self, serving_setup):
        _, _, _, _, workload = serving_setup
        group = self._engines(serving_setup, 2).shards[0]
        assert isinstance(group, ReplicaGroup)
        assert group.busy_s == [0.0, 0.0]
        group.serve_batch(workload[:4])
        assert all(busy > 0.0 for busy in group.busy_s)

    def test_empty_batch_is_a_noop(self, serving_setup):
        group = self._engines(serving_setup, 2).shards[0]
        result = group.serve_batch([])
        assert result.results == []
        assert result.cost.energy_pj == 0.0

    def test_validation(self, serving_setup):
        _, filtering, ranking, mapping, _ = serving_setup
        with pytest.raises(ValueError):
            ReplicaGroup([])
        with pytest.raises(ValueError):
            make_sharded_engine(
                "imars", filtering, ranking, 2, mapping=mapping,
                replicas_per_shard=0,
            )
