"""Workload analyzer: trace features and the execution-model pick.

Synthetic traces with known shape (flat/spiky arrival profiles, one-off
vs heavily repeated user populations) pin each feature's direction and
the recommendation rule's three regimes.
"""

import math

import numpy as np
import pytest

from repro.serving.traffic import BurstyTraffic, DiurnalTraffic, Request
from repro.serving.workload_analyzer import (
    WorkloadFeatures,
    analyze_trace,
    hot_users,
    recommend_execution_model,
    user_request_counts,
)


def _trace(arrivals, users):
    return [
        Request(request_id=index, arrival_s=float(arrival), user=int(user))
        for index, (arrival, user) in enumerate(zip(arrivals, users))
    ]


def _flat_arrivals(count, rate=100.0):
    return np.arange(count) / rate


def _spiky_arrivals(count, rate=100.0):
    # Everything crammed into the first 10% of the span: one flash crowd
    # followed by near-silence.
    head = int(count * 0.9)
    burst = np.linspace(0.0, 0.1 * count / rate, head)
    tail = np.linspace(0.1 * count / rate, count / rate, count - head)
    return np.concatenate([burst, tail])


class TestUserCounts:
    def test_counts_and_first_seen_order(self):
        trace = _trace(_flat_arrivals(5), [3, 1, 3, 3, 1])
        assert user_request_counts(trace) == {3: 3, 1: 2}
        assert list(user_request_counts(trace)) == [3, 1]

    def test_hot_users_cover_the_traffic_target(self):
        # User 0: 6 requests, user 1: 3, user 2: 1.
        users = [0] * 6 + [1] * 3 + [2]
        trace = _trace(_flat_arrivals(len(users)), users)
        assert hot_users(trace, traffic_fraction=0.5) == [0]
        assert hot_users(trace, traffic_fraction=0.7) == [0, 1]
        assert hot_users(trace, traffic_fraction=1.0) == [0, 1, 2]

    def test_hot_users_ties_break_by_id(self):
        trace = _trace(_flat_arrivals(4), [7, 2, 2, 7])
        assert hot_users(trace, traffic_fraction=1.0) == [2, 7]

    def test_hot_users_validation(self):
        trace = _trace(_flat_arrivals(2), [0, 1])
        with pytest.raises(ValueError, match="traffic fraction"):
            hot_users(trace, traffic_fraction=0.0)
        with pytest.raises(ValueError, match="traffic fraction"):
            hot_users(trace, traffic_fraction=1.5)


class TestAnalyzeTrace:
    def test_flat_trace_is_not_spiky(self):
        features = analyze_trace(_trace(_flat_arrivals(240), range(240)))
        assert features.peak_to_mean == pytest.approx(1.0, abs=0.1)
        assert features.rate_cv == pytest.approx(0.0, abs=0.1)
        assert features.burstiness < 1.0
        assert features.repetition_ratio == 0.0

    def test_spiky_trace_scores_high_on_every_rate_feature(self):
        flat = analyze_trace(_trace(_flat_arrivals(240), range(240)))
        spiky = analyze_trace(_trace(_spiky_arrivals(240), range(240)))
        assert spiky.peak_to_mean > 2.0 * flat.peak_to_mean
        assert spiky.rate_cv > flat.rate_cv
        assert spiky.burstiness > 10.0 * max(flat.burstiness, 0.1)
        assert spiky.hourly_elasticity > flat.hourly_elasticity

    def test_repetition_features(self):
        one_offs = analyze_trace(_trace(_flat_arrivals(100), range(100)))
        assert one_offs.repetition_ratio == 0.0
        repeated = analyze_trace(_trace(_flat_arrivals(100), [0, 1] * 50))
        assert repeated.repetition_ratio == pytest.approx(0.98)
        assert repeated.top_decile_share == pytest.approx(0.5)

    def test_zipf_head_dominates_top_decile(self):
        # 10 users; user 0 produces 91% of requests.
        users = [0] * 91 + list(range(1, 10))
        features = analyze_trace(_trace(_flat_arrivals(100), users))
        assert features.top_decile_share == pytest.approx(0.91)

    def test_single_instant_trace_degenerates_gracefully(self):
        features = analyze_trace(_trace(np.zeros(8), range(8)))
        assert features.duration_s == 0.0
        assert features.mean_qps == 0.0
        assert features.peak_to_mean == 1.0
        assert features.hourly_elasticity == 0.0
        assert not any(
            isinstance(value, float) and math.isnan(value)
            for value in features.as_dict().values()
        )

    def test_diurnal_vs_bursty_generators_separate_on_burstiness(self):
        diurnal = analyze_trace(
            DiurnalTraffic(
                base_qps=1000.0, num_users=64, period_s=0.2, seed=0
            ).generate(200)
        )
        bursty = analyze_trace(
            BurstyTraffic(
                calm_qps=400.0,
                burst_qps=6000.0,
                num_users=64,
                mean_calm_s=0.024,
                mean_burst_s=0.012,
                seed=0,
                stream=3,
            ).generate(200)
        )
        assert bursty.burstiness > diurnal.burstiness

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            analyze_trace([])
        with pytest.raises(ValueError, match="bin"):
            analyze_trace(_trace(_flat_arrivals(4), range(4)), bins=0)

    def test_as_dict_and_format_row(self):
        features = analyze_trace(_trace(_flat_arrivals(50), [0, 1] * 25))
        as_dict = features.as_dict()
        assert as_dict["num_requests"] == 50
        assert "rep=0.96" in features.format_row()


class TestRecommendation:
    def _features(self, repetition, elasticity, burstiness):
        return WorkloadFeatures(
            num_requests=100,
            duration_s=1.0,
            mean_qps=100.0,
            peak_to_mean=2.0,
            rate_cv=0.5,
            burstiness=burstiness,
            repetition_ratio=repetition,
            top_decile_share=0.5,
            hourly_elasticity=elasticity,
        )

    def test_low_repetition_means_lazy(self):
        assert recommend_execution_model(
            self._features(0.1, 0.9, 1.0)
        ) == "lazy"

    def test_repetitive_deep_valley_means_eager(self):
        assert recommend_execution_model(
            self._features(0.8, 0.8, 2.0)
        ) == "eager"

    def test_repetitive_but_bursty_means_hybrid(self):
        # An MMPP trace repeats as much as the diurnal one, but its
        # spikes cannot be scheduled around: no eager.
        assert recommend_execution_model(
            self._features(0.8, 0.8, 9.0)
        ) == "hybrid"

    def test_middle_repetition_means_hybrid(self):
        assert recommend_execution_model(
            self._features(0.35, 0.8, 1.0)
        ) == "hybrid"

    def test_shallow_valley_means_hybrid(self):
        assert recommend_execution_model(
            self._features(0.8, 0.1, 1.0)
        ) == "hybrid"

    def test_thresholds_are_tunable(self):
        features = self._features(0.3, 0.8, 1.0)
        assert recommend_execution_model(features) == "hybrid"
        assert (
            recommend_execution_model(features, eager_repetition=0.25)
            == "eager"
        )
        assert (
            recommend_execution_model(features, min_repetition=0.4) == "lazy"
        )
