"""The telemetry plane against the real serving stack.

The load-bearing pin is *bit-identity*: attaching a :class:`Telemetry`
must not change a single recommendation, completion time, or picojoule,
because tracing only observes stage costs the session already computed.
On top of that: the span tree of a full session must validate, carry the
documented stage names, satisfy the duration algebra (stages tile inside
their batch; requests complete inside the session), and agree with the
metrics registry and the SLO report about what happened.
"""

import json

import pytest

from repro.cli import EXPERIMENTS, main
from repro.obs import Telemetry, span_children
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.cache import ServingCache, TinyLFUAdmission
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.slo import SLOReport
from repro.serving.traffic import BurstyTraffic

NUM_REQUESTS = 90
_SEQUENTIAL_STAGES = ("queue", "cache-lookup", "engine", "cache-fill", "migration")


@pytest.fixture(scope="module")
def telemetry_setup(serving_setup):
    """A sharded, cached, admission-guarded session factory + its traffic."""
    dataset, filtering, ranking, mapping, workload = serving_setup
    engine_probe = make_sharded_engine(
        "imars",
        filtering,
        ranking,
        2,
        mapping=mapping,
        num_candidates=24,
        top_k=5,
        seed=0,
        replicas_per_shard=2,
    )
    batch_one_s = engine_probe.recommend_query(workload[0]).cost.latency_s
    rate_qps = 16.0 / engine_probe.serve_batch(workload[:16]).cost.latency_s
    requests = BurstyTraffic(
        calm_qps=rate_qps,
        burst_qps=3.0 * rate_qps,
        num_users=dataset.num_users,
        mean_calm_s=15.0 / rate_qps,
        mean_burst_s=15.0 / rate_qps,
        seed=0,
        stream=9,
    ).generate(NUM_REQUESTS)

    def build_session(telemetry):
        return ServingSession(
            make_sharded_engine(
                "imars",
                filtering,
                ranking,
                2,
                mapping=mapping,
                num_candidates=24,
                top_k=5,
                seed=0,
                replicas_per_shard=2,
            ),
            workload,
            scheduler=MicroBatchScheduler(
                MicroBatchConfig(max_batch_size=16, max_wait_s=4.0 * batch_one_s)
            ),
            cache=ServingCache(
                capacity=max(4, dataset.num_users // 4),
                rows_per_entry=5,
                admission=TinyLFUAdmission(seed=0),
            ),
            admission=AdmissionController(
                AdmissionConfig(slo_ms=12.0 * batch_one_s * 1e3)
            ),
            label="telemetry pin",
            telemetry=telemetry,
        )

    return build_session, requests


@pytest.fixture(scope="module")
def traced_run(telemetry_setup):
    build_session, requests = telemetry_setup
    telemetry = Telemetry()
    result = build_session(telemetry).run(requests)
    return telemetry, result


class TestBitIdentity:
    """Tracing on vs off: the simulation must not notice."""

    def test_records_and_ledger_identical(self, telemetry_setup, traced_run):
        build_session, requests = telemetry_setup
        _, traced = traced_run
        untraced = build_session(None).run(requests)
        assert len(traced.records) == len(untraced.records)
        for ours, theirs in zip(traced.records, untraced.records):
            assert ours.items == theirs.items
            assert ours.completion_s == theirs.completion_s  # bitwise
            assert ours.cache_hit == theirs.cache_hit
            assert ours.shed == theirs.shed
            assert ours.degraded == theirs.degraded
        assert traced.ledger.total() == untraced.ledger.total()
        assert traced.ledger.by_category() == untraced.ledger.by_category()

    def test_sampling_does_not_perturb_either(self, telemetry_setup, traced_run):
        build_session, requests = telemetry_setup
        _, traced = traced_run
        sampled_telemetry = Telemetry(sample_every=4)
        sampled = build_session(sampled_telemetry).run(requests)
        assert [record.items for record in sampled.records] == [
            record.items for record in traced.records
        ]
        assert sampled.ledger.total() == traced.ledger.total()
        tracer = sampled_telemetry.tracer
        assert 0 < tracer.sampled_batches < tracer.seen_batches
        tracer.validate()


class TestSpanTree:
    def test_validates_and_covers_the_serve_path(self, traced_run):
        telemetry, _ = traced_run
        tracer = telemetry.tracer
        tracer.validate()
        names = {span.name for span in tracer.spans}
        assert {
            "batch",
            "queue",
            "admission",
            "cache-lookup",
            "engine",
            "request",
        } <= names
        assert any(name.startswith("shard") for name in names)
        assert any(name.startswith("replica") for name in names)
        assert "kernel" in names

    def test_one_root_per_sampled_batch(self, traced_run):
        telemetry, result = traced_run
        tracer = telemetry.tracer
        roots = [span for span in tracer.spans if span.parent_id is None]
        assert len(roots) == tracer.sampled_batches == len(result.batches)
        assert all(root.name == "batch" for root in roots)

    def test_sequential_stages_tile_inside_their_batch(self, traced_run):
        """The ISSUE invariant: per-stage durations sum to no more than
        the batch's wall-clock (the stages are sequential on one
        engine)."""
        telemetry, _ = traced_run
        children = span_children(telemetry.tracer.spans)
        roots = [s for s in telemetry.tracer.spans if s.parent_id is None]
        assert roots
        for root in roots:
            stage_sum = sum(
                child.duration_s
                for child in children.get(root.span_id, [])
                if child.name in _SEQUENTIAL_STAGES
            )
            assert stage_sum <= root.duration_s + 1e-12

    def test_request_spans_cover_arrival_to_completion(self, traced_run):
        telemetry, result = traced_run
        request_spans = [
            span for span in telemetry.tracer.spans if span.name == "request"
        ]
        by_id = {span.attrs["request_id"]: span for span in request_spans}
        assert len(by_id) == len(result.records)  # every request traced
        for record in result.records:
            span = by_id[record.request.request_id]
            assert span.start_s == record.request.arrival_s
            assert span.end_s == record.completion_s
            assert span.attrs["cache_hit"] == record.cache_hit
            expected = (
                "shed"
                if record.shed
                else "degraded" if record.degraded else "served"
            )
            assert span.attrs["outcome"] == expected

    def test_kernel_spans_name_their_engine_and_kernel(self, traced_run):
        telemetry, _ = traced_run
        kernels = [s for s in telemetry.tracer.spans if s.name == "kernel"]
        assert kernels
        for span in kernels:
            assert span.category == "kernel"
            assert span.attrs["kernel"] in ("vector", "scalar")
            assert span.attrs["queries"] >= 1
            assert span.attrs["energy_pj"] > 0.0


class TestMetricsAgreement:
    """The registry must tell the same story as the SLO report."""

    def test_request_outcomes_match_records(self, traced_run):
        telemetry, result = traced_run
        requests_total = telemetry.metrics.get("repro_requests_total")
        label = "telemetry pin"
        served = requests_total.value(process=label, outcome="served")
        degraded = requests_total.value(process=label, outcome="degraded")
        shed = requests_total.value(process=label, outcome="shed")
        assert served + degraded + shed == len(result.records)
        assert shed == result.report.shed_count
        assert degraded == result.report.degraded_count

    def test_batches_and_sizes_match(self, traced_run):
        telemetry, result = traced_run
        label = "telemetry pin"
        batches = telemetry.metrics.get("repro_batches_total")
        assert batches.value(process=label) == len(result.batches)
        sizes = telemetry.metrics.get("repro_batch_size")
        assert sizes.count(process=label) == len(result.batches)
        assert sizes.sum(process=label) == sum(
            len(batch) for batch in result.batches
        )

    def test_ledger_energy_joined(self, traced_run):
        telemetry, result = traced_run
        total = telemetry.metrics.get("repro_energy_total_pj")
        assert total.value(process="telemetry pin") == pytest.approx(
            result.ledger.total().energy_pj
        )
        per_category = telemetry.metrics.get("repro_energy_category_pj")
        for category, cost in result.ledger.by_category().items():
            assert per_category.value(
                process="telemetry pin", category=category
            ) == pytest.approx(cost.energy_pj)

    def test_cache_lookups_split_hit_miss(self, traced_run):
        telemetry, result = traced_run
        lookups = telemetry.metrics.get("repro_cache_lookups_total")
        hits = lookups.value(process="telemetry pin", result="hit")
        misses = lookups.value(process="telemetry pin", result="miss")
        assert hits > 0 and misses > 0
        stats = result.cache_stats
        assert hits == stats["hits"] and misses == stats["misses"]


class TestExports:
    def test_export_produces_loadable_artifacts(self, traced_run, tmp_path):
        telemetry, _ = traced_run
        trace_json = tmp_path / "trace.json"
        trace_jsonl = tmp_path / "trace.jsonl"
        metrics_prom = tmp_path / "metrics.prom"
        telemetry.export(str(trace_json), str(metrics_prom))
        telemetry.export(trace_out=str(trace_jsonl))
        document = json.loads(trace_json.read_text())
        assert document["otherData"]["spans"] == len(telemetry.tracer.spans)
        phases = {event["ph"] for event in document["traceEvents"]}
        assert {"X", "M"} <= phases
        for line in trace_jsonl.read_text().splitlines():
            json.loads(line)
        text = metrics_prom.read_text()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_stage_latency_seconds_bucket" in text


class TestSLOReportRow:
    def test_format_row_includes_shed_and_degraded_rates(self):
        report = SLOReport(
            label="s",
            num_requests=100,
            p50_ms=1.0,
            p95_ms=2.0,
            p99_ms=3.0,
            mean_ms=1.0,
            max_ms=4.0,
            offered_qps=10.0,
            sustained_qps=9.0,
            energy_per_request_uj=1.0,
            cache_hit_rate=0.5,
            mean_batch_size=4.0,
            shed_count=20,
            degraded_count=8,
        )
        row = report.format_row()
        assert "shed=20(20.0%)" in row
        assert "deg=8(10.0%)" in row  # 8 of the 80 served

    def test_format_row_stays_clean_without_overload(self):
        report = SLOReport(
            label="s",
            num_requests=100,
            p50_ms=1.0,
            p95_ms=2.0,
            p99_ms=3.0,
            mean_ms=1.0,
            max_ms=4.0,
            offered_qps=10.0,
            sustained_qps=9.0,
            energy_per_request_uj=1.0,
            cache_hit_rate=0.5,
            mean_batch_size=4.0,
        )
        row = report.format_row()
        assert "shed=" not in row and "deg=" not in row


class TestCLI:
    def test_telemetry_flags_rejected_for_non_serving_experiments(self, capsys):
        assert main(["run", "E1", "--trace-out", "t.json"]) == 2
        assert "serving experiment" in capsys.readouterr().err

    def test_telemetry_flags_forwarded_to_serving_runners(
        self, tmp_path, monkeypatch, capsys
    ):
        seen = {}

        def stub_runner(trace_out=None, metrics_out=None):
            seen["trace_out"] = trace_out
            seen["metrics_out"] = metrics_out

            class _Report:
                def format(self):
                    return "stub"

            return _Report()

        monkeypatch.setitem(EXPERIMENTS, "E-HETERO", ("stub", stub_runner))
        trace = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "run",
                    "E-hetero",
                    "--trace-out",
                    str(trace),
                    "--metrics-out",
                    str(prom),
                ]
            )
            == 0
        )
        assert seen == {"trace_out": str(trace), "metrics_out": str(prom)}
        assert "telemetry ->" in capsys.readouterr().out
