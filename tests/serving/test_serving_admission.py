"""Tests for SLO-guarded admission control (shed / degrade / accept)."""

import pytest

from repro.serving.admission import (
    ACCEPT,
    DEGRADE,
    SHED,
    AdmissionConfig,
    AdmissionController,
)
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.slo import RequestRecord, summarize
from repro.serving.traffic import PoissonTraffic, Request
from repro.energy.accounting import Cost, Ledger


def _request(arrival_s=0.0, tenant="default", request_id=0):
    return Request(
        request_id=request_id, arrival_s=arrival_s, user=0, tenant=tenant
    )


class TestAdmissionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ms=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ms=1.0, tenant_slos_ms={"a": -1.0})
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ms=1.0, degrade_watermark=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ms=1.0, degrade_watermark=1.2, shed_watermark=1.0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ms=1.0, degraded_top_k=0)

    def test_tenant_budget_overrides_default(self):
        config = AdmissionConfig(slo_ms=10.0, tenant_slos_ms={"gold": 2.0})
        assert config.budget_ms("gold") == 2.0
        assert config.budget_ms("anyone-else") == 10.0


class TestAdmissionController:
    def _controller(self, **kwargs):
        defaults = dict(slo_ms=1.0, degrade_watermark=0.5, shed_watermark=1.0)
        defaults.update(kwargs)
        return AdmissionController(AdmissionConfig(**defaults))

    def test_no_estimate_accepts_everything(self):
        controller = self._controller()
        assert controller.decide(_request(), 10.0, None) == ACCEPT
        assert controller.accepted == 1

    def test_outcome_escalates_with_projected_latency(self):
        controller = self._controller()
        # Budget 1 ms: 0.1 ms projected -> accept, 0.7 -> degrade, 2 -> shed.
        assert controller.decide(_request(), 0.0, 0.1e-3) == ACCEPT
        assert controller.decide(_request(), 0.0, 0.7e-3) == DEGRADE
        assert controller.decide(_request(), 0.0, 2.0e-3) == SHED
        assert (controller.accepted, controller.degraded, controller.shed) == (1, 1, 1)

    def test_queueing_time_counts_against_the_budget(self):
        controller = self._controller()
        # The same service estimate sheds once the request has queued long.
        assert controller.decide(_request(arrival_s=0.0), 0.0, 0.2e-3) == ACCEPT
        assert controller.decide(_request(arrival_s=0.0), 0.9e-3, 0.2e-3) == SHED

    def test_per_tenant_budgets_and_counters(self):
        controller = self._controller(tenant_slos_ms={"tight": 0.1})
        assert controller.decide(_request(tenant="tight"), 0.0, 0.2e-3) == SHED
        assert controller.decide(_request(tenant="loose"), 0.0, 0.2e-3) == ACCEPT
        stats = controller.stats()
        assert stats["by_tenant"]["tight"][SHED] == 1
        assert stats["by_tenant"]["loose"][ACCEPT] == 1
        assert stats["decisions"] == 2
        assert stats["shed_rate"] == pytest.approx(0.5)

    def test_dispatch_before_arrival_rejected(self):
        controller = self._controller()
        with pytest.raises(ValueError):
            controller.decide(_request(arrival_s=5.0), 1.0, 0.1)


class TestSLOReportAccounting:
    def _record(self, request_id, latency_s, shed=False, degraded=False):
        return RequestRecord(
            request=_request(arrival_s=0.0, request_id=request_id),
            completion_s=latency_s,
            batch_size=1,
            cache_hit=False,
            items=() if shed else (1, 2),
            shed=shed,
            degraded=degraded,
        )

    def test_shed_requests_leave_the_latency_tail(self):
        served = [self._record(i, 1.0) for i in range(4)]
        ledger = Ledger()
        ledger.charge("Serve", Cost(energy_pj=8e6, latency_ns=1.0))
        base = summarize(served, ledger)
        with_shed = summarize(
            served + [self._record(9, 0.001, shed=True)], ledger
        )
        # Percentiles unchanged: a rejection is not a fast completion.
        assert with_shed.p95_ms == base.p95_ms
        assert with_shed.shed_count == 1
        assert with_shed.served_count == 4
        assert with_shed.shed_rate == pytest.approx(0.2)
        # Energy is normalised per *served* request.
        assert with_shed.energy_per_request_uj == base.energy_per_request_uj

    def test_degraded_counted_among_served(self):
        records = [self._record(0, 1.0), self._record(1, 1.0, degraded=True)]
        report = summarize(records, Ledger())
        assert report.degraded_count == 1
        assert report.degraded_rate == pytest.approx(0.5)

    def test_all_shed_degenerates_gracefully(self):
        import math

        records = [self._record(i, 0.0, shed=True) for i in range(3)]
        report = summarize(records, Ledger())
        # No request was answered: there is no latency tail to report.
        assert math.isnan(report.p95_ms)
        assert report.served_count == 0
        assert report.shed_rate == 1.0
        assert "nan" not in report.format_row()

    def test_tenant_energy_attributed_by_served_share(self):
        """Regression: a heavily-shed tenant is not billed for volume
        the engine never served."""
        from repro.serving.slo import summarize_tenants

        records = []
        # Tenant A: 4 offered, 3 shed. Tenant B: 4 offered, all served.
        for index in range(4):
            records.append(
                RequestRecord(
                    request=_request(tenant="a", request_id=index),
                    completion_s=0.001,
                    batch_size=1,
                    cache_hit=False,
                    items=() if index else (1,),
                    shed=bool(index),
                )
            )
        for index in range(4, 8):
            records.append(
                RequestRecord(
                    request=_request(tenant="b", request_id=index),
                    completion_s=0.001,
                    batch_size=1,
                    cache_hit=False,
                    items=(1,),
                )
            )
        ledger = Ledger()
        ledger.charge("Serve", Cost(energy_pj=5e6, latency_ns=1.0))
        reports = summarize_tenants(records, ledger)
        # 1 of 5 served requests is tenant A's: it carries 1/5 of the energy.
        total_uj = ledger.total().energy_uj
        assert reports["a"].energy_per_request_uj == pytest.approx(total_uj / 5)
        assert reports["b"].energy_per_request_uj == pytest.approx(
            (total_uj * 4 / 5) / 4
        )
        # Attribution conserves the session total over served requests.
        conserved = sum(
            report.energy_per_request_uj * report.served_count
            for report in reports.values()
        )
        assert conserved == pytest.approx(total_uj)

    def test_shed_record_cannot_carry_items(self):
        with pytest.raises(ValueError):
            RequestRecord(
                request=_request(),
                completion_s=0.0,
                batch_size=1,
                cache_hit=False,
                items=(1,),
                shed=True,
            )


class TestSessionIntegration:
    @pytest.fixture(scope="class")
    def overloaded(self, serving_setup):
        """One overloaded session with admission, one without."""
        dataset, filtering, ranking, mapping, workload = serving_setup
        engine = make_sharded_engine(
            "imars", filtering, ranking, 1, mapping=mapping,
            num_candidates=12, top_k=4, seed=0,
        )
        batch_one_s = engine.recommend_query(workload[0]).cost.latency_s
        rate = 8.0 / batch_one_s
        requests = PoissonTraffic(
            rate, num_users=dataset.num_users, seed=0, stream=3
        ).generate(120)
        slo_ms = 4.0 * batch_one_s * 1e3

        def run(admission):
            return ServingSession(
                make_sharded_engine(
                    "imars", filtering, ranking, 1, mapping=mapping,
                    num_candidates=12, top_k=4, seed=0,
                ),
                workload,
                scheduler=MicroBatchScheduler(
                    MicroBatchConfig(max_batch_size=8, max_wait_s=0.0)
                ),
                admission=admission,
                label="admission-test",
            ).run(requests)

        controller = AdmissionController(
            AdmissionConfig(slo_ms=slo_ms, degraded_top_k=2)
        )
        return run(None), run(controller), controller

    def test_overload_sheds_and_degrades(self, overloaded):
        _, guarded, controller = overloaded
        report = guarded.report
        assert report.shed_count > 0
        assert report.degraded_count > 0
        assert report.shed_count == controller.shed
        assert guarded.admission_stats["shed"] == controller.shed

    def test_guarded_tail_beats_unguarded(self, overloaded):
        unguarded, guarded, _ = overloaded
        assert guarded.report.p95_ms < unguarded.report.p95_ms
        assert unguarded.report.shed_count == 0

    def test_degraded_records_truncated_to_reduced_topk(self, overloaded):
        _, guarded, controller = overloaded
        degraded_k = controller.config.degraded_top_k
        degraded = [record for record in guarded.records if record.degraded]
        assert degraded
        assert all(len(record.items) <= degraded_k for record in degraded)

    def test_shed_records_served_nothing_at_dispatch(self, overloaded):
        _, guarded, _ = overloaded
        shed = [record for record in guarded.records if record.shed]
        assert shed
        assert all(record.items == () for record in shed)
        # A rejection completes at dispatch: it never waits for the engine.
        assert all(not record.cache_hit for record in shed)

    def test_record_count_conserved(self, overloaded):
        unguarded, guarded, _ = overloaded
        assert len(guarded.records) == len(unguarded.records)
