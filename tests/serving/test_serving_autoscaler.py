"""Unit tests for the closed-loop autoscaler's control law.

The loop is exercised against synthetic deployments (no engines): an
evaluate stub returns canned SLO reports per (shards, replicas), so each
test controls exactly what the autoscaler measures.
"""

from dataclasses import dataclass
from typing import Dict

import pytest

from repro.serving.autoscaler import Autoscaler, AutoscalerConfig
from repro.serving.slo import SLOReport


def _report(label, p95_ms, energy_uj):
    return SLOReport(
        label=label,
        num_requests=10,
        p50_ms=p95_ms / 2,
        p95_ms=p95_ms,
        p99_ms=p95_ms * 1.1,
        mean_ms=p95_ms / 2,
        max_ms=p95_ms * 1.2,
        offered_qps=100.0,
        sustained_qps=90.0,
        energy_per_request_uj=energy_uj,
        cache_hit_rate=0.0,
        mean_batch_size=2.0,
    )


@dataclass
class _StubResult:
    report: SLOReport
    tenant_reports: Dict[str, SLOReport]


class _StubDeployments:
    """evaluate() backed by a {(shards, replicas): (p95, energy)} table."""

    def __init__(self, table, tenants=None):
        self.table = table
        self.tenants = tenants or {}
        self.calls = []

    def __call__(self, shards, replicas):
        self.calls.append((shards, replicas))
        p95_ms, energy_uj = self.table[(shards, replicas)]
        label = f"s={shards} r={replicas}"
        tenant_reports = {
            tenant: _report(f"{label} [{tenant}]", factor * p95_ms, energy_uj)
            for tenant, factor in self.tenants.items()
        }
        return _StubResult(_report(label, p95_ms, energy_uj), tenant_reports)


def test_feasible_start_converges_without_scaling():
    stub = _StubDeployments({(1, 1): (5.0, 1.0)})
    outcome = Autoscaler(stub, AutoscalerConfig(p95_slo_ms=10.0)).run()
    assert outcome.converged
    assert outcome.chosen == (1, 1)
    assert stub.calls == [(1, 1)]  # no speculative evaluations


def test_greedy_follows_the_better_axis_until_feasible():
    stub = _StubDeployments(
        {
            (1, 1): (40.0, 1.0),
            (2, 1): (30.0, 1.2),  # sharding helps less here...
            (1, 2): (20.0, 1.0),  # ...than replication
            (2, 2): (9.0, 1.3),
            (1, 3): (12.0, 1.0),
        }
    )
    outcome = Autoscaler(
        stub, AutoscalerConfig(p95_slo_ms=10.0, max_shards=3, max_replicas=3)
    ).run()
    assert outcome.converged
    assert outcome.chosen == (2, 2)
    # Round 1 compared both axes and moved to (1, 2), round 2 found (2, 2).
    assert (1, 2) in stub.calls and (2, 2) in stub.calls


def test_min_energy_feasible_config_wins():
    stub = _StubDeployments(
        {
            (1, 1): (40.0, 1.0),
            (2, 1): (8.0, 2.0),  # feasible but costly
            (1, 2): (9.0, 1.1),  # feasible and cheap -> chosen
        }
    )
    outcome = Autoscaler(
        stub, AutoscalerConfig(p95_slo_ms=10.0, max_shards=2, max_replicas=2)
    ).run()
    assert outcome.converged
    assert outcome.chosen == (1, 2)


def test_bounds_exhausted_reports_best_effort():
    table = {
        (shards, replicas): (100.0 - 10 * shards - 5 * replicas, 1.0)
        for shards in (1, 2)
        for replicas in (1, 2)
    }
    stub = _StubDeployments(table)
    outcome = Autoscaler(
        stub,
        AutoscalerConfig(p95_slo_ms=1.0, max_shards=2, max_replicas=2, max_steps=8),
    ).run()
    assert not outcome.converged
    # Best effort: the lowest-p95 config measured, here the largest one.
    assert outcome.chosen == (2, 2)
    assert not outcome.best.meets_slo
    assert outcome.best.violations


def test_evaluations_are_memoized():
    stub = _StubDeployments(
        {(1, 1): (40.0, 1.0), (2, 1): (30.0, 1.0), (1, 2): (35.0, 1.0),
         (3, 1): (25.0, 1.0), (2, 2): (28.0, 1.0), (3, 2): (22.0, 1.0)}
    )
    Autoscaler(
        stub,
        AutoscalerConfig(p95_slo_ms=1.0, max_shards=3, max_replicas=2, max_steps=6),
    ).run()
    assert len(stub.calls) == len(set(stub.calls))


def test_tenant_slo_violation_forces_scale_out():
    # Global p95 is fine from the start, but the strict tenant (2x the
    # global p95 in the stub) breaches its contract until (1, 2).
    stub = _StubDeployments(
        {(1, 1): (8.0, 1.0), (2, 1): (6.0, 1.5), (1, 2): (4.0, 1.0)},
        tenants={"strict": 2.0, "lax": 0.5},
    )
    outcome = Autoscaler(
        stub,
        AutoscalerConfig(
            p95_slo_ms=20.0,
            tenant_slos_ms={"strict": 10.0, "lax": 20.0},
            max_shards=2,
            max_replicas=2,
        ),
    ).run()
    assert outcome.converged
    assert outcome.chosen == (1, 2)
    first = outcome.steps[0]
    assert not first.meets_slo
    assert any("strict" in violation for violation in first.violations)


def test_missing_tenant_is_a_violation():
    stub = _StubDeployments({(1, 1): (1.0, 1.0)}, tenants={"present": 1.0})
    outcome = Autoscaler(
        stub,
        AutoscalerConfig(
            p95_slo_ms=10.0,
            tenant_slos_ms={"ghost": 5.0},
            max_shards=1,
            max_replicas=1,
        ),
    ).run()
    assert not outcome.converged
    assert any("ghost" in violation for violation in outcome.steps[0].violations)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"p95_slo_ms": 0.0},
        {"p95_slo_ms": 5.0, "tenant_slos_ms": {"t": -1.0}},
        {"p95_slo_ms": 5.0, "min_shards": 3, "max_shards": 2},
        {"p95_slo_ms": 5.0, "min_replicas": 0},
        {"p95_slo_ms": 5.0, "max_steps": 0},
        {"p95_slo_ms": 5.0, "min_spillover_replicas": -1},
        {"p95_slo_ms": 5.0, "min_spillover_replicas": 2,
         "max_spillover_replicas": 1},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        AutoscalerConfig(**kwargs)


class _StubHeteroDeployments:
    """evaluate() over {(shards, replicas, spillover): (p95, energy)}."""

    def __init__(self, table):
        self.table = table
        self.calls = []

    def __call__(self, shards, replicas, spillover):
        self.calls.append((shards, replicas, spillover))
        p95_ms, energy_uj = self.table[(shards, replicas, spillover)]
        return _StubResult(
            _report(f"s={shards} r={replicas} g={spillover}", p95_ms, energy_uj),
            {},
        )


class TestHeterogeneousSearch:
    def test_homogeneous_default_calls_evaluate_with_two_args(self):
        # max_spillover_replicas=0 keeps the historical contract: 2-arg
        # evaluate, 2-tuple keys.  (The homogeneous tests above all run
        # through this path.)
        stub = _StubDeployments({(1, 1): (5.0, 1.0)})
        outcome = Autoscaler(stub, AutoscalerConfig(p95_slo_ms=10.0)).run()
        assert outcome.chosen == (1, 1)
        assert outcome.best.spillover_replicas == 0

    def test_spillover_axis_searched_when_homogeneous_grid_infeasible(self):
        # The IMC grid is capped at (2, 2) and never meets the contract;
        # only GPU spillover does.  The heterogeneous search must find it
        # and report a 3-tuple choice.
        table = {
            (1, 1, 0): (40.0, 1.0),
            (2, 1, 0): (30.0, 1.1),
            (1, 2, 0): (28.0, 1.0),
            (1, 1, 1): (9.0, 5.0),
            (2, 2, 0): (20.0, 1.2),
            (1, 3, 0): (24.0, 1.0),
            (2, 1, 1): (8.0, 5.5),
            (1, 2, 1): (7.0, 5.2),
            (1, 1, 2): (6.0, 9.0),
        }
        stub = _StubHeteroDeployments(table)
        outcome = Autoscaler(
            stub,
            AutoscalerConfig(
                p95_slo_ms=10.0, max_shards=2, max_replicas=2,
                max_spillover_replicas=2, max_steps=8,
            ),
        ).run()
        assert outcome.converged
        assert len(outcome.chosen) == 3
        assert outcome.chosen[2] >= 1
        assert all(len(call) == 3 for call in stub.calls)

    def test_energy_aware_placement_prefers_imc_when_feasible(self):
        # Both a GPU-backed config and a pure-IMC config meet the SLO;
        # the hungry GPU one must lose on energy even though it is
        # measured first.
        table = {
            (1, 1, 0): (40.0, 1.0),
            (2, 1, 0): (12.0, 1.2),
            (1, 2, 0): (9.0, 1.1),   # feasible, cheap -> chosen
            (1, 1, 1): (6.0, 8.0),   # feasible, GPU-priced -> rejected
        }
        stub = _StubHeteroDeployments(table)
        outcome = Autoscaler(
            stub,
            AutoscalerConfig(
                p95_slo_ms=10.0, max_shards=2, max_replicas=2,
                max_spillover_replicas=1, max_steps=8,
            ),
        ).run()
        assert outcome.converged
        assert outcome.chosen == (1, 2)
        assert outcome.best.spillover_replicas == 0

    def test_min_spillover_floor_starts_heterogeneous(self):
        table = {(1, 1, 1): (5.0, 4.0)}
        stub = _StubHeteroDeployments(table)
        outcome = Autoscaler(
            stub,
            AutoscalerConfig(
                p95_slo_ms=10.0, min_spillover_replicas=1,
                max_spillover_replicas=2,
            ),
        ).run()
        assert outcome.converged
        assert outcome.chosen == (1, 1, 1)

    def test_format_mentions_spillover(self):
        table = {(1, 1, 1): (5.0, 4.0)}
        outcome = Autoscaler(
            _StubHeteroDeployments(table),
            AutoscalerConfig(
                p95_slo_ms=10.0, min_spillover_replicas=1,
                max_spillover_replicas=1,
            ),
        ).run()
        assert "spillover=1" in outcome.format()
