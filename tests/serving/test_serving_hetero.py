"""Tests for the heterogeneous fleet: GPU spillover engine, cost-aware
routing, the shared merge-cost helper and the migration cost model."""

import numpy as np
import pytest

from repro.core.pipeline import GPUSpilloverEngine, IMARSEngine
from repro.energy.accounting import Cost
from repro.serving.shard import (
    ReplicaGroup,
    ShardedEngine,
    make_sharded_engine,
    migration_cost,
    migration_plan,
    plan_scale_migration,
)


@pytest.fixture(scope="module")
def engine_pair(serving_setup):
    """(IMC engine, GPU spillover engine) built identically."""
    _, filtering, ranking, mapping, _ = serving_setup
    imc = IMARSEngine(filtering, ranking, mapping, num_candidates=12, top_k=4, seed=0)
    gpu = GPUSpilloverEngine(
        filtering, ranking, mapping, num_candidates=12, top_k=4, seed=0
    )
    return imc, gpu


class TestGPUSpilloverEngine:
    def test_recommendations_bit_identical(self, engine_pair, serving_setup):
        _, _, _, _, workload = serving_setup
        imc, gpu = engine_pair
        for query in workload[:8]:
            ours = imc.recommend_query(query)
            theirs = gpu.recommend_query(query)
            assert ours.items == theirs.items
            assert ours.scores == theirs.scores
            assert ours.candidate_count == theirs.candidate_count

    def test_batch_identical_and_costed_differently(self, engine_pair, serving_setup):
        _, _, _, _, workload = serving_setup
        imc, gpu = engine_pair
        ours = imc.serve_batch(workload[:6])
        theirs = gpu.serve_batch(workload[:6])
        for lhs, rhs in zip(ours.results, theirs.results):
            assert lhs.items == rhs.items
            assert lhs.scores == rhs.scores
        # Same answers, very different bill: the GPU pays board power.
        assert theirs.cost.energy_pj > 10.0 * ours.cost.energy_pj

    def test_gpu_ledger_categories(self, engine_pair, serving_setup):
        _, _, _, _, workload = serving_setup
        _, gpu = engine_pair
        ledger = gpu.recommend_query(workload[0]).ledger
        assert set(ledger.categories()) == {
            "ET Lookup",
            "DNN Stack",
            "NNS",
            "Ranking",
            "TopK",
        }

    def test_gpu_batching_amortises_launches(self, engine_pair, serving_setup):
        _, _, _, _, workload = serving_setup
        _, gpu = engine_pair
        batch = gpu.serve_batch(workload[:4])
        sequential = sum(result.cost.latency_ns for result in batch.results)
        assert batch.cost.latency_ns < sequential

    def test_analog_dnn_rejected(self, serving_setup):
        _, filtering, ranking, mapping, _ = serving_setup
        with pytest.raises(TypeError):
            GPUSpilloverEngine(filtering, ranking, mapping, analog_dnn=True)

    def test_energy_ewma_tracks_serving(self, engine_pair, serving_setup):
        _, _, _, _, workload = serving_setup
        imc, gpu = engine_pair
        assert imc.expected_query_energy_pj is not None  # served above
        assert gpu.expected_query_energy_pj > imc.expected_query_energy_pj


class TestSpilloverRouting:
    def _hetero(self, serving_setup, slo_s, headroom=0.8):
        _, filtering, ranking, mapping, _ = serving_setup
        return make_sharded_engine(
            "imars",
            filtering,
            ranking,
            1,
            mapping=mapping,
            num_candidates=12,
            top_k=4,
            seed=0,
            spillover_replicas_per_shard=1,
            spillover_slo_s=slo_s,
            spill_headroom=headroom,
        )

    def test_cold_start_stays_on_primary(self, serving_setup):
        _, _, _, _, workload = serving_setup
        group = self._hetero(serving_setup, slo_s=1e-4).shards[0]
        assert isinstance(group, ReplicaGroup)
        assignment = group.assign(9)
        assert [len(member) for member in assignment] == [9, 0]

    def test_unobserved_backend_gets_one_probe(self, serving_setup):
        _, _, _, _, workload = serving_setup
        group = self._hetero(serving_setup, slo_s=1e-4).shards[0]
        group.serve_batch(workload[:4])  # primary observed, GPU still cold
        assignment = group.assign(40)
        assert len(assignment[1]) <= 1  # slow-start probe, not a dump

    def test_overflow_spills_and_counts(self, serving_setup):
        _, _, _, _, workload = serving_setup
        engine = self._hetero(serving_setup, slo_s=1e-4)
        group = engine.shards[0]
        for _ in range(4):
            engine.serve_batch([workload[user % len(workload)] for user in range(30)])
        stats = group.stats()
        assert stats["spilled"] > 0
        assert stats["assigned"][1] > 0  # the GPU served real queries
        assert 0.0 < stats["spill_rate"] < 1.0
        assert stats["spilled"] == group.spilled

    def test_generous_target_never_spills(self, serving_setup):
        _, _, _, _, workload = serving_setup
        engine = self._hetero(serving_setup, slo_s=10.0)  # 10 s: no threat
        group = engine.shards[0]
        for _ in range(3):
            engine.serve_batch(workload[:8])
        assert group.spilled == 0
        assert group.assigned[1] == 0

    def test_hetero_results_match_imc_reference(self, serving_setup):
        _, filtering, ranking, mapping, workload = serving_setup
        reference = make_sharded_engine(
            "imars", filtering, ranking, 1, mapping=mapping,
            num_candidates=12, top_k=4, seed=0,
        )
        hetero = self._hetero(serving_setup, slo_s=1e-4)
        batch = [workload[user % len(workload)] for user in range(25)]
        for _ in range(3):  # several rounds so routing exercises the GPU
            expected = reference.serve_batch(batch)
            observed = hetero.serve_batch(batch)
            for lhs, rhs in zip(expected.results, observed.results):
                assert lhs.items == rhs.items
                assert lhs.scores == rhs.scores

    def test_replica_group_validation(self, serving_setup):
        _, filtering, ranking, mapping, _ = serving_setup
        engine = IMARSEngine(
            filtering, ranking, mapping, num_candidates=12, top_k=4, seed=0
        )
        with pytest.raises(ValueError):
            ReplicaGroup([engine], p95_target_s=0.0)
        with pytest.raises(ValueError):
            ReplicaGroup([engine], spill_headroom=0.0)
        with pytest.raises(ValueError):
            ReplicaGroup([engine], spill_headroom=1.5)
        other = IMARSEngine(
            filtering, ranking, mapping, num_candidates=12, top_k=5, seed=0
        )
        with pytest.raises(ValueError):
            ReplicaGroup([engine, other])  # top-k disagreement

    def test_engine_kwargs_forwarded_to_spillover_replicas(self, serving_setup):
        """Regression: non-default engine kwargs (signature_bits) must
        reach the GPU replicas too, or routing changes recommendations."""
        _, filtering, ranking, mapping, workload = serving_setup
        reference = make_sharded_engine(
            "imars", filtering, ranking, 1, mapping=mapping,
            num_candidates=12, top_k=4, seed=0, signature_bits=48,
        )
        hetero = make_sharded_engine(
            "imars", filtering, ranking, 1, mapping=mapping,
            num_candidates=12, top_k=4, seed=0, signature_bits=48,
            spillover_replicas_per_shard=1, spillover_slo_s=1e-4,
        )
        group = hetero.shards[0]
        assert group.replicas[0].signature_bits == 48
        assert group.replicas[1].signature_bits == 48
        batch = [workload[user % len(workload)] for user in range(25)]
        for _ in range(3):
            expected = reference.serve_batch(batch)
            observed = hetero.serve_batch(batch)
            for lhs, rhs in zip(expected.results, observed.results):
                assert lhs.items == rhs.items
        assert group.assigned[1] > 0  # the GPU replica really served

    def test_analog_primaries_cannot_take_spillover(self, serving_setup):
        _, filtering, ranking, mapping, _ = serving_setup
        with pytest.raises(ValueError):
            make_sharded_engine(
                "imars", filtering, ranking, 1, mapping=mapping,
                spillover_replicas_per_shard=1, spillover_slo_s=1e-3,
                analog_dnn=True,
            )

    def test_make_sharded_engine_spillover_validation(self, serving_setup):
        _, filtering, ranking, mapping, _ = serving_setup
        with pytest.raises(ValueError):
            make_sharded_engine(
                "gpu", filtering, ranking, 1,
                spillover_replicas_per_shard=1, spillover_slo_s=1e-3,
            )
        with pytest.raises(ValueError):
            make_sharded_engine(
                "imars", filtering, ranking, 1, mapping=mapping,
                spillover_replicas_per_shard=1,  # no SLO target
            )
        with pytest.raises(ValueError):
            make_sharded_engine(
                "imars", filtering, ranking, 1, mapping=mapping,
                spillover_replicas_per_shard=-1, spillover_slo_s=1e-3,
            )


class TestMergeCostHelper:
    def test_replicated_and_unreplicated_merges_charge_identically(
        self, serving_setup
    ):
        """The satellite pin: one formula behind every router's merge."""
        _, filtering, ranking, mapping, _ = serving_setup
        engine = IMARSEngine(
            filtering, ranking, mapping, num_candidates=12, top_k=4, seed=0
        )
        replicas = [
            IMARSEngine(
                filtering, ranking, mapping, num_candidates=12, top_k=4, seed=0
            )
            for _ in range(3)
        ]
        group = ReplicaGroup(replicas)
        sharded_plain = ShardedEngine([engine], top_k=4)
        sharded_replicated = ShardedEngine([group], top_k=4)
        for entries in (1, 4, 17):
            baseline = engine.merge_cost(entries)
            for router in (group, sharded_plain, sharded_replicated):
                merged = router.merge_cost(entries)
                assert merged.energy_pj == pytest.approx(baseline.energy_pj)
                assert merged.latency_ns == pytest.approx(baseline.latency_ns)

    def test_hetero_group_merges_on_the_primary_platform(self, serving_setup):
        _, filtering, ranking, mapping, _ = serving_setup
        imc = IMARSEngine(
            filtering, ranking, mapping, num_candidates=12, top_k=4, seed=0
        )
        gpu = GPUSpilloverEngine(
            filtering, ranking, mapping, num_candidates=12, top_k=4, seed=0
        )
        group = ReplicaGroup([imc, gpu], p95_target_s=1e-3)
        assert group.merge_cost(8).energy_pj == pytest.approx(
            imc.merge_cost(8).energy_pj
        )


class TestMigrationModel:
    def test_plan_is_residue_difference(self):
        moved = migration_plan(10, 1, 2)
        assert np.array_equal(moved, np.array([1, 3, 5, 7, 9]))
        assert migration_plan(10, 2, 2).size == 0
        # Growing and shrinking move the same rows.
        assert np.array_equal(migration_plan(12, 2, 3), migration_plan(12, 3, 2))

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            migration_plan(0, 1, 1)
        with pytest.raises(ValueError):
            migration_plan(4, 0, 1)
        with pytest.raises(ValueError):
            migration_plan(4, 1, 5)

    def test_cost_scales_with_rows_and_width(self):
        small = migration_cost(10, embedding_dim=32, signature_bits=64)
        more_rows = migration_cost(20, embedding_dim=32, signature_bits=64)
        wider = migration_cost(10, embedding_dim=256, signature_bits=64)
        assert more_rows.energy_pj == pytest.approx(2.0 * small.energy_pj)
        assert wider.energy_pj > small.energy_pj
        assert migration_cost(0, 32, 64) == Cost()
        with pytest.raises(ValueError):
            migration_cost(-1, 32, 64)
        with pytest.raises(ValueError):
            migration_cost(1, 0, 64)

    def test_scale_event_rows(self):
        # Re-partition only: the moved ids are written once each.
        moved, rows = plan_scale_migration(10, (1, 1), (2, 1))
        assert rows == moved.size == 5
        # Added replicas copy the whole corpus once per replica.
        moved, rows = plan_scale_migration(10, (1, 1), (1, 3))
        assert moved.size == 0
        assert rows == 20
        # Dropping state is free.
        moved, rows = plan_scale_migration(10, (1, 3), (1, 1))
        assert rows == 0
        with pytest.raises(ValueError):
            plan_scale_migration(10, (1, 0), (1, 1))
