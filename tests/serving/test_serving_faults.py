"""Unit tests for the deterministic fault-injection plane.

The fault schedule is the chaos harness's ground truth: everything the
resilience layer does is a reaction to what these objects answer.  So
the contracts are pinned directly -- event validation, the plan's
canonical ordering, the injector's point-in-time oracles (including the
consume-once flush cursor), and the seeded scenario builders' layout
guarantees (the "a resilient fleet never goes fully dark" invariants
the E-chaos acceptance numbers depend on).
"""

import pytest

from repro.serving.faults import (
    CACHE_FLUSH,
    CRASH,
    ERROR,
    SHARD_OUTAGE,
    STRAGGLER,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    chaos_scenario,
    escalating_scenarios,
)


# -- FaultEvent validation -------------------------------------------------


def test_event_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultEvent("meteor-strike", 0.0, 1.0)


def test_event_rejects_negative_start():
    with pytest.raises(ValueError, match="before t=0"):
        FaultEvent(CRASH, -0.1, 1.0)


def test_event_rejects_inverted_window():
    with pytest.raises(ValueError, match="ends before it starts"):
        FaultEvent(CRASH, 1.0, 0.5)


def test_cache_flush_must_be_instant():
    with pytest.raises(ValueError, match="instant"):
        FaultEvent(CACHE_FLUSH, 0.5, 0.6)
    FaultEvent(CACHE_FLUSH, 0.5, 0.5)  # the instant form is fine


def test_shard_outage_targets_whole_shard():
    with pytest.raises(ValueError, match="every replica"):
        FaultEvent(SHARD_OUTAGE, 0.0, 1.0, shard=0, replica=1)


def test_straggler_severity_must_slow_things_down():
    with pytest.raises(ValueError, match="severity"):
        FaultEvent(STRAGGLER, 0.0, 1.0, severity=1.0)


def test_event_rejects_negative_site():
    with pytest.raises(ValueError, match="shard index"):
        FaultEvent(CRASH, 0.0, 1.0, shard=-1)
    with pytest.raises(ValueError, match="replica index"):
        FaultEvent(CRASH, 0.0, 1.0, replica=-2)


def test_covers_is_half_open():
    event = FaultEvent(CRASH, 1.0, 2.0)
    assert not event.covers(0.999)
    assert event.covers(1.0)
    assert event.covers(1.999)
    assert not event.covers(2.0)  # the replica restarts at end_s


def test_targets_replica_none_hits_every_replica():
    outage = FaultEvent(SHARD_OUTAGE, 0.0, 1.0, shard=1)
    assert outage.targets(1, 0) and outage.targets(1, 7)
    assert not outage.targets(0, 0)
    crash = FaultEvent(CRASH, 0.0, 1.0, shard=1, replica=1)
    assert crash.targets(1, 1)
    assert not crash.targets(1, 0)


# -- FaultPlan value semantics ---------------------------------------------


def test_plan_sorts_into_canonical_order():
    early = FaultEvent(CRASH, 0.1, 0.2, shard=1, replica=0)
    late = FaultEvent(STRAGGLER, 0.3, 0.5, severity=2.0)
    outage = FaultEvent(SHARD_OUTAGE, 0.1, 0.2, shard=1)
    forward = FaultPlan((early, late, outage))
    backward = FaultPlan((late, outage, early))
    assert forward == backward
    assert [event.start_s for event in forward.events] == [0.1, 0.1, 0.3]
    # Ties break on kind before site: "crash" < "shard-outage".
    assert forward.events[0] is early
    assert forward.events[1] is outage


def test_plan_by_kind_and_mttr():
    plan = FaultPlan(
        (
            FaultEvent(CRASH, 0.0, 0.2, replica=0),
            FaultEvent(SHARD_OUTAGE, 0.5, 0.9),
            FaultEvent(STRAGGLER, 0.0, 1.0, severity=3.0),
            FaultEvent(CACHE_FLUSH, 0.4, 0.4),
        )
    )
    assert len(plan.by_kind(CRASH)) == 1
    assert len(plan.by_kind(ERROR)) == 0
    with pytest.raises(ValueError, match="unknown fault kind"):
        plan.by_kind("gremlins")
    # MTTR averages only the downtime windows (crash 0.2s, outage 0.4s);
    # stragglers degrade service but nothing needs restarting.
    assert plan.mttr_s() == pytest.approx(0.3)


def test_empty_plan_has_no_mttr():
    plan = FaultPlan(())
    assert plan.empty and len(plan) == 0
    assert plan.mttr_s() is None


# -- FaultInjector oracles -------------------------------------------------


def _injector():
    return FaultInjector(
        FaultPlan(
            (
                FaultEvent(CRASH, 0.1, 0.3, shard=0, replica=1),
                FaultEvent(SHARD_OUTAGE, 0.4, 0.6, shard=1),
                FaultEvent(ERROR, 0.2, 0.5, shard=0, replica=0),
                FaultEvent(STRAGGLER, 0.0, 1.0, shard=0, replica=0, severity=4.0),
                FaultEvent(STRAGGLER, 0.5, 1.0, shard=0, replica=0, severity=2.0),
                FaultEvent(CACHE_FLUSH, 0.25, 0.25),
                FaultEvent(CACHE_FLUSH, 0.75, 0.75),
            )
        )
    )


def test_down_at_distinguishes_sites_and_times():
    injector = _injector()
    assert injector.down_at(0, 1, 0.2).kind == CRASH
    assert injector.down_at(0, 1, 0.35) is None  # restarted
    assert injector.down_at(0, 0, 0.2) is None  # wrong replica
    # The outage darkens every replica of shard 1.
    assert injector.down_at(1, 0, 0.5).kind == SHARD_OUTAGE
    assert injector.down_at(1, 3, 0.5).kind == SHARD_OUTAGE


def test_error_at_only_inside_window():
    injector = _injector()
    assert injector.error_at(0, 0, 0.3).kind == ERROR
    assert injector.error_at(0, 0, 0.6) is None
    assert injector.error_at(0, 1, 0.3) is None


def test_latency_multiplier_stacks():
    injector = _injector()
    assert injector.latency_multiplier(0, 0, 0.1) == 4.0
    assert injector.latency_multiplier(0, 0, 0.6) == 8.0  # 4x * 2x overlap
    assert injector.latency_multiplier(0, 1, 0.6) == 1.0
    assert injector.latency_multiplier(1, 0, 0.6) == 1.0


def test_take_flushes_fires_each_instant_once():
    injector = _injector()
    assert injector.take_flushes(0.1) == []
    first = injector.take_flushes(0.3)
    assert [event.start_s for event in first] == [0.25]
    assert injector.take_flushes(0.3) == []  # already consumed
    second = injector.take_flushes(2.0)
    assert [event.start_s for event in second] == [0.75]
    assert injector.take_flushes(2.0) == []
    injector.reset()
    assert len(injector.take_flushes(2.0)) == 2  # rewound for a fresh run


# -- seeded scenario builders ----------------------------------------------


def test_chaos_scenario_is_deterministic_per_seed():
    one = chaos_scenario(1.0, 2, 2, seed=7)
    two = chaos_scenario(1.0, 2, 2, seed=7)
    other = chaos_scenario(1.0, 2, 2, seed=8)
    assert one == two
    assert one != other


def test_chaos_scenario_validates_shape():
    with pytest.raises(ValueError, match="duration"):
        chaos_scenario(0.0, 2, 2)
    with pytest.raises(ValueError, match="at least one shard"):
        chaos_scenario(1.0, 0, 2)
    with pytest.raises(ValueError, match="at least one shard"):
        chaos_scenario(1.0, 2, 0)


def test_chaos_scenario_windows_stay_inside_the_run():
    plan = chaos_scenario(2.0, 3, 2, seed=3, crashes=5, outages=3, stragglers=4)
    for event in plan.events:
        assert 0.0 <= event.start_s <= event.end_s <= 2.0 + 1e-12


def test_chaos_scenario_layout_keeps_a_recovery_path():
    """The documented placement invariants behind the E-chaos numbers."""
    plan = chaos_scenario(1.0, 3, 2, seed=0, crashes=4, outages=2, stragglers=3)
    outages = plan.by_kind(SHARD_OUTAGE)
    crashes = plan.by_kind(CRASH)
    stragglers = plan.by_kind(STRAGGLER)
    # Outages rotate shards with non-overlapping windows: some shard is
    # always up, so a partial gather has survivors to draw from.
    assert [event.shard for event in outages] == [0, 1]
    for first, second in zip(outages, outages[1:]):
        assert first.end_s <= second.start_s
    # Crashes keep off shard 0 (the first outage target) and rotate
    # replicas, so every crash leaves a healthy peer to fail over to.
    assert all(event.shard != 0 for event in crashes)
    assert {event.replica for event in crashes} == {0, 1}
    # Stragglers sit on shard 0, away from the crash shards: a straggler
    # on a crash site's last replica would set an unbeatable latency floor.
    assert all(event.shard == 0 for event in stragglers)
    assert all(event.severity > 1.0 for event in stragglers)


def test_chaos_scenario_single_shard_still_schedules():
    plan = chaos_scenario(1.0, 1, 2, seed=0)
    assert all(event.shard == 0 for event in plan.events)
    assert len(plan.by_kind(CRASH)) == 2


def test_escalating_scenarios_ladder():
    ladder = escalating_scenarios(1.0, 2, 2, seed=0)
    assert list(ladder) == ["light", "moderate", "severe"]
    # Light is stragglers-only: nothing goes down, so no MTTR.
    assert ladder["light"].mttr_s() is None
    assert len(ladder["light"].by_kind(STRAGGLER)) == 2
    # The moderate rung is the pinned acceptance scenario.
    assert ladder["moderate"] == chaos_scenario(1.0, 2, 2, seed=0)
    # Severe piles on strictly more of everything.
    assert len(ladder["severe"]) > len(ladder["moderate"])
    for kind in (CRASH, SHARD_OUTAGE, STRAGGLER, ERROR):
        assert len(ladder["severe"].by_kind(kind)) >= len(
            ladder["moderate"].by_kind(kind)
        )
