"""Scalar-vs-vectorised serving equivalence suite (the fast CI pin).

The vectorised multi-query kernels must be *bit-identical* to the
scalar reference path (``use_vector_kernels=False``): same items, same
CTR bits, same per-query ledgers, same batched cost, same EWMA state
afterwards -- across plain engines, shards, replica groups and
heterogeneous spillover.  CI runs this file as its own job before the
coverage gate so an equivalence break fails fast.
"""

import numpy as np
import pytest

from repro.core.pipeline import GPUSpilloverEngine, IMARSEngine
from repro.energy.accounting import Cost
from repro.models.youtube_dnn import RankingServingScorer
from repro.nn.stable import stable_matmul
from repro.serving.shard import _member_merge_cost, make_sharded_engine


def _snapshot(results):
    return [
        (
            result.items,
            tuple(result.scores),
            result.candidate_count,
            result.cost,
            tuple(result.ledger),
        )
        for result in results
    ]


def _engine_pair(engine_cls, serving_setup, **kwargs):
    _, filtering, ranking, mapping, _ = serving_setup
    return (
        engine_cls(
            filtering, ranking, mapping, seed=0, use_vector_kernels=True, **kwargs
        ),
        engine_cls(
            filtering, ranking, mapping, seed=0, use_vector_kernels=False, **kwargs
        ),
    )


@pytest.mark.parametrize("engine_cls", [IMARSEngine, GPUSpilloverEngine])
class TestEngineBitIdentity:
    def test_batch_identical_to_scalar(self, engine_cls, serving_setup):
        *_, workload = serving_setup
        vectorised, scalar = _engine_pair(engine_cls, serving_setup)
        queries = (workload * 2)[:60]  # includes duplicate queries
        vec_batch = vectorised.serve_batch(queries)
        ref_batch = scalar.serve_batch(queries)
        assert _snapshot(vec_batch.results) == _snapshot(ref_batch.results)
        assert vec_batch.cost == ref_batch.cost
        # The EWMA telemetry both feed downstream routing from must match.
        assert (
            vectorised.expected_query_latency_s
            == scalar.expected_query_latency_s
        )
        assert (
            vectorised.expected_query_energy_pj
            == scalar.expected_query_energy_pj
        )

    def test_batch_of_one_matches_recommend(self, engine_cls, serving_setup):
        *_, workload = serving_setup
        vectorised, scalar = _engine_pair(engine_cls, serving_setup)
        query = workload[3]
        vec = vectorised.serve_batch([query]).results[0]
        ref = scalar.recommend_query(query)
        assert _snapshot([vec]) == _snapshot([ref])

    def test_empty_batch(self, engine_cls, serving_setup):
        vectorised, scalar = _engine_pair(engine_cls, serving_setup)
        assert vectorised.serve_batch([]).results == []
        assert vectorised.serve_batch([]).cost == scalar.serve_batch([]).cost


class TestShardedBitIdentity:
    @pytest.mark.parametrize(
        "topology",
        [
            dict(num_shards=3),
            dict(num_shards=2, replicas_per_shard=2),
            dict(
                num_shards=2,
                spillover_replicas_per_shard=1,
                spillover_slo_s=0.5,
            ),
        ],
        ids=["shards", "replicas", "spillover"],
    )
    def test_topology(self, topology, serving_setup):
        _, filtering, ranking, mapping, workload = serving_setup
        queries = (workload * 2)[:50]
        batches = []
        for vectorised in (True, False):
            router = make_sharded_engine(
                "imars",
                filtering,
                ranking,
                mapping=mapping,
                seed=0,
                use_vector_kernels=vectorised,
                **topology,
            )
            batches.append(router.serve_batch(queries))
        assert _snapshot(batches[0].results) == _snapshot(batches[1].results)
        assert batches[0].cost == batches[1].cost


class TestAnalogFallsBackToScalar:
    def test_analog_disables_vector_kernels(self, serving_setup):
        _, filtering, ranking, mapping, workload = serving_setup
        engine = IMARSEngine(
            filtering,
            ranking,
            mapping,
            seed=0,
            analog_dnn=True,
            use_vector_kernels=True,
        )
        # Crossbar noise is drawn per recommend() call, so the analog
        # engine must serve through the scalar reference path.
        assert engine.use_vector_kernels is False
        batch = engine.serve_batch(workload[:3])
        assert len(batch.results) == 3


class TestMergeEnergyIdentity:
    def test_batched_merge_charges_equal_per_query(self, serving_setup):
        """Satellite pin: one cached merge price per entry count must
        charge exactly what the old per-query ``merge_cost`` call did."""
        _, filtering, ranking, mapping, workload = serving_setup
        router = make_sharded_engine(
            "imars", filtering, ranking, mapping=mapping, num_shards=3, seed=0
        )
        queries = workload[:12]
        # Gathered entries per query: each shard contributes its ranked
        # list (shard engines are deterministic, so re-serving them here
        # observes exactly what the router's scatter gathered).
        shard_results = [
            shard.serve_batch(queries).results for shard in router.shards
        ]
        entry_counts = [
            sum(len(results[position].items) for results in shard_results)
            for position in range(len(queries))
        ]
        batch = router.serve_batch(queries)
        merge_total = Cost()
        for position, (query, result) in enumerate(zip(queries, batch.results)):
            merge_entries = [
                cost for category, cost in result.ledger if category == "Merge"
            ]
            assert len(merge_entries) == 1
            # The cached price equals the direct platform model call ...
            assert merge_entries[0] == _member_merge_cost(
                router.shards, entry_counts[position]
            )
            merge_total = merge_total.then(merge_entries[0])
            # ... and a batch-of-1 serve charges the identical merge.
            solo = router.serve_batch([query]).results[0]
            solo_merge = [
                cost for category, cost in solo.ledger if category == "Merge"
            ]
            assert solo_merge == merge_entries
            assert solo.cost == result.cost
            assert solo.items == result.items
            assert solo.scores == result.scores
        # The batch merge bill is the sequential fold of per-query merges.
        scatter = Cost.concurrent(
            shard.serve_batch(queries).cost for shard in router.shards
        )
        assert batch.cost == scatter.then(merge_total)


class TestScorerConsistency:
    def test_score_paths_agree(self, serving_setup):
        _, filtering, ranking, mapping, workload = serving_setup
        engine = IMARSEngine(filtering, ranking, mapping, seed=0)
        scorer = engine._scorer
        assert isinstance(scorer, RankingServingScorer)
        rng = np.random.default_rng(0)
        users = rng.normal(size=(4, filtering.config.embedding_dim))
        contexts = np.asarray([workload[i].context for i in range(4)])
        items = rng.integers(0, scorer.num_items, size=4)
        constants = scorer.query_constants(users, contexts)
        paired = scorer.score_pairs(constants, items)
        grouped = scorer.score_grouped(constants, np.arange(4), items)
        np.testing.assert_array_equal(paired, grouped)
        for row in range(4):
            solo = scorer.score_query(
                users[row], np.asarray([items[row]]), contexts[row]
            )
            assert solo[0] == paired[row]


class TestStableMatmulRowStability:
    def test_rows_independent_of_batch(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(32, 1))  # the narrow CTR head shape
        inputs = rng.normal(size=(64, 32))
        full = stable_matmul(inputs, weights)
        for rows in (1, 2, 3, 63, 64):
            prefix = stable_matmul(inputs[:rows], weights)
            np.testing.assert_array_equal(prefix, full[:rows])
