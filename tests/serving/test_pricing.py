"""Dollar-cost plane: PriceBook rules, PriceLedger accounting, and the
priced serving session.

The pinned contracts: pricing is pure post-processing (a priced run is
bit-identical to an unpriced one in records and energy), every energy
row maps to exactly one dollar row, Retry/Hedge/Migration recovery work
is billed through the same rows it charges in joules, Warm-up rows get
the off-peak discount, and the dollar total of a seeded run is
bit-stable -- across repeats and across the vector/scalar serve paths.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.accounting import Cost, Ledger
from repro.serving.cache import ServingCache
from repro.serving.pricing import (
    DEFAULT_PRICE_BOOK,
    PriceBook,
    PriceLedger,
    price_serving_run,
)
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.traffic import PoissonTraffic


class TestPriceBook:
    def test_engine_time_row_is_latency_hours_times_rate(self):
        book = PriceBook(imc_per_hour=3.6)
        cost = Cost(latency_ns=1e9)  # exactly one second of occupancy
        assert book.price_row("Serve", cost) == pytest.approx(3.6 / 3600.0)

    def test_gpu_rows_bill_the_gpu_rate(self):
        book = PriceBook(imc_per_hour=1.0, gpu_per_hour=10.0)
        cost = Cost(latency_ns=1e9)
        assert book.price_row("Serve", cost, engine_kind="gpu") == (
            pytest.approx(10.0 * book.price_row("Serve", cost, engine_kind="imc"))
        )

    def test_warmup_rows_get_the_off_peak_discount(self):
        book = PriceBook(off_peak_discount=0.5)
        cost = Cost(latency_ns=5e8)
        assert book.price_row("Warm-up", cost) == pytest.approx(
            0.5 * book.price_row("Serve", cost)
        )

    @pytest.mark.parametrize("category", ["Retry", "Hedge", "Migration"])
    def test_recovery_rows_bill_at_the_full_engine_rate(self, category):
        # Recovery work happens during the run, not in the valley: no
        # discount, same row template as "Serve".
        book = PriceBook()
        cost = Cost(latency_ns=3e8)
        assert book.price_row(category, cost) == book.price_row("Serve", cost)

    def test_price_row_is_pure(self):
        # The cost-row template rule: the same row prices identically
        # every time it is seen -- which is what reduces dollar
        # bit-stability to (already pinned) cost-row bit-stability.
        book = PriceBook()
        cost = Cost(energy_pj=123.0, latency_ns=7.5e6)
        first = book.price_row("Serve", cost)
        assert all(book.price_row("Serve", cost) == first for _ in range(10))

    def test_cache_op_and_storage_fees(self):
        book = PriceBook(
            cache_get_per_million=2.0,
            cache_put_per_million=8.0,
            storage_per_entry_hour=0.01,
        )
        gets, puts = book.cache_op_dollars(1_000_000, 500_000)
        assert gets == pytest.approx(2.0)
        assert puts == pytest.approx(4.0)
        assert book.storage_dollars(10, 3600.0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            PriceBook(imc_per_hour=-1.0)
        with pytest.raises(ValueError, match="discount"):
            PriceBook(off_peak_discount=0.0)
        with pytest.raises(ValueError, match="discount"):
            PriceBook(off_peak_discount=1.5)
        with pytest.raises(ValueError, match="engine kind"):
            PriceBook().engine_rate_per_hour("tpu")
        with pytest.raises(ValueError, match="non-negative"):
            PriceBook().cache_op_dollars(-1, 0)
        with pytest.raises(ValueError, match="non-negative"):
            PriceBook().storage_dollars(-1, 1.0)
        with pytest.raises(ValueError, match="non-negative"):
            PriceBook().storage_dollars(1, -1.0)


class TestPriceLedger:
    def test_rows_categories_and_totals(self):
        ledger = PriceLedger(name="test")
        ledger.charge("Serve", 1.0)
        ledger.charge("Cache", 0.25)
        ledger.charge("Serve", 0.5)
        assert len(ledger) == 3
        assert ledger.categories() == ["Serve", "Cache"]
        assert ledger.by_category() == {"Serve": 1.5, "Cache": 0.25}
        assert ledger.total() == pytest.approx(1.75)
        assert sum(ledger.breakdown().values()) == pytest.approx(1.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PriceLedger().charge("Serve", -0.01)

    def test_extend_merges_rows(self):
        left = PriceLedger()
        left.charge("Serve", 1.0)
        right = PriceLedger()
        right.charge("Cache-put", 2.0)
        left.extend(right)
        assert left.total() == pytest.approx(3.0)
        assert left.categories() == ["Serve", "Cache-put"]

    def test_empty_breakdown_and_format(self):
        ledger = PriceLedger(name="empty")
        ledger.charge("Serve", 0.0)
        assert ledger.breakdown() == {"Serve": 0.0}
        assert "$0.000000 total" in ledger.format_rows()


class TestPriceServingRun:
    def test_one_dollar_row_per_energy_row(self):
        ledger = Ledger(name="run")
        ledger.charge("Serve", Cost(latency_ns=1e6))
        ledger.charge("Cache", Cost(latency_ns=2e5))
        ledger.charge("Retry", Cost(latency_ns=3e5))
        priced = price_serving_run(ledger)
        assert len(priced) == len(list(ledger))
        assert priced.categories() == ["Serve", "Cache", "Retry"]

    def test_cache_service_fees_appended_from_stats(self):
        ledger = Ledger(name="run")
        ledger.charge("Serve", Cost(latency_ns=1e6))
        book = PriceBook()
        stats = {"hits": 30, "misses": 10, "insertions": 10, "capacity": 16}
        priced = price_serving_run(
            ledger, book, cache_stats=stats, duration_s=7200.0
        )
        by_category = priced.by_category()
        gets, puts = book.cache_op_dollars(40, 10)
        assert by_category["Cache-get"] == pytest.approx(gets)
        assert by_category["Cache-put"] == pytest.approx(puts)
        assert by_category["Cache-storage"] == pytest.approx(
            book.storage_dollars(16, 7200.0)
        )

    def test_default_book_used_when_none_given(self):
        ledger = Ledger(name="run")
        ledger.charge("Serve", Cost(latency_ns=1e9))
        priced = price_serving_run(ledger)
        assert priced.total() == pytest.approx(
            DEFAULT_PRICE_BOOK.price_row("Serve", Cost(latency_ns=1e9))
        )


def _priced_run(serving_setup, seed=0, price_book=None, use_vector=True):
    dataset, filtering, ranking, mapping, workload = serving_setup
    engine = make_sharded_engine(
        "imars",
        filtering,
        ranking,
        2,
        mapping=mapping,
        num_candidates=24,
        top_k=5,
        seed=0,
        use_vector_kernels=use_vector,
    )
    rate_qps = 8.0 / engine.recommend_query(workload[0]).cost.latency_s
    requests = PoissonTraffic(
        rate_qps, num_users=dataset.num_users, seed=seed, stream=7
    ).generate(48)
    session = ServingSession(
        engine,
        workload,
        scheduler=MicroBatchScheduler(MicroBatchConfig(max_batch_size=8)),
        cache=ServingCache(capacity=16, rows_per_entry=5),
        label="priced",
        price_book=price_book,
    )
    session.warm(range(6))
    return session.run(requests)


class TestPricedSession:
    def test_pricing_is_pure_post_processing(self, serving_setup):
        # A priced run must be bit-identical to an unpriced one in
        # everything except the attached price ledger.
        priced = _priced_run(serving_setup, price_book=PriceBook())
        unpriced = _priced_run(serving_setup, price_book=None)
        assert unpriced.price_ledger is None
        assert unpriced.report.dollars_total is None
        assert priced.price_ledger is not None
        assert [record.items for record in priced.records] == [
            record.items for record in unpriced.records
        ]
        assert priced.ledger.by_category() == unpriced.ledger.by_category()

    def test_report_joins_the_dollar_column(self, serving_setup):
        result = _priced_run(serving_setup, price_book=PriceBook())
        report = result.report
        assert report.dollars_total == result.price_ledger.total()
        assert report.dollars_per_1k_requests == pytest.approx(
            1e3 * report.dollars_total / report.answered_count
        )
        assert "$=" in report.format_row()
        # The warm-up was billed off-peak and the cache fees landed.
        by_category = result.price_ledger.by_category()
        assert by_category["Warm-up"] > 0.0
        assert by_category["Cache-put"] > 0.0
        assert by_category["Cache-get"] > 0.0

    def test_dollar_total_bit_stable_across_runs(self, serving_setup):
        first = _priced_run(serving_setup, price_book=PriceBook())
        second = _priced_run(serving_setup, price_book=PriceBook())
        assert first.price_ledger.total() == second.price_ledger.total()
        assert list(first.price_ledger) == list(second.price_ledger)

    def test_vector_and_scalar_paths_price_identically(self, serving_setup):
        # The serve paths charge identical cost rows (the PR 6 pin), so
        # they must bill identical dollars, row for row.
        vector = _priced_run(serving_setup, price_book=PriceBook(), use_vector=True)
        scalar = _priced_run(serving_setup, price_book=PriceBook(), use_vector=False)
        assert list(vector.price_ledger) == list(scalar.price_ledger)
        assert vector.price_ledger.total() == scalar.price_ledger.total()

    def test_recovery_rows_are_priced(self):
        # Retry/Hedge/Migration rows flow through price_serving_run like
        # any engine-time row: same category, engine rate, no discount.
        ledger = Ledger(name="recovering")
        ledger.charge("Serve", Cost(latency_ns=1e7))
        ledger.charge("Retry", Cost(latency_ns=2e6))
        ledger.charge("Hedge", Cost(latency_ns=1e6))
        ledger.charge("Migration", Cost(latency_ns=4e6))
        book = PriceBook()
        priced = price_serving_run(ledger, book)
        by_category = priced.by_category()
        for category in ("Retry", "Hedge", "Migration"):
            row = next(cost for cat, cost in ledger if cat == category)
            assert by_category[category] == pytest.approx(
                book.price_row(category, row)
            )


class TestGroupingInvariance:
    """Pricing is linear in occupancy, so how per-query cost templates
    are grouped into batch rows cannot change the bill."""

    def test_price_total_invariant_to_batch_grouping(self):
        templates = [
            Cost(energy_pj=10.0 * (i + 1), latency_ns=1e5 * (i + 3))
            for i in range(24)
        ]
        book = PriceBook()
        totals = []
        for batch_size in (1, 2, 3, 8, 24):
            ledger = Ledger(name=f"b{batch_size}")
            for start in range(0, len(templates), batch_size):
                row = Cost()
                for cost in templates[start : start + batch_size]:
                    row = row.then(cost)
                ledger.charge("Serve", row)
            totals.append(price_serving_run(ledger, book).total())
        reference = totals[0]
        assert all(
            math.isclose(total, reference, rel_tol=1e-9) for total in totals
        )

    @settings(max_examples=50, deadline=None)
    @given(
        latencies=st.lists(
            st.floats(min_value=1e2, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        batch_size=st.integers(min_value=1, max_value=40),
    )
    def test_grouping_invariance_property(self, latencies, batch_size):
        # For ANY set of per-query cost templates and ANY batch size,
        # the priced total matches the one-row-per-query bill.
        book = PriceBook()
        per_query = Ledger(name="per-query")
        for latency_ns in latencies:
            per_query.charge("Serve", Cost(latency_ns=latency_ns))
        grouped = Ledger(name="grouped")
        for start in range(0, len(latencies), batch_size):
            row = Cost()
            for latency_ns in latencies[start : start + batch_size]:
                row = row.then(Cost(latency_ns=latency_ns))
            grouped.charge("Serve", row)
        assert math.isclose(
            price_serving_run(per_query, book).total(),
            price_serving_run(grouped, book).total(),
            rel_tol=1e-9,
        )
