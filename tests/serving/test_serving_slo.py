"""SLO accounting edge cases: degenerate sessions and the dollar column.

Regression tests for three accounting bugs:

* an all-shed / all-failed session used to fabricate a zero-latency
  tail (``np.zeros(1)``) and report perfect 0.0 percentiles -- it must
  report NaN and render ``-``;
* ``energy_per_request_uj`` divided by ``max(1, answered)``, silently
  reporting the whole run's energy as if one request answered it;
* ``offered_qps`` divided by a zero arrival span and reported ``inf``
  when every arrival shared one timestamp.
"""

import math

import numpy as np
import pytest

from repro.energy.accounting import Cost, Ledger
from repro.serving.pricing import PriceLedger
from repro.serving.slo import RequestRecord, SLOReport, summarize
from repro.serving.traffic import Request


def _record(
    request_id,
    arrival_s=0.0,
    latency_s=0.001,
    shed=False,
    failed=False,
    cache_hit=False,
):
    return RequestRecord(
        request=Request(request_id=request_id, arrival_s=arrival_s, user=request_id),
        completion_s=arrival_s + latency_s,
        batch_size=1,
        cache_hit=cache_hit,
        items=() if (shed or failed) else (1, 2),
        shed=shed,
        failed=failed,
    )


def _charged_ledger(energy_pj=5e6):
    ledger = Ledger()
    ledger.charge("Serve", Cost(energy_pj=energy_pj, latency_ns=1e3))
    return ledger


class TestDegenerateSessions:
    def test_all_shed_reports_nan_percentiles(self):
        records = [
            _record(i, arrival_s=0.001 * i, latency_s=0.0, shed=True)
            for i in range(3)
        ]
        report = summarize(records, Ledger())
        for value in (
            report.p50_ms,
            report.p95_ms,
            report.p99_ms,
            report.mean_ms,
            report.max_ms,
        ):
            assert math.isnan(value)
        assert report.shed_rate == 1.0
        assert report.answered_count == 0

    def test_all_failed_reports_nan_percentiles(self):
        records = [
            _record(i, arrival_s=0.001 * i, failed=True) for i in range(3)
        ]
        report = summarize(records, _charged_ledger())
        assert math.isnan(report.p95_ms)
        assert report.availability == 0.0
        assert report.failed_count == 3

    def test_nothing_answered_energy_is_nan_not_a_lump_sum(self):
        # Pre-fix: total_energy / max(1, 0) billed the whole run to a
        # phantom single request.
        records = [_record(0, failed=True)]
        report = summarize(records, _charged_ledger(energy_pj=7e6))
        assert math.isnan(report.energy_per_request_uj)

    def test_single_instant_offered_qps_is_zero_not_inf(self):
        # Every arrival at t=0: one instant of traffic defines no rate.
        records = [_record(i, arrival_s=0.0) for i in range(4)]
        report = summarize(records, Ledger())
        assert report.offered_qps == 0.0
        assert np.isfinite(report.offered_qps)

    def test_zero_makespan_sustained_qps_is_zero(self):
        records = [_record(0, arrival_s=0.0, latency_s=0.0, shed=True)]
        report = summarize(records, Ledger())
        assert report.sustained_qps == 0.0

    def test_format_row_renders_nan_as_dash(self):
        records = [_record(i, shed=True, latency_s=0.0) for i in range(2)]
        row = summarize(records, Ledger()).format_row()
        assert "nan" not in row
        assert "p95=       -ms" in row
        assert "E/req=         -uJ" in row

    def test_healthy_session_remains_finite(self):
        records = [
            _record(i, arrival_s=0.001 * i, latency_s=0.002) for i in range(8)
        ]
        report = summarize(records, _charged_ledger())
        assert np.isfinite(report.p95_ms)
        assert np.isfinite(report.energy_per_request_uj)
        assert report.offered_qps == pytest.approx(7 / 0.007)
        assert "nan" not in report.format_row()
        assert "-ms" not in report.format_row()


class TestDollarColumn:
    def _price_ledger(self, total=0.5):
        ledger = PriceLedger()
        ledger.charge("Serve", total)
        return ledger

    def test_unpriced_report_has_no_dollar_column(self):
        report = summarize([_record(0)], Ledger())
        assert report.dollars_total is None
        assert report.dollars_per_1k_requests is None
        assert "$=" not in report.format_row()
        assert report.as_dict()["dollars_total"] is None

    def test_priced_report_joins_the_total(self):
        records = [_record(i, arrival_s=0.001 * i) for i in range(4)]
        report = summarize(
            records, _charged_ledger(), price_ledger=self._price_ledger(0.5)
        )
        assert report.dollars_total == 0.5
        assert report.dollars_per_1k_requests == pytest.approx(1e3 * 0.5 / 4)
        assert "$= 0.500000" in report.format_row()
        assert report.as_dict()["dollars_total"] == 0.5

    def test_priced_but_nothing_answered_is_nan_per_1k(self):
        records = [_record(0, shed=True, latency_s=0.0)]
        report = summarize(
            records, Ledger(), price_ledger=self._price_ledger(0.25)
        )
        assert report.dollars_total == 0.25
        assert math.isnan(report.dollars_per_1k_requests)

    def test_dataclass_default_is_unpriced(self):
        report = SLOReport(
            label="x",
            num_requests=1,
            p50_ms=1.0,
            p95_ms=1.0,
            p99_ms=1.0,
            mean_ms=1.0,
            max_ms=1.0,
            offered_qps=1.0,
            sustained_qps=1.0,
            energy_per_request_uj=1.0,
            cache_hit_rate=0.0,
            mean_batch_size=1.0,
        )
        assert report.dollars_total is None
        assert report.dollars_per_1k_requests is None
