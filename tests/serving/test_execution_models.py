"""Eager / lazy / hybrid execution models over the serving session.

Each model is a strategy over a fresh session: lazy never warms, eager
warms the traffic head (capped at cache capacity), hybrid warms only
proven-recurring users.  All three serve identical recommendations --
*when* results are computed changes the bill, never the answers.
"""

import pytest

from repro.serving.cache import RepetitionAwareCache, ServingCache
from repro.serving.execution import (
    EXECUTION_MODELS,
    EagerExecutionModel,
    HybridExecutionModel,
    LazyExecutionModel,
    run_execution_model,
)
from repro.serving.pricing import PriceBook
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.traffic import PoissonTraffic
from repro.serving.workload_analyzer import user_request_counts


@pytest.fixture(scope="module")
def execution_setup(serving_setup):
    """(requests, session factory maker) over a seeded Poisson trace."""
    dataset, filtering, ranking, mapping, workload = serving_setup
    engine = make_sharded_engine(
        "imars", filtering, ranking, 1, mapping=mapping,
        num_candidates=24, top_k=5, seed=0,
    )
    rate_qps = 8.0 / engine.recommend_query(workload[0]).cost.latency_s
    requests = PoissonTraffic(
        rate_qps, num_users=dataset.num_users, seed=0, stream=11
    ).generate(80)

    def factory(cache_capacity=24, repetition_aware=False, price_book=None):
        def build():
            cache_cls = (
                RepetitionAwareCache if repetition_aware else ServingCache
            )
            return ServingSession(
                make_sharded_engine(
                    "imars", filtering, ranking, 1, mapping=mapping,
                    num_candidates=24, top_k=5, seed=0,
                ),
                workload,
                scheduler=MicroBatchScheduler(
                    MicroBatchConfig(max_batch_size=8)
                ),
                cache=cache_cls(capacity=cache_capacity, rows_per_entry=5),
                label="execution",
                price_book=price_book,
            )

        return build

    return requests, factory


class TestLazy:
    def test_precomputes_nothing(self, execution_setup):
        requests, factory = execution_setup
        outcome = LazyExecutionModel().execute(factory(), requests)
        assert outcome.model == "lazy"
        assert outcome.precomputed_users == ()
        assert "Warm-up" not in outcome.result.ledger.by_category()

    def test_unpriced_dollars_are_none(self, execution_setup):
        requests, factory = execution_setup
        outcome = LazyExecutionModel().execute(factory(), requests)
        assert outcome.dollars is None
        assert "$-" in outcome.format_row()


class TestEager:
    def test_warms_the_traffic_head(self, execution_setup):
        requests, factory = execution_setup
        outcome = EagerExecutionModel(traffic_fraction=0.75).execute(
            factory(), requests
        )
        assert outcome.precomputed_users
        assert "Warm-up" in outcome.result.ledger.by_category()
        # The head is the plan: heaviest users first.
        counts = user_request_counts(requests)
        planned = list(outcome.precomputed_users)
        assert counts[planned[0]] == max(
            counts[user] for user in planned
        )

    def test_precompute_capped_at_cache_capacity(self, execution_setup):
        requests, factory = execution_setup
        outcome = EagerExecutionModel(traffic_fraction=1.0).execute(
            factory(cache_capacity=4), requests
        )
        assert len(outcome.precomputed_users) <= 4

    def test_beats_lazy_on_hit_rate(self, execution_setup):
        requests, factory = execution_setup
        lazy = LazyExecutionModel().execute(factory(), requests)
        eager = EagerExecutionModel().execute(factory(), requests)
        assert eager.report.cache_hit_rate >= lazy.report.cache_hit_rate

    def test_same_recommendations_as_lazy(self, execution_setup):
        # WHEN a result is computed must never change WHAT is served.
        requests, factory = execution_setup
        lazy = LazyExecutionModel().execute(factory(), requests)
        eager = EagerExecutionModel().execute(factory(), requests)
        assert [record.items for record in lazy.result.records] == [
            record.items for record in eager.result.records
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="traffic fraction"):
            EagerExecutionModel(traffic_fraction=0.0)
        with pytest.raises(ValueError, match="traffic fraction"):
            EagerExecutionModel(traffic_fraction=1.1)


class TestHybrid:
    def test_plans_only_recurring_users(self, execution_setup):
        requests, factory = execution_setup
        model = HybridExecutionModel(recurrence_threshold=0.5)
        planned = model.plan(requests)
        counts = user_request_counts(requests)
        assert planned
        assert all(counts[user] >= 2 for user in planned)
        one_offs = {user for user, count in counts.items() if count == 1}
        assert one_offs.isdisjoint(planned)

    def test_warms_a_subset_of_eagers_head(self, execution_setup):
        requests, factory = execution_setup
        eager_plan = set(EagerExecutionModel(traffic_fraction=1.0).plan(requests))
        hybrid_plan = set(HybridExecutionModel().plan(requests))
        assert hybrid_plan <= eager_plan

    def test_execute_with_repetition_aware_cache(self, execution_setup):
        requests, factory = execution_setup
        outcome = HybridExecutionModel().execute(
            factory(repetition_aware=True, price_book=PriceBook()), requests
        )
        stats = outcome.result.cache_stats
        assert stats["bypassed"] > 0
        assert outcome.dollars is not None
        assert outcome.dollars == outcome.result.price_ledger.total()

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="recurrence threshold"):
            HybridExecutionModel(recurrence_threshold=1.0)
        with pytest.raises(ValueError, match="recurrence threshold"):
            HybridExecutionModel(recurrence_threshold=-0.1)


class TestDispatch:
    def test_registry_covers_all_models(self):
        assert set(EXECUTION_MODELS) == {"lazy", "eager", "hybrid"}

    def test_run_execution_model_by_name(self, execution_setup):
        requests, factory = execution_setup
        outcome = run_execution_model(
            "eager", factory(), requests, traffic_fraction=0.5
        )
        assert outcome.model == "eager"
        assert outcome.precomputed_users

    def test_unknown_model_raises(self, execution_setup):
        requests, factory = execution_setup
        with pytest.raises(ValueError, match="unknown execution model"):
            run_execution_model("psychic", factory(), requests)

    def test_history_overrides_the_planning_trace(self, execution_setup):
        requests, factory = execution_setup
        # Planning from a history where only user 0 recurs.
        history = [requests[0]] * 3
        history = [
            type(requests[0])(
                request_id=index, arrival_s=float(index), user=requests[0].user
            )
            for index in range(3)
        ]
        outcome = run_execution_model(
            "hybrid", factory(), requests, history=history
        )
        assert outcome.precomputed_users == (requests[0].user,)
