"""Tests for the serving session loop and SLO summarisation."""

import pytest

from repro.core.pipeline import IMARSEngine
from repro.energy.accounting import Ledger
from repro.serving.cache import ServingCache
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingSession
from repro.serving.slo import RequestRecord, summarize
from repro.serving.traffic import (
    MultiTenantTraffic,
    PoissonTraffic,
    Request,
    TenantSpec,
)


@pytest.fixture(scope="module")
def engine(serving_setup):
    _, filtering, ranking, mapping, _ = serving_setup
    return IMARSEngine(filtering, ranking, mapping, num_candidates=10, top_k=4)


def _run(engine, workload, requests, cache=None):
    session = ServingSession(
        engine,
        workload,
        scheduler=MicroBatchScheduler(
            MicroBatchConfig(max_batch_size=4, max_wait_s=0.0002)
        ),
        cache=cache,
        label="test",
    )
    return session.run(requests)


def test_every_request_recorded_in_order(serving_setup, engine):
    dataset, _, _, _, workload = serving_setup
    requests = PoissonTraffic(3000.0, num_users=dataset.num_users, seed=1).generate(60)
    result = _run(engine, workload, requests)
    assert len(result.records) == 60
    assert [record.request.request_id for record in result.records] == list(range(60))
    assert all(record.latency_s > 0.0 for record in result.records)
    assert result.report.num_requests == 60
    assert result.report.p50_ms <= result.report.p95_ms <= result.report.p99_ms


def test_cache_hits_serve_identical_items(serving_setup, engine):
    dataset, _, _, _, workload = serving_setup
    requests = PoissonTraffic(3000.0, num_users=dataset.num_users, seed=2).generate(80)
    cache = ServingCache(capacity=dataset.num_users, rows_per_entry=4)
    result = _run(engine, workload, requests, cache=cache)
    hits = [record for record in result.records if record.cache_hit]
    assert hits, "the Zipf stream must produce repeats"
    first_served = {}
    for record in result.records:
        first_served.setdefault(record.request.user, record.items)
    for record in hits:
        assert record.items == first_served[record.request.user]
    assert result.cache_stats["hit_rate"] > 0.0


def test_cache_reduces_energy(serving_setup, engine):
    dataset, _, _, _, workload = serving_setup
    requests = PoissonTraffic(3000.0, num_users=dataset.num_users, seed=3).generate(80)
    cached = _run(
        engine, workload, requests,
        cache=ServingCache(capacity=dataset.num_users, rows_per_entry=4),
    )
    uncached = _run(engine, workload, requests)
    assert (
        cached.report.energy_per_request_uj < uncached.report.energy_per_request_uj
    )
    assert uncached.cache_stats is None
    assert uncached.report.cache_hit_rate == 0.0


def test_ledger_categories(serving_setup, engine):
    dataset, _, _, _, workload = serving_setup
    requests = PoissonTraffic(3000.0, num_users=dataset.num_users, seed=4).generate(40)
    result = _run(
        engine, workload, requests,
        cache=ServingCache(capacity=16, rows_per_entry=4),
    )
    assert {"Cache", "Serve"} <= set(result.ledger.categories())


def test_duplicate_queries_deduplicated_within_batch(serving_setup, engine):
    _, _, _, _, workload = serving_setup
    # Four simultaneous requests from the same user: one engine serve.
    requests = [Request(request_id=i, arrival_s=0.0, user=0) for i in range(4)]
    result = _run(engine, workload, requests)
    serve_entries = [
        cost for category, cost in result.ledger if category == "Serve"
    ]
    single = engine.recommend_query(workload[0])
    assert len(serve_entries) == 1
    assert serve_entries[0].energy_pj == pytest.approx(single.cost.energy_pj)
    assert all(record.items == result.records[0].items for record in result.records)


def test_empty_workload_rejected(engine):
    with pytest.raises(ValueError):
        ServingSession(engine, [])


def test_warm_cache_opens_hot_and_charges_the_ledger(serving_setup, engine):
    dataset, _, _, _, workload = serving_setup
    requests = PoissonTraffic(3000.0, num_users=dataset.num_users, seed=5).generate(60)
    cold_session = ServingSession(
        engine, workload,
        cache=ServingCache(capacity=dataset.num_users, rows_per_entry=4),
        label="cold",
    )
    cold = cold_session.run(requests)

    warm_session = ServingSession(
        engine, workload,
        cache=ServingCache(capacity=dataset.num_users, rows_per_entry=4),
        label="warm",
    )
    warm_cost = warm_session.warm(request.user for request in requests)
    assert warm_cost.energy_pj > 0.0
    warm = warm_session.run(requests)
    # Every request's query was warmed: the session opens fully hot.
    assert warm.report.cache_hit_rate > cold.report.cache_hit_rate
    assert warm.report.cache_hit_rate == 1.0
    # The warm-up work is real: it must appear in the session ledger.
    assert "Warm-up" in warm.ledger.categories()
    assert warm.ledger.by_category()["Warm-up"].energy_pj == pytest.approx(
        warm_cost.energy_pj
    )
    # Warmed results are exactly what the engine would have served.
    for record in warm.records:
        assert record.cache_hit
        assert record.items == tuple(
            engine.recommend_query(workload[record.request.user % len(workload)]).items
        )


def test_warm_cost_charged_to_one_run_only(serving_setup, engine):
    dataset, _, _, _, workload = serving_setup
    requests = PoissonTraffic(3000.0, num_users=dataset.num_users, seed=7).generate(30)
    session = ServingSession(
        engine, workload,
        cache=ServingCache(capacity=dataset.num_users, rows_per_entry=4),
        label="reused",
    )
    session.warm([0, 1, 2])
    first = session.run(requests)
    second = session.run(requests)
    # The one-time warm-up energy lands in the first run's ledger only.
    assert "Warm-up" in first.ledger.categories()
    assert "Warm-up" not in second.ledger.categories()


def test_warm_requires_a_cache(engine, serving_setup):
    _, _, _, _, workload = serving_setup
    with pytest.raises(ValueError):
        ServingSession(engine, workload).warm([0])


def test_tenant_reports_split_the_session(serving_setup, engine):
    dataset, _, _, _, workload = serving_setup
    half = dataset.num_users // 2
    traffic = MultiTenantTraffic(
        [
            TenantSpec(
                name="a",
                traffic=PoissonTraffic(3000.0, num_users=half, seed=6, stream=1),
                share=0.5,
            ),
            TenantSpec(
                name="b",
                traffic=PoissonTraffic(3000.0, num_users=half, seed=6, stream=2),
                share=0.5,
            ),
        ]
    )
    result = _run(engine, workload, traffic.generate(60))
    reports = result.tenant_reports
    assert set(reports) == {"a", "b"}
    assert sum(report.num_requests for report in reports.values()) == 60
    total_uj = sum(
        report.energy_per_request_uj * report.num_requests
        for report in reports.values()
    )
    assert total_uj == pytest.approx(result.ledger.total().energy_uj)


def test_summarize_validation():
    with pytest.raises(ValueError):
        summarize([], Ledger())
    record = RequestRecord(
        request=Request(request_id=0, arrival_s=1.0, user=0),
        completion_s=1.5,
        batch_size=2,
        cache_hit=False,
        items=(1, 2),
    )
    report = summarize([record], Ledger(), label="one")
    assert report.p50_ms == pytest.approx(500.0)
    assert report.mean_batch_size == 2.0
    with pytest.raises(ValueError):
        RequestRecord(
            request=Request(request_id=0, arrival_s=1.0, user=0),
            completion_s=0.5,  # precedes arrival
            batch_size=1,
            cache_hit=False,
            items=(),
        )
