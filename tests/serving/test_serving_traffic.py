"""Tests for the seeded traffic generators."""

import numpy as np
import pytest

from repro.data.movielens import MovieLensDataset
from repro.serving.traffic import (
    BurstyTraffic,
    DiurnalTraffic,
    PoissonTraffic,
    Request,
    TraceReplayTraffic,
    zipf_user_weights,
)

ALL_PATTERNS = [
    lambda: PoissonTraffic(1000.0, num_users=50, seed=3),
    lambda: BurstyTraffic(500.0, 5000.0, num_users=50, seed=3),
    lambda: DiurnalTraffic(1000.0, num_users=50, seed=3),
    lambda: TraceReplayTraffic(list(range(50)) * 3, 1000.0, seed=3),
]


@pytest.mark.parametrize("factory", ALL_PATTERNS)
def test_deterministic_and_well_formed(factory):
    first = factory().generate(200)
    second = factory().generate(200)
    assert first == second  # same (seed, stream) -> same stream
    arrivals = [request.arrival_s for request in first]
    assert all(later >= earlier for earlier, later in zip(arrivals, arrivals[1:]))
    assert all(request.arrival_s >= 0.0 for request in first)
    assert all(0 <= request.user < 50 for request in first)
    assert [request.request_id for request in first] == list(range(200))


def test_different_streams_differ():
    base = PoissonTraffic(1000.0, num_users=50, seed=3, stream=0).generate(50)
    other = PoissonTraffic(1000.0, num_users=50, seed=3, stream=5).generate(50)
    assert base != other


def test_poisson_mean_rate():
    requests = PoissonTraffic(2000.0, num_users=100, seed=0).generate(4000)
    span = requests[-1].arrival_s - requests[0].arrival_s
    measured = (len(requests) - 1) / span
    assert measured == pytest.approx(2000.0, rel=0.1)


def test_bursty_rate_between_calm_and_burst():
    traffic = BurstyTraffic(
        200.0, 20000.0, num_users=50, mean_calm_s=0.05, mean_burst_s=0.05, seed=1
    )
    requests = traffic.generate(4000)
    span = requests[-1].arrival_s - requests[0].arrival_s
    measured = (len(requests) - 1) / span
    assert 200.0 < measured < 20000.0


def test_diurnal_rate_modulates():
    traffic = DiurnalTraffic(
        1000.0, num_users=50, amplitude=0.9, period_s=1.0, seed=2
    )
    assert traffic.rate_at(0.25) > traffic.rate_at(0.75)  # peak vs trough
    requests = traffic.generate(2000)
    # Arrivals concentrate in the high-rate half-period.
    phases = np.array([request.arrival_s % 1.0 for request in requests])
    assert (phases < 0.5).mean() > 0.6


def test_zipf_weights_skew_and_normalise():
    weights = zipf_user_weights(100, exponent=1.2)
    assert weights.sum() == pytest.approx(1.0)
    assert weights[0] > weights[-1]
    uniform = zipf_user_weights(100, exponent=0.0)
    assert np.allclose(uniform, 0.01)


def test_trace_replay_preserves_user_multiset():
    trace = [0, 0, 0, 1, 2]
    traffic = TraceReplayTraffic(trace, 100.0, seed=0)
    requests = traffic.generate(10)  # two full cycles
    users = sorted(request.user for request in requests)
    assert users == sorted(trace * 2)


def test_trace_replay_from_movielens():
    dataset = MovieLensDataset(scale=0.03, seed=0)
    traffic = TraceReplayTraffic.from_movielens(dataset, 1000.0, seed=0)
    requests = traffic.generate(100)
    assert all(0 <= request.user < dataset.num_users for request in requests)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        PoissonTraffic(0.0, num_users=10)
    with pytest.raises(ValueError):
        BurstyTraffic(1000.0, 500.0, num_users=10)  # burst < calm
    with pytest.raises(ValueError):
        DiurnalTraffic(100.0, num_users=10, amplitude=1.5)
    with pytest.raises(ValueError):
        TraceReplayTraffic([], 100.0)
    with pytest.raises(ValueError):
        Request(request_id=0, arrival_s=-1.0, user=0)
    with pytest.raises(ValueError):
        PoissonTraffic(100.0, num_users=10).generate(0)
