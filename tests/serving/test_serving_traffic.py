"""Tests for the seeded traffic generators."""

import numpy as np
import pytest

from repro.data.movielens import MovieLensDataset
from repro.serving.traffic import (
    BurstyTraffic,
    DiurnalTraffic,
    MultiTenantTraffic,
    PoissonTraffic,
    Request,
    TenantSpec,
    TraceReplayTraffic,
    zipf_user_weights,
)

ALL_PATTERNS = [
    lambda: PoissonTraffic(1000.0, num_users=50, seed=3),
    lambda: BurstyTraffic(500.0, 5000.0, num_users=50, seed=3),
    lambda: DiurnalTraffic(1000.0, num_users=50, seed=3),
    lambda: TraceReplayTraffic(list(range(50)) * 3, 1000.0, seed=3),
]


@pytest.mark.parametrize("factory", ALL_PATTERNS)
def test_deterministic_and_well_formed(factory):
    first = factory().generate(200)
    second = factory().generate(200)
    assert first == second  # same (seed, stream) -> same stream
    arrivals = [request.arrival_s for request in first]
    assert all(later >= earlier for earlier, later in zip(arrivals, arrivals[1:]))
    assert all(request.arrival_s >= 0.0 for request in first)
    assert all(0 <= request.user < 50 for request in first)
    assert [request.request_id for request in first] == list(range(200))


def test_different_streams_differ():
    base = PoissonTraffic(1000.0, num_users=50, seed=3, stream=0).generate(50)
    other = PoissonTraffic(1000.0, num_users=50, seed=3, stream=5).generate(50)
    assert base != other


def test_poisson_mean_rate():
    requests = PoissonTraffic(2000.0, num_users=100, seed=0).generate(4000)
    span = requests[-1].arrival_s - requests[0].arrival_s
    measured = (len(requests) - 1) / span
    assert measured == pytest.approx(2000.0, rel=0.1)


def test_bursty_rate_between_calm_and_burst():
    traffic = BurstyTraffic(
        200.0, 20000.0, num_users=50, mean_calm_s=0.05, mean_burst_s=0.05, seed=1
    )
    requests = traffic.generate(4000)
    span = requests[-1].arrival_s - requests[0].arrival_s
    measured = (len(requests) - 1) / span
    assert 200.0 < measured < 20000.0


def test_diurnal_rate_modulates():
    traffic = DiurnalTraffic(
        1000.0, num_users=50, amplitude=0.9, period_s=1.0, seed=2
    )
    assert traffic.rate_at(0.25) > traffic.rate_at(0.75)  # peak vs trough
    requests = traffic.generate(2000)
    # Arrivals concentrate in the high-rate half-period.
    phases = np.array([request.arrival_s % 1.0 for request in requests])
    assert (phases < 0.5).mean() > 0.6


def test_zipf_weights_skew_and_normalise():
    weights = zipf_user_weights(100, exponent=1.2)
    assert weights.sum() == pytest.approx(1.0)
    assert weights[0] > weights[-1]
    uniform = zipf_user_weights(100, exponent=0.0)
    assert np.allclose(uniform, 0.01)


def test_trace_replay_preserves_user_multiset():
    trace = [0, 0, 0, 1, 2]
    traffic = TraceReplayTraffic(trace, 100.0, seed=0)
    requests = traffic.generate(10)  # two full cycles
    users = sorted(request.user for request in requests)
    assert users == sorted(trace * 2)


def test_trace_replay_from_movielens():
    dataset = MovieLensDataset(scale=0.03, seed=0)
    traffic = TraceReplayTraffic.from_movielens(dataset, 1000.0, seed=0)
    requests = traffic.generate(100)
    assert all(0 <= request.user < dataset.num_users for request in requests)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        PoissonTraffic(0.0, num_users=10)
    with pytest.raises(ValueError):
        BurstyTraffic(1000.0, 500.0, num_users=10)  # burst < calm
    with pytest.raises(ValueError):
        DiurnalTraffic(100.0, num_users=10, amplitude=1.5)
    with pytest.raises(ValueError):
        TraceReplayTraffic([], 100.0)
    with pytest.raises(ValueError):
        Request(request_id=0, arrival_s=-1.0, user=0)
    with pytest.raises(ValueError):
        PoissonTraffic(100.0, num_users=10).generate(0)


class TestMultiTenantTraffic:
    def _mixer(self):
        return MultiTenantTraffic(
            [
                TenantSpec(
                    name="alpha",
                    traffic=PoissonTraffic(1000.0, num_users=20, seed=3, stream=1),
                    share=0.75,
                    p95_slo_ms=1.0,
                ),
                TenantSpec(
                    name="beta",
                    traffic=BurstyTraffic(
                        500.0, 5000.0, num_users=30, seed=3, stream=2
                    ),
                    share=0.25,
                    p95_slo_ms=5.0,
                ),
            ]
        )

    def test_interleaves_sorted_with_sequential_ids(self):
        mixed = self._mixer().generate(100)
        assert [request.request_id for request in mixed] == list(range(100))
        arrivals = [request.arrival_s for request in mixed]
        assert arrivals == sorted(arrivals)
        assert {request.tenant for request in mixed} == {"alpha", "beta"}

    def test_user_id_ranges_are_disjoint(self):
        mixer = self._mixer()
        assert mixer.num_users == 50
        assert mixer.user_offset("alpha") == 0
        assert mixer.user_offset("beta") == 20
        for request in mixer.generate(100):
            if request.tenant == "alpha":
                assert 0 <= request.user < 20
            else:
                assert 20 <= request.user < 50

    def test_share_split_uses_largest_remainder(self):
        mixed = self._mixer().generate(100)
        by_tenant = {
            tenant: sum(1 for request in mixed if request.tenant == tenant)
            for tenant in ("alpha", "beta")
        }
        assert by_tenant == {"alpha": 75, "beta": 25}

    def test_every_tenant_gets_at_least_one_request(self):
        mixer = MultiTenantTraffic(
            [
                TenantSpec(
                    name="whale",
                    traffic=PoissonTraffic(1000.0, num_users=5, seed=0, stream=1),
                    share=0.99,
                ),
                TenantSpec(
                    name="minnow",
                    traffic=PoissonTraffic(1000.0, num_users=5, seed=0, stream=2),
                    share=0.01,
                ),
            ]
        )
        mixed = mixer.generate(10)
        assert any(request.tenant == "minnow" for request in mixed)

    def test_deterministic(self):
        assert self._mixer().generate(60) == self._mixer().generate(60)

    def test_slo_lookup(self):
        mixer = self._mixer()
        assert mixer.slo_for("alpha") == 1.0
        assert mixer.slo_for("beta") == 5.0
        with pytest.raises(KeyError):
            mixer.slo_for("gamma")

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiTenantTraffic([])
        spec = TenantSpec(
            name="dup", traffic=PoissonTraffic(1.0, num_users=2, seed=0)
        )
        with pytest.raises(ValueError):
            MultiTenantTraffic([spec, spec])
        with pytest.raises(ValueError):
            self._mixer().generate(1)  # fewer requests than tenants
        with pytest.raises(ValueError):
            TenantSpec(name="", traffic=None)
        with pytest.raises(ValueError):
            TenantSpec(name="t", traffic=None, share=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", traffic=None, p95_slo_ms=0.0)
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_s=0.0, user=0, tenant="")
