"""Tests for the self-healing layer: breakers, recovery, bit-identity.

Four contracts from the chaos PR's acceptance list:

* the circuit breaker's three-state machine handles the awkward edges
  (half-open probe failure re-opens with a fresh cooldown, probe slots
  are claimed at attempt start -- not at the routing check -- and the
  concurrent-probe cap holds);
* breaker-aware routing composes with replica groups and spillover
  (``assign(allowed=...)`` confines work, a crashed primary fails over
  to its spillover peer without changing recommendations);
* partial scatter-gather answers from the surviving shards and accounts
  the recall loss instead of failing the request;
* the *empty-plan bit-identity* property: a resilience-wrapped fleet
  over an empty :class:`FaultPlan` produces byte-identical results to
  an unwrapped one, across arbitrary shard/replica/spillover topologies
  (Hypothesis) and through a real end-to-end session -- and a faulted
  run is itself deterministic: same seed, same plan, same bytes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import BatchResult, QueryResult, ServeQuery
from repro.energy.accounting import Cost, Ledger
from repro.serving.faults import CRASH, SHARD_OUTAGE, FaultEvent, FaultPlan
from repro.serving.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FaultContext,
    ResilienceConfig,
    attach_faults,
)
from repro.serving.session import ServingSession
from repro.serving.shard import ReplicaGroup, ShardedEngine, make_sharded_engine
from repro.serving.traffic import PoissonTraffic


# -- circuit-breaker state machine ----------------------------------------


def _breaker(**overrides) -> CircuitBreaker:
    defaults = dict(
        breaker_failure_threshold=2,
        breaker_cooldown_s=1.0,
        breaker_half_open_probes=1,
    )
    defaults.update(overrides)
    return CircuitBreaker(ResilienceConfig(**defaults))


def test_breaker_stays_closed_below_threshold():
    breaker = _breaker()
    breaker.record_failure(0.0)
    assert breaker.state == CLOSED
    assert breaker.allow(0.1)
    # A success wipes the streak: two more failures are needed to open.
    breaker.record_success(0.2)
    breaker.record_failure(0.3)
    assert breaker.state == CLOSED


def test_breaker_opens_at_threshold_and_blocks_until_cooldown():
    breaker = _breaker()
    breaker.record_failure(0.0)
    breaker.record_failure(0.5)
    assert breaker.state == OPEN
    assert breaker.opened_at_s == 0.5
    assert not breaker.allow(1.0)  # cooldown (1s) not elapsed
    assert breaker.allow(1.5)  # elapsed: moves to half-open
    assert breaker.state == HALF_OPEN


def test_allow_is_non_consuming_and_take_probe_claims_the_slot():
    """Routing may poll allow() across many candidates; only an attempt
    that actually starts (take_probe) occupies the half-open slot."""
    breaker = _breaker()
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    for _ in range(5):  # poll away: nothing is consumed
        assert breaker.allow(2.0)
    assert breaker.probes_in_flight == 0
    breaker.take_probe()
    assert breaker.probes_in_flight == 1
    assert not breaker.allow(2.0)  # the single slot is now in flight


def test_take_probe_is_a_noop_while_closed():
    breaker = _breaker()
    breaker.take_probe()
    assert breaker.probes_in_flight == 0
    assert breaker.allow(0.0)


def test_half_open_probe_success_recloses():
    breaker = _breaker()
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    assert breaker.allow(1.5)
    breaker.take_probe()
    breaker.record_success(1.6)
    assert breaker.state == CLOSED
    assert breaker.probes_in_flight == 0
    assert breaker.consecutive_failures == 0
    assert [(old, new) for _, old, new in breaker.transitions] == [
        (CLOSED, OPEN),
        (OPEN, HALF_OPEN),
        (HALF_OPEN, CLOSED),
    ]


def test_half_open_probe_failure_reopens_with_fresh_cooldown():
    breaker = _breaker()
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    assert breaker.allow(1.5)
    breaker.take_probe()
    breaker.record_failure(1.7)
    assert breaker.state == OPEN
    # The cooldown restarts from the probe's failure time, not the
    # original trip: the replica is still sick, back off fully.
    assert breaker.opened_at_s == 1.7
    assert not breaker.allow(2.5)
    assert breaker.allow(2.7)
    assert breaker.state == HALF_OPEN


def test_concurrent_half_open_probes_capped():
    breaker = _breaker(breaker_half_open_probes=2)
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    assert breaker.allow(1.5)
    breaker.take_probe()
    assert breaker.allow(1.5)  # one slot left
    breaker.take_probe()
    assert not breaker.allow(1.5)  # both probes in flight
    # One probe failing sends the site straight back to open; the next
    # half-open round starts with a clean slot count.
    breaker.record_failure(1.6)
    assert breaker.state == OPEN
    assert breaker.allow(2.7)
    assert breaker.probes_in_flight == 0


def test_resilience_config_rejects_nonsense():
    for bad in (
        dict(timeout_factor=0.0),
        dict(shard_deadline_factor=-1.0),
        dict(default_timeout_s=0.0),
        dict(max_retries=-1),
        dict(retry_budget=-1),
        dict(backoff_base_s=-0.1),
        dict(backoff_multiplier=0.5),
        dict(hedge_factor=1.0),
        dict(hedge_delay_factor=0.0),
        dict(breaker_failure_threshold=0),
        dict(breaker_cooldown_s=-1.0),
        dict(breaker_half_open_probes=0),
    ):
        with pytest.raises(ValueError):
            ResilienceConfig(**bad)


def test_timeouts_scale_with_expectation_and_batch_size():
    config = ResilienceConfig(
        timeout_factor=4.0, default_timeout_s=0.005, shard_deadline_factor=2.0
    )
    # No observation yet: fall back to the configured default.
    assert config.attempt_timeout_s(None, 1) == pytest.approx(0.02)
    assert config.attempt_timeout_s(0.001, 3) == pytest.approx(0.012)
    assert config.shard_deadline_s(None, 2) == pytest.approx(0.02)
    assert config.shard_deadline_s(0.001, 1) == pytest.approx(0.002)


def test_fault_context_rejects_non_plan():
    with pytest.raises(TypeError, match="FaultPlan or FaultInjector"):
        FaultContext({"not": "a plan"})


def test_fault_events_reach_tracer_and_metrics():
    """record_event feeds both telemetry planes -- and lazily, so a run
    that never fires exports nothing fault-related at all."""
    from repro.obs.telemetry import Telemetry

    telemetry = Telemetry()
    ctx = FaultContext(
        FaultPlan(()), resilience=ResilienceConfig(), telemetry=telemetry
    )
    assert not telemetry.tracer.instants  # lazy until a real event
    ctx.record_event("failover", 0.25, shard=0, origin=0, target=1)
    names = [instant.name for instant in telemetry.tracer.instants]
    assert names == ["failover"]
    exported = telemetry.metrics.render_prometheus()
    assert "repro_fault_events_total" in exported
    assert 'event="failover"' in exported


# -- breaker-aware routing over replica groups and spillover --------------


class _StubEngine:
    """Minimal engine: fixed per-query cost, identity results."""

    expected_query_latency_s = 1.0
    top_k = 5

    def serve_batch(self, queries):
        results = [
            QueryResult(
                items=[0],
                candidate_count=1,
                cost=Cost(energy_pj=1.0, latency_ns=1.0),
                ledger=Ledger(),
                scores=[1.0],
            )
            for _ in queries
        ]
        return BatchResult(
            results=results, cost=Cost(energy_pj=len(queries), latency_ns=1.0)
        )

    def merge_cost(self, num_entries):
        return Cost()


def test_assign_confines_work_to_allowed_replicas():
    group = ReplicaGroup([_StubEngine(), _StubEngine(), _StubEngine()])
    assignment = group.assign(5, allowed=[1])
    assert [len(lane) for lane in assignment] == [0, 5, 0]
    assignment = group.assign(6, allowed=[0, 2])
    assert len(assignment[1]) == 0
    assert sorted(assignment[0] + assignment[2]) == list(range(6))


def test_assign_allowed_composes_with_spillover_routing():
    group = ReplicaGroup(
        [_StubEngine(), _StubEngine(), _StubEngine()],
        p95_target_s=10.0,
        spill_headroom=0.8,
    )
    # The cost-aware router must still respect the breaker's verdict.
    assignment = group.assign(4, allowed=[2])
    assert [len(lane) for lane in assignment] == [0, 0, 4]


@pytest.fixture(scope="module")
def _traffic(serving_setup):
    dataset, filtering, ranking, mapping, workload = serving_setup
    probe = make_sharded_engine(
        "imars", filtering, ranking, 1, mapping=mapping,
        num_candidates=24, top_k=5, seed=0,
    )
    rate_qps = 8.0 / probe.recommend_query(workload[0]).cost.latency_s
    requests = PoissonTraffic(
        rate_qps, num_users=dataset.num_users, seed=0, stream=5
    ).generate(48)
    return requests, max(request.arrival_s for request in requests)


def _session(serving_setup, shards, replicas, faults=None, resilience=None, **kwargs):
    _, filtering, ranking, mapping, workload = serving_setup
    engine = make_sharded_engine(
        "imars", filtering, ranking, shards, mapping=mapping,
        num_candidates=24, top_k=5, seed=0,
        replicas_per_shard=replicas, **kwargs,
    )
    return ServingSession(
        engine, workload, label="chaos-test", faults=faults, resilience=resilience
    )


def test_crashed_replica_fails_over_without_changing_items(
    serving_setup, _traffic
):
    requests, horizon = _traffic
    plan = FaultPlan(
        (FaultEvent(CRASH, 0.0, 2.0 * horizon + 1.0, shard=0, replica=0),)
    )
    healthy = _session(serving_setup, 1, 2).run(requests)
    # threshold=1: open the breaker on the very first failed attempt --
    # with a laxer threshold the least-busy router (whose view of the
    # crashed lane already includes the timeout stalls) steers traffic
    # away before a failure streak can even accumulate.
    shielded = _session(
        serving_setup, 1, 2, faults=plan,
        resilience=ResilienceConfig(breaker_failure_threshold=1),
    ).run(requests)
    counters = shielded.fault_stats["counters"]
    assert counters["failovers"] >= 1
    assert counters["failed_queries"] == 0
    # Replicas are bit-identical by construction, so recovery must not
    # change a single recommendation.
    assert [record.items for record in shielded.records] == [
        record.items for record in healthy.records
    ]
    assert shielded.report.availability == 1.0
    # The crashed site's breaker opened (and is still dark at the end).
    assert counters["breaker_opens"] >= 1
    assert shielded.fault_stats["breakers"]["shard0/replica0"] != CLOSED


def test_crashed_primary_fails_over_to_spillover_replica(
    serving_setup, _traffic
):
    requests, horizon = _traffic
    plan = FaultPlan(
        (FaultEvent(CRASH, 0.0, 2.0 * horizon + 1.0, shard=0, replica=0),)
    )
    spillover = dict(
        spillover_replicas_per_shard=1, spillover_slo_s=0.001
    )
    healthy = _session(serving_setup, 1, 1, **spillover).run(requests)
    shielded = _session(
        serving_setup, 1, 1,
        faults=plan, resilience=ResilienceConfig(), **spillover,
    ).run(requests)
    counters = shielded.fault_stats["counters"]
    assert counters["failovers"] >= 1
    assert counters["failed_queries"] == 0
    # The GPU spillover replica mirrors the IMC primary bit for bit.
    assert [record.items for record in shielded.records] == [
        record.items for record in healthy.records
    ]


def test_bare_engine_has_no_failover_and_drops_the_batch(
    serving_setup, _traffic
):
    """A router-less engine has no peer: a crash window drops its miss
    batches after the detection timeout, and the wasted detection time
    is billed to the ledger under Retry."""
    from repro.core.pipeline import IMARSEngine

    _, filtering, ranking, mapping, workload = serving_setup
    requests, horizon = _traffic
    engine = IMARSEngine(
        filtering, ranking, mapping, num_candidates=24, top_k=5, seed=0
    )
    plan = FaultPlan(
        (FaultEvent(CRASH, 0.0, 2.0 * horizon + 1.0, shard=0, replica=0),)
    )
    result = ServingSession(
        engine,
        workload,
        label="bare-chaos",
        faults=plan,
        resilience=ResilienceConfig(),
    ).run(requests)
    counters = result.fault_stats["counters"]
    assert counters["crash_hits"] >= 1
    assert counters["failed_queries"] >= 1
    assert all(record.failed for record in result.records)
    assert result.report.availability == 0.0
    assert result.ledger.by_category()["Retry"].latency_ns > 0.0


# -- partial scatter-gather ------------------------------------------------


def test_dark_shard_goes_partial_and_accounts_recall(serving_setup, _traffic):
    requests, horizon = _traffic
    plan = FaultPlan(
        (FaultEvent(SHARD_OUTAGE, 0.0, 2.0 * horizon + 1.0, shard=1),)
    )
    shielded = _session(
        serving_setup, 2, 1, faults=plan, resilience=ResilienceConfig()
    ).run(requests)
    stats = shielded.fault_stats
    counters = stats["counters"]
    # Every engine-served query lost shard 1: answered from shard 0,
    # marked degraded (partial), never failed.
    assert counters["failed_queries"] == 0
    assert counters["partial_queries"] >= 1
    assert shielded.report.availability == 1.0
    engine_records = [
        record for record in shielded.records if not record.cache_hit
    ]
    assert all(record.degraded for record in engine_records)
    assert all(record.items for record in engine_records)
    # Recall loss = dark/total shards per partial query, here 1/2 each.
    assert stats["recall_loss"] == pytest.approx(
        counters["partial_queries"] / 2.0
    )


def test_dark_shard_without_resilience_drops_requests(serving_setup, _traffic):
    requests, horizon = _traffic
    plan = FaultPlan(
        (FaultEvent(SHARD_OUTAGE, 0.0, 2.0 * horizon + 1.0, shard=1),)
    )
    bare = _session(serving_setup, 2, 1, faults=plan).run(requests)
    assert bare.fault_stats["counters"]["failed_queries"] >= 1
    assert bare.report.availability < 1.0
    assert bare.report.error_rate > 0.0


# -- empty-plan bit-identity (Hypothesis, arbitrary topologies) ------------


class _MatrixEngine:
    """Fake engine scoring items from a fixed (query x item) table."""

    #: Generous estimate so the wrapped fleet never "hedges" a healthy
    #: batch (fake latencies are ~1ns against a 1s expectation).
    expected_query_latency_s = 1.0

    def __init__(self, scores, query_index, item_subset, top_k):
        self.scores = scores
        self.query_index = query_index
        self.item_subset = np.asarray(item_subset)
        self.top_k = top_k

    def _one(self, query):
        row = self.scores[self.query_index[query]][self.item_subset]
        order = np.argsort(-row, kind="stable")[: self.top_k]
        return QueryResult(
            items=[int(self.item_subset[position]) for position in order],
            candidate_count=int(self.item_subset.size),
            cost=Cost(energy_pj=1.0, latency_ns=1.0),
            ledger=Ledger(),
            scores=[float(row[position]) for position in order],
        )

    def recommend_query(self, query):
        return self._one(query)

    def serve_batch(self, queries):
        results = [self._one(query) for query in queries]
        return BatchResult(
            results=results, cost=Cost(energy_pj=len(results), latency_ns=1.0)
        )

    def merge_cost(self, num_entries):
        return Cost(energy_pj=0.1, latency_ns=0.1)


def _fleet(scores, query_index, num_items, num_shards, replicas, top_k, spillover):
    from repro.serving.shard import partition_corpus

    shards = []
    for subset in partition_corpus(num_items, num_shards):
        members = [
            _MatrixEngine(scores, query_index, subset, top_k)
            for _ in range(replicas)
        ]
        if replicas == 1:
            shards.append(members[0])
        elif spillover:
            shards.append(
                ReplicaGroup(members, p95_target_s=1.0, spill_headroom=0.8)
            )
        else:
            shards.append(ReplicaGroup(members))
    return ShardedEngine(shards, top_k=top_k)


@given(
    num_items=st.integers(min_value=1, max_value=30),
    num_queries=st.integers(min_value=1, max_value=6),
    num_shards=st.integers(min_value=1, max_value=3),
    replicas=st.integers(min_value=1, max_value=3),
    top_k=st.integers(min_value=1, max_value=6),
    spillover=st.booleans(),
    rounds=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40)
def test_empty_plan_wrapped_fleet_is_bit_identical(
    num_items, num_queries, num_shards, replicas, top_k, spillover, rounds, seed
):
    """For ANY topology (shards x replicas, with or without cost-aware
    spillover routing), attaching the fault plane with an EMPTY plan and
    full resilience changes nothing: same items, same scores, same cost
    floats, round after round."""
    num_shards = min(num_shards, num_items)
    top_k = min(top_k, num_items)
    rng = np.random.default_rng(seed)
    scores = rng.permutation(num_queries * num_items).reshape(
        num_queries, num_items
    ).astype(np.float64)
    queries = [
        ServeQuery.make([index], [index], [index]) for index in range(num_queries)
    ]
    query_index = {query: index for index, query in enumerate(queries)}

    plain = _fleet(
        scores, query_index, num_items, num_shards, replicas, top_k, spillover
    )
    wrapped = _fleet(
        scores, query_index, num_items, num_shards, replicas, top_k, spillover
    )
    ctx = FaultContext(FaultPlan(()), resilience=ResilienceConfig())
    attach_faults(wrapped, ctx)

    for _ in range(rounds):
        expected = plain.serve_batch(queries)
        observed = wrapped.serve_batch(queries)
        for expected_result, observed_result in zip(
            expected.results, observed.results
        ):
            assert observed_result.items == expected_result.items
            assert observed_result.scores == expected_result.scores
            assert observed_result.cost.energy_pj == expected_result.cost.energy_pj
            assert observed_result.cost.latency_ns == expected_result.cost.latency_ns
            assert not observed_result.failed and not observed_result.partial
        assert observed.cost.energy_pj == expected.cost.energy_pj
        assert observed.cost.latency_ns == expected.cost.latency_ns
    # No recovery machinery fired, nothing was billed.
    assert not any(ctx.counters.values())
    assert ctx.retries_used == 0
    assert ctx.take_retry_cost().energy_pj == 0.0
    assert ctx.take_hedge_cost().energy_pj == 0.0


def test_empty_plan_session_is_bit_identical_end_to_end(
    serving_setup, _traffic
):
    """The acceptance form of the property: a real engine, a real session,
    resilience on over an empty plan -- reports, records and ledger are
    byte-identical to a session with no fault plane at all."""
    requests, _ = _traffic
    plain = _session(serving_setup, 2, 2).run(requests)
    wrapped = _session(
        serving_setup, 2, 2, faults=FaultPlan(()), resilience=ResilienceConfig()
    ).run(requests)
    assert repr(wrapped.report.as_dict()) == repr(plain.report.as_dict())
    assert wrapped.report.format_row() == plain.report.format_row()
    assert [record.items for record in wrapped.records] == [
        record.items for record in plain.records
    ]
    assert repr(
        {key: cost.energy_pj for key, cost in wrapped.ledger.by_category().items()}
    ) == repr(
        {key: cost.energy_pj for key, cost in plain.ledger.by_category().items()}
    )
    assert not any(wrapped.fault_stats["counters"].values())


# -- faulted runs are deterministic ---------------------------------------


def test_same_seed_same_plan_same_bytes(serving_setup, _traffic):
    """A chaos run is a pure function of (seed, plan): two independently
    constructed sessions replay byte-identically, recovery and all."""
    requests, horizon = _traffic
    plan = FaultPlan(
        (
            FaultEvent(CRASH, 0.0, 0.4 * horizon, shard=0, replica=0),
            FaultEvent(SHARD_OUTAGE, 0.5 * horizon, 0.8 * horizon, shard=1),
        )
    )

    def run():
        return _session(
            serving_setup, 2, 2, faults=plan, resilience=ResilienceConfig()
        ).run(requests)

    first, second = run(), run()
    assert repr(first.report.as_dict()) == repr(second.report.as_dict())
    assert repr(first.fault_stats) == repr(second.fault_stats)
    assert [record.items for record in first.records] == [
        record.items for record in second.records
    ]
    assert [
        (record.degraded, record.failed) for record in first.records
    ] == [(record.degraded, record.failed) for record in second.records]


def test_failed_query_result_never_shares_state():
    """Each dropped query gets its own result object: a shared mutable
    default here would let one failure path corrupt another's record."""
    from repro.serving.resilience import failed_query_result

    first, second = failed_query_result(), failed_query_result()
    assert first is not second
    assert first.items is not second.items
    assert first.ledger is not second.ledger
    first.items.append(42)
    assert second.items == []
    assert first.failed and second.failed


def test_fault_stats_iteration_order_is_pinned():
    """stats() must serialise identically whatever fired: counters in
    the fixed declaration order, breakers sorted by site -- dict-order
    drift here would break the byte-identical E-chaos artefact."""
    ctx = FaultContext(FaultPlan(()), resilience=ResilienceConfig())
    # Touch breakers in scrambled order; report order must not care.
    for site in ((1, 1), (0, 1), (1, 0), (0, 0)):
        ctx.breaker(*site)
    ctx.counters["hedges"] += 1  # a late counter fires first
    stats = ctx.stats()
    twin = FaultContext(FaultPlan(()), resilience=ResilienceConfig())
    for site in ((0, 0), (0, 1), (1, 0), (1, 1)):
        twin.breaker(*site)
    twin.counters["hedges"] += 1
    assert repr(stats) == repr(twin.stats())
    assert list(stats["breakers"]) == [
        "shard0/replica0",
        "shard0/replica1",
        "shard1/replica0",
        "shard1/replica1",
    ]


# -- the E-chaos artefact --------------------------------------------------


def test_chaos_study_invariants_and_determinism():
    """The CI smoke for the chaos PR: every E-chaos invariant holds (the
    pinned scenario keeps availability >= 99% at p95 <= 2x healthy while
    the unshielded arm drops requests, and resilience-on availability
    beats resilience-off on every rung), and the whole study -- notes,
    extras, floats -- reproduces byte-identically from its seed."""
    from repro.experiments.chaos_study import run_chaos_study

    report = run_chaos_study(seed=0)
    assert report.all_within(0.0), report.format()
    pinned = report.extras["scenario_reports"]["moderate"]
    off_avail = pinned["off"].availability
    on_avail = pinned["on"].availability
    assert on_avail >= 0.99
    assert off_avail < on_avail  # the unshielded arm really drops requests
    healthy_p95 = report.extras["healthy_report"].p95_ms
    assert pinned["on"].p95_ms <= 2.0 * healthy_p95
    rerun = run_chaos_study(seed=0)
    assert rerun.format() == report.format()
    assert repr(rerun.extras["fault_stats"]) == repr(report.extras["fault_stats"])
