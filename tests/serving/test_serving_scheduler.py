"""Tests for the micro-batching schedulers' admission control."""

import pytest

from repro.serving.scheduler import (
    AdaptiveBatchConfig,
    AdaptiveMicroBatchScheduler,
    Batch,
    MicroBatchConfig,
    MicroBatchScheduler,
)
from repro.serving.traffic import Request


def _requests(arrivals):
    return [
        Request(request_id=index, arrival_s=arrival, user=index)
        for index, arrival in enumerate(arrivals)
    ]


def _run(config, arrivals, service_s=0.0):
    scheduler = MicroBatchScheduler(config)
    return scheduler.run(_requests(arrivals), lambda batch: service_s)


def test_batch_size_cap_enforced():
    config = MicroBatchConfig(max_batch_size=3, max_wait_s=10.0)
    batches = _run(config, [0.0] * 10)
    assert [len(batch) for batch in batches] == [3, 3, 3, 1]


def test_full_batch_dispatches_immediately():
    config = MicroBatchConfig(max_batch_size=2, max_wait_s=1.0)
    batches = _run(config, [0.0, 0.1, 5.0])
    # The first batch fills at t=0.1 -- it must not wait out the window.
    assert batches[0].dispatch_s == pytest.approx(0.1)


def test_partial_batch_waits_full_window():
    config = MicroBatchConfig(max_batch_size=8, max_wait_s=0.5)
    batches = _run(config, [0.0, 0.2, 3.0])
    assert len(batches[0]) == 2  # 0.2 joins within the window
    assert batches[0].dispatch_s == pytest.approx(0.5)  # timer semantics
    assert batches[1].dispatch_s == pytest.approx(3.5)


def test_zero_wait_is_backlog_batching():
    config = MicroBatchConfig(max_batch_size=8, max_wait_s=0.0)
    batches = _run(config, [0.0, 0.0, 1.0], service_s=2.0)
    # First two are queued together at t=0; the third arrives while the
    # engine is busy (until t=2) and dispatches alone when it frees.
    assert [len(batch) for batch in batches] == [2, 1]
    assert batches[1].dispatch_s == pytest.approx(2.0)


def test_busy_engine_accumulates_backlog():
    config = MicroBatchConfig(max_batch_size=8, max_wait_s=0.0)
    batches = _run(config, [0.0, 0.5, 0.6, 0.7], service_s=1.0)
    # Engine busy [0, 1): the three later arrivals batch together at t=1.
    assert [len(batch) for batch in batches] == [1, 3]
    assert batches[1].open_s == pytest.approx(1.0)


def test_queue_delays_accounted():
    config = MicroBatchConfig(max_batch_size=2, max_wait_s=0.0)
    batches = _run(config, [0.0, 0.0, 0.0], service_s=1.0)
    assert batches[1].queue_delays_s[0] == pytest.approx(1.0)


def test_service_order_preserves_arrival_order():
    config = MicroBatchConfig(max_batch_size=2, max_wait_s=0.1)
    batches = _run(config, [0.3, 0.0, 0.2, 0.25])
    served = [request.request_id for batch in batches for request in batch.requests]
    assert served == [1, 2, 3, 0]  # sorted by arrival time


def test_negative_service_time_rejected():
    scheduler = MicroBatchScheduler(MicroBatchConfig())
    with pytest.raises(ValueError):
        scheduler.run(_requests([0.0]), lambda batch: -1.0)


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        MicroBatchConfig(max_batch_size=0)
    with pytest.raises(ValueError):
        MicroBatchConfig(max_wait_s=-0.1)


def test_batch_helpers():
    batch = Batch(requests=_requests([0.0, 0.1]), open_s=0.0, dispatch_s=0.2)
    assert len(batch) == 2
    assert batch.queue_delays_s == pytest.approx([0.2, 0.1])


def test_default_config_not_shared_between_schedulers():
    # Pins the mutable-default fix: a dataclass default instance in the
    # signature would couple every scheduler built without a config.
    first = MicroBatchScheduler()
    second = MicroBatchScheduler()
    assert first.config is not second.config
    assert first.config == MicroBatchConfig()


class TestAdaptiveScheduler:
    def test_initial_knobs_inside_bounds(self):
        config = AdaptiveBatchConfig(
            target_p95_s=0.01, min_batch_size=2, max_batch_size=32,
            min_wait_s=0.0001, max_wait_s=0.002,
        )
        scheduler = AdaptiveMicroBatchScheduler(config)
        assert config.min_batch_size <= scheduler.config.max_batch_size <= config.max_batch_size
        assert config.min_wait_s <= scheduler.config.max_wait_s <= config.max_wait_s

    def test_overshoot_shrinks_wait_and_grows_cap(self):
        config = AdaptiveBatchConfig(
            target_p95_s=0.01, window=1, max_batch_size=64, max_wait_s=0.01
        )
        scheduler = AdaptiveMicroBatchScheduler(config)
        wait_before = scheduler.config.max_wait_s
        cap_before = scheduler.config.max_batch_size
        # One saturating batch: service 10x the target blows the p95.
        scheduler.run(_requests([0.0]), lambda batch: 0.1)
        decision = scheduler.knob_history[-1]
        assert decision["p95_s"] > config.target_p95_s
        assert scheduler.config.max_wait_s <= wait_before
        assert scheduler.config.max_batch_size >= cap_before
        assert scheduler.config.max_batch_size <= config.max_batch_size

    def test_headroom_grows_wait_back(self):
        config = AdaptiveBatchConfig(
            target_p95_s=0.01, window=1, max_batch_size=64, max_wait_s=0.01
        )
        scheduler = AdaptiveMicroBatchScheduler(config)
        # Deep undershoot: near-instant service on an idle stream.
        scheduler.run(_requests([0.0]), lambda batch: 1e-6)
        wait_after_relax = scheduler.config.max_wait_s
        assert scheduler.knob_history[-1]["p95_s"] < config.target_p95_s
        assert wait_after_relax > 0.0  # a zero wait can recover
        assert wait_after_relax <= config.max_wait_s

    def test_knobs_never_leave_bounds_over_a_long_run(self):
        config = AdaptiveBatchConfig(
            target_p95_s=0.005, window=2, min_batch_size=2, max_batch_size=16,
            min_wait_s=0.0, max_wait_s=0.004,
        )
        scheduler = AdaptiveMicroBatchScheduler(config)
        arrivals = [0.001 * index for index in range(60)]
        # Alternate saturation and idleness to push the controller around.
        scheduler.run(
            _requests(arrivals),
            lambda batch: 0.05 if len(batch) % 2 else 1e-6,
        )
        assert scheduler.knob_history  # the controller actually ran
        for decision in scheduler.knob_history:
            assert config.min_batch_size <= decision["max_batch_size"] <= config.max_batch_size
            assert config.min_wait_s <= decision["max_wait_s"] <= config.max_wait_s

    def test_adaptive_config_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBatchConfig(target_p95_s=0.0)
        with pytest.raises(ValueError):
            AdaptiveBatchConfig(target_p95_s=0.01, window=0)
        with pytest.raises(ValueError):
            AdaptiveBatchConfig(target_p95_s=0.01, min_batch_size=8, max_batch_size=4)
        with pytest.raises(ValueError):
            AdaptiveBatchConfig(target_p95_s=0.01, min_wait_s=0.2, max_wait_s=0.1)
        with pytest.raises(ValueError):
            AdaptiveBatchConfig(target_p95_s=0.01, shrink=1.0)
        with pytest.raises(ValueError):
            AdaptiveBatchConfig(target_p95_s=0.01, grow=0.5)
        with pytest.raises(ValueError):
            AdaptiveBatchConfig(target_p95_s=0.01, relax_watermark=1.5)
