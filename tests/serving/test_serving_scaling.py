"""Tests for online scale events: mid-run re-deployment with migration
cost, cache invalidation, and the live scaling controllers."""

import pytest

from repro.serving.autoscaler import (
    OnlineScaler,
    OnlineScalerConfig,
    ScheduledScalePlan,
)
from repro.serving.cache import ServingCache
from repro.serving.scheduler import Batch, MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.traffic import PoissonTraffic


@pytest.fixture()
def scaling_setup(serving_setup):
    """(engine_factory, workload, requests, slo_s) for an overloaded run."""
    dataset, filtering, ranking, mapping, workload = serving_setup

    def factory(shards, replicas):
        return make_sharded_engine(
            "imars", filtering, ranking, shards, mapping=mapping,
            num_candidates=12, top_k=4, seed=0, replicas_per_shard=replicas,
        )

    probe = factory(1, 1)
    batch_one_s = probe.recommend_query(workload[0]).cost.latency_s
    rate = 6.0 / batch_one_s
    requests = PoissonTraffic(
        rate, num_users=dataset.num_users, seed=0, stream=5
    ).generate(120)
    return factory, workload, requests, 4.0 * batch_one_s


def _session(factory, workload, cache=None, scaler=None):
    return ServingSession(
        factory(1, 1),
        workload,
        scheduler=MicroBatchScheduler(
            MicroBatchConfig(max_batch_size=8, max_wait_s=0.0)
        ),
        cache=cache,
        label="scaling-test",
        engine_factory=factory,
        deployment=(1, 1),
        scaler=scaler,
    )


class TestScaleTo:
    def test_resharding_migrates_and_invalidates(self, scaling_setup):
        factory, workload, requests, _ = scaling_setup
        cache = ServingCache(capacity=16, rows_per_entry=4)
        session = _session(factory, workload, cache=cache)
        session.warm(range(12))
        resident = len(cache)
        assert resident > 0
        event = session.scale_to(2, 1)
        assert event.old_deployment == (1, 1)
        assert event.new_deployment == (2, 1)
        assert event.moved_rows > 0
        assert event.cost.energy_pj > 0.0
        # Roughly half the corpus moves 1 -> 2 shards; the Zipf head of
        # cached results touches moved items with near certainty.
        assert event.invalidated_entries > 0
        assert len(cache) == resident - event.invalidated_entries
        assert cache.invalidations == event.invalidated_entries
        assert session.deployment == (2, 1)

    def test_replica_add_copies_but_invalidates_nothing(self, scaling_setup):
        factory, workload, _, _ = scaling_setup
        cache = ServingCache(capacity=16, rows_per_entry=4)
        session = _session(factory, workload, cache=cache)
        session.warm(range(8))
        resident = len(cache)
        event = session.scale_to(1, 2)
        assert event.moved_rows > 0  # the new replica copies its slice
        assert event.invalidated_entries == 0  # no rows changed shard
        assert len(cache) == resident

    def test_unchanged_deployment_is_a_noop(self, scaling_setup):
        factory, workload, _, _ = scaling_setup
        session = _session(factory, workload)
        assert session.scale_to(1, 1) is None
        assert session.scale_events == []

    def test_pre_run_migration_charged_to_next_run(self, scaling_setup):
        factory, workload, requests, _ = scaling_setup
        session = _session(factory, workload)
        event = session.scale_to(2, 2)
        result = session.run(requests)
        migration = result.ledger.by_category().get("Migration")
        assert migration is not None
        assert migration.energy_pj == pytest.approx(event.cost.energy_pj)
        # The run that pays for the event also reports it.
        assert result.scale_events == [event]
        # Charged once: a second run starts with a clean slate.
        second = session.run(requests)
        assert "Migration" not in second.ledger.by_category()
        assert second.scale_events == []

    def test_requires_engine_factory(self, serving_setup):
        _, filtering, ranking, mapping, workload = serving_setup
        engine = make_sharded_engine(
            "imars", filtering, ranking, 1, mapping=mapping,
            num_candidates=12, top_k=4, seed=0,
        )
        session = ServingSession(engine, workload)
        with pytest.raises(ValueError):
            session.scale_to(2, 1)

    def test_validation(self, scaling_setup):
        factory, workload, _, _ = scaling_setup
        session = _session(factory, workload)
        with pytest.raises(ValueError):
            session.scale_to(0, 1)
        with pytest.raises(ValueError):
            ServingSession(
                factory(1, 1), workload, scaler=object()
            )  # scaler without factory


class TestOnlineScaler:
    def test_overload_triggers_scale_out_mid_run(self, scaling_setup):
        factory, workload, requests, slo_s = scaling_setup
        scaler = OnlineScaler(
            OnlineScalerConfig(
                p95_target_s=slo_s, window=16, cooldown=16,
                max_shards=2, max_replicas=2,
            )
        )
        session = _session(factory, workload, scaler=scaler)
        result = session.run(requests)
        assert result.scale_events
        assert scaler.decisions
        assert "Migration" in result.ledger.by_category()
        # Events stay within the controller's bounds.
        for event in result.scale_events:
            shards, replicas = event.new_deployment
            assert 1 <= shards <= 2 and 1 <= replicas <= 2

    def test_scaling_improves_the_tail(self, scaling_setup):
        factory, workload, requests, slo_s = scaling_setup
        frozen = _session(factory, workload).run(requests)
        scaled = _session(
            factory,
            workload,
            scaler=OnlineScaler(
                OnlineScalerConfig(
                    p95_target_s=slo_s, window=16, cooldown=16,
                    max_shards=2, max_replicas=2,
                )
            ),
        ).run(requests)
        assert scaled.report.p95_ms < frozen.report.p95_ms

    def test_run_is_deterministic(self, scaling_setup):
        factory, workload, requests, slo_s = scaling_setup

        def run_once():
            scaler = OnlineScaler(
                OnlineScalerConfig(p95_target_s=slo_s, window=16, cooldown=16)
            )
            return _session(factory, workload, scaler=scaler).run(requests)

        first, second = run_once(), run_once()
        assert [
            (event.time_s, event.new_deployment) for event in first.scale_events
        ] == [(event.time_s, event.new_deployment) for event in second.scale_events]
        assert [record.items for record in first.records] == [
            record.items for record in second.records
        ]

    def test_relaxed_load_scales_back_in(self):
        config = OnlineScalerConfig(
            p95_target_s=1.0, window=4, cooldown=0, relax_watermark=0.5
        )
        scaler = OnlineScaler(config)
        from repro.serving.slo import RequestRecord
        from repro.serving.traffic import Request

        def fake_batch(dispatch_s):
            return Batch(requests=[], open_s=dispatch_s, dispatch_s=dispatch_s)

        def fake_records(latency_s, count):
            return [
                RequestRecord(
                    request=Request(request_id=i, arrival_s=0.0, user=0),
                    completion_s=latency_s,
                    batch_size=1,
                    cache_hit=False,
                    items=(1,),
                )
                for i in range(count)
            ]

        decision = scaler.observe(fake_batch(0.0), 0.01, fake_records(0.01, 4), (2, 3))
        assert decision == (2, 2)  # replicas drop first (free)
        decision = scaler.observe(fake_batch(1.0), 0.01, fake_records(0.01, 4), (2, 1))
        assert decision == (1, 1)  # then shards

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OnlineScalerConfig(p95_target_s=0.0)
        with pytest.raises(ValueError):
            OnlineScalerConfig(p95_target_s=1.0, window=0)
        with pytest.raises(ValueError):
            OnlineScalerConfig(p95_target_s=1.0, min_shards=3, max_shards=2)
        with pytest.raises(ValueError):
            OnlineScalerConfig(p95_target_s=1.0, relax_watermark=1.0)


class TestScheduledScalePlan:
    def test_events_fire_at_their_times(self, scaling_setup):
        factory, workload, requests, _ = scaling_setup
        midpoint = requests[len(requests) // 2].arrival_s
        plan = ScheduledScalePlan([(midpoint, (2, 1))])
        result = _session(factory, workload, scaler=plan).run(requests)
        assert len(result.scale_events) == 1
        event = result.scale_events[0]
        assert event.new_deployment == (2, 1)
        assert event.time_s >= midpoint

    def test_latest_due_event_wins(self):
        plan = ScheduledScalePlan([(0.0, (2, 1)), (0.5, (2, 2))])
        batch = Batch(requests=[], open_s=1.0, dispatch_s=1.0)
        assert plan.observe(batch, 0.0, [], (1, 1)) == (2, 2)
        # Consumed: nothing further to fire.
        assert plan.observe(batch, 0.0, [], (2, 2)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduledScalePlan([(-1.0, (1, 1))])
        with pytest.raises(ValueError):
            ScheduledScalePlan([(0.0, (0, 1))])

    def test_empty_plan_is_legal_noop(self):
        # The shape a forecaster with nothing to do emits: legal, fires
        # nothing, forever.
        plan = ScheduledScalePlan([])
        batch = Batch(requests=[], open_s=1.0, dispatch_s=1.0)
        assert plan.observe(batch, 0.0, [], (1, 1)) is None
        assert plan.observe(batch, 0.0, [], (1, 1)) is None

    def test_empty_plan_bit_identical_to_no_scaler(self, scaling_setup):
        factory, workload, requests, _ = scaling_setup
        bare = _session(factory, workload).run(requests)
        planned = _session(
            factory, workload, scaler=ScheduledScalePlan([])
        ).run(requests)
        assert planned.scale_events == []
        assert len(bare.records) == len(planned.records)
        for left, right in zip(bare.records, planned.records):
            assert left.items == right.items
            assert left.completion_s == right.completion_s
            assert left.cache_hit == right.cache_hit
        assert (
            bare.ledger.total().energy_pj == planned.ledger.total().energy_pj
        )

    def test_duplicate_timestamps_deterministic_last_listed_wins(self):
        # A stable time sort keeps listing order among equal timestamps,
        # and the latest due event wins -- so the last-listed deployment
        # at a duplicated time is the one that fires.
        plan = ScheduledScalePlan([(0.5, (2, 1)), (0.5, (2, 2)), (0.5, (3, 1))])
        batch = Batch(requests=[], open_s=1.0, dispatch_s=1.0)
        assert plan.observe(batch, 0.0, [], (1, 1)) == (3, 1)
        assert plan.observe(batch, 0.0, [], (3, 1)) is None

    def test_out_of_order_events_sorted_by_time(self):
        plan = ScheduledScalePlan([(0.9, (2, 2)), (0.1, (2, 1))])
        assert [time_s for time_s, _ in plan.events] == [0.1, 0.9]
        early = Batch(requests=[], open_s=0.2, dispatch_s=0.2)
        assert plan.observe(early, 0.0, [], (1, 1)) == (2, 1)
        late = Batch(requests=[], open_s=1.0, dispatch_s=1.0)
        assert plan.observe(late, 0.0, [], (2, 1)) == (2, 2)

    def test_mid_batch_event_never_splits_ledger_rows(self, scaling_setup):
        # A plan time strictly inside a batch's occupancy fires after the
        # batch completes: the billed prefix up to the Migration row is
        # exactly the unplanned run's row sequence -- migration is a
        # whole appended row, never an interleaved split of a batch's
        # Cache/Serve rows.
        factory, workload, requests, _ = scaling_setup
        bare = _session(factory, workload).run(requests)
        first_serve = next(
            record for record in bare.records if not record.cache_hit
        )
        # Strictly inside the first served batch's service window.
        mid_batch_s = (
            first_serve.completion_s - 0.25 * (
                first_serve.completion_s - first_serve.request.arrival_s
            )
        )
        plan = ScheduledScalePlan([(mid_batch_s, (2, 1))])
        planned = _session(factory, workload, scaler=plan).run(requests)
        assert len(planned.scale_events) == 1
        bare_rows = list(bare.ledger)
        planned_rows = list(planned.ledger)
        migration_at = next(
            index for index, (category, _) in enumerate(planned_rows)
            if category == "Migration"
        )
        assert sum(
            1 for category, _ in planned_rows if category == "Migration"
        ) == 1
        assert planned_rows[:migration_at] == bare_rows[:migration_at]
