"""Shared fixtures for the serving subsystem tests: a tiny corpus."""

import pytest

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import ServeQuery
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)


@pytest.fixture(scope="package")
def serving_setup():
    """(dataset, filtering, ranking, mapping, workload) at test scale.

    Untrained models: serving behaviour (scheduling, sharding, caching,
    cost accounting) is independent of embedding quality.
    """
    dataset = MovieLensDataset(scale=0.03, seed=0)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=0,
    )
    filtering = YouTubeDNNFiltering(config)
    ranking = YouTubeDNNRanking(config)
    mapping = WorkloadMapping(movielens_table_specs())
    workload = [
        ServeQuery.make(
            dataset.histories[user],
            dataset.demographics[user],
            dataset.ranking_context[user],
        )
        for user in range(dataset.num_users)
    ]
    return dataset, filtering, ranking, mapping, workload
