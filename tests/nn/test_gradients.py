"""Finite-difference gradient checks for every layer and loss.

These are the correctness backbone of the NumPy nn substrate: each layer's
``backward`` is compared against central-difference numerical gradients of
a scalar objective.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    Embedding,
    EmbeddingBag,
    L2Normalize,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import BCEWithLogitsLoss, SampledSoftmaxLoss
from repro.nn.mlp import build_mlp

EPS = 1e-6
RTOL = 1e-5
ATOL = 1e-7


def _numeric_grad(f, array):
    """Central-difference gradient of scalar f w.r.t. array (in place)."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.shape[0]):
        original = flat[index]
        flat[index] = original + EPS
        upper = f()
        flat[index] = original - EPS
        lower = f()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * EPS)
    return grad


def _scalar_objective(outputs, seed=0):
    """A fixed random linear functional of the outputs (differentiable)."""
    weights = np.random.default_rng(seed).normal(size=outputs.shape)
    return float((outputs * weights).sum()), weights


class TestLinearGradients:
    def test_input_weight_bias_gradients(self):
        rng = np.random.default_rng(0)
        layer = Linear(5, 3, rng=rng)
        x = rng.normal(size=(4, 5))

        outputs = layer(x)
        _, weights = _scalar_objective(outputs)
        layer.zero_grad()
        grad_in = layer.backward(weights)

        def forward_loss():
            return float((layer(x) * weights).sum())

        np.testing.assert_allclose(
            grad_in, _numeric_grad(forward_loss, x), rtol=RTOL, atol=ATOL
        )
        layer.zero_grad()
        layer(x)
        layer.backward(weights)
        np.testing.assert_allclose(
            layer.weight.grad,
            _numeric_grad(forward_loss, layer.weight.data),
            rtol=RTOL,
            atol=ATOL,
        )
        layer.zero_grad()
        layer(x)
        layer.backward(weights)
        np.testing.assert_allclose(
            layer.bias.grad,
            _numeric_grad(forward_loss, layer.bias.data),
            rtol=RTOL,
            atol=ATOL,
        )

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2).backward(np.zeros((1, 2)))


@pytest.mark.parametrize(
    "layer_factory",
    [ReLU, Sigmoid, Tanh, L2Normalize],
    ids=["relu", "sigmoid", "tanh", "l2norm"],
)
def test_activation_gradients(layer_factory):
    rng = np.random.default_rng(1)
    layer = layer_factory()
    x = rng.normal(size=(3, 6)) + 0.05  # avoid ReLU kinks at exactly zero

    outputs = layer(x)
    _, weights = _scalar_objective(outputs, seed=2)
    grad_in = layer.backward(weights)

    def forward_loss():
        return float((layer(x) * weights).sum())

    np.testing.assert_allclose(
        grad_in, _numeric_grad(forward_loss, x), rtol=1e-4, atol=1e-6
    )


class TestEmbeddingGradients:
    def test_embedding_weight_gradient(self):
        rng = np.random.default_rng(3)
        table = Embedding(10, 4, rng=rng)
        indices = np.array([1, 3, 3, 7])

        outputs = table(indices)
        _, weights = _scalar_objective(outputs, seed=4)
        table.zero_grad()
        table.backward(weights)

        def forward_loss():
            return float((table(indices) * weights).sum())

        np.testing.assert_allclose(
            table.weight.grad,
            _numeric_grad(forward_loss, table.weight.data),
            rtol=RTOL,
            atol=ATOL,
        )

    def test_duplicate_indices_accumulate(self):
        table = Embedding(4, 2, rng=np.random.default_rng(0))
        outputs = table(np.array([2, 2]))
        table.backward(np.ones_like(outputs))
        assert np.allclose(table.weight.grad[2], [2.0, 2.0])

    def test_embedding_bag_gradient(self):
        rng = np.random.default_rng(5)
        bag = EmbeddingBag(8, 3, mode="mean", rng=rng)
        bags = [[0, 1, 2], [5], [], [7, 7]]

        outputs = bag(bags)
        _, weights = _scalar_objective(outputs, seed=6)
        bag.zero_grad()
        bag.backward(weights)

        def forward_loss():
            return float((bag(bags) * weights).sum())

        np.testing.assert_allclose(
            bag.weight.grad,
            _numeric_grad(forward_loss, bag.weight.data),
            rtol=RTOL,
            atol=ATOL,
        )


class TestLossGradients:
    def test_bce_gradient(self):
        rng = np.random.default_rng(7)
        logits = rng.normal(size=12)
        targets = rng.integers(0, 2, size=12).astype(np.float64)
        loss_fn = BCEWithLogitsLoss()
        loss_fn(logits, targets)
        analytic = loss_fn.backward()

        def forward_loss():
            return loss_fn.forward(logits, targets)

        np.testing.assert_allclose(
            analytic, _numeric_grad(forward_loss, logits), rtol=RTOL, atol=ATOL
        )

    def test_sampled_softmax_gradients(self):
        rng = np.random.default_rng(8)
        users = rng.normal(size=(3, 4))
        items = rng.normal(size=(3, 5, 4))
        loss_fn = SampledSoftmaxLoss(temperature=0.8)
        loss_fn(users, items)
        grad_users, grad_items = loss_fn.backward()

        def loss_of_users():
            return loss_fn.forward(users, items)

        np.testing.assert_allclose(
            grad_users, _numeric_grad(loss_of_users, users), rtol=1e-4, atol=1e-6
        )
        loss_fn(users, items)

        def loss_of_items():
            return loss_fn.forward(users, items)

        np.testing.assert_allclose(
            grad_items, _numeric_grad(loss_of_items, items), rtol=1e-4, atol=1e-6
        )


class TestMLPGradient:
    def test_full_stack_input_gradient(self):
        rng = np.random.default_rng(9)
        model = build_mlp(6, "8-4", head="none", rng=rng)
        x = rng.normal(size=(2, 6)) + 0.03

        outputs = model(x)
        _, weights = _scalar_objective(outputs, seed=10)
        grad_in = model.backward(weights)

        def forward_loss():
            return float((model(x) * weights).sum())

        np.testing.assert_allclose(
            grad_in, _numeric_grad(forward_loss, x), rtol=1e-4, atol=1e-6
        )
