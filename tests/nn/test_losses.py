"""Behavioural tests for the loss functions."""

import numpy as np
import pytest

from repro.nn.losses import BCEWithLogitsLoss, SampledSoftmaxLoss


class TestBCE:
    def test_perfect_predictions_near_zero_loss(self):
        loss_fn = BCEWithLogitsLoss()
        logits = np.array([100.0, -100.0])
        targets = np.array([1.0, 0.0])
        assert loss_fn(logits, targets) < 1e-6

    def test_worst_predictions_large_loss(self):
        loss_fn = BCEWithLogitsLoss()
        assert loss_fn(np.array([50.0]), np.array([0.0])) > 10.0

    def test_chance_logits_give_log2(self):
        loss_fn = BCEWithLogitsLoss()
        loss = loss_fn(np.zeros(8), np.array([0, 1] * 4, dtype=float))
        assert loss == pytest.approx(np.log(2.0))

    def test_no_overflow_for_extreme_logits(self):
        loss_fn = BCEWithLogitsLoss()
        assert np.isfinite(loss_fn(np.array([1e5, -1e5]), np.array([0.0, 1.0])))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss()(np.zeros(3), np.zeros(4))

    def test_targets_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss()(np.zeros(2), np.array([0.5, 1.5]))

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            BCEWithLogitsLoss().backward()


class TestSampledSoftmax:
    def test_loss_decreases_when_positive_scores_higher(self):
        loss_fn = SampledSoftmaxLoss()
        users = np.array([[1.0, 0.0]])
        good_items = np.array([[[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0]]])
        bad_items = np.array([[[-1.0, 0.0], [1.0, 0.0], [0.0, 1.0]]])
        assert loss_fn(users, good_items) < loss_fn(users, bad_items)

    def test_uniform_scores_give_log_k(self):
        loss_fn = SampledSoftmaxLoss()
        users = np.zeros((2, 3))
        items = np.zeros((2, 5, 3))
        assert loss_fn(users, items) == pytest.approx(np.log(5.0))

    def test_temperature_sharpens(self):
        users = np.array([[1.0, 0.0]])
        items = np.array([[[1.0, 0.0], [0.5, 0.0]]])
        cold = SampledSoftmaxLoss(temperature=0.1)(users, items)
        hot = SampledSoftmaxLoss(temperature=10.0)(users, items)
        assert cold < hot  # low temperature -> positive dominates

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            SampledSoftmaxLoss(temperature=0.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SampledSoftmaxLoss()(np.zeros((2, 3)), np.zeros((2, 4, 5)))

    def test_backward_shapes(self):
        loss_fn = SampledSoftmaxLoss()
        users = np.random.default_rng(0).normal(size=(4, 6))
        items = np.random.default_rng(1).normal(size=(4, 9, 6))
        loss_fn(users, items)
        grad_users, grad_items = loss_fn.backward()
        assert grad_users.shape == users.shape
        assert grad_items.shape == items.shape
