"""Behavioural tests for the nn layers."""

import numpy as np
import pytest

from repro.nn.layers import (
    Embedding,
    EmbeddingBag,
    L2Normalize,
    Linear,
    ReLU,
    Sigmoid,
)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3)
        assert layer(np.zeros((7, 5))).shape == (7, 3)

    def test_bias_optional(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert np.allclose(layer(np.zeros((1, 4))), 0.0)

    def test_wrong_input_width_rejected(self):
        with pytest.raises(ValueError):
            Linear(4, 2)(np.zeros((1, 3)))

    def test_glorot_initialisation_bounded(self):
        layer = Linear(100, 100, rng=np.random.default_rng(0))
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= limit

    def test_deterministic_given_rng(self):
        a = Linear(4, 4, rng=np.random.default_rng(3))
        b = Linear(4, 4, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestActivations:
    def test_relu_clamps_negatives(self):
        outputs = ReLU()(np.array([[-2.0, 0.0, 3.0]]))
        assert outputs.tolist() == [[0.0, 0.0, 3.0]]

    def test_sigmoid_range_and_midpoint(self):
        layer = Sigmoid()
        outputs = layer(np.array([[-100.0, 0.0, 100.0]]))
        assert outputs[0, 0] < 1e-6
        assert outputs[0, 1] == pytest.approx(0.5)
        assert outputs[0, 2] > 1.0 - 1e-6

    def test_sigmoid_no_overflow_on_extremes(self):
        outputs = Sigmoid()(np.array([[1e9, -1e9]]))
        assert np.isfinite(outputs).all()

    def test_l2normalize_unit_rows(self):
        layer = L2Normalize()
        outputs = layer(np.array([[3.0, 4.0], [0.5, 0.0]]))
        np.testing.assert_allclose(np.linalg.norm(outputs, axis=1), 1.0, rtol=1e-9)

    def test_l2normalize_handles_near_zero_rows(self):
        outputs = L2Normalize()(np.zeros((1, 4)))
        assert np.isfinite(outputs).all()


class TestEmbedding:
    def test_lookup_returns_rows(self):
        table = Embedding(5, 3, rng=np.random.default_rng(0))
        outputs = table(np.array([0, 4]))
        np.testing.assert_array_equal(outputs[0], table.weight.data[0])
        np.testing.assert_array_equal(outputs[1], table.weight.data[4])

    def test_2d_indices_preserve_shape(self):
        table = Embedding(10, 4)
        outputs = table(np.zeros((2, 3), dtype=np.int64))
        assert outputs.shape == (2, 3, 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            Embedding(5, 3)(np.array([5]))

    def test_float_indices_rejected(self):
        with pytest.raises(TypeError):
            Embedding(5, 3)(np.array([1.0]))


class TestEmbeddingBag:
    def test_sum_pooling(self):
        bag = EmbeddingBag(4, 2, mode="sum", rng=np.random.default_rng(0))
        outputs = bag([[0, 1]])
        expected = bag.weight.data[0] + bag.weight.data[1]
        np.testing.assert_allclose(outputs[0], expected)

    def test_mean_pooling(self):
        bag = EmbeddingBag(4, 2, mode="mean", rng=np.random.default_rng(0))
        outputs = bag([[0, 1, 2]])
        expected = bag.weight.data[:3].mean(axis=0)
        np.testing.assert_allclose(outputs[0], expected)

    def test_empty_bag_is_zero(self):
        bag = EmbeddingBag(4, 3)
        assert np.allclose(bag([[]])[0], 0.0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingBag(4, 2, mode="max")

    def test_out_of_range_index_rejected(self):
        with pytest.raises(IndexError):
            EmbeddingBag(4, 2)([[9]])
