"""Tests for the Module/Parameter/Sequential plumbing."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU
from repro.nn.module import Module, Parameter, Sequential


class TestParameter:
    def test_grad_initialised_to_zero(self):
        parameter = Parameter(np.ones((2, 3)))
        assert parameter.grad.shape == (2, 3)
        assert np.all(parameter.grad == 0.0)

    def test_zero_grad_resets(self):
        parameter = Parameter(np.ones(4))
        parameter.grad += 5.0
        parameter.zero_grad()
        assert np.all(parameter.grad == 0.0)


class TestRegistration:
    def test_parameters_collected_depth_first(self):
        model = Sequential([Linear(4, 3), ReLU(), Linear(3, 2)])
        parameters = model.parameters()
        assert len(parameters) == 4  # two weights + two biases

    def test_named_parameters_have_prefixes(self):
        model = Sequential([Linear(4, 3)])
        names = dict(model.named_parameters())
        assert "layer0.weight" in names
        assert "layer0.bias" in names

    def test_zero_grad_cascades(self):
        model = Sequential([Linear(4, 3)])
        for parameter in model.parameters():
            parameter.grad += 1.0
        model.zero_grad()
        assert all(np.all(p.grad == 0.0) for p in model.parameters())

    def test_train_eval_cascade(self):
        model = Sequential([Linear(2, 2), ReLU()])
        model.eval()
        assert not model.training
        assert not model.layers[0].training
        model.train()
        assert model.layers[1].training


class TestStateDict:
    def test_roundtrip(self):
        source = Sequential([Linear(4, 3, rng=np.random.default_rng(1))])
        target = Sequential([Linear(4, 3, rng=np.random.default_rng(2))])
        target.load_state_dict(source.state_dict())
        x = np.random.default_rng(0).normal(size=(2, 4))
        np.testing.assert_allclose(source(x), target(x))

    def test_missing_key_rejected(self):
        model = Sequential([Linear(4, 3)])
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_shape_mismatch_rejected(self):
        model = Sequential([Linear(4, 3)])
        state = model.state_dict()
        state["layer0.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_state_dict_is_a_copy(self):
        model = Sequential([Linear(2, 2)])
        state = model.state_dict()
        state["layer0.weight"][...] = 99.0
        assert not np.any(model.layers[0].weight.data == 99.0)


class TestSequential:
    def test_forward_chains_layers(self):
        model = Sequential([Linear(3, 3), ReLU()])
        x = np.array([[-1.0, 0.0, 1.0]])
        outputs = model(x)
        assert np.all(outputs >= 0.0)  # ReLU applied last

    def test_backward_reverses_order(self):
        model = Sequential([Linear(3, 2), ReLU()])
        outputs = model(np.ones((1, 3)))
        grad_in = model.backward(np.ones_like(outputs))
        assert grad_in.shape == (1, 3)

    def test_len_and_indexing(self):
        layers = [Linear(2, 2), ReLU()]
        model = Sequential(layers)
        assert len(model) == 2
        assert model[0] is layers[0]

    def test_base_module_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward(np.zeros(1))
