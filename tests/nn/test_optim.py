"""Tests for SGD and Adam optimisers."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam


def _quadratic_step(parameter):
    """Gradient of f(w) = 0.5 * ||w||^2 is w."""
    parameter.grad[...] = parameter.data


class TestSGD:
    def test_plain_step(self):
        parameter = Parameter(np.array([1.0, -2.0]))
        optimizer = SGD([parameter], lr=0.1)
        parameter.grad[...] = np.array([1.0, 1.0])
        optimizer.step()
        np.testing.assert_allclose(parameter.data, [0.9, -2.1])

    def test_converges_on_quadratic(self):
        parameter = Parameter(np.array([5.0, -3.0]))
        optimizer = SGD([parameter], lr=0.2)
        for _ in range(100):
            optimizer.zero_grad()
            _quadratic_step(parameter)
            optimizer.step()
        assert np.abs(parameter.data).max() < 1e-6

    def test_momentum_accelerates(self):
        def loss_after(momentum, steps=20):
            parameter = Parameter(np.array([10.0]))
            optimizer = SGD([parameter], lr=0.05, momentum=momentum)
            for _ in range(steps):
                optimizer.zero_grad()
                _quadratic_step(parameter)
                optimizer.step()
            return abs(float(parameter.data[0]))

        assert loss_after(0.9) < loss_after(0.0)

    def test_weight_decay_shrinks_weights(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        parameter.grad[...] = 0.0
        optimizer.step()
        assert parameter.data[0] == pytest.approx(0.95)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        parameter = Parameter(np.zeros(2))
        optimizer = SGD([parameter], lr=0.1)
        parameter.grad += 3.0
        optimizer.zero_grad()
        assert np.all(parameter.grad == 0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.array([5.0, -3.0, 0.5]))
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            _quadratic_step(parameter)
            optimizer.step()
        assert np.abs(parameter.data).max() < 1e-4

    def test_first_step_size_is_lr(self):
        """With bias correction, the first Adam step is ~lr in magnitude."""
        parameter = Parameter(np.array([10.0]))
        optimizer = Adam([parameter], lr=0.01)
        parameter.grad[...] = np.array([4.0])
        optimizer.step()
        assert parameter.data[0] == pytest.approx(10.0 - 0.01, rel=1e-3)

    def test_scale_invariance_of_step_direction(self):
        """Adam normalises by gradient magnitude: huge and small gradients
        produce comparable step sizes."""
        small = Parameter(np.array([1.0]))
        large = Parameter(np.array([1.0]))
        opt_small = Adam([small], lr=0.1)
        opt_large = Adam([large], lr=0.1)
        small.grad[...] = np.array([1e-4])
        large.grad[...] = np.array([1e4])
        opt_small.step()
        opt_large.step()
        assert abs(1.0 - small.data[0]) == pytest.approx(abs(1.0 - large.data[0]), rel=1e-2)

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_invalid_eps_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], eps=0.0)
