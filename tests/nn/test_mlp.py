"""Tests for the Table-I-style MLP builder."""

import numpy as np
import pytest

from repro.nn.layers import L2Normalize, Linear, ReLU, Sigmoid
from repro.nn.mlp import build_mlp, mlp_flops, parse_layer_spec


class TestParseSpec:
    def test_dash_notation(self):
        assert parse_layer_spec("128-64-32") == [128, 64, 32]

    def test_single_layer(self):
        assert parse_layer_spec("128-1") == [128, 1]

    def test_list_passthrough(self):
        assert parse_layer_spec([256, 64, 1]) == [256, 64, 1]

    def test_malformed_spec_rejected(self):
        with pytest.raises(ValueError):
            parse_layer_spec("128-abc")

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            parse_layer_spec("128-0")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_layer_spec([])


class TestBuildMLP:
    def test_paper_filtering_tower_structure(self):
        model = build_mlp(192, "128-64-32", head="l2norm")
        linears = [l for l in model.layers if isinstance(l, Linear)]
        assert [(l.in_features, l.out_features) for l in linears] == [
            (192, 128),
            (128, 64),
            (64, 32),
        ]
        assert isinstance(model.layers[-1], L2Normalize)

    def test_relu_between_hidden_layers_only(self):
        model = build_mlp(16, "8-4", head="none")
        kinds = [type(layer).__name__ for layer in model.layers]
        assert kinds == ["Linear", "ReLU", "Linear"]

    def test_sigmoid_head(self):
        model = build_mlp(16, "8-1", head="sigmoid")
        assert isinstance(model.layers[-1], Sigmoid)
        outputs = model(np.zeros((3, 16)))
        assert np.all((outputs >= 0.0) & (outputs <= 1.0))

    def test_unknown_head_rejected(self):
        with pytest.raises(ValueError):
            build_mlp(16, "8-1", head="softmax")

    def test_output_shape(self):
        model = build_mlp(10, "20-5")
        assert model(np.zeros((4, 10))).shape == (4, 5)


class TestFlops:
    def test_counts_macs_times_two(self):
        # 10 -> 20 -> 5: (10*20 + 20*5) * 2 = 600.
        assert mlp_flops(10, "20-5") == 600

    def test_paper_dlrm_bottom(self):
        expected = 2 * (13 * 256 + 256 * 128 + 128 * 32)
        assert mlp_flops(13, "256-128-32") == expected
