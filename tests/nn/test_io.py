"""Tests for model save/load."""

import numpy as np
import pytest

from repro.nn.io import load_module, save_module
from repro.nn.mlp import build_mlp
from repro.nn.module import Module


class TestRoundtrip:
    def test_save_load_preserves_outputs(self, tmp_path):
        source = build_mlp(8, "6-4", rng=np.random.default_rng(1))
        target = build_mlp(8, "6-4", rng=np.random.default_rng(2))
        path = save_module(source, tmp_path / "model")
        load_module(target, path)
        x = np.random.default_rng(0).normal(size=(3, 8))
        np.testing.assert_allclose(source(x), target(x))

    def test_npz_suffix_appended(self, tmp_path):
        model = build_mlp(4, "2")
        path = save_module(model, tmp_path / "weights")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_module(build_mlp(4, "2"), tmp_path / "nope.npz")

    def test_architecture_mismatch_rejected(self, tmp_path):
        path = save_module(build_mlp(4, "2"), tmp_path / "model")
        wrong = build_mlp(4, "3")
        with pytest.raises(ValueError):
            load_module(wrong, path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ValueError):
            load_module(build_mlp(4, "2"), path)

    def test_parameterless_module_rejected(self, tmp_path):
        class Empty(Module):
            def forward(self, inputs):
                return inputs

        with pytest.raises(ValueError):
            save_module(Empty(), tmp_path / "empty")

    def test_trained_model_roundtrip(self, tmp_path):
        """Persist a trained YouTubeDNN tower and serve from the copy."""
        from repro.models.youtube_dnn import YouTubeDNNConfig, YouTubeDNNFiltering

        config = YouTubeDNNConfig(
            num_items=50,
            demographic_cardinalities=(20, 3),
            filtering_spec="16-32",
            seed=0,
        )
        original = YouTubeDNNFiltering(config)
        rng = np.random.default_rng(0)
        histories = [list(rng.integers(0, 50, size=4)) for _ in range(20)]
        demographics = np.stack(
            [np.arange(20), rng.integers(0, 3, 20)], axis=1
        )
        positives = np.array([h[0] for h in histories])
        original.train_retrieval(histories, demographics, positives, epochs=2)

        path = save_module(original, tmp_path / "tower")
        restored = YouTubeDNNFiltering(config)
        load_module(restored, path)
        np.testing.assert_allclose(
            original.user_embedding(histories[:3], demographics[:3]),
            restored.user_embedding(histories[:3], demographics[:3]),
        )
