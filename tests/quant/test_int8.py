"""Tests for int8 quantisation."""

import numpy as np
import pytest

from repro.quant.int8 import (
    QuantizedTensor,
    dequantize,
    quantization_error,
    quantize_asymmetric,
    quantize_symmetric,
)


class TestSymmetric:
    def test_zero_maps_to_zero(self):
        tensor = quantize_symmetric(np.array([[0.0, 1.0, -1.0]]))
        assert tensor.data[0, 0] == 0

    def test_extremes_use_full_range(self):
        tensor = quantize_symmetric(np.array([[2.0, -2.0]]))
        assert tensor.data.max() == 127
        assert tensor.data.min() == -127

    def test_roundtrip_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0.0, 1.0, size=(50, 8))
        tensor = quantize_symmetric(values)
        step = np.abs(values).max() / 127.0
        assert np.abs(dequantize(tensor) - values).max() <= 0.5 * step + 1e-12

    def test_per_row_scales_independent(self):
        values = np.array([[1.0, -1.0], [100.0, -100.0]])
        tensor = quantize_symmetric(values, per_row=True)
        # Both rows use the full int8 range despite 100x magnitude gap.
        assert np.abs(tensor.data[0]).max() == 127
        assert np.abs(tensor.data[1]).max() == 127

    def test_per_row_needs_2d(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.zeros(4), per_row=True)

    def test_all_zero_input(self):
        tensor = quantize_symmetric(np.zeros((2, 3)))
        assert np.all(tensor.data == 0)
        assert np.allclose(dequantize(tensor), 0.0)

    def test_preserves_inner_product_structure(self):
        """The property behind the tiny int8-cosine accuracy gap (IV-B)."""
        rng = np.random.default_rng(1)
        table = rng.normal(0.0, 1.0, size=(100, 32))
        query = rng.normal(0.0, 1.0, size=32)
        exact = table @ query
        recovered = dequantize(quantize_symmetric(table, per_row=True)) @ query
        correlation = np.corrcoef(exact, recovered)[0, 1]
        assert correlation > 0.999


class TestAsymmetric:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(5.0, 9.0, size=(20, 4))  # strictly positive range
        tensor = quantize_asymmetric(values)
        step = (values.max() - values.min()) / 255.0
        assert np.abs(dequantize(tensor) - values).max() <= 0.75 * step + 1e-12

    def test_uses_full_signed_range(self):
        values = np.array([[10.0, 20.0]])
        tensor = quantize_asymmetric(values)
        assert tensor.data.min() == -128
        assert tensor.data.max() == 127

    def test_constant_input(self):
        tensor = quantize_asymmetric(np.full((2, 2), 7.0))
        assert np.allclose(dequantize(tensor), 7.0, atol=0.1)


class TestContainerAndMetrics:
    def test_container_rejects_non_int8(self):
        with pytest.raises(TypeError):
            QuantizedTensor(
                data=np.zeros((2, 2), dtype=np.int32),
                scale=np.ones(1),
                zero_point=np.zeros(1),
            )

    def test_dequantize_method_matches_function(self):
        tensor = quantize_symmetric(np.array([[1.0, 2.0]]))
        np.testing.assert_array_equal(tensor.dequantize(), dequantize(tensor))

    def test_error_metrics(self):
        values = np.random.default_rng(3).normal(size=(10, 10))
        tensor = quantize_symmetric(values)
        metrics = quantization_error(values, tensor)
        assert metrics["max_abs_error"] >= metrics["rmse"] >= 0.0
        assert metrics["cosine_fidelity"] > 0.99

    def test_error_metrics_shape_mismatch_rejected(self):
        tensor = quantize_symmetric(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            quantization_error(np.zeros((3, 3)), tensor)
