"""Repo-wide test configuration: deterministic Hypothesis profiles.

CI runs with ``HYPOTHESIS_PROFILE=ci``: derandomized (the example
sequence depends only on the test, not on a random seed), so a red
property failure always reproduces locally with the same command.
The default ``dev`` profile keeps random exploration for local runs.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
