"""Tests for the Fig. 2 stage profiler."""

import pytest

from repro.gpu.profiler import GPUStageProfiler


class TestBreakdowns:
    def test_filtering_fractions_near_paper(self):
        fractions = GPUStageProfiler().breakdowns()["filtering"]
        assert fractions["ET Lookup"] == pytest.approx(0.53, abs=0.05)
        assert fractions["DNN Stack"] == pytest.approx(0.36, abs=0.05)
        assert fractions["NNS"] == pytest.approx(0.11, abs=0.03)

    def test_ranking_fractions_near_paper(self):
        fractions = GPUStageProfiler().breakdowns()["ranking"]
        assert fractions["ET Lookup"] == pytest.approx(0.23, abs=0.05)
        assert fractions["DNN Stack"] == pytest.approx(0.65, abs=0.05)
        assert fractions["TopK"] == pytest.approx(0.12, abs=0.03)

    def test_fractions_sum_to_one(self):
        breakdowns = GPUStageProfiler().breakdowns()
        for stage in ("filtering", "ranking"):
            assert sum(breakdowns[stage].values()) == pytest.approx(1.0)

    def test_qualitative_shape(self):
        """ET dominates filtering; DNN dominates ranking; NNS/TopK minor."""
        breakdowns = GPUStageProfiler().breakdowns()
        filtering, ranking = breakdowns["filtering"], breakdowns["ranking"]
        assert filtering["ET Lookup"] == max(filtering.values())
        assert ranking["DNN Stack"] == max(ranking.values())
        assert filtering["NNS"] == min(filtering.values())
        assert ranking["TopK"] == min(ranking.values())

    def test_host_overhead_knob(self):
        """With zero host overhead the NNS kernel (13.6 us) dominates the
        filtering stage -- the raw-kernel view Table III implies."""
        profiler = GPUStageProfiler(host_per_op_us=0.0)
        fractions = profiler.breakdowns()["filtering"]
        assert fractions["NNS"] == max(fractions.values())

    def test_negative_host_overhead_rejected(self):
        with pytest.raises(ValueError):
            GPUStageProfiler(host_per_op_us=-1.0)

    def test_more_candidates_raise_dnn_share(self):
        few = GPUStageProfiler(candidates=24).breakdowns()["ranking"]
        many = GPUStageProfiler(candidates=96).breakdowns()["ranking"]
        assert many["DNN Stack"] > few["DNN Stack"]
