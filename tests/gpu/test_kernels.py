"""Tests for the calibrated GPU kernel cost models."""

import pytest

from repro.gpu.device import GPUDeviceModel, GTX1080
from repro.gpu.kernels import (
    gpu_dnn_stack,
    gpu_et_operation,
    gpu_nns_cosine,
    gpu_nns_lsh,
    gpu_topk,
)


class TestCalibrationAnchors:
    """The fitted model must land on the published GPU measurements."""

    def test_movielens_filtering_et(self):
        cost = gpu_et_operation(num_tables=6)
        assert cost.latency_us == pytest.approx(9.27, rel=0.02)
        assert cost.energy_uj == pytest.approx(203.97, rel=0.02)

    def test_movielens_ranking_et_held_out(self):
        """7 tables is NOT a fit anchor -- this validates the linear model."""
        cost = gpu_et_operation(num_tables=7)
        assert cost.latency_us == pytest.approx(9.60, rel=0.02)
        assert cost.energy_uj == pytest.approx(211.26, rel=0.02)

    def test_criteo_ranking_et(self):
        cost = gpu_et_operation(num_tables=26)
        assert cost.latency_us == pytest.approx(14.97, rel=0.02)
        assert cost.energy_uj == pytest.approx(329.34, rel=0.02)

    def test_nns_cosine_anchor(self):
        cost = gpu_nns_cosine(3000, 32)
        assert cost.latency_us == pytest.approx(13.6, rel=0.02)
        assert cost.energy_mj == pytest.approx(0.34, rel=0.02)

    def test_nns_lsh_anchor(self):
        cost = gpu_nns_lsh(3000, 256)
        assert cost.latency_us == pytest.approx(6.97, rel=0.02)
        assert cost.energy_mj == pytest.approx(0.15, rel=0.02)

    def test_et_power_is_22w(self):
        assert gpu_et_operation(6).power_w == pytest.approx(22.0, rel=0.01)


class TestScalingBehaviour:
    def test_et_latency_linear_in_tables(self):
        few = gpu_et_operation(5)
        many = gpu_et_operation(25)
        slope = (many.latency_us - few.latency_us) / 20.0
        assert slope == pytest.approx(GTX1080.et_per_table_us, rel=0.1)

    def test_nns_scales_with_items(self):
        assert gpu_nns_cosine(10000, 32).latency_ns > gpu_nns_cosine(1000, 32).latency_ns

    def test_lsh_cheaper_than_cosine_at_paper_point(self):
        """The motivation for LSH even before iMARS: fewer bytes scanned."""
        assert gpu_nns_lsh(3000, 256).latency_ns < gpu_nns_cosine(3000, 32).latency_ns

    def test_dnn_launch_overhead_dominates_small_mlps(self):
        cost = gpu_dnn_stack(128, "128-1")
        floor = 2 * GTX1080.kernel_launch_us
        assert cost.latency_us >= floor

    def test_dnn_flops_term_visible_for_huge_layers(self):
        small = gpu_dnn_stack(128, "128-1")
        huge = gpu_dnn_stack(8192, "8192-1")
        assert huge.latency_us > small.latency_us

    def test_topk_small(self):
        assert gpu_topk(100).latency_us < 1.0


class TestValidation:
    def test_zero_tables_rejected(self):
        with pytest.raises(ValueError):
            gpu_et_operation(0)

    def test_invalid_nns_args_rejected(self):
        with pytest.raises(ValueError):
            gpu_nns_cosine(0, 32)
        with pytest.raises(ValueError):
            gpu_nns_lsh(100, 0)

    def test_device_constant_validation(self):
        with pytest.raises(ValueError):
            GPUDeviceModel(peak_flops=0.0)
        with pytest.raises(ValueError):
            GPUDeviceModel(kernel_launch_us=-1.0)

    def test_device_helpers(self):
        assert GTX1080.gemm_time_us(8.9e12) == pytest.approx(1e6)
        assert GTX1080.transfer_time_us(320e9) == pytest.approx(1e6)
