"""Tests for the YouTubeDNN filtering + ranking models."""

import numpy as np
import pytest

from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)


def _small_config(num_items=60, num_users=40):
    return YouTubeDNNConfig(
        num_items=num_items,
        demographic_cardinalities=(num_users, 3, 7),
        ranking_extra_cardinalities=(5,),
        filtering_spec="24-32",
        ranking_spec="16-1",
        seed=0,
    )


class TestFilteringModel:
    def test_user_embedding_shape_and_norm(self):
        model = YouTubeDNNFiltering(_small_config())
        histories = [[0, 1, 2], [5]]
        demographics = np.array([[0, 1, 2], [3, 0, 1]])
        users = model.user_embedding(histories, demographics)
        assert users.shape == (2, 32)
        np.testing.assert_allclose(np.linalg.norm(users, axis=1), 1.0, rtol=1e-9)

    def test_empty_history_handled(self):
        model = YouTubeDNNFiltering(_small_config())
        users = model.user_embedding([[]], np.array([[0, 0, 0]]))
        assert np.isfinite(users).all()

    def test_batch_mismatch_rejected(self):
        model = YouTubeDNNFiltering(_small_config())
        with pytest.raises(ValueError):
            model.user_embedding([[0]], np.zeros((2, 3), dtype=np.int64))

    def test_wrong_demographic_count_rejected(self):
        model = YouTubeDNNFiltering(_small_config())
        with pytest.raises(ValueError):
            model.user_embedding([[0]], np.zeros((1, 5), dtype=np.int64))

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        config = _small_config()
        model = YouTubeDNNFiltering(config)
        num_users = 40
        histories = [list(rng.integers(0, 60, size=5)) for _ in range(num_users)]
        demographics = np.stack(
            [
                np.arange(num_users) % 40,
                rng.integers(0, 3, num_users),
                rng.integers(0, 7, num_users),
            ],
            axis=1,
        )
        # Predictable targets: the next watch is similar to the history head.
        positives = np.array([history[0] for history in histories])
        losses = model.train_retrieval(
            histories, demographics, positives, epochs=8, batch_size=16, seed=0
        )
        assert losses[-1] < losses[0]

    def test_item_table_shape_and_copy(self):
        model = YouTubeDNNFiltering(_small_config())
        table = model.item_table()
        assert table.shape == (60, 32)
        table[...] = 0.0
        assert not np.allclose(model.item_embeddings.weight.data, 0.0)


class TestRankingModel:
    def test_ctr_in_unit_interval(self):
        config = _small_config()
        ranking = YouTubeDNNRanking(config)
        rng = np.random.default_rng(1)
        users = rng.normal(size=(4, 32))
        items = rng.normal(size=(4, 32))
        context = np.zeros((4, 4), dtype=np.int64)
        ctrs = ranking.predict_ctr(users, items, context)
        assert ctrs.shape == (4,)
        assert np.all((ctrs > 0.0) & (ctrs < 1.0))

    def test_context_width_enforced(self):
        ranking = YouTubeDNNRanking(_small_config())
        with pytest.raises(ValueError):
            ranking.logits(np.zeros((1, 32)), np.zeros((1, 32)), np.zeros((1, 2), dtype=np.int64))

    def test_user_item_shape_mismatch_rejected(self):
        ranking = YouTubeDNNRanking(_small_config())
        with pytest.raises(ValueError):
            ranking.logits(
                np.zeros((2, 32)), np.zeros((3, 32)), np.zeros((2, 4), dtype=np.int64)
            )

    def test_ctr_training_reduces_loss(self):
        config = _small_config()
        ranking = YouTubeDNNRanking(config)
        rng = np.random.default_rng(2)
        n = 200
        users = rng.normal(size=(n, 32))
        items = rng.normal(size=(n, 32))
        context = np.zeros((n, 4), dtype=np.int64)
        # Learnable rule: click iff user.item interaction positive.
        clicks = ((users * items).sum(axis=1) > 0).astype(float)
        losses = ranking.train_ctr(
            users, items, context, clicks, epochs=10, batch_size=32, lr=0.02, seed=0
        )
        assert losses[-1] < 0.75 * losses[0]

    def test_trained_model_separates_classes(self):
        config = _small_config()
        ranking = YouTubeDNNRanking(config)
        rng = np.random.default_rng(3)
        n = 300
        users = rng.normal(size=(n, 32))
        items = rng.normal(size=(n, 32))
        context = np.zeros((n, 4), dtype=np.int64)
        clicks = ((users * items).sum(axis=1) > 0).astype(float)
        ranking.train_ctr(users, items, context, clicks, epochs=15, batch_size=32, lr=0.02)
        ctrs = ranking.predict_ctr(users, items, context)
        assert ctrs[clicks == 1].mean() > ctrs[clicks == 0].mean() + 0.1
