"""Tests for the DLRM model."""

import numpy as np
import pytest

from repro.metrics.accuracy import auc_score
from repro.models.dlrm import DLRM, DLRMConfig, interaction_features


def _small_config():
    return DLRMConfig(
        num_dense=4,
        categorical_cardinalities=(50, 50, 50),
        embedding_dim=8,
        bottom_spec="16-8",
        top_spec="8-1",
        seed=0,
    )


class TestInteraction:
    def test_output_dimension(self):
        # 1 dense + 3 sparse vectors -> C(4,2)=6 dots + 8-d dense = 14.
        dense = np.zeros((2, 8))
        sparse = np.zeros((2, 3, 8))
        assert interaction_features(dense, sparse).shape == (2, 14)

    def test_matches_manual_dots(self):
        rng = np.random.default_rng(0)
        dense = rng.normal(size=(1, 4))
        sparse = rng.normal(size=(1, 2, 4))
        features = interaction_features(dense, sparse)[0]
        v0, v1, v2 = dense[0], sparse[0, 0], sparse[0, 1]
        np.testing.assert_allclose(features[:4], v0)
        # tril(k=-1) pairs of [v0, v1, v2]: (1,0), (2,0), (2,1).
        np.testing.assert_allclose(
            features[4:], [v1 @ v0, v2 @ v0, v2 @ v1], rtol=1e-12
        )

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            interaction_features(np.zeros((1, 4)), np.zeros((1, 2, 5)))

    def test_config_interaction_dim(self):
        config = DLRMConfig()
        # 27 vectors -> 351 dots + 32 dense = 383.
        assert config.interaction_dim == 383


class TestDLRMForward:
    def test_logit_shape(self):
        model = DLRM(_small_config())
        dense = np.zeros((5, 4))
        sparse = np.zeros((5, 3), dtype=np.int64)
        assert model.logits(dense, sparse).shape == (5,)

    def test_ctr_in_unit_interval(self):
        model = DLRM(_small_config())
        rng = np.random.default_rng(1)
        ctrs = model.predict_ctr(
            rng.normal(size=(6, 4)), rng.integers(0, 50, size=(6, 3))
        )
        assert np.all((ctrs > 0.0) & (ctrs < 1.0))

    def test_wrong_dense_width_rejected(self):
        model = DLRM(_small_config())
        with pytest.raises(ValueError):
            model.logits(np.zeros((1, 7)), np.zeros((1, 3), dtype=np.int64))

    def test_wrong_sparse_width_rejected(self):
        model = DLRM(_small_config())
        with pytest.raises(ValueError):
            model.logits(np.zeros((1, 4)), np.zeros((1, 5), dtype=np.int64))

    def test_paper_geometry_constructs(self):
        """The full Table I DLRM (26 x 28000 tables) builds and runs."""
        model = DLRM(DLRMConfig())
        dense = np.zeros((2, 13))
        sparse = np.zeros((2, 26), dtype=np.int64)
        assert model.logits(dense, sparse).shape == (2,)


class TestDLRMTraining:
    def test_loss_decreases(self):
        model = DLRM(_small_config())
        rng = np.random.default_rng(2)
        n = 256
        dense = rng.normal(size=(n, 4))
        sparse = rng.integers(0, 50, size=(n, 3))
        clicks = (dense[:, 0] + 0.5 * dense[:, 1] > 0).astype(float)
        losses = model.train_ctr(dense, sparse, clicks, epochs=6, batch_size=64, lr=0.02)
        assert losses[-1] < 0.8 * losses[0]

    def test_learns_auc_above_chance(self):
        model = DLRM(_small_config())
        rng = np.random.default_rng(3)
        n = 400
        dense = rng.normal(size=(n, 4))
        sparse = rng.integers(0, 50, size=(n, 3))
        clicks = (dense[:, 0] > 0).astype(float)
        model.train_ctr(dense[:300], sparse[:300], clicks[:300], epochs=8, lr=0.02)
        scores = model.predict_ctr(dense[300:], sparse[300:])
        assert auc_score(clicks[300:], scores) > 0.8

    def test_embedding_tables_receive_gradients(self):
        model = DLRM(_small_config())
        rng = np.random.default_rng(4)
        dense = rng.normal(size=(32, 4))
        sparse = rng.integers(0, 50, size=(32, 3))
        clicks = rng.integers(0, 2, size=32).astype(float)
        before = [bag.weight.data.copy() for bag in model.embedding_bags]
        model.train_ctr(dense, sparse, clicks, epochs=1, batch_size=16, lr=0.05)
        changed = [
            not np.allclose(bag.weight.data, prev)
            for bag, prev in zip(model.embedding_bags, before)
        ]
        assert all(changed)


class TestMultiHotBags:
    def test_bags_match_single_index_path(self):
        """One-element bags must equal the (batch, num_sparse) index path."""
        model = DLRM(_small_config())
        rng = np.random.default_rng(5)
        dense = rng.normal(size=(4, 4))
        indices = rng.integers(0, 50, size=(4, 3))
        bags = [[[int(indices[s, f])] for f in range(3)] for s in range(4)]
        np.testing.assert_allclose(
            model.logits_bags(dense, bags), model.logits(dense, indices)
        )

    def test_multi_hot_pools_rows(self):
        model = DLRM(_small_config())
        dense = np.zeros((1, 4))
        single = model.logits_bags(dense, [[[1], [2], [3]]])
        multi = model.logits_bags(dense, [[[1, 4], [2], [3]]])
        assert not np.allclose(single, multi)  # pooling changed feature 0

    def test_empty_bag_allowed(self):
        """Missing categorical values pool to the zero vector."""
        model = DLRM(_small_config())
        dense = np.zeros((1, 4))
        logits = model.logits_bags(dense, [[[], [2], [3]]])
        assert np.isfinite(logits).all()

    def test_wrong_bag_count_rejected(self):
        model = DLRM(_small_config())
        with pytest.raises(ValueError):
            model.logits_bags(np.zeros((1, 4)), [[[1], [2]]])  # 2 bags, need 3
