"""Bench E-FORECAST -- reactive vs predictive vs oracle scaling."""

from repro.experiments import run_forecast_study


def test_forecast_study(benchmark, save_report):
    report = benchmark.pedantic(run_forecast_study, rounds=1, iterations=1)
    save_report("forecast_study", report.format())
    # Every forecast invariant (predictive strictly beats reactive on
    # violation windows, migration dollars within 25% of the oracle,
    # observation-only bit-identity, lead time >= migration latency,
    # bursty honesty, heterogeneous search placement) must hold exactly.
    assert report.all_within(0.0), report.format()

    # The arms are ordered the way the story claims: learning once then
    # scheduling beats reacting, and nothing beats the ground truth.
    violations = report.extras["violations"]
    assert (
        violations["oracle"]
        <= violations["predictive"]
        < violations["reactive"]
        <= violations["static"]
    )

    # Predictive paid for real migrations, and the plan actually fired.
    assert report.extras["migration_dollars"]["predictive"] > 0.0
    assert report.extras["arms"]["predictive"].scale_events
