"""Bench A5 -- area accounting of the provisioned fabric and workloads."""

from repro.experiments import run_area_study


def test_area_study(benchmark, save_report):
    report = benchmark(run_area_study)
    full = report.extras["full"]
    lines = [report.format(), "", "provisioned fabric area breakdown:"]
    for component, fraction in full.breakdown().items():
        lines.append(f"  {component:<18s} {fraction * 100:5.1f}%")
    lines.append(f"  total {full.total_mm2:.1f} mm^2")
    save_report("area_study", "\n".join(lines))
    assert report.all_within(0.01), report.format()
