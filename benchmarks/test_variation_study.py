"""Bench A3 -- process-variation robustness of the threshold NNS."""

from repro.experiments import run_variation_study


def test_variation_study(benchmark, save_report):
    report = benchmark.pedantic(run_variation_study, rounds=1, iterations=1)
    lines = [report.format(), "", "sigma / guard band -> HR (mean candidates):"]
    for point in report.extras["points"]:
        lines.append(
            f"  sigma={point.noise_sigma:4.1f} guard=+{point.guard_band} bits: "
            f"HR {point.hit_rate:.3f} ({point.mean_candidates:.1f} candidates)"
        )
    save_report("variation_study", "\n".join(lines))
    assert report.all_within(0.0), report.format()
