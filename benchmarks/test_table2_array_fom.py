"""Bench E3 -- regenerates Table II (array-level figures of merit)."""

from repro.energy.report import format_cost_table
from repro.experiments import run_table2


def test_table2_array_fom(benchmark, save_report):
    report = benchmark(run_table2)
    foms = report.extras["foms"]
    text = report.format() + "\n\n" + format_cost_table(
        "Table II (regenerated)", foms.as_table()
    )
    save_report("table2_array_fom", text)
    assert report.all_within(0.03), report.format()
