"""Bench E-CHAOS -- fault injection vs the self-healing serving fleet."""

from repro.experiments import run_chaos_study


def test_chaos_study(benchmark, save_report):
    report = benchmark.pedantic(run_chaos_study, rounds=1, iterations=1)
    save_report("chaos_study", report.format())
    # Every chaos invariant (empty-plan bit-identity, pinned-scenario
    # availability and tail bounds, resilience-off really dropping
    # requests, on >= off availability on every rung, partial answers
    # with accounted recall loss) must hold exactly.
    assert report.all_within(0.0), report.format()

    scenarios = report.extras["scenario_reports"]
    assert list(scenarios) == ["light", "moderate", "severe"]
    pinned = scenarios["moderate"]
    assert pinned["on"].availability >= 0.99
    assert pinned["off"].availability < pinned["on"].availability
    assert pinned["on"].p95_ms <= 2.0 * report.extras["healthy_report"].p95_ms

    # Recovery is real work: the shielded arm's ledger bills it.
    counters = report.extras["fault_stats"]["moderate"]["on"]["counters"]
    assert counters["retries"] > 0 or counters["hedges"] > 0
    assert counters["failed_queries"] == 0
