"""Bench E2 -- regenerates Table I (memory mapping) and validates exactness."""

from repro.experiments import run_table1


def test_table1_mapping(benchmark, save_report):
    report = benchmark(run_table1)
    save_report("table1_mapping", report.format())
    # Table I is a deterministic consequence of the mapping rules: exact.
    assert report.all_within(0.0), report.format()
