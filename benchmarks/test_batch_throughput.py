"""Bench A4 -- batching extension: throughput beyond the batch-1 protocol."""

from repro.experiments import run_batch_throughput


def test_batch_throughput(benchmark, save_report):
    report = benchmark(run_batch_throughput)
    lines = [report.format(), "", "batch size -> QPS:"]
    for point in report.extras["points"]:
        lines.append(
            f"  batch {point.batch_size:>4d}: GPU {point.gpu_qps:>12,.0f} q/s, "
            f"iMARS (pipelined) {point.imars_qps:>12,.0f} q/s"
        )
    save_report("batch_throughput", "\n".join(lines))
    by_name = {c.name: c for c in report.comparisons}
    assert by_name["GPU batch-1 QPS (paper protocol)"].within(0.10)
    flags = [c for c in report.comparisons if c.published == 1 and c.unit == ""]
    for comparison in flags:
        assert comparison.measured == 1, comparison.format_row()
