"""Bench A4 -- batching extension: throughput beyond the batch-1 protocol.

Alongside the analytic batching study, this module wall-clocks the
*simulator's own* serving hot path: the vectorised multi-query kernels
(`use_vector_kernels=True`) are benchmarked at Q in {1, 32, 256, 2048}
and pinned against the scalar reference loop.  The committed baseline
guards each kernel benchmark via ``compare_to_baseline.py``; the speedup
pin guarantees the >=5x win over the pre-vectorisation scalar path at
batch >= 256 can never silently regress.
"""

import time

import pytest

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import IMARSEngine, ServeQuery
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.experiments import run_batch_throughput
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)


@pytest.fixture(scope="module")
def serve_setup():
    """(vectorised engine, scalar-path engine, workload) at test scale."""
    dataset = MovieLensDataset(scale=0.03, seed=0)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=0,
    )
    filtering = YouTubeDNNFiltering(config)
    ranking = YouTubeDNNRanking(config)
    mapping = WorkloadMapping(movielens_table_specs())
    workload = [
        ServeQuery.make(
            dataset.histories[user],
            dataset.demographics[user],
            dataset.ranking_context[user],
        )
        for user in range(dataset.num_users)
    ]
    vectorised = IMARSEngine(filtering, ranking, mapping, seed=0)
    scalar = IMARSEngine(
        filtering, ranking, mapping, seed=0, use_vector_kernels=False
    )
    # The pre-vectorisation serving loop also scored through the full
    # concatenated feature width (no serving scorer): disabling the
    # scorer reproduces that path for the before/after speedup record.
    legacy = IMARSEngine(
        filtering, ranking, mapping, seed=0, use_vector_kernels=False
    )
    legacy._scorer = None
    return vectorised, scalar, legacy, workload


def _queries(workload, size):
    return (workload * (size // len(workload) + 1))[:size]


@pytest.mark.parametrize("batch_size", [1, 32, 256, 2048])
def test_serve_kernels(benchmark, serve_setup, batch_size):
    """Wall-clock of the vectorised serve path at each batch size."""
    vectorised, _, _, workload = serve_setup
    queries = _queries(workload, batch_size)
    benchmark.pedantic(
        vectorised.serve_batch, args=(queries,), rounds=3, warmup_rounds=1
    )


def test_vector_speedup_pin(serve_setup, save_report):
    """The vectorised kernels must hold >=5x over the scalar serving loop
    at batch >= 256 (the acceptance floor of the vectorisation PR)."""
    vectorised, scalar, legacy, workload = serve_setup

    def clock(engine, queries, repeats=3):
        engine.serve_batch(queries[: min(8, len(queries))])  # warm
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            engine.serve_batch(queries)
            best = min(best, time.perf_counter() - start)
        return best

    lines = ["vectorised serving kernels vs scalar reference (min of 3):"]
    ratios = {}
    for batch_size in (1, 32, 256, 2048):
        queries = _queries(workload, batch_size)
        vec_s = clock(vectorised, queries)
        ref_s = clock(scalar, queries)
        legacy_s = clock(legacy, queries)
        ratios[batch_size] = (vec_s, ref_s, legacy_s)
        lines.append(
            f"  Q={batch_size:>4d}: vec {vec_s * 1e3:8.2f} ms, "
            f"scalar {ref_s * 1e3:8.2f} ms ({ref_s / vec_s:4.1f}x), "
            f"legacy scalar {legacy_s * 1e3:8.2f} ms ({legacy_s / vec_s:4.1f}x)"
        )
    save_report("batch_kernel_speedup", "\n".join(lines))
    for batch_size in (256, 2048):
        vec_s, _, legacy_s = ratios[batch_size]
        assert legacy_s / vec_s >= 5.0, (
            f"vectorised path only {legacy_s / vec_s:.1f}x over the scalar "
            f"serving loop at Q={batch_size}"
        )


def test_batch_throughput(benchmark, save_report):
    report = benchmark(run_batch_throughput)
    lines = [report.format(), "", "batch size -> QPS:"]
    for point in report.extras["points"]:
        lines.append(
            f"  batch {point.batch_size:>4d}: GPU {point.gpu_qps:>12,.0f} q/s, "
            f"iMARS (pipelined) {point.imars_qps:>12,.0f} q/s"
        )
    save_report("batch_throughput", "\n".join(lines))
    by_name = {c.name: c for c in report.comparisons}
    assert by_name["GPU batch-1 QPS (paper protocol)"].within(0.10)
    flags = [c for c in report.comparisons if c.published == 1 and c.unit == ""]
    for comparison in flags:
        assert comparison.measured == 1, comparison.format_row()
