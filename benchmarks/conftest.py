"""Shared benchmark fixtures: persist every regenerated artefact to disk."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    """Directory where each bench writes its regenerated table/figure."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir):
    """Callable: save_report(name, text) -> path of the written artefact."""

    def _save(name: str, text: str):
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
