"""Bench A8 -- trace-driven ET access locality."""

import numpy as np

from repro.experiments import run_trace_locality


def test_trace_locality(benchmark, save_report):
    report = benchmark.pedantic(run_trace_locality, rounds=1, iterations=1)
    trace = report.extras["trace"]
    item_counts = trace.cma_accesses["item"]
    lines = [report.format(), "", "ItET per-CMA access shares:"]
    total = item_counts.sum()
    for index, count in enumerate(item_counts):
        bar = "#" * int(np.round(40 * count / total))
        lines.append(f"  CMA {index:>2d}: {count / total * 100:5.1f}% {bar}")
    save_report("trace_locality", "\n".join(lines))
    assert report.all_within(0.0), report.format()
