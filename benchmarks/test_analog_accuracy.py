"""Bench A6 -- crossbar non-ideality ablation (analog CTR accuracy)."""

from repro.experiments import run_analog_accuracy


def test_analog_accuracy(benchmark, save_report):
    report = benchmark.pedantic(run_analog_accuracy, rounds=1, iterations=1)
    lines = [report.format(), "", "(sigma, ADC bits) -> AUC:"]
    for point in report.extras["points"]:
        lines.append(
            f"  sigma={point.conductance_sigma:5.2f} adc={point.adc_bits}b: "
            f"AUC {point.auc:.4f}"
        )
    save_report("analog_accuracy", "\n".join(lines))
    assert report.all_within(0.0), report.format()
