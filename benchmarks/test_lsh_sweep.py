"""Bench A2 -- LSH signature-length ablation."""

from repro.experiments import run_lsh_sweep


def test_lsh_sweep(benchmark, save_report):
    report = benchmark.pedantic(run_lsh_sweep, rounds=1, iterations=1)
    lines = [report.format(), "", "signature bits vs retrieval quality:"]
    for point in report.extras["points"]:
        lines.append(
            f"  {point.signature_bits:>4d} bits: HR {point.hamming_hit_rate:.3f}, "
            f"cosine agreement {point.cosine_agreement:.3f}, "
            f"{point.signature_cmas_per_1k_items} sig CMAs / 1k items"
        )
    save_report("lsh_sweep", "\n".join(lines))
    assert report.all_within(0.05), report.format()
