"""Bench E6 -- regenerates the Sec. IV-C2 NNS comparison."""

from repro.experiments import run_nns_comparison


def test_nns_comparison(benchmark, save_report):
    report = benchmark(run_nns_comparison)
    save_report("nns_comparison", report.format())
    by_name = {c.name: c for c in report.comparisons}
    # GPU rows are calibrated anchors.
    assert by_name["GPU cosine latency"].within(0.02)
    assert by_name["GPU cosine energy"].within(0.02)
    assert by_name["GPU LSH latency"].within(0.02)
    assert by_name["GPU LSH energy"].within(0.02)
    # iMARS latency improvement lands on the published order (3.8e4x).
    assert by_name["iMARS latency improvement over GPU LSH"].within(0.15)
    # Energy improvement: shape target of >= 4 orders of magnitude
    # (our dynamic-only accounting exceeds the published 2.8e4x; see
    # EXPERIMENTS.md).
    assert by_name["iMARS energy improvement over GPU LSH"].measured > 1e4
