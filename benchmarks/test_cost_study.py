"""Bench E-COST -- eager/lazy/hybrid dollar frontier + workload analyzer."""

from repro.experiments import run_cost_study


def test_cost_study(benchmark, save_report):
    report = benchmark.pedantic(run_cost_study, rounds=1, iterations=1)
    save_report("cost_study", report.format())
    # Every cost invariant (hybrid <= max(eager, lazy) on both traces,
    # bit-stable dollar totals, report column == ledger total, off-peak
    # Warm-up billing, repetition-aware bypass) must hold exactly.
    assert report.all_within(0.0), report.format()

    # The analyzer reads the traces correctly: the smooth diurnal trace
    # can be precomputed around, the MMPP spikes cannot.
    assert report.extras["recommendations"] == {
        "diurnal": "eager",
        "bursty": "hybrid",
    }

    # The picked models actually pay for their strategies: eager bills
    # discounted Warm-up rows, hybrid's cache refuses one-off fills.
    outcomes = report.extras["outcomes"]
    eager_bill = outcomes["diurnal"]["eager"].result.price_ledger.by_category()
    assert eager_bill.get("Warm-up", 0.0) > 0.0
    assert outcomes["bursty"]["hybrid"].result.cache_stats["bypassed"] > 0
