"""Bench E-SERVE -- online serving study (traffic, sharding, caching)."""

from repro.experiments import run_serving_study


def test_serving_study(benchmark, save_report):
    report = benchmark.pedantic(run_serving_study, rounds=1, iterations=1)
    save_report("serving_study", report.format())
    # Every serving invariant (cache identity, iMARS tail advantage,
    # sharding latency cut, cache energy saving) must hold exactly.
    assert report.all_within(0.0), report.format()

    grid = report.extras["grid"]
    # The full grid ran: 2 engines x 4 patterns x 2 shard counts.
    assert len(grid) == 16
    for slo in grid.values():
        assert slo.p50_ms <= slo.p95_ms <= slo.p99_ms <= slo.max_ms
        assert slo.num_requests == 160
        assert slo.energy_per_request_uj > 0.0

    ablation = report.extras["cache_ablation"]
    assert ablation["with"].cache_hit_rate > 0.3
    assert ablation["without"].cache_hit_rate == 0.0
