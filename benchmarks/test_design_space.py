"""Bench A1 -- design-space ablations (fan-ins, bus width)."""

from repro.experiments import run_design_space


def _format_points(title, points):
    lines = [title]
    lines.append(
        f"  {'value':>6s} {'latency (ns)':>14s} {'energy (pJ)':>13s} {'area proxy':>12s}"
    )
    for point in points:
        lines.append(
            f"  {point.value:>6d} {point.latency_ns:>14.1f} "
            f"{point.energy_pj:>13.1f} {point.area_proxy:>12.0f}"
        )
    return "\n".join(lines)


def test_design_space(benchmark, save_report):
    report = benchmark(run_design_space)
    text = "\n\n".join(
        [
            report.format(),
            _format_points(
                "Intra-bank adder-tree fan-in sweep (Criteo ET op)",
                report.extras["intra_bank"],
            ),
            _format_points(
                "Intra-mat fan-in (C) sweep (one tree add)",
                report.extras["intra_mat"],
            ),
            _format_points(
                "RSC bus width sweep (26-bank gather)", report.extras["rsc"]
            ),
        ]
    )
    save_report("design_space", text)
    assert report.all_within(0.0), report.format()
