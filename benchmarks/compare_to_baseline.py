"""Perf-regression gate: compare a pytest-benchmark JSON run to a baseline.

Usage::

    python -m pytest benchmarks/test_serving_study.py ... \
        --benchmark-json bench.json
    python benchmarks/compare_to_baseline.py bench.json \
        benchmarks/baseline/serving_benchmarks.json [--tolerance 0.25] \
        [--normalize]

Each benchmark's wall-clock is compared against the committed baseline;
any benchmark slower by more than ``--tolerance`` (default 25%) fails
the gate, as does a benchmark that disappeared from the run (a silently
shrinking gate is a broken gate).  New benchmarks missing from the
baseline are reported and pass -- regenerate the baseline to start
guarding them.  The compared statistic is each benchmark's *minimum*
round time: the minimum is the estimator least contaminated by
scheduler noise on shared runners (for the single-round study benches
mean, median and min coincide anyway).

``--normalize`` divides every ratio by the *median* current/baseline
ratio across the shared benchmarks before applying the tolerance.  CI
runners and developer machines differ in raw speed by far more than any
real regression; the median ratio estimates the host-speed factor
(robust to a minority of genuinely regressed benchmarks), so the gate
catches a benchmark that slowed down *relative to the suite* rather
than punishing every machine slower than the one that recorded the
baseline.  A uniform slowdown of the whole suite is invisible in this
mode -- that is the deliberate trade for a committed cross-machine
baseline.

Regenerate the baseline (on any machine, thanks to ``--normalize``)::

    python -m pytest <the gated benchmarks> --benchmark-json \
        benchmarks/baseline/serving_benchmarks.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
from typing import Dict


def load_times(path: pathlib.Path) -> Dict[str, float]:
    """Map benchmark fullname -> min seconds from a pytest-benchmark JSON."""
    payload = json.loads(path.read_text())
    times = {}
    for bench in payload.get("benchmarks", []):
        times[bench["fullname"]] = float(bench["stats"]["min"])
    if not times:
        raise SystemExit(f"no benchmarks found in {path}")
    return times


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on wall-clock regressions vs a committed baseline."
    )
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown per benchmark (default 0.25)",
    )
    parser.add_argument(
        "--normalize",
        action="store_true",
        help="divide out the median host-speed ratio before comparing",
    )
    args = parser.parse_args(argv)
    if args.tolerance <= 0.0:
        raise SystemExit("tolerance must be positive")

    current = load_times(args.current)
    baseline = load_times(args.baseline)

    shared = sorted(set(current) & set(baseline))
    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))
    if missing:
        for name in missing:
            print(f"MISSING  {name}: in the baseline but not in this run")
        print(f"\n{len(missing)} gated benchmark(s) did not run -- failing.")
        return 1
    if not shared:
        raise SystemExit("no overlapping benchmarks between run and baseline")

    host_factor = 1.0
    if args.normalize:
        host_factor = statistics.median(
            current[name] / baseline[name] for name in shared
        )
        print(f"host-speed factor (median ratio): {host_factor:.3f}x\n")

    regressions = []
    for name in shared:
        ratio = current[name] / baseline[name] / host_factor
        verdict = "ok"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 - args.tolerance:
            verdict = "improved (consider refreshing the baseline)"
        print(
            f"{name}\n    baseline={baseline[name] * 1e3:9.3f}ms "
            f"current={current[name] * 1e3:9.3f}ms "
            f"normalized-ratio={ratio:6.3f}  {verdict}"
        )
    for name in new:
        print(f"{name}\n    NEW (not in baseline -- regenerate to guard it)")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{args.tolerance:.0%}: " + ", ".join(regressions)
        )
        return 1
    print(f"\nall {len(shared)} gated benchmarks within {args.tolerance:.0%}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
