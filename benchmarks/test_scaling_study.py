"""Bench A9 -- ET-operation scaling curves."""

from repro.experiments import run_scaling_study


def _series(title, points, unit):
    lines = [title]
    for point in points:
        lines.append(
            f"  {point.value:>6d} {unit}: {point.latency_ns:>8.1f} ns, "
            f"{point.energy_pj:>9.1f} pJ"
        )
    return "\n".join(lines)


def test_scaling_study(benchmark, save_report):
    report = benchmark(run_scaling_study)
    text = "\n\n".join(
        [
            report.format(),
            _series("pooling factor sweep:", report.extras["pooling"], "rows"),
            _series("active-bank sweep:", report.extras["banks"], "banks"),
            _series("table-size sweep:", report.extras["table_size"], "entries"),
        ]
    )
    save_report("scaling_study", text)
    assert report.all_within(0.02), report.format()
