"""Bench E4 -- regenerates the Sec. IV-B accuracy study (trains a model)."""

from repro.experiments import run_accuracy_study


def test_accuracy_study(benchmark, save_report):
    # pytest-benchmark re-runs the callable; keep each run modest.
    report = benchmark.pedantic(run_accuracy_study, rounds=1, iterations=1)
    save_report("accuracy_study", report.format())
    result = report.extras["result"]
    # The reproduction target is the ordering + gap structure.
    assert result.ordering_holds(), result.hit_rates
    assert result.distance_gap >= result.quantisation_gap >= 0.0
    for name, value in result.hit_rates.items():
        assert 0.15 < value < 0.40, (name, value)
