"""Bench the telemetry plane: full tracing must cost <10% wall-clock.

Two arms, identical sessions (sharded iMARS engine, micro-batching,
TinyLFU cache) over the same bursty request stream: one with a fully
enabled :class:`~repro.obs.Telemetry` (``sample_every=1`` -- every
batch traced, every metric recorded), one with none.  The pin is the
ISSUE's acceptance bound: traced wall-clock within 10% of untraced.

A single 15ms run sits near the host's timer-noise floor, so the
estimator is built for robustness rather than a raw best-of: rounds
interleave the arms (a noisy neighbour inflates both alike), each arm
keeps its own engine (EWMA warm-up is symmetric), the first round is
discarded as warm-up, and each arm is summarised by the sum of its
fastest half (a trimmed sum converges far faster than a single min on
a machine with slow epochs).  If the first measurement still exceeds
the bound, one re-measure at double the rounds must confirm it --
a perf pin in the tier-1 suite must not flake on one bad scheduling
quantum.

``test_traced_serving_session`` additionally lands the traced run in
the perf-regression baseline, so a future telemetry change that slows
the serve path shows up in the committed gate, not just in this
relative pin.
"""

import time

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import ServeQuery
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.obs import Telemetry
from repro.serving.cache import ServingCache, TinyLFUAdmission
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.traffic import BurstyTraffic

SCALE = 0.03
NUM_REQUESTS = 150
ROUNDS = 10
OVERHEAD_BOUND = 0.10  # the ISSUE's acceptance pin


def _build_workload(seed=0):
    dataset = MovieLensDataset(scale=SCALE, seed=seed)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=seed,
    )
    filtering = YouTubeDNNFiltering(config)
    ranking = YouTubeDNNRanking(config)
    workload = [
        ServeQuery.make(
            dataset.histories[user],
            dataset.demographics[user],
            dataset.ranking_context[user],
        )
        for user in range(dataset.num_users)
    ]

    def make_engine():
        return make_sharded_engine(
            "imars",
            filtering,
            ranking,
            2,
            mapping=WorkloadMapping(movielens_table_specs()),
            num_candidates=24,
            top_k=5,
            seed=seed,
            replicas_per_shard=1,
        )

    probe = make_engine()
    rate_qps = 16.0 / probe.serve_batch(workload[:16]).cost.latency_s
    requests = BurstyTraffic(
        calm_qps=rate_qps,
        burst_qps=3.0 * rate_qps,
        num_users=dataset.num_users,
        mean_calm_s=15.0 / rate_qps,
        mean_burst_s=15.0 / rate_qps,
        seed=seed,
        stream=11,
    ).generate(NUM_REQUESTS)
    return dataset, make_engine, workload, requests


def _timed_run(engine, dataset, workload, requests, telemetry):
    session = ServingSession(
        engine,
        workload,
        scheduler=MicroBatchScheduler(MicroBatchConfig(max_batch_size=16)),
        cache=ServingCache(
            capacity=max(4, dataset.num_users // 4),
            rows_per_entry=5,
            admission=TinyLFUAdmission(seed=0),
        ),
        label="overhead bench",
        telemetry=telemetry,
    )
    start = time.perf_counter()
    session.run(requests)
    return time.perf_counter() - start


def _measure_overhead(dataset, make_engine, workload, requests, rounds):
    """Trimmed-sum overhead estimate over interleaved rounds."""
    traced_engine = make_engine()
    untraced_engine = make_engine()
    traced_times, untraced_times = [], []
    for _ in range(rounds):
        untraced_times.append(
            _timed_run(untraced_engine, dataset, workload, requests, None)
        )
        traced_times.append(
            _timed_run(traced_engine, dataset, workload, requests, Telemetry())
        )
    # Drop the warm-up round, then sum each arm's fastest half.
    keep = (rounds - 1) // 2
    traced_s = sum(sorted(traced_times[1:])[:keep])
    untraced_s = sum(sorted(untraced_times[1:])[:keep])
    return traced_s / untraced_s - 1.0, traced_s, untraced_s


def test_tracing_overhead_under_ten_percent():
    dataset, make_engine, workload, requests = _build_workload()
    overhead, traced_s, untraced_s = _measure_overhead(
        dataset, make_engine, workload, requests, ROUNDS
    )
    if overhead > OVERHEAD_BOUND:
        # Confirm before failing: one bad scheduling quantum must not
        # fail the tier-1 suite, a real regression will reproduce.
        overhead, traced_s, untraced_s = _measure_overhead(
            dataset, make_engine, workload, requests, 2 * ROUNDS
        )
    assert overhead <= OVERHEAD_BOUND, (
        f"full tracing costs {overhead:+.1%} wall-clock "
        f"(traced {traced_s * 1e3:.2f}ms vs untraced "
        f"{untraced_s * 1e3:.2f}ms, trimmed sums over "
        f"{2 * ROUNDS} interleaved rounds); the pin is <{OVERHEAD_BOUND:.0%}"
    )


def test_traced_serving_session(benchmark):
    dataset, make_engine, workload, requests = _build_workload()
    engine = make_engine()
    benchmark.pedantic(
        lambda: _timed_run(engine, dataset, workload, requests, Telemetry()),
        rounds=3,
        iterations=1,
    )
