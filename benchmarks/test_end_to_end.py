"""Bench E7 -- regenerates the Sec. IV-C3 end-to-end comparison."""

from repro.energy.report import format_comparison
from repro.experiments import run_end_to_end
from repro.metrics.throughput import queries_per_second


def test_end_to_end(benchmark, save_report):
    report = benchmark(run_end_to_end)
    movielens = report.extras["movielens"]
    criteo = report.extras["criteo"]
    rows = [
        ("movielens e2e", movielens.gpu, movielens.imars),
        ("criteo e2e", criteo.gpu, criteo.imars),
    ]
    text = "\n\n".join(
        [
            report.format(),
            format_comparison("End-to-end (regenerated)", rows),
            f"MovieLens QPS: GPU {queries_per_second(movielens.gpu):.0f}, "
            f"iMARS {queries_per_second(movielens.imars):.0f}",
        ]
    )
    save_report("end_to_end", text)

    # Shape targets: iMARS wins by the published orders of magnitude.
    assert 12.0 < movielens.speedup < 22.0  # published 16.8x
    assert 300.0 < movielens.energy_reduction < 1500.0  # published 713x
    assert 8.0 < criteo.speedup < 18.0  # published 13.2x
    assert 40.0 < criteo.energy_reduction < 80.0  # published 57.8x
    # GPU QPS is a calibration anchor (published 1311 q/s).
    assert abs(queries_per_second(movielens.gpu) - 1311.0) / 1311.0 < 0.10
