"""Bench E-AUTOSCALE -- closed-loop autoscaler (shards x replicas)."""

from repro.experiments import run_autoscale_study


def test_autoscale_study(benchmark, save_report):
    report = benchmark.pedantic(run_autoscale_study, rounds=1, iterations=1)
    save_report("autoscale_study", report.format())
    # Every autoscaling invariant (convergence, earned scale-out,
    # min-energy choice, per-tenant contracts) must hold exactly.
    assert report.all_within(0.0), report.format()

    outcomes = report.extras["outcomes"]
    assert set(outcomes) == {"poisson", "bursty", "multi-tenant"}
    for outcome in outcomes.values():
        assert outcome.converged
        # The loop started from a violating single engine and scaled out.
        assert not outcome.steps[0].meets_slo
        assert outcome.best.shards * outcome.best.replicas > 1
        assert outcome.best.report.p95_ms <= report.extras["slo_ms"]
        # The trajectory stayed inside the search bounds.
        for step in outcome.steps:
            assert 1 <= step.shards <= 3 and 1 <= step.replicas <= 3

    mix = outcomes["multi-tenant"]
    assert set(mix.best.tenant_reports) == {"movielens", "criteo"}
