"""Bench E8 -- runs a full query on the bit-level fabric, validates Fig. 3."""

from repro.experiments import run_flow_trace


def test_flow_trace(benchmark, save_report):
    report = benchmark(run_flow_trace)
    text = report.format() + "\n\ntrace: " + " -> ".join(
        report.extras["first_occurrences"]
    )
    save_report("flow_trace", text)
    assert report.all_within(0.0), report.format()
