"""Bench E-HETERO -- heterogeneous fleet (spillover, live scaling, admission)."""

from repro.experiments import run_hetero_study


def test_hetero_study(benchmark, save_report):
    report = benchmark.pedantic(run_hetero_study, rounds=1, iterations=1)
    save_report("hetero_study", report.format())
    # Every heterogeneity invariant (bit-identical spillover, ordered
    # energy frontier, tail relief, recorded scale events with charged
    # migration, shed/degrade under overload) must hold exactly.
    assert report.all_within(0.0), report.format()

    frontier = report.extras["frontier"]
    assert set(frontier) == {"imc-only", "gpu-only", "spillover"}
    energy = {name: rep.energy_per_request_uj for name, rep in frontier.items()}
    assert energy["imc-only"] < energy["spillover"] < energy["gpu-only"]
    # Spillover stays within an order of magnitude of the IMC floor while
    # the GPU-only fleet pays two orders of magnitude over it.
    assert energy["spillover"] < 0.5 * energy["gpu-only"]
    assert frontier["spillover"].p95_ms < frontier["imc-only"].p95_ms

    spill = report.extras["spill_stats"]
    assert spill["spilled"] > 0
    assert 0.0 < spill["spill_rate"] < 0.5  # overflow, not a 50/50 split

    events = report.extras["scale_events"]
    assert events, "the online scaler never rescaled"
    for event in events:
        assert event.moved_rows > 0
        assert event.cost.energy_pj > 0.0
    assert report.extras["scaled_report"].p95_ms < report.extras["frozen_report"].p95_ms

    guarded = report.extras["guarded_report"]
    assert guarded.shed_count > 0 and guarded.degraded_count > 0
    assert guarded.shed_count + guarded.degraded_count < guarded.num_requests
    assert report.extras["admission_stats"]["shed"] == guarded.shed_count
