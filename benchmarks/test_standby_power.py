"""Bench A7 -- standby-power comparison (FeFET vs SRAM fabric)."""

from repro.experiments import run_standby_power


def test_standby_power(benchmark, save_report):
    report = benchmark(run_standby_power)
    lines = [report.format(), "", "load -> fabric memory energy (uJ per second):"]
    for row in report.extras["rows"]:
        lines.append(
            f"  {row['qps']:>7.0f} q/s: FeFET {row['fefet_total_uj_per_s']:>12,.0f}, "
            f"SRAM {row['sram_total_uj_per_s']:>12,.0f} "
            f"(SRAM standby share {row['sram_standby_share'] * 100:5.1f}%)"
        )
    save_report("standby_power", "\n".join(lines))
    assert report.all_within(0.0), report.format()
