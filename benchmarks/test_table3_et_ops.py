"""Bench E5 -- regenerates Table III (ET operation: GPU vs iMARS)."""

from repro.energy.report import format_comparison
from repro.experiments import run_table3


def test_table3_et_ops(benchmark, save_report):
    report = benchmark(run_table3)
    rows = [(row.label, row.gpu, row.imars) for row in report.extras["rows"]]
    text = report.format() + "\n\n" + format_comparison(
        "Table III (regenerated)", rows
    )
    save_report("table3_et_ops", text)
    # Every reproduced cell within 10% of the published value (most < 2%).
    assert report.all_within(0.10), report.format()
