"""Micro-benchmarks of the simulator's hot paths.

These do not reproduce a paper artefact; they track the *simulator's own*
performance on the operations every experiment leans on (CMA pooling, TCAM
search, crossbar MVM, LSH hashing, pairwise Hamming), so regressions in the
functional models show up here.
"""

import numpy as np
import pytest

from repro.core.cma import CMA
from repro.imc.crossbar import CrossbarArray, CrossbarConfig
from repro.imc.tcam import TCAMArray
from repro.lsh.hamming import pairwise_hamming
from repro.lsh.hyperplane import RandomHyperplaneLSH


@pytest.fixture(scope="module")
def loaded_cma():
    cma = CMA(rows=64, cols=256, lanes=32, lane_bits=8)
    rng = np.random.default_rng(0)
    for row in range(64):
        cma.write_word(row, rng.integers(-100, 100, size=32))
    return cma


def test_cma_pooling_speed(benchmark, loaded_cma):
    rows = list(range(0, 64, 4))
    total, _ = benchmark(loaded_cma.pool_rows, rows)
    assert total.shape == (32,)


@pytest.fixture(scope="module")
def loaded_tcam():
    array = TCAMArray(3000, 256)
    rng = np.random.default_rng(1)
    array.write_rows(0, rng.integers(0, 2, size=(3000, 256)).astype(np.int8))
    return array


def test_tcam_full_database_search_speed(benchmark, loaded_tcam):
    """One threshold search over a MovieLens-sized signature store."""
    query = np.random.default_rng(2).integers(0, 2, 256).astype(np.int8)
    flags = benchmark(loaded_tcam.search_threshold, query, 100)
    assert flags.shape == (3000,)


def test_crossbar_matvec_speed(benchmark):
    config = CrossbarConfig(rows=256, cols=128, dac_bits=8, adc_bits=8)
    tile = CrossbarArray(config)
    rng = np.random.default_rng(3)
    tile.program(rng.normal(size=(256, 128)))
    inputs = rng.normal(size=256)
    outputs = benchmark(tile.matvec, inputs)
    assert outputs.shape == (128,)


def test_lsh_hashing_speed(benchmark):
    """Hashing the full MovieLens item table to 256-bit signatures."""
    hasher = RandomHyperplaneLSH(32, 256, seed=0)
    items = np.random.default_rng(4).normal(size=(3000, 32))
    signatures = benchmark(hasher.signatures, items)
    assert signatures.shape == (3000, 256)


def test_pairwise_hamming_speed(benchmark):
    rng = np.random.default_rng(5)
    query = rng.integers(0, 2, 256).astype(np.uint8)
    items = rng.integers(0, 2, size=(3000, 256)).astype(np.uint8)
    distances = benchmark(pairwise_hamming, query, items)
    assert distances.shape == (3000,)
