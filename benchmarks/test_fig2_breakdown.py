"""Bench E1 -- regenerates the Fig. 2 operation breakdowns."""

from repro.energy.report import format_breakdown
from repro.experiments import run_fig2


def test_fig2_breakdown(benchmark, save_report):
    report = benchmark(run_fig2)
    breakdowns = report.extras["breakdowns"]
    text = "\n\n".join(
        [
            report.format(),
            format_breakdown("Fig. 2(a) filtering (regenerated)", breakdowns["filtering"]),
            format_breakdown("Fig. 2(b) ranking (regenerated)", breakdowns["ranking"]),
        ]
    )
    save_report("fig2_breakdown", text)
    for comparison in report.comparisons:
        assert abs(comparison.measured - comparison.published) < 0.03, (
            comparison.format_row()
        )
