"""Evaluation metrics: accuracy (HR/recall/AUC) and throughput/improvement."""

from repro.metrics.accuracy import auc_score, hit_rate, recall_at_k
from repro.metrics.throughput import energy_reduction, queries_per_second, speedup

__all__ = [
    "auc_score",
    "hit_rate",
    "recall_at_k",
    "energy_reduction",
    "queries_per_second",
    "speedup",
]
