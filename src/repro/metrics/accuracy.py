"""Accuracy metrics: hit rate (the paper's Sec. IV-B metric), recall, AUC."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["hit_rate", "recall_at_k", "auc_score"]


def hit_rate(retrieved: Sequence[Sequence[int]], positives: Sequence[int]) -> float:
    """The paper's HR: '# of hits (correct predictions) / # of test users'.

    A user scores a hit when their held-out positive item appears in the
    retrieved candidate set.
    """
    if len(retrieved) != len(positives):
        raise ValueError("retrieved sets and positives must align")
    if len(positives) == 0:
        raise ValueError("need at least one test user")
    hits = sum(
        1 for candidates, positive in zip(retrieved, positives) if positive in set(candidates)
    )
    return hits / len(positives)


def recall_at_k(
    retrieved: Sequence[Sequence[int]],
    relevant: Sequence[Sequence[int]],
    k: int,
) -> float:
    """Mean fraction of relevant items inside the top-k retrieved."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if len(retrieved) != len(relevant):
        raise ValueError("retrieved and relevant sets must align")
    if not retrieved:
        raise ValueError("need at least one query")
    scores = []
    for candidates, truths in zip(retrieved, relevant):
        truth_set = set(truths)
        if not truth_set:
            continue
        top = list(candidates)[:k]
        scores.append(len(truth_set.intersection(top)) / len(truth_set))
    if not scores:
        raise ValueError("no queries with relevant items")
    return float(np.mean(scores))


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """ROC AUC via the rank-sum (Mann-Whitney) formulation."""
    y = np.asarray(labels, dtype=np.float64).reshape(-1)
    s = np.asarray(scores, dtype=np.float64).reshape(-1)
    if y.shape != s.shape:
        raise ValueError("labels and scores must align")
    positives = int((y == 1).sum())
    negatives = int((y == 0).sum())
    if positives == 0 or negatives == 0:
        raise ValueError("AUC needs both classes present")
    order = np.argsort(s, kind="stable")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, y.shape[0] + 1)
    # Average ranks over score ties for an unbiased estimate.
    sorted_scores = s[order]
    start = 0
    for end in range(1, len(sorted_scores) + 1):
        if end == len(sorted_scores) or sorted_scores[end] != sorted_scores[start]:
            mean_rank = 0.5 * (start + 1 + end)
            ranks[order[start:end]] = mean_rank
            start = end
    positive_rank_sum = ranks[y == 1].sum()
    return float(
        (positive_rank_sum - positives * (positives + 1) / 2.0)
        / (positives * negatives)
    )
