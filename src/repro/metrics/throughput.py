"""Throughput and comparison metrics (QPS, speedups, improvement factors)."""

from __future__ import annotations

from repro.energy.accounting import Cost

__all__ = ["queries_per_second", "speedup", "energy_reduction"]


def queries_per_second(per_query: Cost) -> float:
    """QPS at a given per-query latency (the Sec. IV-C3 metric)."""
    if per_query.latency_ns <= 0.0:
        raise ValueError("per-query latency must be positive")
    return 1e9 / per_query.latency_ns


def speedup(baseline: Cost, candidate: Cost) -> float:
    """Latency improvement of candidate over baseline."""
    if candidate.latency_ns <= 0.0:
        raise ValueError("candidate latency must be positive")
    return baseline.latency_ns / candidate.latency_ns


def energy_reduction(baseline: Cost, candidate: Cost) -> float:
    """Energy improvement of candidate over baseline."""
    if candidate.energy_pj <= 0.0:
        raise ValueError("candidate energy must be positive")
    return baseline.energy_pj / candidate.energy_pj
