"""Facebook DLRM (Naumov et al., 2019) -- the Criteo ranking model.

Architecture (Table I: bottom MLP 256-128-32, top MLP 256-64-1):

1. dense features -> bottom MLP -> a 32-d dense vector;
2. each of the 26 categorical features -> an EmbeddingBag lookup (the
   UIETs of the Criteo workload);
3. feature interaction: pairwise dot products between the dense vector and
   every embedding (and among embeddings), concatenated with the dense
   vector;
4. top MLP -> sigmoid -> CTR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers import EmbeddingBag
from repro.nn.losses import BCEWithLogitsLoss
from repro.nn.mlp import build_mlp
from repro.nn.module import Module
from repro.nn.optim import Adam

__all__ = ["DLRMConfig", "DLRM", "interaction_features"]


@dataclass(frozen=True)
class DLRMConfig:
    """Model geometry (paper defaults for the Criteo Kaggle workload)."""

    num_dense: int = 13
    categorical_cardinalities: Tuple[int, ...] = tuple([28000] * 26)
    embedding_dim: int = 32
    bottom_spec: str = "256-128-32"
    top_spec: str = "256-64-1"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_dense < 1:
            raise ValueError("need at least one dense feature")
        if not self.categorical_cardinalities:
            raise ValueError("need at least one categorical feature")
        if any(card < 1 for card in self.categorical_cardinalities):
            raise ValueError("categorical cardinalities must be positive")
        if self.embedding_dim < 1:
            raise ValueError("embedding dimension must be positive")

    @property
    def num_sparse(self) -> int:
        return len(self.categorical_cardinalities)

    @property
    def interaction_dim(self) -> int:
        """Pairwise dots among (1 dense + num_sparse) vectors, plus dense."""
        vectors = 1 + self.num_sparse
        bottom_out = int(self.bottom_spec.split("-")[-1])
        return vectors * (vectors - 1) // 2 + bottom_out


def interaction_features(dense_vector: np.ndarray, embeddings: np.ndarray) -> np.ndarray:
    """DLRM pairwise-dot interaction.

    Parameters
    ----------
    dense_vector:
        (batch, dim) output of the bottom MLP.
    embeddings:
        (batch, num_sparse, dim) pooled categorical embeddings.

    Returns
    -------
    (batch, interaction_dim): lower-triangle pairwise dot products of the
    stacked vectors, concatenated after the dense vector.
    """
    dense = np.atleast_2d(np.asarray(dense_vector, dtype=np.float64))
    sparse = np.asarray(embeddings, dtype=np.float64)
    if sparse.ndim != 3 or sparse.shape[0] != dense.shape[0]:
        raise ValueError("embeddings must be (batch, num_sparse, dim)")
    if sparse.shape[2] != dense.shape[1]:
        raise ValueError("dense and sparse dimensions differ")
    stacked = np.concatenate([dense[:, None, :], sparse], axis=1)
    gram = np.einsum("bnd,bmd->bnm", stacked, stacked)
    count = stacked.shape[1]
    lower_i, lower_j = np.tril_indices(count, k=-1)
    pairwise = gram[:, lower_i, lower_j]
    return np.concatenate([dense, pairwise], axis=1)


class DLRM(Module):
    """The full DLRM model over NumPy modules."""

    def __init__(self, config: Optional[DLRMConfig] = None):
        super().__init__()
        self.config = config or DLRMConfig()
        rng = np.random.default_rng(self.config.seed)
        dim = self.config.embedding_dim
        self.bottom = build_mlp(self.config.num_dense, self.config.bottom_spec, rng=rng)
        self.embedding_bags: List[EmbeddingBag] = []
        for index, cardinality in enumerate(self.config.categorical_cardinalities):
            bag = EmbeddingBag(cardinality, dim, mode="sum", rng=rng)
            self._modules[f"bag{index}"] = bag
            self.embedding_bags.append(bag)
        self.top = build_mlp(self.config.interaction_dim, self.config.top_spec, rng=rng)

    # -- forward ---------------------------------------------------------------------
    def _pooled_embeddings(self, sparse_indices: np.ndarray) -> np.ndarray:
        """Pooled per-feature embeddings: (batch, num_sparse, dim).

        ``sparse_indices`` is (batch, num_sparse) for the one-index-per-
        feature Criteo layout; multi-hot bags go through the EmbeddingBag
        API directly.
        """
        indices = np.asarray(sparse_indices, dtype=np.int64)
        if indices.ndim != 2 or indices.shape[1] != self.config.num_sparse:
            raise ValueError(
                f"sparse indices must be (batch, {self.config.num_sparse})"
            )
        batch = indices.shape[0]
        out = np.zeros((batch, self.config.num_sparse, self.config.embedding_dim))
        for feature, bag in enumerate(self.embedding_bags):
            out[:, feature, :] = bag.weight.data[indices[:, feature]]
        return out

    def _pooled_bags(self, sparse_bags) -> np.ndarray:
        """Pooled embeddings for multi-hot bags: (batch, num_sparse, dim).

        ``sparse_bags[sample][feature]`` is a (possibly empty) sequence of
        indices pooled by the feature's EmbeddingBag -- the general sparse
        layout DLRM supports (and the layout iMARS pools with its in-memory
        adders).
        """
        batch = len(sparse_bags)
        out = np.zeros((batch, self.config.num_sparse, self.config.embedding_dim))
        for feature, bag_module in enumerate(self.embedding_bags):
            bags = []
            for sample in sparse_bags:
                if len(sample) != self.config.num_sparse:
                    raise ValueError(
                        f"each sample needs {self.config.num_sparse} bags, "
                        f"got {len(sample)}"
                    )
                bags.append(sample[feature])
            out[:, feature, :] = bag_module(bags)
        return out

    def logits(self, dense: np.ndarray, sparse_indices: np.ndarray) -> np.ndarray:
        """Raw CTR logits for a batch of (dense, sparse) inputs."""
        dense = np.atleast_2d(np.asarray(dense, dtype=np.float64))
        if dense.shape[1] != self.config.num_dense:
            raise ValueError(f"dense input must have {self.config.num_dense} features")
        bottom_out = self.bottom(dense)
        pooled = self._pooled_embeddings(sparse_indices)
        interacted = interaction_features(bottom_out, pooled)
        return self.top(interacted).reshape(-1)

    def logits_bags(self, dense: np.ndarray, sparse_bags) -> np.ndarray:
        """Raw CTR logits with multi-hot categorical bags per feature."""
        dense = np.atleast_2d(np.asarray(dense, dtype=np.float64))
        if dense.shape[1] != self.config.num_dense:
            raise ValueError(f"dense input must have {self.config.num_dense} features")
        bottom_out = self.bottom(dense)
        pooled = self._pooled_bags(sparse_bags)
        interacted = interaction_features(bottom_out, pooled)
        return self.top(interacted).reshape(-1)

    def predict_ctr(self, dense: np.ndarray, sparse_indices: np.ndarray) -> np.ndarray:
        """CTR predictions in [0, 1]."""
        scores = self.logits(dense, sparse_indices)
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -60.0, 60.0)))

    # -- training (full backward through interaction) -----------------------------------
    def train_ctr(
        self,
        dense: np.ndarray,
        sparse_indices: np.ndarray,
        clicks: np.ndarray,
        epochs: int = 3,
        batch_size: int = 128,
        lr: float = 0.01,
        seed: int = 0,
    ) -> List[float]:
        """Train end to end with BCE; returns per-epoch mean losses."""
        rng = np.random.default_rng(seed)
        loss_fn = BCEWithLogitsLoss()
        optimizer = Adam(self.parameters(), lr=lr)
        dense = np.atleast_2d(np.asarray(dense, dtype=np.float64))
        indices = np.asarray(sparse_indices, dtype=np.int64)
        labels = np.asarray(clicks, dtype=np.float64).reshape(-1)
        num_samples = labels.shape[0]
        epoch_losses: List[float] = []
        for _ in range(epochs):
            order = rng.permutation(num_samples)
            batch_losses: List[float] = []
            for start in range(0, num_samples, batch_size):
                batch = order[start : start + batch_size]
                optimizer.zero_grad()
                loss = self._train_step(dense[batch], indices[batch], labels[batch], loss_fn)
                optimizer.step()
                batch_losses.append(loss)
            epoch_losses.append(float(np.mean(batch_losses)))
        return epoch_losses

    def _train_step(
        self,
        dense: np.ndarray,
        indices: np.ndarray,
        labels: np.ndarray,
        loss_fn: BCEWithLogitsLoss,
    ) -> float:
        """One forward/backward pass, manually chaining the interaction."""
        bottom_out = self.bottom(dense)
        pooled = self._pooled_embeddings(indices)
        stacked = np.concatenate([bottom_out[:, None, :], pooled], axis=1)
        interacted = interaction_features(bottom_out, pooled)
        logits = self.top(interacted).reshape(-1)
        loss = loss_fn(logits, labels)

        grad_logits = loss_fn.backward().reshape(-1, 1)
        grad_interacted = self.top.backward(grad_logits)

        # Split the interaction gradient back into dense and pairwise parts.
        bottom_dim = bottom_out.shape[1]
        grad_dense_direct = grad_interacted[:, :bottom_dim]
        grad_pairs = grad_interacted[:, bottom_dim:]
        count = stacked.shape[1]
        lower_i, lower_j = np.tril_indices(count, k=-1)
        grad_stacked = np.zeros_like(stacked)
        for pair, (row, col) in enumerate(zip(lower_i, lower_j)):
            coeff = grad_pairs[:, pair][:, None]
            grad_stacked[:, row, :] += coeff * stacked[:, col, :]
            grad_stacked[:, col, :] += coeff * stacked[:, row, :]

        grad_bottom = grad_stacked[:, 0, :] + grad_dense_direct
        self.bottom.backward(grad_bottom)
        for feature, bag in enumerate(self.embedding_bags):
            np.add.at(
                bag.weight.grad,
                indices[:, feature],
                grad_stacked[:, feature + 1, :],
            )
        return loss
