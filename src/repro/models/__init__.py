"""RecSys models: YouTubeDNN (filtering + ranking) and Facebook DLRM."""

from repro.models.youtube_dnn import YouTubeDNNConfig, YouTubeDNNFiltering, YouTubeDNNRanking
from repro.models.dlrm import DLRM, DLRMConfig, interaction_features

__all__ = [
    "YouTubeDNNConfig",
    "YouTubeDNNFiltering",
    "YouTubeDNNRanking",
    "DLRM",
    "DLRMConfig",
    "interaction_features",
]
