"""YouTubeDNN (Covington et al., RecSys'16) -- filtering + ranking models.

The paper evaluates YouTubeDNN on MovieLens-1M for *both* stages
(Table I):

* **Filtering tower** ("candidate generation"): pooled watch-history item
  embeddings + demographic (UIET) embeddings -> MLP 128-64-32 -> an
  L2-normalised 32-d user embedding; candidates come from an NNS of that
  embedding against the item embedding table.  Trained with sampled
  softmax: the positive is the held-out next watch.
* **Ranking model**: user embedding + candidate-item embedding + ranking
  UIET embeddings -> MLP 128-1 -> sigmoid CTR.

Both models are built on the NumPy nn substrate; the item embedding table
doubles as the ItET that iMARS stores in CMAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Embedding, Linear
from repro.nn.losses import BCEWithLogitsLoss, SampledSoftmaxLoss
from repro.nn.mlp import build_mlp
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.stable import stable_matmul

__all__ = [
    "YouTubeDNNConfig",
    "YouTubeDNNFiltering",
    "YouTubeDNNRanking",
    "RankingServingScorer",
]


@dataclass(frozen=True)
class YouTubeDNNConfig:
    """Model geometry (Table I defaults).

    ``demographic_cardinalities`` lists the UIET sizes used by the
    filtering stage; ``ranking_extra_cardinalities`` the ranking-only
    UIETs.
    """

    num_items: int = 3000
    embedding_dim: int = 32
    demographic_cardinalities: Tuple[int, ...] = (6040, 3, 7, 21, 450)
    ranking_extra_cardinalities: Tuple[int, ...] = (18,)
    filtering_spec: str = "128-64-32"
    ranking_spec: str = "128-1"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_items < 2:
            raise ValueError("need at least two items")
        if self.embedding_dim < 1:
            raise ValueError("embedding dimension must be positive")
        if not self.demographic_cardinalities:
            raise ValueError("need at least one demographic feature")
        tower_output = int(self.filtering_spec.split("-")[-1])
        if tower_output != self.embedding_dim:
            raise ValueError(
                "the filtering tower's output width must equal the item "
                f"embedding dimension for the NNS to work: got {tower_output} "
                f"vs {self.embedding_dim}"
            )


class YouTubeDNNFiltering(Module):
    """The candidate-generation (filtering) tower."""

    def __init__(self, config: Optional[YouTubeDNNConfig] = None):
        super().__init__()
        self.config = config or YouTubeDNNConfig()
        rng = np.random.default_rng(self.config.seed)
        dim = self.config.embedding_dim
        self.item_embeddings = Embedding(self.config.num_items, dim, rng=rng)
        self.demographic_embeddings: List[Embedding] = []
        for index, cardinality in enumerate(self.config.demographic_cardinalities):
            table = Embedding(cardinality, dim, rng=rng)
            self._modules[f"demographic{index}"] = table
            self.demographic_embeddings.append(table)
        tower_input = dim * (1 + len(self.config.demographic_cardinalities))
        self.tower = build_mlp(tower_input, self.config.filtering_spec, head="l2norm", rng=rng)
        self._history_cache: Optional[Sequence[Sequence[int]]] = None
        self._demographics_cache: Optional[np.ndarray] = None

    # -- forward -------------------------------------------------------------------
    def user_embedding(
        self,
        histories: Sequence[Sequence[int]],
        demographics: np.ndarray,
    ) -> np.ndarray:
        """User embeddings for a batch.

        Parameters
        ----------
        histories:
            Per-user watch history (item indices); pooled by mean.
        demographics:
            (batch, num_demographic_features) integer matrix.
        """
        demo = np.asarray(demographics, dtype=np.int64)
        if demo.ndim != 2 or demo.shape[1] != len(self.demographic_embeddings):
            raise ValueError(
                f"demographics must be (batch, {len(self.demographic_embeddings)})"
            )
        if len(histories) != demo.shape[0]:
            raise ValueError("history and demographic batch sizes differ")
        dim = self.config.embedding_dim
        pooled = np.zeros((len(histories), dim))
        for row, history in enumerate(histories):
            indices = np.asarray(list(history), dtype=np.int64)
            if indices.size == 0:
                continue
            pooled[row] = self.item_embeddings.weight.data[indices].mean(axis=0)
        parts = [pooled]
        for column, table in enumerate(self.demographic_embeddings):
            parts.append(table.weight.data[demo[:, column]])
        features = np.concatenate(parts, axis=1)
        self._history_cache = histories
        self._demographics_cache = demo
        self._features_cache = features
        return self.tower(features)

    def forward(self, inputs) -> np.ndarray:  # pragma: no cover - convenience alias
        histories, demographics = inputs
        return self.user_embedding(histories, demographics)

    def _backward_tower(self, grad_users: np.ndarray) -> None:
        """Push the sampled-softmax gradient through the tower + embeddings."""
        grad_features = self.tower.backward(grad_users)
        dim = self.config.embedding_dim
        grad_pooled = grad_features[:, :dim]
        for row, history in enumerate(self._history_cache):
            indices = np.asarray(list(history), dtype=np.int64)
            if indices.size == 0:
                continue
            np.add.at(
                self.item_embeddings.weight.grad,
                indices,
                grad_pooled[row] / indices.size,
            )
        for column, table in enumerate(self.demographic_embeddings):
            segment = grad_features[:, dim * (column + 1) : dim * (column + 2)]
            np.add.at(
                table.weight.grad,
                self._demographics_cache[:, column],
                segment,
            )

    # -- training ---------------------------------------------------------------------
    def train_retrieval(
        self,
        histories: Sequence[Sequence[int]],
        demographics: np.ndarray,
        positives: np.ndarray,
        epochs: int = 5,
        batch_size: int = 64,
        num_negatives: int = 20,
        lr: float = 0.01,
        seed: int = 0,
    ) -> List[float]:
        """Train with sampled softmax; returns the per-epoch mean loss."""
        rng = np.random.default_rng(seed)
        loss_fn = SampledSoftmaxLoss()
        optimizer = Adam(self.parameters(), lr=lr)
        targets = np.asarray(positives, dtype=np.int64)
        num_samples = targets.shape[0]
        demo = np.asarray(demographics, dtype=np.int64)
        epoch_losses: List[float] = []
        for _ in range(epochs):
            order = rng.permutation(num_samples)
            batch_losses: List[float] = []
            for start in range(0, num_samples, batch_size):
                batch = order[start : start + batch_size]
                batch_histories = [histories[index] for index in batch]
                batch_demo = demo[batch]
                batch_targets = targets[batch]
                negatives = rng.integers(
                    0, self.config.num_items, size=(batch.shape[0], num_negatives)
                )
                candidate_ids = np.concatenate(
                    [batch_targets[:, None], negatives], axis=1
                )
                optimizer.zero_grad()
                users = self.user_embedding(batch_histories, batch_demo)
                candidates = self.item_embeddings.weight.data[candidate_ids]
                loss = loss_fn(users, candidates)
                grad_users, grad_items = loss_fn.backward()
                self._backward_tower(grad_users)
                flat_ids = candidate_ids.reshape(-1)
                flat_grads = grad_items.reshape(-1, self.config.embedding_dim)
                np.add.at(self.item_embeddings.weight.grad, flat_ids, flat_grads)
                optimizer.step()
                batch_losses.append(loss)
            epoch_losses.append(float(np.mean(batch_losses)))
        return epoch_losses

    def item_table(self) -> np.ndarray:
        """The trained item embedding matrix (the ItET contents)."""
        return self.item_embeddings.weight.data.copy()


class YouTubeDNNRanking(Module):
    """The ranking model: (user, candidate item, context) -> CTR."""

    def __init__(self, config: Optional[YouTubeDNNConfig] = None):
        super().__init__()
        self.config = config or YouTubeDNNConfig()
        rng = np.random.default_rng(self.config.seed + 1)
        dim = self.config.embedding_dim
        cardinalities = (
            self.config.demographic_cardinalities
            + self.config.ranking_extra_cardinalities
        )
        self.context_embeddings: List[Embedding] = []
        for index, cardinality in enumerate(cardinalities):
            table = Embedding(cardinality, dim, rng=rng)
            self._modules[f"context{index}"] = table
            self.context_embeddings.append(table)
        net_input = dim * (2 + len(cardinalities))  # user + item + contexts
        self.net = build_mlp(net_input, self.config.ranking_spec, head="none", rng=rng)

    def _features(
        self,
        user_embeddings: np.ndarray,
        item_embeddings: np.ndarray,
        context: np.ndarray,
    ) -> np.ndarray:
        users = np.atleast_2d(np.asarray(user_embeddings, dtype=np.float64))
        items = np.atleast_2d(np.asarray(item_embeddings, dtype=np.float64))
        ctx = np.asarray(context, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("user and item embedding batches must match")
        if ctx.ndim != 2 or ctx.shape[1] != len(self.context_embeddings):
            raise ValueError(
                f"context must be (batch, {len(self.context_embeddings)})"
            )
        parts = [users, items]
        for column, table in enumerate(self.context_embeddings):
            parts.append(table.weight.data[ctx[:, column]])
        return np.concatenate(parts, axis=1)

    def logits(
        self,
        user_embeddings: np.ndarray,
        item_embeddings: np.ndarray,
        context: np.ndarray,
    ) -> np.ndarray:
        """Raw CTR logits for (user, item, context) triples."""
        return self.net(self._features(user_embeddings, item_embeddings, context)).reshape(-1)

    def predict_ctr(
        self,
        user_embeddings: np.ndarray,
        item_embeddings: np.ndarray,
        context: np.ndarray,
    ) -> np.ndarray:
        """Click-through-rate predictions in [0, 1]."""
        scores = self.logits(user_embeddings, item_embeddings, context)
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -60.0, 60.0)))

    def make_serving_scorer(self, item_table: np.ndarray) -> "RankingServingScorer":
        """A first-layer-decomposed CTR scorer over a fixed item table."""
        return RankingServingScorer(self, item_table)

    def train_ctr(
        self,
        user_embeddings: np.ndarray,
        item_embeddings: np.ndarray,
        context: np.ndarray,
        clicks: np.ndarray,
        epochs: int = 5,
        batch_size: int = 128,
        lr: float = 0.01,
        seed: int = 0,
    ) -> List[float]:
        """Train the MLP with BCE on observed clicks (embeddings are fixed
        inputs here; the context tables train end to end)."""
        rng = np.random.default_rng(seed)
        loss_fn = BCEWithLogitsLoss()
        optimizer = Adam(self.parameters(), lr=lr)
        labels = np.asarray(clicks, dtype=np.float64).reshape(-1)
        users = np.atleast_2d(user_embeddings)
        items = np.atleast_2d(item_embeddings)
        ctx = np.asarray(context, dtype=np.int64)
        num_samples = labels.shape[0]
        epoch_losses: List[float] = []
        for _ in range(epochs):
            order = rng.permutation(num_samples)
            batch_losses: List[float] = []
            for start in range(0, num_samples, batch_size):
                batch = order[start : start + batch_size]
                optimizer.zero_grad()
                features = self._features(users[batch], items[batch], ctx[batch])
                logits = self.net(features).reshape(-1)
                loss = loss_fn(logits, labels[batch])
                grad_logits = loss_fn.backward().reshape(-1, 1)
                grad_features = self.net.backward(grad_logits)
                dim = self.config.embedding_dim
                for column, table in enumerate(self.context_embeddings):
                    segment = grad_features[:, dim * (column + 2) : dim * (column + 3)]
                    np.add.at(table.weight.grad, ctx[batch][:, column], segment)
                optimizer.step()
                batch_losses.append(loss)
            epoch_losses.append(float(np.mean(batch_losses)))
        return epoch_losses


# Rows per tail-MLP chunk in score_pairs: ~4 MB of float64 intermediates
# at width 128, small enough to stay in cache on the serving hosts.
_SCORE_CHUNK_ROWS = 4096


class RankingServingScorer:
    """Serving-time CTR scorer with the first Linear layer decomposed.

    In the serving hot path every candidate row of a query shares the
    same user and context feature blocks; only the item block varies --
    and items come from a *fixed* table.  The ranking net's first layer
    is linear in the concatenated blocks, so its output splits into

        first(features) = user @ W_u + sum_j ctx_j @ W_cj + b  (per query)
                          + item @ W_i                         (per item)

    where the item projection ``item_table @ W_i`` is computed *once* at
    scorer build.  Scoring a candidate then costs one row gather + one
    add + the (narrow) remaining layers, instead of re-multiplying the
    full concatenated feature width per candidate -- the dominant FLOP
    saving of the vectorised serving kernels.

    Bit-exactness contract: every matmul goes through
    :func:`~repro.nn.stable.stable_matmul` and the block sums always
    fold in the same order (user, contexts in feature order, bias,
    item), so scoring one query alone and scoring it inside any batch
    produce bitwise-identical CTRs.  (The decomposition itself rounds
    differently than one wide matmul, which is why *both* the scalar
    oracle and the multi-query path must score through this class.)
    """

    def __init__(self, model: YouTubeDNNRanking, item_table: np.ndarray):
        first = model.net.layers[0]
        if not isinstance(first, Linear):
            raise TypeError("ranking net must start with a Linear layer")
        dim = model.config.embedding_dim
        expected = dim * (2 + len(model.context_embeddings))
        if first.in_features != expected:
            raise ValueError(
                f"ranking net input width {first.in_features} does not match "
                f"the (user, item, contexts) feature layout ({expected})"
            )
        self._model = model
        self._dim = dim
        weight = first.weight.data
        self._user_block = weight[:dim]
        self._context_blocks = [
            weight[dim * (column + 2) : dim * (column + 3)]
            for column in range(len(model.context_embeddings))
        ]
        self._bias = None if first.bias is None else first.bias.data
        self._tail = model.net.layers[1:]
        table = np.asarray(item_table, dtype=np.float64)
        if table.ndim != 2 or table.shape[1] != dim:
            raise ValueError(f"item table must be (n, {dim}), got {table.shape}")
        self.item_projection = stable_matmul(table, weight[dim : 2 * dim])

    @property
    def num_items(self) -> int:
        return int(self.item_projection.shape[0])

    def query_constants(
        self, user_embeddings: np.ndarray, context: np.ndarray
    ) -> np.ndarray:
        """Per-query first-layer constants: user + context blocks + bias."""
        users = np.atleast_2d(np.asarray(user_embeddings, dtype=np.float64))
        ctx = np.atleast_2d(np.asarray(context, dtype=np.int64))
        constants = stable_matmul(users, self._user_block)
        for column, table in enumerate(self._model.context_embeddings):
            constants = constants + stable_matmul(
                table.weight.data[ctx[:, column]], self._context_blocks[column]
            )
        if self._bias is not None:
            constants = constants + self._bias
        return constants

    def _finish(self, first_layer_out: np.ndarray) -> np.ndarray:
        activation = first_layer_out
        for layer in self._tail:
            activation = layer(activation)
        logits = activation.reshape(-1)
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))

    def score_pairs(
        self, query_constants: np.ndarray, item_indices: np.ndarray
    ) -> np.ndarray:
        """CTRs for aligned (query-constant row, item index) pairs.

        Large pair lists are scored in fixed row chunks so the tail-MLP
        intermediates stay cache-resident instead of page-faulting
        hundred-megabyte temporaries; every layer in the path is
        row-stable, so chunk boundaries cannot change a single bit.
        """
        rows = np.asarray(query_constants, dtype=np.float64)
        indices = np.asarray(item_indices, dtype=np.int64)
        if rows.shape[0] != indices.shape[0]:
            raise ValueError("one constants row per item index required")
        total = rows.shape[0]
        if total <= _SCORE_CHUNK_ROWS:
            return self._finish(rows + self.item_projection[indices])
        ctrs = np.empty(total, dtype=np.float64)
        for start in range(0, total, _SCORE_CHUNK_ROWS):
            stop = min(start + _SCORE_CHUNK_ROWS, total)
            ctrs[start:stop] = self._finish(
                rows[start:stop] + self.item_projection[indices[start:stop]]
            )
        return ctrs

    def score_grouped(
        self,
        query_constants: np.ndarray,
        query_index: np.ndarray,
        item_indices: np.ndarray,
    ) -> np.ndarray:
        """CTRs for flat (query, item) pairs given *shared* constant rows.

        Same result as ``score_pairs(query_constants[query_index],
        item_indices)`` but the constants gather happens per chunk, so a
        large batch never materialises the full duplicated-constants
        matrix (the gather is row-wise, hence bit-neutral).
        """
        constants = np.asarray(query_constants, dtype=np.float64)
        groups = np.asarray(query_index, dtype=np.int64)
        indices = np.asarray(item_indices, dtype=np.int64)
        if groups.shape[0] != indices.shape[0]:
            raise ValueError("one query index per item index required")
        total = groups.shape[0]
        if total <= _SCORE_CHUNK_ROWS:
            return self._finish(
                constants[groups] + self.item_projection[indices]
            )
        ctrs = np.empty(total, dtype=np.float64)
        for start in range(0, total, _SCORE_CHUNK_ROWS):
            stop = min(start + _SCORE_CHUNK_ROWS, total)
            ctrs[start:stop] = self._finish(
                constants[groups[start:stop]]
                + self.item_projection[indices[start:stop]]
            )
        return ctrs

    def score_query(
        self,
        user_embedding: np.ndarray,
        item_indices: np.ndarray,
        context: Sequence[int],
    ) -> np.ndarray:
        """CTRs of one query against table rows ``item_indices``."""
        constants = self.query_constants(
            np.asarray(user_embedding, dtype=np.float64).reshape(1, -1),
            np.asarray(context, dtype=np.int64).reshape(1, -1),
        )
        indices = np.asarray(item_indices, dtype=np.int64)
        return self._finish(constants + self.item_projection[indices])
