"""YouTubeDNN (Covington et al., RecSys'16) -- filtering + ranking models.

The paper evaluates YouTubeDNN on MovieLens-1M for *both* stages
(Table I):

* **Filtering tower** ("candidate generation"): pooled watch-history item
  embeddings + demographic (UIET) embeddings -> MLP 128-64-32 -> an
  L2-normalised 32-d user embedding; candidates come from an NNS of that
  embedding against the item embedding table.  Trained with sampled
  softmax: the positive is the held-out next watch.
* **Ranking model**: user embedding + candidate-item embedding + ranking
  UIET embeddings -> MLP 128-1 -> sigmoid CTR.

Both models are built on the NumPy nn substrate; the item embedding table
doubles as the ItET that iMARS stores in CMAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Embedding
from repro.nn.losses import BCEWithLogitsLoss, SampledSoftmaxLoss
from repro.nn.mlp import build_mlp
from repro.nn.module import Module
from repro.nn.optim import Adam

__all__ = ["YouTubeDNNConfig", "YouTubeDNNFiltering", "YouTubeDNNRanking"]


@dataclass(frozen=True)
class YouTubeDNNConfig:
    """Model geometry (Table I defaults).

    ``demographic_cardinalities`` lists the UIET sizes used by the
    filtering stage; ``ranking_extra_cardinalities`` the ranking-only
    UIETs.
    """

    num_items: int = 3000
    embedding_dim: int = 32
    demographic_cardinalities: Tuple[int, ...] = (6040, 3, 7, 21, 450)
    ranking_extra_cardinalities: Tuple[int, ...] = (18,)
    filtering_spec: str = "128-64-32"
    ranking_spec: str = "128-1"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_items < 2:
            raise ValueError("need at least two items")
        if self.embedding_dim < 1:
            raise ValueError("embedding dimension must be positive")
        if not self.demographic_cardinalities:
            raise ValueError("need at least one demographic feature")
        tower_output = int(self.filtering_spec.split("-")[-1])
        if tower_output != self.embedding_dim:
            raise ValueError(
                "the filtering tower's output width must equal the item "
                f"embedding dimension for the NNS to work: got {tower_output} "
                f"vs {self.embedding_dim}"
            )


class YouTubeDNNFiltering(Module):
    """The candidate-generation (filtering) tower."""

    def __init__(self, config: Optional[YouTubeDNNConfig] = None):
        super().__init__()
        self.config = config or YouTubeDNNConfig()
        rng = np.random.default_rng(self.config.seed)
        dim = self.config.embedding_dim
        self.item_embeddings = Embedding(self.config.num_items, dim, rng=rng)
        self.demographic_embeddings: List[Embedding] = []
        for index, cardinality in enumerate(self.config.demographic_cardinalities):
            table = Embedding(cardinality, dim, rng=rng)
            self._modules[f"demographic{index}"] = table
            self.demographic_embeddings.append(table)
        tower_input = dim * (1 + len(self.config.demographic_cardinalities))
        self.tower = build_mlp(tower_input, self.config.filtering_spec, head="l2norm", rng=rng)
        self._history_cache: Optional[Sequence[Sequence[int]]] = None
        self._demographics_cache: Optional[np.ndarray] = None

    # -- forward -------------------------------------------------------------------
    def user_embedding(
        self,
        histories: Sequence[Sequence[int]],
        demographics: np.ndarray,
    ) -> np.ndarray:
        """User embeddings for a batch.

        Parameters
        ----------
        histories:
            Per-user watch history (item indices); pooled by mean.
        demographics:
            (batch, num_demographic_features) integer matrix.
        """
        demo = np.asarray(demographics, dtype=np.int64)
        if demo.ndim != 2 or demo.shape[1] != len(self.demographic_embeddings):
            raise ValueError(
                f"demographics must be (batch, {len(self.demographic_embeddings)})"
            )
        if len(histories) != demo.shape[0]:
            raise ValueError("history and demographic batch sizes differ")
        dim = self.config.embedding_dim
        pooled = np.zeros((len(histories), dim))
        for row, history in enumerate(histories):
            indices = np.asarray(list(history), dtype=np.int64)
            if indices.size == 0:
                continue
            pooled[row] = self.item_embeddings.weight.data[indices].mean(axis=0)
        parts = [pooled]
        for column, table in enumerate(self.demographic_embeddings):
            parts.append(table.weight.data[demo[:, column]])
        features = np.concatenate(parts, axis=1)
        self._history_cache = histories
        self._demographics_cache = demo
        self._features_cache = features
        return self.tower(features)

    def forward(self, inputs) -> np.ndarray:  # pragma: no cover - convenience alias
        histories, demographics = inputs
        return self.user_embedding(histories, demographics)

    def _backward_tower(self, grad_users: np.ndarray) -> None:
        """Push the sampled-softmax gradient through the tower + embeddings."""
        grad_features = self.tower.backward(grad_users)
        dim = self.config.embedding_dim
        grad_pooled = grad_features[:, :dim]
        for row, history in enumerate(self._history_cache):
            indices = np.asarray(list(history), dtype=np.int64)
            if indices.size == 0:
                continue
            np.add.at(
                self.item_embeddings.weight.grad,
                indices,
                grad_pooled[row] / indices.size,
            )
        for column, table in enumerate(self.demographic_embeddings):
            segment = grad_features[:, dim * (column + 1) : dim * (column + 2)]
            np.add.at(
                table.weight.grad,
                self._demographics_cache[:, column],
                segment,
            )

    # -- training ---------------------------------------------------------------------
    def train_retrieval(
        self,
        histories: Sequence[Sequence[int]],
        demographics: np.ndarray,
        positives: np.ndarray,
        epochs: int = 5,
        batch_size: int = 64,
        num_negatives: int = 20,
        lr: float = 0.01,
        seed: int = 0,
    ) -> List[float]:
        """Train with sampled softmax; returns the per-epoch mean loss."""
        rng = np.random.default_rng(seed)
        loss_fn = SampledSoftmaxLoss()
        optimizer = Adam(self.parameters(), lr=lr)
        targets = np.asarray(positives, dtype=np.int64)
        num_samples = targets.shape[0]
        demo = np.asarray(demographics, dtype=np.int64)
        epoch_losses: List[float] = []
        for _ in range(epochs):
            order = rng.permutation(num_samples)
            batch_losses: List[float] = []
            for start in range(0, num_samples, batch_size):
                batch = order[start : start + batch_size]
                batch_histories = [histories[index] for index in batch]
                batch_demo = demo[batch]
                batch_targets = targets[batch]
                negatives = rng.integers(
                    0, self.config.num_items, size=(batch.shape[0], num_negatives)
                )
                candidate_ids = np.concatenate(
                    [batch_targets[:, None], negatives], axis=1
                )
                optimizer.zero_grad()
                users = self.user_embedding(batch_histories, batch_demo)
                candidates = self.item_embeddings.weight.data[candidate_ids]
                loss = loss_fn(users, candidates)
                grad_users, grad_items = loss_fn.backward()
                self._backward_tower(grad_users)
                flat_ids = candidate_ids.reshape(-1)
                flat_grads = grad_items.reshape(-1, self.config.embedding_dim)
                np.add.at(self.item_embeddings.weight.grad, flat_ids, flat_grads)
                optimizer.step()
                batch_losses.append(loss)
            epoch_losses.append(float(np.mean(batch_losses)))
        return epoch_losses

    def item_table(self) -> np.ndarray:
        """The trained item embedding matrix (the ItET contents)."""
        return self.item_embeddings.weight.data.copy()


class YouTubeDNNRanking(Module):
    """The ranking model: (user, candidate item, context) -> CTR."""

    def __init__(self, config: Optional[YouTubeDNNConfig] = None):
        super().__init__()
        self.config = config or YouTubeDNNConfig()
        rng = np.random.default_rng(self.config.seed + 1)
        dim = self.config.embedding_dim
        cardinalities = (
            self.config.demographic_cardinalities
            + self.config.ranking_extra_cardinalities
        )
        self.context_embeddings: List[Embedding] = []
        for index, cardinality in enumerate(cardinalities):
            table = Embedding(cardinality, dim, rng=rng)
            self._modules[f"context{index}"] = table
            self.context_embeddings.append(table)
        net_input = dim * (2 + len(cardinalities))  # user + item + contexts
        self.net = build_mlp(net_input, self.config.ranking_spec, head="none", rng=rng)

    def _features(
        self,
        user_embeddings: np.ndarray,
        item_embeddings: np.ndarray,
        context: np.ndarray,
    ) -> np.ndarray:
        users = np.atleast_2d(np.asarray(user_embeddings, dtype=np.float64))
        items = np.atleast_2d(np.asarray(item_embeddings, dtype=np.float64))
        ctx = np.asarray(context, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("user and item embedding batches must match")
        if ctx.ndim != 2 or ctx.shape[1] != len(self.context_embeddings):
            raise ValueError(
                f"context must be (batch, {len(self.context_embeddings)})"
            )
        parts = [users, items]
        for column, table in enumerate(self.context_embeddings):
            parts.append(table.weight.data[ctx[:, column]])
        return np.concatenate(parts, axis=1)

    def logits(
        self,
        user_embeddings: np.ndarray,
        item_embeddings: np.ndarray,
        context: np.ndarray,
    ) -> np.ndarray:
        """Raw CTR logits for (user, item, context) triples."""
        return self.net(self._features(user_embeddings, item_embeddings, context)).reshape(-1)

    def predict_ctr(
        self,
        user_embeddings: np.ndarray,
        item_embeddings: np.ndarray,
        context: np.ndarray,
    ) -> np.ndarray:
        """Click-through-rate predictions in [0, 1]."""
        scores = self.logits(user_embeddings, item_embeddings, context)
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -60.0, 60.0)))

    def train_ctr(
        self,
        user_embeddings: np.ndarray,
        item_embeddings: np.ndarray,
        context: np.ndarray,
        clicks: np.ndarray,
        epochs: int = 5,
        batch_size: int = 128,
        lr: float = 0.01,
        seed: int = 0,
    ) -> List[float]:
        """Train the MLP with BCE on observed clicks (embeddings are fixed
        inputs here; the context tables train end to end)."""
        rng = np.random.default_rng(seed)
        loss_fn = BCEWithLogitsLoss()
        optimizer = Adam(self.parameters(), lr=lr)
        labels = np.asarray(clicks, dtype=np.float64).reshape(-1)
        users = np.atleast_2d(user_embeddings)
        items = np.atleast_2d(item_embeddings)
        ctx = np.asarray(context, dtype=np.int64)
        num_samples = labels.shape[0]
        epoch_losses: List[float] = []
        for _ in range(epochs):
            order = rng.permutation(num_samples)
            batch_losses: List[float] = []
            for start in range(0, num_samples, batch_size):
                batch = order[start : start + batch_size]
                optimizer.zero_grad()
                features = self._features(users[batch], items[batch], ctx[batch])
                logits = self.net(features).reshape(-1)
                loss = loss_fn(logits, labels[batch])
                grad_logits = loss_fn.backward().reshape(-1, 1)
                grad_features = self.net.backward(grad_logits)
                dim = self.config.embedding_dim
                for column, table in enumerate(self.context_embeddings):
                    segment = grad_features[:, dim * (column + 2) : dim * (column + 3)]
                    np.add.at(table.weight.grad, ctx[batch][:, column], segment)
                optimizer.step()
                batch_losses.append(loss)
            epoch_losses.append(float(np.mean(batch_losses)))
        return epoch_losses
