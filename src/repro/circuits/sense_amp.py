"""Sense-amplifier models for the CMA periphery (Fig. 3(c)).

The CMA owns two sets of sense amplifiers:

* :class:`CAMSenseAmp` -- one per row, attached to the matchline.  In
  threshold-match mode it compares the row's aggregate mismatch current
  against the dummy-cell reference and outputs ``match`` when the current is
  below the reference (i.e. Hamming distance <= threshold).
* :class:`RAMSenseAmp` -- one per column, attached to the bitline, used in
  RAM mode for lookups and by the GPCiM accumulator for in-memory adds.

Both are behavioural: they produce correct digital decisions from the analog
cell currents, and expose per-decision energy so array totals can be built
up from first principles (and cross-checked against the pinned Table II
figures in :mod:`repro.circuits.foms`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["CAMSenseAmp", "RAMSenseAmp", "PriorityEncoder"]


@dataclass(frozen=True)
class CAMSenseAmp:
    """Threshold-match matchline sense amplifier.

    Attributes
    ----------
    energy_per_decision_pj:
        Energy of one compare decision (part of the array search FoM).
    decision_latency_ns:
        Time to resolve the matchline state after searchline assertion.
    """

    energy_per_decision_pj: float = 0.01
    decision_latency_ns: float = 0.2

    def decide(self, mismatch_current_ma: float, reference_current_ma: float) -> bool:
        """True (match) when the row current is below the reference."""
        if reference_current_ma < 0.0:
            raise ValueError("reference current must be non-negative")
        return mismatch_current_ma < reference_current_ma

    def decide_rows(
        self,
        row_currents_ma: Sequence[float],
        reference_current_ma: float,
    ) -> np.ndarray:
        """Vectorised decision over all matchlines of an array."""
        currents = np.asarray(row_currents_ma, dtype=np.float64)
        return currents < reference_current_ma


@dataclass(frozen=True)
class RAMSenseAmp:
    """Bitline sense amplifier for RAM-mode reads.

    The GPCiM mode reuses the same amplifier with multiple references to
    distinguish the (0, 1, 2) possible numbers of conducting cells when two
    wordlines are activated simultaneously -- this is how in-memory AND/OR
    (and from them, addition) are produced (Sec. II-B).
    """

    energy_per_bit_pj: float = 0.0125
    read_latency_ns: float = 0.3
    reference_low_ma: float = 0.025
    reference_high_ma: float = 0.075

    def sense_bit(self, bitline_current_ma: float) -> int:
        """Single-wordline read: one reference, binary decision."""
        return 1 if bitline_current_ma > self.reference_low_ma else 0

    def sense_dual(self, bitline_current_ma: float) -> int:
        """Dual-wordline read: count conducting cells (0, 1 or 2).

        Two references split the current range into three regions; the
        result feeds the in-memory logic: ``count == 2`` is AND,
        ``count >= 1`` is OR, ``count == 1`` is XOR.
        """
        if bitline_current_ma > self.reference_high_ma:
            return 2
        if bitline_current_ma > self.reference_low_ma:
            return 1
        return 0


class PriorityEncoder:
    """Priority encoder on the match flags (Fig. 3(c)).

    After a threshold search, potentially many rows match; the encoder
    serialises their indices (lowest row first), which is how the candidate
    item IDs are drained into the item buffer in step (1d*).
    """

    def __init__(self, energy_per_index_pj: float = 0.05, latency_per_index_ns: float = 0.1):
        self.energy_per_index_pj = energy_per_index_pj
        self.latency_per_index_ns = latency_per_index_ns

    def encode(self, match_flags: Sequence[bool]) -> list:
        """Return matching row indices in priority (ascending) order."""
        flags = np.asarray(match_flags, dtype=bool)
        return [int(index) for index in np.flatnonzero(flags)]

    def first(self, match_flags: Sequence[bool]) -> int:
        """Index of the highest-priority match, or -1 when none match."""
        matches = self.encode(match_flags)
        return matches[0] if matches else -1
