"""Circuit-level substrate: FeFET devices, cells, sense amps, synthesis, FoMs.

This package replaces the paper's HSPICE + Cadence flow (Sec. IV-A) with
behavioural device/cell models plus a structural synthesis estimator, both
calibrated so the array-level figures of merit land on the published
Table II (see :mod:`repro.circuits.foms`).
"""

from repro.circuits.fefet import FeFET, FeFETParams, memory_window
from repro.circuits.cells import TCAMCell, RAMCell, DummyReferenceCell, TernaryValue
from repro.circuits.sense_amp import CAMSenseAmp, RAMSenseAmp, PriorityEncoder
from repro.circuits.synthesis import AdderTreeSynthesis, SerialBusSynthesis, SynthesisTech, NANGATE45
from repro.circuits.foms import (
    ArrayFoMs,
    TABLE_II,
    derive_foms,
    intra_mat_tree,
    intra_bank_tree,
)

__all__ = [
    "FeFET",
    "FeFETParams",
    "memory_window",
    "TCAMCell",
    "RAMCell",
    "DummyReferenceCell",
    "TernaryValue",
    "CAMSenseAmp",
    "RAMSenseAmp",
    "PriorityEncoder",
    "AdderTreeSynthesis",
    "SerialBusSynthesis",
    "SynthesisTech",
    "NANGATE45",
    "ArrayFoMs",
    "TABLE_II",
    "derive_foms",
    "intra_mat_tree",
    "intra_bank_tree",
]
