"""Array-level figures of merit (FoMs) -- the paper's Table II.

Everything above the array level in iMARS is evaluated compositionally from
a handful of per-operation (energy, latency) pairs:

========================  ==============  ============
Component / operation     Energy (pJ)     Latency (ns)
========================  ==============  ============
256x256 CMA   write       49.1            10.0
256x256 CMA   read        3.2             0.3
256x256 CMA   addition    108.0           8.1
256x256 CMA   search      13.8            0.2
Intra-mat adder tree add  137.0           14.7
Intra-bank adder tree add 956.0           44.2
256x128 crossbar MatMul   13.8            225.0
========================  ==============  ============

:data:`TABLE_II` pins these published values.  :func:`derive_foms` rebuilds
the adder-tree rows from the structural synthesis estimator (fitted to land
on the same two design points) so the design-space benches can move away
from the paper's (C=32, fan-in-4) configuration and still get consistent
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.circuits.synthesis import AdderTreeSynthesis, SynthesisTech, NANGATE45
from repro.energy.accounting import Cost

__all__ = [
    "ArrayFoMs",
    "TABLE_II",
    "INTRA_MAT_SPAN_MM",
    "INTRA_BANK_SPAN_MM",
    "derive_foms",
    "intra_mat_tree",
    "intra_bank_tree",
]

#: Physical span covered by the intra-mat adder tree (C adjacent CMAs).
INTRA_MAT_SPAN_MM = 0.4

#: Physical span covered by the intra-bank adder tree (across the bank's mats).
INTRA_BANK_SPAN_MM = 4.4


@dataclass(frozen=True)
class ArrayFoMs:
    """Per-operation costs of the iMARS building blocks (Table II).

    All fields are :class:`~repro.energy.accounting.Cost` values for a
    *single* invocation of the named operation on one array/tree.
    """

    cma_write: Cost = Cost(energy_pj=49.1, latency_ns=10.0)
    cma_read: Cost = Cost(energy_pj=3.2, latency_ns=0.3)
    cma_add: Cost = Cost(energy_pj=108.0, latency_ns=8.1)
    cma_search: Cost = Cost(energy_pj=13.8, latency_ns=0.2)
    intra_mat_add: Cost = Cost(energy_pj=137.0, latency_ns=14.7)
    intra_bank_add: Cost = Cost(energy_pj=956.0, latency_ns=44.2)
    crossbar_matmul: Cost = Cost(energy_pj=13.8, latency_ns=225.0)

    def as_table(self) -> dict:
        """Mapping used by the Table II reproduction bench."""
        return {
            "CMA write": self.cma_write,
            "CMA read": self.cma_read,
            "CMA addition": self.cma_add,
            "CMA search": self.cma_search,
            "Intra-mat adder tree": self.intra_mat_add,
            "Intra-bank adder tree": self.intra_bank_add,
            "Crossbar MatMul": self.crossbar_matmul,
        }

    def with_overrides(self, **costs: Cost) -> "ArrayFoMs":
        """Return a copy with selected FoMs replaced (ablation hook)."""
        return replace(self, **costs)


#: The published Table II numbers -- default FoMs everywhere in the repo.
TABLE_II = ArrayFoMs()


def intra_mat_tree(fan_in: int, width_bits: int = 256, tech: SynthesisTech = NANGATE45) -> AdderTreeSynthesis:
    """Intra-mat adder tree for a mat of ``fan_in`` CMAs.

    The physical span scales linearly with the number of aggregated CMAs,
    normalised so the paper's C=32 point spans :data:`INTRA_MAT_SPAN_MM`.
    """
    if fan_in < 2:
        raise ValueError(f"intra-mat fan-in must be >= 2, got {fan_in}")
    span = INTRA_MAT_SPAN_MM * fan_in / 32.0
    return AdderTreeSynthesis(fan_in=fan_in, width_bits=width_bits, span_mm=span, tech=tech)


def intra_bank_tree(fan_in: int, width_bits: int = 256, tech: SynthesisTech = NANGATE45) -> AdderTreeSynthesis:
    """Intra-bank adder tree with the given fan-in.

    The span covers the bank's mats regardless of fan-in (the tree sits at
    the bank periphery and reaches the same mats), so only the logic term
    varies with fan-in -- larger fan-in amortises the long wires over more
    operands per invocation.
    """
    if fan_in < 2:
        raise ValueError(f"intra-bank fan-in must be >= 2, got {fan_in}")
    return AdderTreeSynthesis(
        fan_in=fan_in, width_bits=width_bits, span_mm=INTRA_BANK_SPAN_MM, tech=tech
    )


def derive_foms(
    intra_mat_fan_in: int = 32,
    intra_bank_fan_in: int = 4,
    width_bits: int = 256,
    base: ArrayFoMs = TABLE_II,
    tech: SynthesisTech = NANGATE45,
) -> ArrayFoMs:
    """Rebuild the adder-tree FoMs from the synthesis estimator.

    With the default (paper) parameters this returns values within ~2% of
    :data:`TABLE_II`; with swept fan-ins it extrapolates consistently,
    which is what the A1 design-space bench uses.
    """
    mat_tree = intra_mat_tree(intra_mat_fan_in, width_bits, tech)
    bank_tree = intra_bank_tree(intra_bank_fan_in, width_bits, tech)
    return base.with_overrides(
        intra_mat_add=mat_tree.add_cost(),
        intra_bank_add=bank_tree.add_cost(),
    )
