"""FeFET memory-cell models used inside the CMA (Sec. III-A1).

Three cells appear in the iMARS CMA design (following paper refs. [8], [9]):

* :class:`TCAMCell` -- a 2-FeFET ternary CAM cell.  Each cell stores a bit or
  a don't-care and, during a search, conditionally discharges the matchline
  when the query bit mismatches the stored bit (an XOR, sensed as a
  wired-AND along the row).
* :class:`RAMCell` -- a 1T+1FeFET random-access cell used in RAM mode for
  embedding-table lookups.
* :class:`DummyReferenceCell` -- the 1T+1FeFET dummy cell that generates the
  reference current for the threshold-match CAM sense amplifier.  Its bias
  is adjustable, which is how iMARS tunes the Hamming-distance sensitivity
  of the nearest-neighbour search.

The cells are *functional* models (bit-accurate behaviour plus analog match
currents derived from :mod:`repro.circuits.fefet`); their energy/latency
contributions are aggregated at the array level by
:mod:`repro.circuits.foms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from repro.circuits.fefet import FeFET, FeFETParams

__all__ = ["TernaryValue", "TCAMCell", "RAMCell", "DummyReferenceCell"]


class TernaryValue(Enum):
    """Stored state of a TCAM cell: 0, 1, or don't-care (X)."""

    ZERO = 0
    ONE = 1
    DONT_CARE = 2

    @classmethod
    def from_bit(cls, bit: int) -> "TernaryValue":
        if bit == 0:
            return cls.ZERO
        if bit == 1:
            return cls.ONE
        raise ValueError(f"bit must be 0 or 1, got {bit}")


@dataclass(frozen=True)
class CellBias:
    """Search/read bias point shared by the cell models."""

    search_v: float = 1.0
    read_v: float = 1.0
    vds_v: float = 0.1


class TCAMCell:
    """2-FeFET ternary CAM cell.

    The two FeFETs store complementary values (``d`` and ``not d``).  During
    a search the true searchline drives one device and the complement
    searchline the other; a *mismatch* turns on a low-VT device under a high
    searchline and discharges the matchline.  Storing both devices in the
    high-VT state encodes don't-care (the cell never discharges).
    """

    def __init__(
        self,
        params: Optional[FeFETParams] = None,
        bias: Optional[CellBias] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng(0)
        self._true_device = FeFET(params, rng=rng)
        self._complement_device = FeFET(params, rng=rng)
        self._bias = bias or CellBias()
        self._stored = TernaryValue.DONT_CARE
        self.write(TernaryValue.DONT_CARE)

    @property
    def stored(self) -> TernaryValue:
        return self._stored

    def write(self, value: TernaryValue) -> None:
        """Program the complementary FeFET pair for *value*.

        ``ONE``  -> true device low-VT, complement high-VT.
        ``ZERO`` -> true device high-VT, complement low-VT.
        ``X``    -> both high-VT (cell can never pull the matchline down).
        """
        if value is TernaryValue.ONE:
            self._true_device.program()
            self._complement_device.erase()
        elif value is TernaryValue.ZERO:
            self._true_device.erase()
            self._complement_device.program()
        elif value is TernaryValue.DONT_CARE:
            self._true_device.erase()
            self._complement_device.erase()
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unsupported ternary value: {value}")
        self._stored = value

    def mismatch_current_ma(self, query_bit: int) -> float:
        """Matchline discharge current for *query_bit* (0 on a match).

        In NOR-type CAM sensing the matchline current is the sum of the
        per-cell mismatch currents, so a row's analog Hamming distance is
        ``sum(cell.mismatch_current_ma(q))`` -- exactly what the
        threshold-match sense amplifier compares against the dummy-cell
        reference.
        """
        if query_bit not in (0, 1):
            raise ValueError(f"query bit must be 0 or 1, got {query_bit}")
        search = self._bias.search_v
        if query_bit == 1:
            # Complement searchline high: the complement device conducts
            # when it is low-VT, i.e. when the cell stores ZERO.
            return self._complement_device.read_current_ma(search, self._bias.vds_v)
        return self._true_device.read_current_ma(search, self._bias.vds_v)

    def matches(self, query_bit: int) -> bool:
        """Digital view: True when the cell does not discharge the matchline."""
        if self._stored is TernaryValue.DONT_CARE:
            return True
        return self._stored.value == query_bit


class RAMCell:
    """1T+1FeFET random-access cell used by the CMA's RAM mode."""

    def __init__(
        self,
        params: Optional[FeFETParams] = None,
        bias: Optional[CellBias] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self._device = FeFET(params, rng=rng or np.random.default_rng(0))
        self._bias = bias or CellBias()

    def write(self, bit: int) -> None:
        self._device.write_bit(bit)

    def read(self) -> int:
        """Sense the stored bit by thresholding the read current."""
        current = self._device.read_current_ma(self._bias.read_v, self._bias.vds_v)
        return 1 if current > DummyReferenceCell().reference_current_ma() * 0.5 else 0

    def read_current_ma(self) -> float:
        return self._device.read_current_ma(self._bias.read_v, self._bias.vds_v)


class DummyReferenceCell:
    """Adjustable 1T+1FeFET reference-current generator (Sec. III-A1).

    "... a reference current generated by a dummy 1T+1FeFET cell, which can
    be adjusted to compensate for process variations or to change the
    sensitivity of the Hamming distance in the NNS operation."

    The reference scales linearly with the programmed Hamming threshold:
    the CAM sense amplifier flags a row as a match when its total mismatch
    current is *below* ``threshold`` mismatching cells' worth of current.
    """

    def __init__(
        self,
        params: Optional[FeFETParams] = None,
        bias: Optional[CellBias] = None,
    ):
        self._device = FeFET(params)
        self._device.program()
        self._bias = bias or CellBias()

    def reference_current_ma(self, threshold_bits: float = 1.0) -> float:
        """Reference current equivalent to *threshold_bits* mismatches.

        The half-bit offset places the decision level between
        ``threshold_bits`` and ``threshold_bits + 1`` mismatching cells,
        giving a robust sensing margin.
        """
        if threshold_bits < 0.0:
            raise ValueError("threshold must be non-negative")
        unit = self._device.read_current_ma(self._bias.search_v, self._bias.vds_v)
        return (threshold_bits + 0.5) * unit
