"""Preisach-style ferroelectric FET (FeFET) compact device model.

The paper's array-level figures of merit (Table II) come from HSPICE
simulations that use the Preisach-based FeFET compact model of Ni et al.
(VLSI 2018, paper ref. [19]).  We reproduce the *behavioural* core of that
model: a ferroelectric capacitor whose polarisation follows a saturating
hysteresis loop, stacked on an underlying MOSFET whose threshold voltage is
shifted by the stored polarisation.

The model supports:

* ``apply_pulse`` -- drive the gate with a programming pulse; polarisation
  moves along the ascending/descending Preisach branch.
* ``program`` / ``erase`` -- saturating write pulses producing the low-VT
  ("1") and high-VT ("0") states used by the memory arrays.
* ``read_current`` -- drain current at a read bias, the quantity sensed by
  the CAM/RAM sense amplifiers.
* device-to-device variation hooks (sigma on coercive voltage and VT),
  which the CMA uses to justify the adjustable matching threshold
  ("... can be adjusted to compensate for process variations", Sec. III-A1).

The numerical constants are representative of the 45 nm FeFET literature the
paper builds on (Vc ~ 1 V across the FE layer, memory window ~ 1 V); the
architecture-level results consume only the derived array FoMs, which are
pinned to Table II in :mod:`repro.circuits.foms`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["FeFETParams", "FeFET", "memory_window"]


@dataclass(frozen=True)
class FeFETParams:
    """Physical parameters of the FeFET compact model.

    Attributes
    ----------
    ps_uc_cm2:
        Saturation polarisation in uC/cm^2.
    pr_uc_cm2:
        Remnant polarisation in uC/cm^2 (|P| left at zero bias after a
        saturating pulse).
    vc_v:
        Coercive voltage across the ferroelectric layer in volts.
    slope_v:
        Preisach branch steepness (volts); smaller is more abrupt switching.
    vt0_v:
        Threshold voltage of the underlying MOSFET at zero polarisation.
    window_v:
        Full memory window: VT(erased) - VT(programmed) at saturation.
    kp_ma_v2:
        Square-law transconductance parameter (mA/V^2) of the read
        transistor.
    vth_sigma_v:
        Device-to-device threshold-voltage variation (one sigma, volts).
    """

    ps_uc_cm2: float = 30.0
    pr_uc_cm2: float = 25.0
    vc_v: float = 1.0
    slope_v: float = 0.25
    vt0_v: float = 0.45
    window_v: float = 1.0
    kp_ma_v2: float = 0.10
    vth_sigma_v: float = 0.0

    def __post_init__(self) -> None:
        if self.ps_uc_cm2 <= 0.0:
            raise ValueError("saturation polarisation must be positive")
        if not 0.0 < self.pr_uc_cm2 <= self.ps_uc_cm2:
            raise ValueError("remnant polarisation must be in (0, Ps]")
        if self.vc_v <= 0.0 or self.slope_v <= 0.0:
            raise ValueError("coercive voltage and slope must be positive")
        if self.window_v <= 0.0:
            raise ValueError("memory window must be positive")


def _saturating_branch(voltage: float, params: FeFETParams, direction: float) -> float:
    """Polarisation on the saturated ascending (+1) / descending (-1) branch.

    Classic single-hysteron Preisach loop: P(V) = Ps * tanh((V -/+ Vc)/w).
    """
    return params.ps_uc_cm2 * math.tanh((voltage - direction * params.vc_v) / params.slope_v)


class FeFET:
    """A single FeFET with Preisach hysteresis state.

    The device tracks its current polarisation and moves along *minor loops*
    when driven with sub-saturating pulses: the polarisation update is the
    branch value scaled so that the history is respected (turning-point
    congruency, the property the Preisach construction guarantees).
    """

    def __init__(self, params: Optional[FeFETParams] = None, rng: Optional[np.random.Generator] = None):
        self.params = params or FeFETParams()
        self._rng = rng or np.random.default_rng(0)
        # Start erased (negative polarisation -> high VT -> stored "0").
        self._polarisation = -self.params.pr_uc_cm2
        self._vth_offset = (
            float(self._rng.normal(0.0, self.params.vth_sigma_v))
            if self.params.vth_sigma_v > 0.0
            else 0.0
        )

    # -- state --------------------------------------------------------------
    @property
    def polarisation_uc_cm2(self) -> float:
        """Current ferroelectric polarisation."""
        return self._polarisation

    @property
    def vth_v(self) -> float:
        """Effective threshold voltage under the stored polarisation.

        Linear mapping from normalised polarisation to VT shift across the
        memory window, centred on ``vt0``.
        """
        normalised = self._polarisation / self.params.ps_uc_cm2
        return self.params.vt0_v - 0.5 * self.params.window_v * normalised + self._vth_offset

    @property
    def stored_bit(self) -> int:
        """Digital interpretation of the state: 1 = low-VT (programmed)."""
        return 1 if self._polarisation > 0.0 else 0

    # -- programming --------------------------------------------------------
    def apply_pulse(self, amplitude_v: float) -> float:
        """Apply a gate programming pulse and return the new polarisation.

        Positive amplitudes push polarisation towards +Ps (ascending
        branch), negative towards -Ps (descending branch).  Sub-coercive
        pulses barely move the state -- the behaviour the paper relies on
        for non-destructive reads.
        """
        if amplitude_v >= 0.0:
            branch = _saturating_branch(amplitude_v, self.params, +1.0)
            self._polarisation = max(self._polarisation, branch)
        else:
            branch = _saturating_branch(amplitude_v, self.params, -1.0)
            self._polarisation = min(self._polarisation, branch)
        return self._polarisation

    def program(self) -> None:
        """Saturating positive pulse: low-VT state, stores logic 1."""
        self.apply_pulse(4.0 * self.params.vc_v)

    def erase(self) -> None:
        """Saturating negative pulse: high-VT state, stores logic 0."""
        self.apply_pulse(-4.0 * self.params.vc_v)

    def write_bit(self, bit: int) -> None:
        """Store a digital bit (1 -> program, 0 -> erase)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        if bit == 1:
            self.program()
        else:
            self.erase()

    # -- sensing ------------------------------------------------------------
    def read_current_ma(self, vgs_v: float = 1.0, vds_v: float = 0.1) -> float:
        """Drain current (mA) at a read bias, square-law triode model.

        This is the quantity compared against the dummy-cell reference in
        the CAM sense amplifier (Sec. III-A1).
        """
        overdrive = vgs_v - self.vth_v
        if overdrive <= 0.0:
            return 0.0
        if vds_v < overdrive:
            return self.params.kp_ma_v2 * (2.0 * overdrive - vds_v) * vds_v
        return self.params.kp_ma_v2 * overdrive * overdrive


def memory_window(params: Optional[FeFETParams] = None) -> float:
    """VT(erased) - VT(programmed) for saturating writes, in volts.

    A positive window is what makes single-transistor sensing possible; the
    paper's FeFET references report ~1 V at 45 nm.
    """
    device = FeFET(params)
    device.erase()
    vth_high = device.vth_v
    device.program()
    vth_low = device.vth_v
    return vth_high - vth_low
