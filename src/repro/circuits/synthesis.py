"""Adder-tree and interconnect synthesis cost estimator.

The paper synthesises the near-memory adder trees and the communication
network "in Verilog ... with Cadence Encounter RTL Compiler v14.10, with the
NanGate 45nm open-cell library" (Sec. IV-A).  Offline we replace that flow
with a first-order structural estimator in the logical-effort tradition:

* an adder tree with fan-in ``F`` over ``W``-bit operands needs ``F - 1``
  W-bit adders arranged in ``ceil(log2 F)`` levels;
* each adder level contributes a carry-propagation delay that grows with
  ``log2 W`` (carry-lookahead organisation) and an energy proportional to
  the number of full-adder cells;
* on top of the logic, a *wire* term models the physical span the tree must
  cover: intra-mat trees aggregate C adjacent CMAs (short span), the
  intra-bank tree aggregates mats across the whole bank (long span), which
  is why the fan-in-4 intra-bank tree in Table II is *slower and hungrier*
  than the fan-in-32 intra-mat tree.

Default technology constants are fitted so that the two design points the
paper reports land on Table II:

* intra-mat  tree (F=32, W=256, span 0.4 mm)  -> 137 pJ / 14.7 ns
* intra-bank tree (F=4,  W=256, span 4.4 mm)  -> 956 pJ / 44.2 ns

The estimator is exposed (rather than hard-coding the two numbers) so the
design-space ablation benches can sweep fan-in and span.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.energy.accounting import Cost

__all__ = ["SynthesisTech", "AdderTreeSynthesis", "SerialBusSynthesis", "NANGATE45"]


@dataclass(frozen=True)
class SynthesisTech:
    """Technology constants for the structural estimator (45 nm class).

    Attributes
    ----------
    fa_energy_pj:
        Energy of one full-adder cell evaluation.
    level_delay_ns:
        Base delay of one adder level for a 1-bit ripple segment; a W-bit
        carry-lookahead level costs ``level_delay_ns * log2(W)``.
    wire_energy_pj_per_bit_mm:
        Switching energy of routing one bit across one millimetre.
    wire_delay_ns_per_mm:
        Repeated-wire delay per millimetre.
    driver_energy_pj:
        Fixed cost of the output driver/register stage per operand.
    """

    fa_energy_pj: float = 0.005
    level_delay_ns: float = 0.2771
    wire_energy_pj_per_bit_mm: float = 0.842
    wire_delay_ns_per_mm: float = 9.04
    driver_energy_pj: float = 0.3


#: Default technology point (NanGate 45 nm class constants, fitted to Table II).
NANGATE45 = SynthesisTech()


@dataclass(frozen=True)
class AdderTreeSynthesis:
    """Structural model of a near-memory adder tree.

    Parameters
    ----------
    fan_in:
        Number of W-bit operands summed per invocation.
    width_bits:
        Operand width (256 in iMARS: 32 dims x int8).
    span_mm:
        Physical distance the tree's inputs span; dominates the intra-bank
        tree where operands travel across mats.
    tech:
        Technology constants.
    """

    fan_in: int
    width_bits: int = 256
    span_mm: float = 0.4
    tech: SynthesisTech = NANGATE45

    def __post_init__(self) -> None:
        if self.fan_in < 2:
            raise ValueError(f"adder tree fan-in must be >= 2, got {self.fan_in}")
        if self.width_bits < 1:
            raise ValueError(f"operand width must be >= 1, got {self.width_bits}")
        if self.span_mm < 0.0:
            raise ValueError("span must be non-negative")

    @property
    def num_adders(self) -> int:
        """A fan-in-F tree needs F-1 two-input adders."""
        return self.fan_in - 1

    @property
    def num_levels(self) -> int:
        """Depth of the balanced binary reduction."""
        return max(1, math.ceil(math.log2(self.fan_in)))

    def add_cost(self) -> Cost:
        """Energy/latency of one tree invocation (sum of ``fan_in`` operands)."""
        logic_energy = self.num_adders * self.width_bits * self.tech.fa_energy_pj
        driver_energy = self.fan_in * self.tech.driver_energy_pj
        wire_energy = self.width_bits * self.span_mm * self.tech.wire_energy_pj_per_bit_mm
        level_delay = self.tech.level_delay_ns * math.log2(max(2, self.width_bits))
        logic_delay = self.num_levels * level_delay
        wire_delay = self.span_mm * self.tech.wire_delay_ns_per_mm
        return Cost(
            energy_pj=logic_energy + driver_energy + wire_energy,
            latency_ns=logic_delay + wire_delay,
        )

    def area_fa_equivalents(self) -> float:
        """Area proxy: full-adder-cell equivalents (used by DSE reports)."""
        return float(self.num_adders * self.width_bits)


@dataclass(frozen=True)
class SerialBusSynthesis:
    """Cost model of a serialised on-chip bus (RSC bus / IBC network).

    Data on both networks "is serialized to minimize the wiring overhead"
    (Sec. III-A3); a transfer of ``payload_bits`` over a ``width_bits`` bus
    takes ``ceil(payload / width)`` beats.
    """

    width_bits: int
    length_mm: float = 2.0
    beat_ns: float = 0.5
    tech: SynthesisTech = NANGATE45

    def __post_init__(self) -> None:
        if self.width_bits < 1:
            raise ValueError(f"bus width must be >= 1, got {self.width_bits}")
        if self.length_mm < 0.0:
            raise ValueError("bus length must be non-negative")
        if self.beat_ns <= 0.0:
            raise ValueError("beat period must be positive")

    def beats_for(self, payload_bits: int) -> int:
        """Number of bus beats needed to move *payload_bits*."""
        if payload_bits < 0:
            raise ValueError("payload must be non-negative")
        if payload_bits == 0:
            return 0
        return math.ceil(payload_bits / self.width_bits)

    def transfer_cost(self, payload_bits: int) -> Cost:
        """Energy/latency of one serialised transfer."""
        beats = self.beats_for(payload_bits)
        energy = payload_bits * self.length_mm * self.tech.wire_energy_pj_per_bit_mm
        latency = beats * self.beat_ns + (self.length_mm * self.tech.wire_delay_ns_per_mm if beats else 0.0)
        return Cost(energy_pj=energy, latency_ns=latency)
