"""Synthetic MovieLens-1M workload (users, items, histories, demographics).

The real MovieLens-1M dataset is not available offline; this generator
produces a dataset with the *same shape statistics*:

* 6040 users, 3000 items (the ItET row count of Table I), embedding dim 32;
* 5 filtering UIETs (user_id 6040, gender 3, age 7, occupation 21,
  zip_region 450) shared with ranking, plus one ranking-only UIET
  (hist_genre 18) -- 6 ranking UIETs with 5 shared, exactly Table I's
  "# UIET (Shared): 5 (5) / 6 (5)";
* watch histories sampled from a latent-factor ground truth with Zipfian
  popularity, leave-one-out split (the last watch is the test positive) --
  the standard MovieLens retrieval protocol.

These cardinalities reproduce the published memory mapping (7 banks,
8 mats, 54 CMAs) through :class:`repro.core.mapping.WorkloadMapping`; the
paper does not list per-ET sizes, so MovieLens-realistic values matching
the aggregate counts were chosen (documented in EXPERIMENTS.md).

A ``scale`` parameter shrinks users/items proportionally for fast tests
while keeping the full-size table *specs* (used by the mapping experiments)
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.mapping import FILTERING, RANKING, EmbeddingTableSpec
from repro.data.synthetic import LatentFactorModel

__all__ = [
    "MOVIELENS_NUM_USERS",
    "MOVIELENS_NUM_ITEMS",
    "movielens_table_specs",
    "MovieLensDataset",
]

MOVIELENS_NUM_USERS = 6040
MOVIELENS_NUM_ITEMS = 3000

#: (name, cardinality, stages, pooling factor) for the MovieLens UIETs.
_UIET_LAYOUT: Tuple[Tuple[str, int, frozenset, int], ...] = (
    ("user_id", MOVIELENS_NUM_USERS, frozenset({FILTERING, RANKING}), 1),
    ("gender", 3, frozenset({FILTERING, RANKING}), 1),
    ("age", 7, frozenset({FILTERING, RANKING}), 1),
    ("occupation", 21, frozenset({FILTERING, RANKING}), 1),
    ("zip_region", 450, frozenset({FILTERING, RANKING}), 1),
    ("hist_genre", 18, frozenset({RANKING}), 1),
)


def movielens_table_specs(history_pooling: int = 10) -> List[EmbeddingTableSpec]:
    """Full-scale embedding-table specs for the MovieLens workload.

    ``history_pooling`` is the worst-case number of history lookups pooled
    per query in the ItET (the paper's worst-case single-array assumption,
    Sec. IV-C1).
    """
    specs = [
        EmbeddingTableSpec(
            name=name,
            num_entries=cardinality,
            kind="uiet",
            stages=stages,
            pooling_factor=pooling,
        )
        for name, cardinality, stages, pooling in _UIET_LAYOUT
    ]
    specs.append(
        EmbeddingTableSpec(
            name="item",
            num_entries=MOVIELENS_NUM_ITEMS,
            kind="itet",
            stages=frozenset({FILTERING, RANKING}),
            pooling_factor=history_pooling,
        )
    )
    return specs


@dataclass
class MovieLensDataset:
    """Synthetic MovieLens-1M-shaped interaction data.

    Attributes populated by construction:

    * ``histories`` -- per-user training watch history (list of item ids);
    * ``test_positives`` -- the held-out next watch per user;
    * ``demographics`` -- (users, 5) integer matrix over the UIET
      cardinalities;
    * ``ranking_context`` -- (users, 6) matrix adding the ranking-only
      feature.
    """

    num_users: int = MOVIELENS_NUM_USERS
    num_items: int = MOVIELENS_NUM_ITEMS
    history_length: int = 10
    latent_dim: int = 16
    exploration: float = 0.55
    seed: int = 0
    scale: float = 1.0

    histories: List[List[int]] = field(init=False)
    test_positives: np.ndarray = field(init=False)
    demographics: np.ndarray = field(init=False)
    ranking_context: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        if self.scale < 1.0:
            self.num_users = max(20, int(self.num_users * self.scale))
            self.num_items = max(50, int(self.num_items * self.scale))
        if self.history_length < 1:
            raise ValueError("history length must be positive")
        self.model = LatentFactorModel(
            num_users=self.num_users,
            num_items=self.num_items,
            latent_dim=self.latent_dim,
            seed=self.seed,
        )
        if not 0.0 <= self.exploration < 1.0:
            raise ValueError("exploration rate must be in [0, 1)")
        rng = np.random.default_rng(self.seed + 1)
        self.histories = []
        positives = np.zeros(self.num_users, dtype=np.int64)
        for user in range(self.num_users):
            # Sample history_length + 1 interactions; the last is the
            # leave-one-out test positive.  With probability ``exploration``
            # the test positive is an exploratory (uniform) watch instead of
            # a preference-driven one -- real next-watch behaviour has a
            # large unpredictable component, and this knob puts the hit
            # rate in the regime the paper reports for MovieLens-1M.
            sequence = self.model.sample_history(user, self.history_length + 1)
            self.histories.append([int(item) for item in sequence[:-1]])
            if rng.random() < self.exploration:
                positives[user] = rng.integers(0, self.num_items)
            else:
                positives[user] = sequence[-1]
        self.test_positives = positives
        cardinalities = [layout[1] for layout in _UIET_LAYOUT]
        demo_columns = []
        for cardinality in cardinalities[:5]:
            if cardinality == self.num_users and self.scale == 1.0:
                demo_columns.append(np.arange(self.num_users, dtype=np.int64))
            elif cardinality >= self.num_users:
                demo_columns.append(np.arange(self.num_users, dtype=np.int64))
            else:
                demo_columns.append(
                    rng.integers(0, cardinality, size=self.num_users, dtype=np.int64)
                )
        self.demographics = np.stack(demo_columns, axis=1)
        genre = rng.integers(0, cardinalities[5], size=self.num_users, dtype=np.int64)
        self.ranking_context = np.concatenate(
            [self.demographics, genre[:, None]], axis=1
        )

    # -- protocol helpers ----------------------------------------------------------
    def train_examples(self) -> Tuple[List[List[int]], np.ndarray]:
        """Leave-one-out training pairs: (history minus last, last watch).

        The *test* positive never appears in training; the model learns
        from each user's earlier transitions only.
        """
        inputs = [history[:-1] for history in self.histories]
        targets = np.array([history[-1] for history in self.histories], dtype=np.int64)
        return inputs, targets

    def test_users(self, limit: int = None) -> np.ndarray:
        """User indices evaluated by the hit-rate protocol."""
        users = np.arange(self.num_users, dtype=np.int64)
        return users if limit is None else users[:limit]

    def ranking_clicks(self, pairs_per_user: int = 4) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample (user, item, click) CTR training triples."""
        if pairs_per_user < 1:
            raise ValueError("pairs per user must be positive")
        rng = np.random.default_rng(self.seed + 2)
        users = np.repeat(np.arange(self.num_users), pairs_per_user)
        items = rng.integers(0, self.num_items, size=users.shape[0])
        clicks = np.array(
            [self.model.sample_click(int(u), int(i)) for u, i in zip(users, items)],
            dtype=np.int64,
        )
        return users, items, clicks
