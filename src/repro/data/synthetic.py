"""Shared synthetic-data machinery: Zipfian popularity + latent factors.

The real MovieLens-1M and Criteo Kaggle datasets are not available offline,
so the generators in this package synthesise datasets with the *shape
statistics that the paper's results actually depend on*:

* embedding-table cardinalities match Table I (they drive the memory
  mapping, E2, and the ET-operation costs, E5);
* item popularity is Zipfian (drives realistic lookup locality);
* user-item interactions follow a latent-factor model, so a trained
  two-tower/DLRM model finds real structure and the accuracy experiment
  (E4) can measure how int8 quantisation and LSH signatures degrade it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["LatentFactorModel", "zipf_probabilities", "sample_zipf"]


def zipf_probabilities(num_items: int, exponent: float = 1.05) -> np.ndarray:
    """Normalised Zipf popularity over ``num_items`` ranks."""
    if num_items < 1:
        raise ValueError(f"item count must be positive, got {num_items}")
    if exponent <= 0.0:
        raise ValueError("Zipf exponent must be positive")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def sample_zipf(
    num_items: int,
    size: int,
    exponent: float = 1.05,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample item indices from a Zipf popularity distribution."""
    generator = rng or np.random.default_rng(0)
    probabilities = zipf_probabilities(num_items, exponent)
    return generator.choice(num_items, size=size, p=probabilities)


@dataclass
class LatentFactorModel:
    """Ground-truth preference model behind the synthetic interactions.

    Users and items carry latent vectors; the affinity of user u for item i
    is ``z_u . z_i + popularity_bias_i``.  Interactions are sampled with
    probability proportional to ``softmax(affinity / temperature)``, which
    yields sequences that a two-tower model can learn to predict -- the
    prerequisite for a meaningful hit-rate experiment.
    """

    num_users: int
    num_items: int
    latent_dim: int = 16
    popularity_exponent: float = 1.05
    temperature: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.num_users, self.num_items, self.latent_dim) < 1:
            raise ValueError("model dimensions must be positive")
        if self.temperature <= 0.0:
            raise ValueError("temperature must be positive")
        rng = np.random.default_rng(self.seed)
        self.user_factors = rng.normal(0.0, 1.0, size=(self.num_users, self.latent_dim))
        self.item_factors = rng.normal(0.0, 1.0, size=(self.num_items, self.latent_dim))
        popularity = zipf_probabilities(self.num_items, self.popularity_exponent)
        # Log-popularity bias, shuffled so that rank 1 is a random item.
        bias = np.log(popularity) - np.log(popularity).mean()
        rng.shuffle(bias)
        self.popularity_bias = 0.5 * bias
        self._rng = rng

    def affinities(self, user: int) -> np.ndarray:
        """Ground-truth affinity of *user* to every item."""
        if not 0 <= user < self.num_users:
            raise IndexError(f"user {user} out of range")
        return self.user_factors[user] @ self.item_factors.T + self.popularity_bias

    def interaction_probabilities(self, user: int) -> np.ndarray:
        """Softmax choice distribution over items for one user."""
        scores = self.affinities(user) / self.temperature
        scores -= scores.max()
        weights = np.exp(scores)
        return weights / weights.sum()

    def sample_history(self, user: int, length: int) -> np.ndarray:
        """Sample a watch history (with replacement, like repeat plays)."""
        if length < 1:
            raise ValueError("history length must be positive")
        probabilities = self.interaction_probabilities(user)
        return self._rng.choice(self.num_items, size=length, p=probabilities)

    def sample_click(self, user: int, item: int, base_rate: float = 0.2) -> int:
        """Bernoulli click for a (user, item) pair, CTR-style."""
        if not 0 <= item < self.num_items:
            raise IndexError(f"item {item} out of range")
        affinity = float(self.user_factors[user] @ self.item_factors[item])
        affinity += float(self.popularity_bias[item])
        logit = affinity + np.log(base_rate / (1.0 - base_rate))
        probability = 1.0 / (1.0 + np.exp(-logit))
        return int(self._rng.random() < probability)


def train_test_split_indices(
    num_samples: int,
    test_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Random (train, test) index split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test fraction must be in (0, 1)")
    generator = rng or np.random.default_rng(0)
    order = generator.permutation(num_samples)
    cut = int(round(num_samples * (1.0 - test_fraction)))
    cut = min(max(cut, 1), num_samples - 1)
    return np.sort(order[:cut]), np.sort(order[cut:])
