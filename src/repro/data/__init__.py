"""Synthetic datasets with MovieLens-1M / Criteo-Kaggle shape statistics."""

from repro.data.synthetic import LatentFactorModel, sample_zipf, zipf_probabilities
from repro.data.movielens import (
    MOVIELENS_NUM_ITEMS,
    MOVIELENS_NUM_USERS,
    MovieLensDataset,
    movielens_table_specs,
)
from repro.data.criteo import (
    CRITEO_NUM_DENSE,
    CRITEO_NUM_SPARSE,
    CRITEO_ROWS_PER_TABLE,
    CriteoDataset,
    criteo_table_specs,
)

__all__ = [
    "LatentFactorModel",
    "sample_zipf",
    "zipf_probabilities",
    "MOVIELENS_NUM_ITEMS",
    "MOVIELENS_NUM_USERS",
    "MovieLensDataset",
    "movielens_table_specs",
    "CRITEO_NUM_DENSE",
    "CRITEO_NUM_SPARSE",
    "CRITEO_ROWS_PER_TABLE",
    "CriteoDataset",
    "criteo_table_specs",
]
