"""Synthetic Criteo-Kaggle workload (CTR ranking with DLRM).

The Criteo Kaggle display-advertising dataset has 13 dense (integer) and 26
categorical features.  The paper hashes the categorical features so "the
maximum size of the ETs in the Criteo Kaggle is 30,000 entries" and maps
every feature to a 28,000-row embedding table (Table I's "# Row per ET:
28000"), giving 110 CMAs and 4 mats per feature bank.

This generator synthesises CTR data with the same shape: dense features are
log-normal-ish positives (like Criteo's count features), categorical
indices are Zipf-distributed over 28,000 buckets, and clicks follow a
sparse logistic ground truth so a DLRM can learn (the AUC sanity checks in
the integration tests rely on that structure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.mapping import RANKING, EmbeddingTableSpec
from repro.data.synthetic import zipf_probabilities

__all__ = [
    "CRITEO_NUM_DENSE",
    "CRITEO_NUM_SPARSE",
    "CRITEO_ROWS_PER_TABLE",
    "criteo_table_specs",
    "CriteoDataset",
]

CRITEO_NUM_DENSE = 13
CRITEO_NUM_SPARSE = 26
CRITEO_ROWS_PER_TABLE = 28000


def criteo_table_specs(rows_per_table: int = CRITEO_ROWS_PER_TABLE) -> List[EmbeddingTableSpec]:
    """The 26 ranking-only UIET specs of the Criteo workload (Table I)."""
    return [
        EmbeddingTableSpec(
            name=f"cat_{index:02d}",
            num_entries=rows_per_table,
            kind="uiet",
            stages=frozenset({RANKING}),
            pooling_factor=1,
        )
        for index in range(CRITEO_NUM_SPARSE)
    ]


@dataclass
class CriteoDataset:
    """Synthetic Criteo-shaped CTR samples.

    ``scale`` shrinks the table cardinalities and sample count for fast
    tests; the full-size specs for the mapping experiments come from
    :func:`criteo_table_specs` and are unaffected.
    """

    num_samples: int = 20000
    rows_per_table: int = CRITEO_ROWS_PER_TABLE
    num_dense: int = CRITEO_NUM_DENSE
    num_sparse: int = CRITEO_NUM_SPARSE
    seed: int = 0
    scale: float = 1.0

    dense: np.ndarray = field(init=False)
    sparse: np.ndarray = field(init=False)
    clicks: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        if self.scale < 1.0:
            self.num_samples = max(200, int(self.num_samples * self.scale))
            self.rows_per_table = max(100, int(self.rows_per_table * self.scale))
        rng = np.random.default_rng(self.seed)

        # Dense features: non-negative, heavy-tailed like Criteo counts,
        # then log1p-standardised (the common DLRM preprocessing).
        raw = rng.lognormal(mean=1.0, sigma=1.2, size=(self.num_samples, self.num_dense))
        logged = np.log1p(raw)
        self.dense = (logged - logged.mean(axis=0)) / (logged.std(axis=0) + 1e-9)

        # Categorical features: independent Zipf draws per feature.
        popularity = zipf_probabilities(self.rows_per_table, exponent=1.05)
        self.sparse = np.stack(
            [
                rng.choice(self.rows_per_table, size=self.num_samples, p=popularity)
                for _ in range(self.num_sparse)
            ],
            axis=1,
        ).astype(np.int64)

        # Ground-truth logistic model: a few informative dense weights plus
        # per-bucket categorical effects on a subset of features.
        dense_weights = rng.normal(0.0, 0.8, size=self.num_dense)
        informative = rng.choice(self.num_sparse, size=6, replace=False)
        bucket_effects = {
            int(feature): rng.normal(0.0, 1.0, size=self.rows_per_table)
            for feature in informative
        }
        logits = self.dense @ dense_weights - 1.2  # negative bias: clicks are rare-ish
        for feature, effects in bucket_effects.items():
            logits = logits + effects[self.sparse[:, feature]]
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        self.clicks = (rng.random(self.num_samples) < probabilities).astype(np.int64)

    def split(self, test_fraction: float = 0.2) -> Tuple[dict, dict]:
        """(train, test) dicts with dense/sparse/clicks arrays."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test fraction must be in (0, 1)")
        cut = int(round(self.num_samples * (1.0 - test_fraction)))
        cut = min(max(cut, 1), self.num_samples - 1)
        train = {
            "dense": self.dense[:cut],
            "sparse": self.sparse[:cut],
            "clicks": self.clicks[:cut],
        }
        test = {
            "dense": self.dense[cut:],
            "sparse": self.sparse[cut:],
            "clicks": self.clicks[cut:],
        }
        return train, test

    @property
    def click_rate(self) -> float:
        """Empirical CTR of the generated data."""
        return float(self.clicks.mean())
