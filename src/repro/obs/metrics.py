"""Counters, gauges, and fixed-bucket histograms for the serving plane.

The :class:`MetricsRegistry` is the aggregate companion to the span
stream in :mod:`repro.obs.tracer`: where the tracer answers "where did
*this* request's time go", the registry answers "what did the run look
like" -- queue depth, batch size, hit rate, shed/degrade volumes, and
per-stage latency + energy attribution joined against the
:class:`~repro.energy.accounting.Ledger`.

All three instrument kinds are label-aware: ``registry.counter("x")``
names a family, and ``inc``/``set``/``observe`` take ``**labels`` to
address one series inside it.  Families render to Prometheus text
exposition (``# HELP`` / ``# TYPE`` plus one line per labelled series,
histograms as cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``)
via :meth:`MetricsRegistry.render_prometheus`; ordering is sorted and
deterministic so two identical runs emit byte-identical textfiles.

Histograms use *fixed* bucket boundaries chosen at declaration time
(:data:`LATENCY_BUCKETS_S` and :data:`BATCH_SIZE_BUCKETS` cover the
serve path); fixed buckets keep aggregation O(1) per observation and
make textfiles from different runs directly comparable.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "BATCH_SIZE_BUCKETS",
    "ENERGY_BUCKETS_PJ",
]

# Serve-path latencies live between microseconds (a cached hit) and
# seconds (an overloaded queue); log-ish spacing covers both ends.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
    1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0,
)

BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

ENERGY_BUCKETS_PJ: Tuple[float, ...] = (
    1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(
        sorted((k, v if type(v) is str else str(v)) for k, v in labels.items())
    )


def _render_labels(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: float) -> str:
    """Prometheus-friendly number formatting (ints without the .0)."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _BoundCounter:
    """One counter series with its label key precomputed.

    The serve path increments the same few series hundreds of times per
    run; binding once turns each increment into a dict update instead
    of a sort-and-stringify of the label set.
    """

    __slots__ = ("_name", "_values", "_key")

    def __init__(self, name: str, values: Dict[_LabelKey, float], key: _LabelKey):
        self._name = name
        self._values = values
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self._name!r} cannot decrease ({amount})")
        self._values[self._key] = self._values.get(self._key, 0.0) + amount


class Counter:
    """A monotonically increasing sum, one value per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help_text = help_text
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def bind(self, **labels: object) -> _BoundCounter:
        """An O(1)-increment handle on one series (hot-path use)."""
        return _BoundCounter(self.name, self._values, _label_key(labels))

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set (handy in tests and summaries)."""
        return sum(self._values.values())

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} counter",
        ]
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_number(self._values[key])}"
            )
        return lines


class Gauge:
    """A point-in-time value that can move both ways (queue depth, knobs)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help_text = help_text
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels: object) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + delta

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} gauge",
        ]
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_number(self._values[key])}"
            )
        return lines


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "total")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets  # per-bucket (non-cumulative)
        self.count = 0
        self.total = 0.0


class _BoundHistogram:
    """One histogram series with its label key precomputed.

    The backing series is created lazily on the first observation, so
    binding a series that never observes anything (an idle stage) leaves
    no empty series in the rendered exposition.
    """

    __slots__ = ("_histogram", "_key", "_series")

    def __init__(self, histogram: "Histogram", key: _LabelKey):
        self._histogram = histogram
        self._key = key
        self._series = histogram._series.get(key)

    def observe(self, value: float) -> None:
        series = self._series
        if series is None:
            series = self._series = self._histogram._series.setdefault(
                self._key, _HistogramSeries(len(self._histogram.buckets) + 1)
            )
        series.bucket_counts[bisect.bisect_left(self._histogram.buckets, value)] += 1
        series.count += 1
        series.total += value


class Histogram:
    """Fixed-boundary histogram; renders cumulative Prometheus buckets."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str, buckets: Sequence[float]):
        if not buckets:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        bounds = [float(b) for b in buckets]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(bounds)
        self._series: Dict[_LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets) + 1)
        index = bisect.bisect_left(self.buckets, value)
        series.bucket_counts[index] += 1
        series.count += 1
        series.total += value

    def bind(self, **labels: object) -> _BoundHistogram:
        """An O(1)-observe handle on one series (hot-path use)."""
        return _BoundHistogram(self, _label_key(labels))

    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        return series.total if series else 0.0

    def mean(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        if not series or not series.count:
            return 0.0
        return series.total / series.count

    def quantile(self, q: float, **labels: object) -> float:
        """Bucket-resolution quantile (upper bound of the hit bucket).

        Coarse by construction -- exact tail percentiles stay in
        :class:`~repro.serving.slo.SLOReport`; this is the at-a-glance
        view over the exported textfile.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        series = self._series.get(_label_key(labels))
        if not series or not series.count:
            return 0.0
        target = q * series.count
        running = 0
        for index, bucket_count in enumerate(series.bucket_counts):
            running += bucket_count
            if running >= target:
                if index < len(self.buckets):
                    return self.buckets[index]
                return math.inf
        return math.inf

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} histogram",
        ]
        for key in sorted(self._series):
            series = self._series[key]
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, series.bucket_counts):
                cumulative += bucket_count
                le = _render_labels(key, [("le", _format_number(bound))])
                lines.append(f"{self.name}_bucket{le} {cumulative}")
            le = _render_labels(key, [("le", "+Inf")])
            lines.append(f"{self.name}_bucket{le} {series.count}")
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_number(series.total)}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {series.count}")
        return lines


class MetricsRegistry:
    """Declares and holds the run's metric families, in a stable order.

    Families are created idempotently: ``registry.counter("x", ...)``
    returns the existing family when ``"x"`` is already declared (and
    raises if it was declared as a different kind), so several sessions
    in one experiment can share a registry without coordination.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: Dict[str, object] = {}

    def _declare(self, name: str, factory, kind: str):
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} already declared as {existing.kind}, "
                    f"not {kind}"
                )
            return existing
        family = factory()
        self._families[name] = family
        return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._declare(name, lambda: Counter(name, help_text), "counter")

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._declare(name, lambda: Gauge(name, help_text), "gauge")

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._declare(
            name, lambda: Histogram(name, help_text, buckets), "histogram"
        )

    def get(self, name: str):
        """The declared family, or None."""
        return self._families.get(name)

    def families(self) -> Iterable[object]:
        for name in sorted(self._families):
            yield self._families[name]

    def record_ledger(
        self, ledger, *, process: str, prefix: str = "repro_energy"
    ) -> None:
        """Fold a session :class:`Ledger`'s per-category totals in.

        Emits ``{prefix}_category_pj{process=...,category=...}`` counters
        and a ``{prefix}_total_pj`` counter -- the joined energy
        attribution the ISSUE asks for, taken from the same ledger the
        experiments already report, so the textfile can never disagree
        with the console numbers.
        """
        if not self.enabled:
            return
        per_category = self.counter(
            f"{prefix}_category_pj",
            "Energy charged per ledger category, picojoules.",
        )
        total = self.counter(
            f"{prefix}_total_pj", "Total energy charged to the ledger, picojoules."
        )
        # Sum energy floats directly rather than composing Cost objects
        # via Ledger.by_category(): same entry order, same floats, but a
        # long serving ledger costs one addition per entry, not one
        # Cost construction per entry.
        totals: Dict[str, float] = {}
        for category, cost in ledger:
            totals[category] = totals.get(category, 0.0) + cost.energy_pj
        for category in sorted(totals):
            per_category.inc(totals[category], process=process, category=category)
            total.inc(totals[category], process=process)

    def record_price_ledger(
        self, price_ledger, *, process: str, prefix: str = "repro_dollars"
    ) -> None:
        """Fold a session :class:`~repro.serving.pricing.PriceLedger` in.

        The dollar twin of :meth:`record_ledger`: emits
        ``{prefix}_category{process=...,category=...}`` and a
        ``{prefix}_total`` counter from the same rows the session's
        price ledger reports, so the exported dollars can never
        disagree with the console numbers.
        """
        if not self.enabled:
            return
        per_category = self.counter(
            f"{prefix}_category",
            "Dollars charged per price-ledger category, USD.",
        )
        total = self.counter(
            f"{prefix}_total", "Total dollars charged to the price ledger, USD."
        )
        totals: Dict[str, float] = {}
        for category, dollars in price_ledger:
            totals[category] = totals.get(category, 0.0) + dollars
        for category in sorted(totals):
            per_category.inc(totals[category], process=process, category=category)
            total.inc(totals[category], process=process)

    def render_prometheus(self) -> str:
        """The full registry as Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""
