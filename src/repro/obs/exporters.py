"""Serialize traces and metrics to on-disk formats tools can open.

Three formats, one tracer:

* :func:`write_trace_jsonl` -- one JSON object per line (spans then
  instants, each via ``as_dict``); greppable, diffable, and the input
  format for the future workload analyzer.
* :func:`write_chrome_trace` -- Chrome trace-event JSON (``ph: "X"``
  complete events, microsecond timestamps).  Load it in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``: each serving
  session renders as a process, each span track (main / shard0..N /
  control) as a thread lane.
* :func:`write_prometheus` -- Prometheus text exposition of a
  :class:`~repro.obs.metrics.MetricsRegistry`, suitable for the
  textfile collector or plain reading.

:func:`write_trace` dispatches on file extension: ``.jsonl`` gets the
line-oriented format, anything else (the conventional ``.json``) the
Chrome format.  All writers are deterministic -- identical runs produce
byte-identical files.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = [
    "write_trace",
    "write_trace_jsonl",
    "write_chrome_trace",
    "chrome_trace_events",
    "write_prometheus",
]

# Span categories -> trace-viewer colour names, purely cosmetic.
_CHROME_COLOURS = {
    "admission": "thread_state_runnable",
    "queue": "thread_state_iowait",
    "cache": "thread_state_running",
    "serve": "rail_response",
    "kernel": "cq_build_running",
    "merge": "rail_animation",
    "control": "vsync_highlight_color",
}


def write_trace(path: str, tracer: Tracer) -> None:
    """Write ``tracer`` to ``path``, format chosen by extension.

    ``*.jsonl`` -> one-object-per-line JSONL; everything else -> Chrome
    trace-event JSON (open in Perfetto / ``chrome://tracing``).
    """
    if str(path).endswith(".jsonl"):
        write_trace_jsonl(path, tracer)
    else:
        write_chrome_trace(path, tracer)


def write_trace_jsonl(path: str, tracer: Tracer) -> None:
    """One JSON object per line: every span, then every instant."""
    with open(path, "w", encoding="utf-8") as handle:
        for span in tracer.spans:
            handle.write(json.dumps(span.as_dict(), sort_keys=True))
            handle.write("\n")
        for instant in tracer.instants:
            handle.write(json.dumps(instant.as_dict(), sort_keys=True))
            handle.write("\n")


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, object]]:
    """The tracer's content as a Chrome trace-event list.

    Processes (serving sessions) and threads (span tracks) are numbered
    in first-appearance order and named with ``"M"`` metadata events so
    the viewer shows session labels instead of bare pids.
    """
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, object]] = []

    def _pid(process: str) -> int:
        if process not in pids:
            pids[process] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[process],
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        return pids[process]

    def _tid(process: str, track: str) -> int:
        key = (process, track)
        if key not in tids:
            tids[key] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _pid(process),
                    "tid": tids[key],
                    "args": {"name": track},
                }
            )
        return tids[key]

    for span in tracer.spans:
        event: Dict[str, object] = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "pid": _pid(span.process),
            "tid": _tid(span.process, span.track),
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "args": dict(span.attrs),
        }
        colour = _CHROME_COLOURS.get(span.category)
        if colour is not None:
            event["cname"] = colour
        events.append(event)

    for instant in tracer.instants:
        events.append(
            {
                "name": instant.name,
                "cat": instant.category,
                "ph": "i",
                "s": "p",  # process-scoped instant marker
                "pid": _pid(instant.process),
                "tid": _tid(instant.process, instant.track),
                "ts": instant.time_s * 1e6,
                "args": dict(instant.attrs),
            }
        )

    return events


def write_chrome_trace(
    path: str, tracer: Tracer, *, metadata: Optional[Dict[str, object]] = None
) -> None:
    """Write Perfetto-loadable Chrome trace-event JSON."""
    document = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulation",
            "spans": len(tracer.spans),
            "instants": len(tracer.instants),
            "sampled_batches": tracer.sampled_batches,
            "seen_batches": tracer.seen_batches,
            **(metadata or {}),
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")


def write_prometheus(path: str, registry: MetricsRegistry) -> None:
    """Write the registry as a Prometheus text-exposition file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.render_prometheus())
