"""Span-based request tracing over simulation time.

A :class:`Tracer` records each request's journey through the serving
stack as a tree of :class:`Span`\\ s -- admission, scheduler queue,
replica routing, shard scatter/gather, engine kernels, merge -- plus
:class:`Instant` annotations for control-plane events (scale events,
spillover probes, batch retunes).  Timestamps are *simulation* seconds
(the same :mod:`repro.obs.clock` values the serving session computes
completions from), so a trace is a deterministic artefact of the seeded
run, not a profile of the host.

Recording model
---------------
The simulator always knows a stage's duration the moment it finishes
(stage costs are :class:`~repro.energy.accounting.Cost` values), so the
API favours *complete* spans:

* :meth:`Tracer.add` records a finished child of the innermost open span;
* :meth:`Tracer.open` / :meth:`Tracer.close` bracket a span whose
  children are recorded by nested components (the session opens the
  ``engine`` span, the shard router adds per-shard children inside it);
* :meth:`Tracer.instant` drops a zero-duration control-plane marker.

Sampling
--------
``sample_every=N`` traces every Nth dispatched batch (the session calls
:meth:`start_batch` per batch).  An unsampled batch records no spans --
every recording call is a cheap no-op -- which bounds tracing cost on
long runs.  Control-plane instants ignore sampling: scale events are too
rare and too load-bearing to drop.  ``enabled=False`` turns the whole
tracer off.  Tracing is observation only: it charges nothing to any
ledger and draws no randomness, so recommendations and energy totals
are bit-identical with tracing on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Span", "Instant", "Tracer", "span_children"]

_EPS = 1e-12  # float-noise tolerance when validating span nesting


@dataclass(slots=True, eq=False)
class Span:
    """One completed, timestamped stage of a request's journey.

    Plain slotted dataclass (not frozen): spans are constructed on the
    serve path's hot loop, and frozen-dataclass construction costs one
    ``object.__setattr__`` per field.  Treat instances as immutable.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_s: float
    end_s: float
    process: str
    track: str
    attrs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError(
                f"span {self.name!r} ends before it starts "
                f"({self.end_s} < {self.start_s})"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> Dict[str, object]:
        """The JSONL export schema of one span."""
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "process": self.process,
            "track": self.track,
            "attrs": dict(self.attrs),
        }


@dataclass(slots=True, eq=False)
class Instant:
    """A zero-duration control-plane annotation (scale event, retune...)."""

    name: str
    time_s: float
    category: str
    process: str
    track: str
    attrs: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """The JSONL export schema of one instant."""
        return {
            "type": "instant",
            "name": self.name,
            "time_s": self.time_s,
            "category": self.category,
            "process": self.process,
            "track": self.track,
            "attrs": dict(self.attrs),
        }


class _OpenSpan:
    __slots__ = ("span_id", "parent_id", "name", "category", "start_s", "track", "attrs")

    def __init__(self, span_id, parent_id, name, category, start_s, track, attrs):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start_s = start_s
        self.track = track
        self.attrs = attrs


class Tracer:
    """Collects spans and instants from one (or several) serving sessions.

    A tracer may serve several sessions in one run (the experiment
    studies trace every fleet they compare): :meth:`set_process` names
    the current session, and every span records the process it belongs
    to -- the Chrome exporter renders each process as its own lane group.
    """

    def __init__(self, enabled: bool = True, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.enabled = enabled
        self.sample_every = sample_every
        # Recording appends raw field tuples; Span objects are
        # materialized lazily by the ``spans`` property.  Object
        # construction is most of what recording a span would cost, and
        # readers (exporters, validation) only appear after the run.
        self._rows: List[Tuple] = []
        self._materialized: List[Span] = []
        self.instants: List[Instant] = []
        self.sampled_batches = 0
        self.seen_batches = 0
        self._process = "serve"
        self._next_id = 0
        self._stack: List[_OpenSpan] = []
        self._batch_active = False

    @property
    def spans(self) -> List[Span]:
        """Recorded spans, in record order (lazily materialized)."""
        rows = self._rows
        cache = self._materialized
        if len(cache) != len(rows):
            cache.extend(Span(*row) for row in rows[len(cache):])
        return cache

    # -- session / batch context ---------------------------------------

    def set_process(self, name: str) -> None:
        """Name the session whose spans follow (one lane group per name)."""
        if not name:
            raise ValueError("process name must be non-empty")
        self._process = name

    @property
    def process(self) -> str:
        return self._process

    def start_batch(self, batch_index: int) -> bool:
        """Begin one dispatched batch; returns True when it is sampled."""
        if self._stack:
            raise RuntimeError(
                f"previous batch left {len(self._stack)} span(s) open"
            )
        self.seen_batches += 1
        self._batch_active = (
            self.enabled and batch_index % self.sample_every == 0
        )
        if self._batch_active:
            self.sampled_batches += 1
        return self._batch_active

    def end_batch(self) -> None:
        """Finish the current batch (all opened spans must be closed)."""
        if self._stack:
            raise RuntimeError(
                f"end_batch with {len(self._stack)} span(s) still open"
            )
        self._batch_active = False

    @property
    def active(self) -> bool:
        """True while the current batch is being traced."""
        return self._batch_active

    # -- recording ------------------------------------------------------

    @property
    def cursor_s(self) -> float:
        """Start time of the innermost open span (0.0 outside any span).

        Nested components (shard routers, engines) place their child
        spans relative to this -- the moment their enclosing stage began.
        """
        return self._stack[-1].start_s if self._stack else 0.0

    @property
    def cursor_track(self) -> str:
        """Display track of the innermost open span (``"main"`` outside)."""
        return self._stack[-1].track if self._stack else "main"

    def open(
        self,
        name: str,
        start_s: float,
        *,
        category: str = "serve",
        track: Optional[str] = None,
        **attrs: object,
    ) -> Optional[int]:
        """Open a span whose end is not yet known; returns its id."""
        if not self._batch_active:
            return None
        span_id = self._next_id
        self._next_id += 1
        stack = self._stack
        top = stack[-1] if stack else None
        stack.append(
            _OpenSpan(
                span_id,
                top.span_id if top is not None else None,
                name,
                category,
                start_s,
                track if track is not None else (top.track if top is not None else "main"),
                attrs,  # the kwargs dict is fresh per call
            )
        )
        return span_id

    def close(self, end_s: float, **attrs: object) -> Optional[int]:
        """Close the innermost open span at ``end_s`` (extra attrs merge);
        returns the closed span's id."""
        if not self._batch_active:
            return None
        if not self._stack:
            raise RuntimeError("close() without a matching open()")
        pending = self._stack.pop()
        if end_s < pending.start_s:
            raise ValueError(
                f"span {pending.name!r} ends before it starts "
                f"({end_s} < {pending.start_s})"
            )
        if attrs:
            pending.attrs.update(attrs)
        self._rows.append(
            (
                pending.span_id,
                pending.parent_id,
                pending.name,
                pending.category,
                pending.start_s,
                end_s,
                self._process,
                pending.track,
                pending.attrs,
            )
        )
        return pending.span_id

    def add(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        category: str = "serve",
        track: Optional[str] = None,
        **attrs: object,
    ) -> Optional[int]:
        """Record a completed child of the innermost open span; returns
        the new span's id."""
        if not self._batch_active:
            return None
        if end_s < start_s:
            raise ValueError(
                f"span {name!r} ends before it starts ({end_s} < {start_s})"
            )
        span_id = self._next_id
        self._next_id += 1
        stack = self._stack
        top = stack[-1] if stack else None
        self._rows.append(
            (
                span_id,
                top.span_id if top is not None else None,
                name,
                category,
                start_s,
                end_s,
                self._process,
                track
                if track is not None
                else (top.track if top is not None else "main"),
                attrs,  # the kwargs dict is fresh per call
            )
        )
        return span_id

    def instant(
        self,
        name: str,
        time_s: float,
        *,
        category: str = "control",
        track: str = "control",
        **attrs: object,
    ) -> Optional[Instant]:
        """Record a control-plane marker (not gated by batch sampling)."""
        if not self.enabled:
            return None
        event = Instant(
            name=name,
            time_s=time_s,
            category=category,
            process=self._process,
            track=track,
            attrs=attrs,  # the kwargs dict is fresh per call
        )
        self.instants.append(event)
        return event

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def validate(self) -> None:
        """Check span-tree well-formedness; raises ValueError on defects.

        Every parent id must name a recorded span of the same process,
        and every child must lie within its parent's [start, end] window
        (up to float noise).  The exporter tests and the serving
        telemetry suite run this over whole sessions.
        """
        by_id: Dict[int, Span] = {span.span_id: span for span in self.spans}
        for span in self.spans:
            if span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None:
                raise ValueError(
                    f"span {span.name!r} has unknown parent {span.parent_id}"
                )
            if parent.process != span.process:
                raise ValueError(
                    f"span {span.name!r} crosses processes "
                    f"({parent.process!r} -> {span.process!r})"
                )
            if (
                span.start_s < parent.start_s - _EPS
                or span.end_s > parent.end_s + _EPS
            ):
                raise ValueError(
                    f"span {span.name!r} [{span.start_s}, {span.end_s}] "
                    f"escapes parent {parent.name!r} "
                    f"[{parent.start_s}, {parent.end_s}]"
                )


def span_children(spans: List[Span]) -> Dict[Optional[int], List[Span]]:
    """Group spans by parent id (None holds the roots), in record order."""
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    return children
