"""The telemetry bundle the serving stack threads through itself.

:class:`Telemetry` pairs one :class:`~repro.obs.tracer.Tracer` with one
:class:`~repro.obs.metrics.MetricsRegistry` so call sites pass a single
handle.  Sessions receive it as ``ServingSession(..., telemetry=...)``;
engines receive it by *attachment* (:func:`attach_telemetry` plants the
bundle as ``_obs`` on an engine and, duck-typed, on every shard and
replica under it), because engines are built by factories and swapped
live by scale events -- attachment after construction is the only hook
that survives both.

This module imports nothing from :mod:`repro.serving` or
:mod:`repro.core` -- the dependency arrow points serving -> obs only,
which is what lets the obs package stay importable everywhere
(experiments, benchmarks, future analyzers) without cycles.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.exporters import write_prometheus, write_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["Telemetry", "attach_telemetry"]


class Telemetry:
    """One run's tracer + metrics registry behind a single handle.

    ``enabled=False`` (or :meth:`Telemetry.disabled`) produces an inert
    bundle: every recording call short-circuits, nothing allocates per
    request, and -- by construction, since tracing neither charges
    ledgers nor draws randomness -- recommendations and energy totals
    are bit-identical either way.  ``sample_every=N`` traces every Nth
    dispatched batch while metrics still see every batch.
    """

    def __init__(self, enabled: bool = True, sample_every: int = 1):
        self.enabled = enabled
        self.tracer = Tracer(enabled=enabled, sample_every=sample_every)
        self.metrics = MetricsRegistry(enabled=enabled)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """An inert bundle, for call sites that want a non-None default."""
        return cls(enabled=False)

    def export(
        self,
        trace_out: Optional[str] = None,
        metrics_out: Optional[str] = None,
    ) -> None:
        """Write the trace and/or metrics files that were asked for.

        ``trace_out`` dispatches on extension (``.jsonl`` line format,
        otherwise Chrome trace-event JSON); ``metrics_out`` is always
        Prometheus text exposition.
        """
        if trace_out is not None:
            write_trace(trace_out, self.tracer)
        if metrics_out is not None:
            write_prometheus(metrics_out, self.metrics)

    def __repr__(self) -> str:
        return (
            f"Telemetry(enabled={self.enabled}, "
            f"spans={len(self.tracer.spans)}, "
            f"instants={len(self.tracer.instants)})"
        )


def attach_telemetry(engine, telemetry: Optional[Telemetry]) -> None:
    """Plant ``telemetry`` as ``_obs`` on an engine tree.

    Walks the serving topology duck-typed -- ``.shards`` on a sharded
    engine, ``.replicas`` on a replica group -- so one call covers a
    bare engine, a sharded engine, replica groups, and heterogeneous
    spillover fleets alike.  Passing ``None`` detaches.  The session
    re-invokes this after every live scale event, because scaling
    rebuilds the engine tree from the factory.
    """
    if engine is None:
        return
    engine._obs = telemetry
    for shard in getattr(engine, "shards", ()) or ():
        attach_telemetry(shard, telemetry)
    for replica in getattr(engine, "replicas", ()) or ():
        attach_telemetry(replica, telemetry)
