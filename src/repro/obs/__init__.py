"""Deterministic observability plane for the serving simulator.

Everything the serving stack knows about itself flows through here:

* :mod:`repro.obs.clock` -- :class:`SimClock`, the shared monotone
  simulation clock (bit-identical to the ``now += gap`` float loops it
  replaced);
* :mod:`repro.obs.tracer` -- :class:`Tracer`, span-based per-request
  tracing over sim time with batch sampling and control-plane instants;
* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms, joined against the energy
  :class:`~repro.energy.accounting.Ledger`;
* :mod:`repro.obs.exporters` -- JSONL traces, Perfetto-loadable Chrome
  trace-event JSON, Prometheus text exposition;
* :mod:`repro.obs.telemetry` -- :class:`Telemetry`, the bundle the
  session threads through schedulers/engines, and
  :func:`attach_telemetry` for planting it on live engine trees.

Design rules the rest of the repo relies on: obs imports nothing from
``repro.serving``/``repro.core`` (the dependency arrow points the other
way); tracing is observation only -- no ledger charges, no randomness --
so a traced run's recommendations and energy totals are bit-identical
to an untraced one (pinned by ``tests/serving/test_serving_telemetry.py``);
and all timestamps are simulation seconds, so exported artefacts are
reproducible run outputs, not host profiles.
"""

from repro.obs.clock import SimClock
from repro.obs.exporters import (
    chrome_trace_events,
    write_chrome_trace,
    write_prometheus,
    write_trace,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    ENERGY_BUCKETS_PJ,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.telemetry import Telemetry, attach_telemetry
from repro.obs.tracer import Instant, Span, Tracer, span_children

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "ENERGY_BUCKETS_PJ",
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "SimClock",
    "Span",
    "Telemetry",
    "Tracer",
    "attach_telemetry",
    "chrome_trace_events",
    "span_children",
    "write_chrome_trace",
    "write_prometheus",
    "write_trace",
    "write_trace_jsonl",
]
