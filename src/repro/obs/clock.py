"""Deterministic simulation clock shared by the serving stack.

Every timeline in the simulator -- traffic arrival processes, the
scheduler's engine-free clock, the session's stage boundaries -- is plain
float seconds advanced by non-negative deltas.  Before this module each
site kept its own ad-hoc ``now += gap`` arithmetic; :class:`SimClock`
centralises it with the two invariants the replay tests depend on:

* **monotone**: the clock never moves backwards (``advance`` rejects
  negative deltas, ``advance_to`` ignores times already in the past);
* **bit-deterministic**: ``advance`` performs exactly one float addition
  per call, in call order, so a refactored site produces bitwise the
  same timestamps as the ``now += gap`` loop it replaced.

The clock is simulation time, not wall-clock time: nothing here reads
``time.time()``.  The telemetry plane (:mod:`repro.obs.tracer`) stamps
every span from these values, which is why traces are reproducible
artefacts rather than profiles of the host machine.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotone float-seconds clock for discrete-event simulation."""

    __slots__ = ("_now_s",)

    def __init__(self, start_s: float = 0.0):
        if start_s < 0.0:
            raise ValueError(f"clock cannot start before zero, got {start_s}")
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        """The current simulation time in seconds."""
        return self._now_s

    def advance(self, delta_s: float) -> float:
        """Move forward by ``delta_s`` seconds; returns the new time.

        Exactly one float addition (``now + delta``), so replacing a
        hand-rolled ``now += gap`` accumulation with a clock keeps every
        produced timestamp bitwise identical.
        """
        if delta_s < 0.0:
            raise ValueError(f"clock can only move forward, got delta {delta_s}")
        self._now_s += delta_s
        return self._now_s

    def advance_to(self, time_s: float) -> float:
        """Jump forward to ``time_s`` (no-op if already past); returns now."""
        if time_s > self._now_s:
            self._now_s = time_s
        return self._now_s

    def latest(self, time_s: float) -> float:
        """``max(time_s, now)`` without mutating the clock.

        The scheduler's admission window opens at the later of "first
        request arrived" and "engine went free" -- this is that
        comparison, expressed against the clock.
        """
        return time_s if time_s > self._now_s else self._now_s

    def elapsed_since(self, earlier_s: float) -> float:
        """Seconds between ``earlier_s`` and now (negative if in the future)."""
        return self._now_s - earlier_s

    def __repr__(self) -> str:
        return f"SimClock(now_s={self._now_s!r})"
