"""repro -- a full reproduction of iMARS (Li et al., DAC 2022).

iMARS is an in-memory-computing architecture for recommendation systems:
FeFET-based configurable memory arrays (RAM/TCAM/GPCiM) hold the embedding
tables and run lookups, pooling and nearest-neighbour search in memory,
while crossbar banks execute the DNN stacks of the filtering and ranking
stages.

Package map
-----------
``repro.core``        the iMARS architecture (CMA/mat/bank hierarchy,
                      mapping, cost model, executable fabric, pipelines)
``repro.circuits``    FeFET device/cell/sense-amp models, synthesis
                      estimator, Table II FoMs
``repro.imc``         functional TCAM / GPCiM / analog-crossbar kernels
``repro.nn``          NumPy DNN substrate (layers, losses, optimisers)
``repro.models``      YouTubeDNN and DLRM
``repro.data``        synthetic MovieLens-1M / Criteo-Kaggle workloads
``repro.quant``       int8 quantisation
``repro.lsh``         random-hyperplane LSH + Hamming utilities
``repro.nns``         exact / LSH / fixed-radius nearest-neighbour search
``repro.gpu``         calibrated GTX 1080 baseline cost model
``repro.energy``      the (energy, latency) cost algebra
``repro.metrics``     hit rate / AUC / QPS / improvement factors
``repro.experiments`` one driver per paper table and figure
"""

__version__ = "1.0.0"

from repro.core import (
    ArchitectureConfig,
    PAPER_CONFIG,
    EmbeddingTableSpec,
    IMARSCostModel,
    IMARSEngine,
    GPUReferenceEngine,
    WorkloadMapping,
)
from repro.energy import Cost, Ledger

__all__ = [
    "__version__",
    "ArchitectureConfig",
    "PAPER_CONFIG",
    "EmbeddingTableSpec",
    "IMARSCostModel",
    "IMARSEngine",
    "GPUReferenceEngine",
    "WorkloadMapping",
    "Cost",
    "Ledger",
]
