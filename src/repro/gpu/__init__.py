"""Calibrated GPU baseline (the paper's GTX 1080 measurements as a model)."""

from repro.gpu.device import GPUDeviceModel, GTX1080
from repro.gpu.kernels import (
    gpu_dnn_stack,
    gpu_et_operation,
    gpu_nns_cosine,
    gpu_nns_lsh,
    gpu_topk,
)
from repro.gpu.profiler import GPUStageProfiler

__all__ = [
    "GPUDeviceModel",
    "GTX1080",
    "gpu_dnn_stack",
    "gpu_et_operation",
    "gpu_nns_cosine",
    "gpu_nns_lsh",
    "gpu_topk",
    "GPUStageProfiler",
]
