"""GPU kernel cost models: ET operations, DNN stacks, NNS, top-k.

Every function returns a :class:`~repro.energy.accounting.Cost` for one
query (batch size 1, the paper's latency protocol), computed from the
calibrated :class:`~repro.gpu.device.GPUDeviceModel`.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.energy.accounting import Cost
from repro.gpu.device import GPUDeviceModel, GTX1080
from repro.nn.mlp import mlp_flops, parse_layer_spec

__all__ = [
    "gpu_et_operation",
    "gpu_dnn_stack",
    "gpu_nns_cosine",
    "gpu_nns_lsh",
    "gpu_topk",
]


def _cost(latency_us: float, power_w: float) -> Cost:
    """Cost from a latency and an effective board power."""
    latency_ns = latency_us * 1e3
    energy_pj = power_w * latency_us * 1e6  # W x us = uJ; 1 uJ = 1e6 pJ
    return Cost(energy_pj=energy_pj, latency_ns=latency_ns)


def gpu_et_operation(
    num_tables: int,
    pooling_factor: int = 10,
    embedding_dim: int = 32,
    device: GPUDeviceModel = GTX1080,
) -> Cost:
    """One stage's embedding-table lookup + pooling on the GPU.

    The fitted linear model (base + per-table) dominates; the actual
    gathered bytes add a small bandwidth term for physical consistency.
    """
    if num_tables < 1:
        raise ValueError(f"need at least one table, got {num_tables}")
    if pooling_factor < 1 or embedding_dim < 1:
        raise ValueError("pooling factor and embedding dim must be positive")
    gathered_bytes = num_tables * pooling_factor * embedding_dim * 4  # fp32 rows
    latency_us = (
        device.et_base_us
        + device.et_per_table_us * num_tables
        + device.transfer_time_us(gathered_bytes)
    )
    return _cost(latency_us, device.power_et_w)


def gpu_dnn_stack(
    input_dim: int,
    spec: Union[str, Sequence[int]],
    device: GPUDeviceModel = GTX1080,
) -> Cost:
    """One MLP forward pass: per-layer launch overhead + GEMM time."""
    widths = parse_layer_spec(spec)
    flops = mlp_flops(input_dim, widths)
    latency_us = len(widths) * device.kernel_launch_us + device.gemm_time_us(flops)
    return _cost(latency_us, device.power_dnn_w)


def gpu_nns_cosine(
    num_items: int,
    embedding_dim: int,
    device: GPUDeviceModel = GTX1080,
) -> Cost:
    """Brute-force cosine NNS over the item table (the FAISS-flat path)."""
    if num_items < 1 or embedding_dim < 1:
        raise ValueError("item count and dimension must be positive")
    latency_us = (
        device.nns_cosine_base_us
        + num_items * embedding_dim * device.nns_cosine_per_element_us
    )
    return _cost(latency_us, device.power_nns_cosine_w)


def gpu_nns_lsh(
    num_items: int,
    signature_bits: int,
    device: GPUDeviceModel = GTX1080,
) -> Cost:
    """LSH-signature Hamming NNS on the GPU (XOR + popcount scan)."""
    if num_items < 1 or signature_bits < 1:
        raise ValueError("item count and signature length must be positive")
    latency_us = (
        device.nns_lsh_base_us + num_items * signature_bits * device.nns_lsh_per_bit_us
    )
    return _cost(latency_us, device.power_nns_lsh_w)


def gpu_topk(
    num_candidates: int,
    device: GPUDeviceModel = GTX1080,
) -> Cost:
    """Top-k selection over the scored candidates (one small kernel)."""
    if num_candidates < 1:
        raise ValueError("candidate count must be positive")
    scan_bytes = num_candidates * 8  # score + index
    latency_us = device.kernel_launch_us + device.transfer_time_us(scan_bytes)
    return _cost(latency_us, device.power_dnn_w)
