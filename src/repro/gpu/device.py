"""GPU device model -- the paper's Nvidia GTX 1080 baseline.

The paper measures its baseline "on Nvidia RTX 1080 GPU" using nvidia-smi
(power) and line_profiler (latency).  Offline we encode those measurements
as a calibrated analytic model:

* datasheet constants of the GTX 1080 (peak FLOPs, memory bandwidth, TDP);
* fitted kernel constants chosen so the model's outputs land on the
  *measured* GPU rows of Table III and Sec. IV-C.

The ET-operation fit deserves a note: the three published GPU latencies
(MovieLens filtering 9.27 us with 6 tables, MovieLens ranking 9.60 us with
7 tables, Criteo ranking 14.97 us with 26 tables) are almost exactly linear
in the number of embedding tables.  We fit ``base + per_table x tables`` on
the first and third rows and *validate* on the second (predicted 9.56 us vs
measured 9.60 us, 0.5% error).  Energy follows ``power x latency``; the
published energy/latency ratios pin the effective board power at 22.0 W for
ET/DNN kernels, 25 W for the cosine NNS and 21.5 W for the LSH NNS.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUDeviceModel", "GTX1080"]


@dataclass(frozen=True)
class GPUDeviceModel:
    """Datasheet + fitted constants of the baseline GPU.

    Attributes
    ----------
    peak_flops:
        Peak fp32 throughput (FLOP/s).
    memory_bandwidth_gbs:
        Peak DRAM bandwidth (GB/s).
    kernel_launch_us:
        Per-kernel launch/dispatch overhead (microseconds).
    et_base_us / et_per_table_us:
        Fitted ET-operation model: stage overhead + per-table cost.
    nns_cosine_base_us / nns_cosine_per_element_us:
        Fitted cosine-NNS model: ``base + items x dim x per_element``.
    nns_lsh_base_us / nns_lsh_per_bit_us:
        Fitted LSH-Hamming-NNS model: ``base + items x bits x per_bit``.
    power_et_w / power_dnn_w / power_nns_cosine_w / power_nns_lsh_w:
        Effective board power during each kernel class (from the published
        energy/latency ratios).
    """

    name: str = "GTX 1080"
    peak_flops: float = 8.9e12
    memory_bandwidth_gbs: float = 320.0
    tdp_w: float = 180.0
    kernel_launch_us: float = 0.6

    et_base_us: float = 7.56
    et_per_table_us: float = 0.285

    nns_cosine_base_us: float = 7.0
    nns_cosine_per_element_us: float = 6.875e-5
    nns_lsh_base_us: float = 5.0
    nns_lsh_per_bit_us: float = 2.565e-6

    power_et_w: float = 22.0
    power_dnn_w: float = 22.0
    power_nns_cosine_w: float = 25.0
    power_nns_lsh_w: float = 21.5

    def __post_init__(self) -> None:
        if self.peak_flops <= 0.0 or self.memory_bandwidth_gbs <= 0.0:
            raise ValueError("device throughput constants must be positive")
        if self.kernel_launch_us < 0.0:
            raise ValueError("launch overhead must be non-negative")
        for field_name in (
            "et_base_us",
            "et_per_table_us",
            "nns_cosine_base_us",
            "nns_lsh_base_us",
        ):
            if getattr(self, field_name) < 0.0:
                raise ValueError(f"{field_name} must be non-negative")

    def gemm_time_us(self, flops: float) -> float:
        """Compute-bound GEMM time at an (optimistic) full-rate execution."""
        if flops < 0.0:
            raise ValueError("flop count must be non-negative")
        return flops / self.peak_flops * 1e6

    def transfer_time_us(self, num_bytes: float) -> float:
        """Bandwidth-bound transfer time."""
        if num_bytes < 0.0:
            raise ValueError("byte count must be non-negative")
        return num_bytes / (self.memory_bandwidth_gbs * 1e9) * 1e6


#: Default baseline device (the paper's GPU).
GTX1080 = GPUDeviceModel()
