"""GPU-side stage profiler: regenerates the Fig. 2 operation breakdown.

Fig. 2 reports the share of *run time* each operation class takes for the
MovieLens YouTubeDNN workload on the GPU baseline:

* filtering: ET lookup 53%, DNN stack 36%, NNS 11%;
* ranking:   ET lookup 23%, DNN stack 65%, top-k 12%.

Methodology note.  The paper profiles with ``line_profiler`` (Sec. IV),
which measures wall-clock *Python line* time -- each profiled line carries
framework dispatch overhead on top of the device kernel time.  That is why
Fig. 2's fractions are not derivable from Table III's raw kernel latencies
alone (e.g. the cosine NNS kernel at 13.6 us is longer than the ET kernel
at 9.27 us, yet Fig. 2 attributes 53% to ET lookups and 11% to NNS): the
multi-line, per-table ET/DNN code paths accumulate per-line host overhead,
while the NNS is a single fused library call.

The profiler therefore models each operation class as

    time = device-kernel time + host_ops x host_per_op_us

with the host-op counts taken from the structure of the PyTorch reference
implementation (lookup + pool per table, linear + activation per layer,
one fused call for the NNS) and ``host_per_op_us`` fitted once (5.5 us, a
typical eager-mode dispatch cost).  The resulting fractions land within
~1 point of Fig. 2; the shape -- ET-dominated filtering, DNN-dominated
ranking, single-digit NNS/top-k shares -- is reproduced structurally.
"""

from __future__ import annotations

from typing import Dict

from repro.energy.accounting import Cost, Ledger
from repro.gpu.device import GPUDeviceModel, GTX1080
from repro.gpu.kernels import (
    gpu_dnn_stack,
    gpu_et_operation,
    gpu_nns_cosine,
    gpu_topk,
)

__all__ = ["GPUStageProfiler"]


class GPUStageProfiler:
    """Builds per-stage operation ledgers for a YouTubeDNN-style workload."""

    def __init__(
        self,
        num_items: int = 3000,
        embedding_dim: int = 32,
        filtering_tables: int = 6,
        ranking_tables: int = 7,
        filtering_input_dim: int = 192,
        filtering_spec: str = "128-64-32",
        ranking_input_dim: int = 256,
        ranking_spec: str = "128-1",
        candidates: int = 72,
        host_per_op_us: float = 5.5,
        device: GPUDeviceModel = GTX1080,
    ):
        if host_per_op_us < 0.0:
            raise ValueError("host overhead must be non-negative")
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.filtering_tables = filtering_tables
        self.ranking_tables = ranking_tables
        self.filtering_input_dim = filtering_input_dim
        self.filtering_spec = filtering_spec
        self.ranking_input_dim = ranking_input_dim
        self.ranking_spec = ranking_spec
        self.candidates = candidates
        self.host_per_op_us = host_per_op_us
        self.device = device

    def _host(self, num_ops: int, power_w: float) -> Cost:
        """Host-side dispatch time for *num_ops* profiled lines."""
        latency_us = num_ops * self.host_per_op_us
        return Cost(energy_pj=power_w * latency_us * 1e6, latency_ns=latency_us * 1e3)

    def filtering_ledger(self) -> Ledger:
        """One filtering query: ET lookups, DNN tower, cosine NNS.

        Host-op counts: two lines per table (lookup + pool); the tower has
        three Linear lines, three activation lines, a concat and an
        L2-normalise; the NNS is one fused index.search call.
        """
        ledger = Ledger(name="gpu-filtering")
        et_kernel = gpu_et_operation(self.filtering_tables, device=self.device)
        et_host = self._host(2 * self.filtering_tables, self.device.power_et_w)
        ledger.charge("ET Lookup", et_kernel.then(et_host))

        dnn_kernel = gpu_dnn_stack(
            self.filtering_input_dim, self.filtering_spec, device=self.device
        )
        dnn_host = self._host(8, self.device.power_dnn_w)
        ledger.charge("DNN Stack", dnn_kernel.then(dnn_host))

        ledger.charge(
            "NNS",
            gpu_nns_cosine(self.num_items, self.embedding_dim, device=self.device),
        )
        return ledger

    def ranking_ledger(self) -> Ledger:
        """One ranking query over the candidate set.

        The reference implementation batches candidates per table lookup
        (two lines per table) but scores them through a loop with partial
        batching -- the profiled DNN lines fire ~40 times per query at 72
        candidates.  The top-k is a sort + gather block (~7 lines).
        """
        ledger = Ledger(name="gpu-ranking")
        et_kernel = gpu_et_operation(self.ranking_tables, device=self.device)
        et_host = self._host(2 * self.ranking_tables, self.device.power_et_w)
        ledger.charge("ET Lookup", et_kernel.then(et_host))

        dnn_kernel = gpu_dnn_stack(
            self.ranking_input_dim, self.ranking_spec, device=self.device
        )
        dnn_batches = max(1, round(self.candidates * 5 / 9))  # partial batching
        dnn_host = self._host(dnn_batches, self.device.power_dnn_w)
        ledger.charge(
            "DNN Stack",
            dnn_kernel.repeated(max(1, self.candidates // 24)).then(dnn_host),
        )

        topk_kernel = gpu_topk(self.candidates, device=self.device)
        topk_host = self._host(7, self.device.power_dnn_w)
        ledger.charge("TopK", topk_kernel.then(topk_host))
        return ledger

    def breakdowns(self) -> Dict[str, Dict[str, float]]:
        """Latency-fraction breakdowns for both stages (the Fig. 2 data)."""
        return {
            "filtering": self.filtering_ledger().latency_breakdown(),
            "ranking": self.ranking_ledger().latency_breakdown(),
        }
