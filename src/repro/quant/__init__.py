"""Int8 quantisation of embedding tables (Sec. III-B)."""

from repro.quant.int8 import (
    QuantizedTensor,
    dequantize,
    quantization_error,
    quantize_asymmetric,
    quantize_symmetric,
)

__all__ = [
    "QuantizedTensor",
    "dequantize",
    "quantization_error",
    "quantize_asymmetric",
    "quantize_symmetric",
]
