"""Int8 quantisation of embedding tables and activations.

"We quantize all ETs to 8-bit integer precision to reduce the memory
requirement" (Sec. III-B).  This module provides symmetric and asymmetric
uniform quantisers, a :class:`QuantizedTensor` container carrying the scale
metadata, and error metrics used by the accuracy study (E4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "QuantizedTensor",
    "quantize_symmetric",
    "quantize_asymmetric",
    "dequantize",
    "quantization_error",
]


@dataclass(frozen=True)
class QuantizedTensor:
    """An int8 tensor plus the affine metadata to map back to floats.

    ``values = scale * (data - zero_point)`` row-wise or per-tensor
    depending on how it was produced.
    """

    data: np.ndarray  # int8
    scale: np.ndarray  # broadcastable to data
    zero_point: np.ndarray  # broadcastable to data

    def __post_init__(self) -> None:
        if self.data.dtype != np.int8:
            raise TypeError(f"quantised data must be int8, got {self.data.dtype}")

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def dequantize(self) -> np.ndarray:
        return dequantize(self)


def _resolve_axis_stats(values: np.ndarray, per_row: bool) -> Tuple[np.ndarray, np.ndarray]:
    """(min, max) either per tensor or per leading-axis row."""
    if per_row:
        if values.ndim < 2:
            raise ValueError("per-row quantisation needs a >= 2-D tensor")
        minimum = values.min(axis=tuple(range(1, values.ndim)), keepdims=True)
        maximum = values.max(axis=tuple(range(1, values.ndim)), keepdims=True)
    else:
        minimum = np.asarray(values.min())
        maximum = np.asarray(values.max())
    return minimum, maximum


def quantize_symmetric(values: np.ndarray, per_row: bool = False) -> QuantizedTensor:
    """Symmetric int8 quantisation: zero maps to zero, range +/-127.

    Symmetric quantisation preserves inner-product structure up to a scale
    factor, which is why the cosine-distance accuracy barely moves between
    FP32 and int8 (26.8% -> 26.2% in Sec. IV-B).
    """
    array = np.asarray(values, dtype=np.float64)
    minimum, maximum = _resolve_axis_stats(array, per_row)
    max_abs = np.maximum(np.abs(minimum), np.abs(maximum))
    scale = np.where(max_abs > 0.0, max_abs / 127.0, 1.0)
    # Same subnormal guard as the asymmetric quantiser: max_abs/127 can
    # underflow to exactly 0.0 and divide the array into inf/NaN codes.
    scale = np.maximum(scale, np.finfo(np.float64).tiny)
    quantised = np.clip(np.round(array / scale), -127, 127).astype(np.int8)
    return QuantizedTensor(
        data=quantised,
        scale=np.asarray(scale, dtype=np.float64),
        zero_point=np.zeros_like(np.asarray(scale, dtype=np.float64)),
    )


def quantize_asymmetric(values: np.ndarray, per_row: bool = False) -> QuantizedTensor:
    """Asymmetric int8 quantisation with a per-range zero point."""
    array = np.asarray(values, dtype=np.float64)
    minimum, maximum = _resolve_axis_stats(array, per_row)
    span = maximum - minimum
    # Degenerate (constant) ranges: pick a scale that still recovers the
    # constant exactly through the affine map instead of collapsing to 1.0.
    degenerate = np.where(np.abs(minimum) > 0.0, np.abs(minimum) / 100.0, 1.0)
    scale = np.where(span > 0.0, span / 255.0, degenerate)
    # Subnormal inputs can underflow both branches to exactly 0.0, which
    # would divide-by-zero into a NaN zero point; floor at the smallest
    # normal double (the affine map then recovers ~0 for such values).
    scale = np.maximum(scale, np.finfo(np.float64).tiny)
    zero_point = np.round(-128.0 - minimum / scale)
    quantised = np.clip(np.round(array / scale) + zero_point, -128, 127).astype(np.int8)
    return QuantizedTensor(
        data=quantised,
        scale=np.asarray(scale, dtype=np.float64),
        zero_point=np.asarray(zero_point, dtype=np.float64),
    )


def dequantize(tensor: QuantizedTensor) -> np.ndarray:
    """Map a quantised tensor back to float64."""
    return (tensor.data.astype(np.float64) - tensor.zero_point) * tensor.scale


def quantization_error(original: np.ndarray, tensor: QuantizedTensor) -> dict:
    """Error metrics of a quantisation: max abs, RMSE, cosine fidelity."""
    reference = np.asarray(original, dtype=np.float64)
    recovered = dequantize(tensor)
    if reference.shape != recovered.shape:
        raise ValueError("shape mismatch between original and quantised tensors")
    difference = reference - recovered
    flat_ref = reference.reshape(-1)
    flat_rec = recovered.reshape(-1)
    denominator = np.linalg.norm(flat_ref) * np.linalg.norm(flat_rec)
    cosine = float(flat_ref @ flat_rec / denominator) if denominator > 0.0 else 1.0
    return {
        "max_abs_error": float(np.abs(difference).max()),
        "rmse": float(np.sqrt((difference * difference).mean())),
        "cosine_fidelity": cosine,
    }
