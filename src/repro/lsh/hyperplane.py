"""Random-hyperplane (SimHash) locality-sensitive hashing.

"To facilitate the Hamming distance search, we employ a locality-sensitive
hashing (LSH) technique on the ItET ... We use a 256 LSH signature length"
(Sec. III-B).  Random-hyperplane LSH is the standard choice for cosine
similarity: each signature bit is the sign of a projection onto a random
hyperplane, and for two vectors at angle theta,

    P[bit differs] = theta / pi,

so the expected Hamming distance between signatures is monotone in the
cosine distance -- which is exactly the property that lets a TCAM
threshold-match over signatures stand in for a cosine nearest-neighbour
search.
"""

from __future__ import annotations

import numpy as np

from repro.nn.stable import stable_matmul

__all__ = ["RandomHyperplaneLSH", "expected_collision_probability"]


def expected_collision_probability(cosine_similarity: float) -> float:
    """Per-bit agreement probability for two vectors with given cosine.

    ``P[bits agree] = 1 - arccos(cos_sim) / pi`` -- the SimHash guarantee
    used by the property tests to validate the LSH implementation.
    """
    clipped = float(np.clip(cosine_similarity, -1.0, 1.0))
    return 1.0 - np.arccos(clipped) / np.pi


class RandomHyperplaneLSH:
    """SimHash signatures of a fixed length over a fixed input dimension."""

    def __init__(self, input_dim: int, signature_bits: int = 256, seed: int = 0):
        if input_dim < 1:
            raise ValueError(f"input dimension must be positive, got {input_dim}")
        if signature_bits < 1:
            raise ValueError(f"signature length must be positive, got {signature_bits}")
        self.input_dim = input_dim
        self.signature_bits = signature_bits
        rng = np.random.default_rng(seed)
        # One unit-normal hyperplane per signature bit.
        self._planes = rng.normal(0.0, 1.0, size=(input_dim, signature_bits))

    def signatures(self, vectors: np.ndarray) -> np.ndarray:
        """Signatures (n, signature_bits) over {0, 1} for row vectors."""
        matrix = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if matrix.shape[1] != self.input_dim:
            raise ValueError(
                f"expected vectors of dimension {self.input_dim}, got {matrix.shape[1]}"
            )
        # stable_matmul: a query hashed alone and the same query hashed
        # inside a batch must project (and therefore sign) identically.
        projections = stable_matmul(matrix, self._planes)
        return (projections >= 0.0).astype(np.uint8)

    def signature(self, vector: np.ndarray) -> np.ndarray:
        """Single-vector convenience wrapper around :meth:`signatures`."""
        return self.signatures(np.asarray(vector).reshape(1, -1))[0]

    def hamming_to_items(self, query: np.ndarray, item_signatures: np.ndarray) -> np.ndarray:
        """Hamming distances from one query signature to each item row."""
        query_bits = np.asarray(query, dtype=np.uint8).reshape(1, -1)
        items = np.asarray(item_signatures, dtype=np.uint8)
        if query_bits.shape[1] != items.shape[1]:
            raise ValueError("signature lengths differ between query and items")
        return (query_bits != items).sum(axis=1)
