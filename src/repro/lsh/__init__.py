"""Locality-sensitive hashing for the IMC-friendly NNS (Sec. III-B)."""

from repro.lsh.hyperplane import RandomHyperplaneLSH, expected_collision_probability
from repro.lsh.hamming import (
    hamming_distance,
    hamming_matrix,
    pack_bits,
    pairwise_hamming,
    unpack_bits,
)

__all__ = [
    "RandomHyperplaneLSH",
    "expected_collision_probability",
    "hamming_distance",
    "hamming_matrix",
    "pack_bits",
    "pairwise_hamming",
    "unpack_bits",
]
