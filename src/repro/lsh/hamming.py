"""Hamming-distance utilities over bit matrices.

These are the software counterparts of the TCAM match operation: packed
XOR + popcount for speed on the GPU-baseline side, and plain bit-matrix
distances for cross-checking the CMA search results.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_bits",
    "unpack_bits",
    "hamming_distance",
    "pairwise_hamming",
    "hamming_matrix",
]


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a (n, b) 0/1 matrix into (n, ceil(b/8)) uint8 rows."""
    matrix = np.atleast_2d(np.asarray(bits, dtype=np.uint8))
    if not np.isin(matrix, (0, 1)).all():
        raise ValueError("bit matrix must contain only 0/1")
    return np.packbits(matrix, axis=1)


def unpack_bits(packed: np.ndarray, num_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`, trimming pad bits to *num_bits*."""
    matrix = np.atleast_2d(np.asarray(packed, dtype=np.uint8))
    unpacked = np.unpackbits(matrix, axis=1)
    if num_bits > unpacked.shape[1]:
        raise ValueError(f"cannot recover {num_bits} bits from {unpacked.shape[1]}")
    return unpacked[:, :num_bits]


_POPCOUNT_TABLE = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint8)


def hamming_distance(bits_a: np.ndarray, bits_b: np.ndarray) -> int:
    """Hamming distance between two equal-length 0/1 vectors."""
    first = np.asarray(bits_a, dtype=np.uint8)
    second = np.asarray(bits_b, dtype=np.uint8)
    if first.shape != second.shape:
        raise ValueError(f"shape mismatch: {first.shape} vs {second.shape}")
    return int((first != second).sum())


def pairwise_hamming(query_bits: np.ndarray, item_bits: np.ndarray) -> np.ndarray:
    """Distances from one query to each row of a bit matrix (XOR+popcount)."""
    query_packed = pack_bits(np.asarray(query_bits).reshape(1, -1))
    items_packed = pack_bits(item_bits)
    xored = np.bitwise_xor(items_packed, query_packed)
    return _POPCOUNT_TABLE[xored].sum(axis=1).astype(np.int64)


def hamming_matrix(bits_a: np.ndarray, bits_b: np.ndarray) -> np.ndarray:
    """Full (n, m) distance matrix between two bit matrices."""
    first = np.atleast_2d(np.asarray(bits_a, dtype=np.uint8))
    second = np.atleast_2d(np.asarray(bits_b, dtype=np.uint8))
    if first.shape[1] != second.shape[1]:
        raise ValueError("bit widths differ")
    # (n, 1, b) != (1, m, b) -> (n, m, b); fine for the table sizes used here.
    return (first[:, None, :] != second[None, :, :]).sum(axis=2).astype(np.int64)
