"""Hamming-distance utilities over bit matrices.

These are the software counterparts of the TCAM match operation: packed
XOR + popcount for speed on the GPU-baseline side, and plain bit-matrix
distances for cross-checking the CMA search results.

The multi-query serving kernels work on ``uint64`` bitplanes
(:func:`pack_bits_u64`): a (Q, words) query block XORs against an
(N, words) item block and popcounts in one vectorised (Q, N) scan
(:func:`hamming_matrix_packed`) -- the software shape of the TCAM array
matching all rows at once.  Distances are exact integer counts, so the
packed kernels agree bitwise with the byte-table reference paths.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_bits",
    "pack_bits_u64",
    "unpack_bits",
    "hamming_distance",
    "pairwise_hamming",
    "hamming_matrix",
    "hamming_matrix_packed",
]


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a (n, b) 0/1 matrix into (n, ceil(b/8)) uint8 rows."""
    matrix = np.atleast_2d(np.asarray(bits, dtype=np.uint8))
    if not np.isin(matrix, (0, 1)).all():
        raise ValueError("bit matrix must contain only 0/1")
    return np.packbits(matrix, axis=1)


def unpack_bits(packed: np.ndarray, num_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`, trimming pad bits to *num_bits*."""
    matrix = np.atleast_2d(np.asarray(packed, dtype=np.uint8))
    unpacked = np.unpackbits(matrix, axis=1)
    if num_bits > unpacked.shape[1]:
        raise ValueError(f"cannot recover {num_bits} bits from {unpacked.shape[1]}")
    return unpacked[:, :num_bits]


def pack_bits_u64(bits: np.ndarray) -> np.ndarray:
    """Pack a (n, b) 0/1 matrix into (n, ceil(b/64)) uint64 words.

    The word layout is byte-compatible with :func:`pack_bits` (big-endian
    bit order within each byte) widened to 64-bit lanes, so XOR+popcount
    over these words counts exactly the same mismatching bits.
    """
    packed8 = pack_bits(bits)
    num_rows, num_bytes = packed8.shape
    pad = (-num_bytes) % 8
    if pad:
        packed8 = np.concatenate(
            [packed8, np.zeros((num_rows, pad), dtype=np.uint8)], axis=1
        )
    return packed8.view(np.uint64)


_POPCOUNT_TABLE = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint8)

#: Cap on the uint64 words a single XOR block may hold (~32 MiB) before
#: :func:`hamming_matrix_packed` falls back to query-chunked scans.
_PACKED_CHUNK_WORDS = 1 << 22


def _popcount_rows(words: np.ndarray) -> np.ndarray:
    """Sum of per-element popcounts along the last axis (int64 result)."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    return _POPCOUNT_TABLE[words.view(np.uint8)].sum(axis=-1, dtype=np.int64)


def hamming_matrix_packed(
    query_words: np.ndarray, item_words: np.ndarray
) -> np.ndarray:
    """(Q, N) Hamming distances between two :func:`pack_bits_u64` blocks.

    One vectorised XOR + popcount scan per query chunk -- the multi-query
    kernel the serving hot path runs instead of per-row
    :func:`pairwise_hamming` calls.  Distances are exact integers.
    """
    queries = np.atleast_2d(np.asarray(query_words, dtype=np.uint64))
    items = np.atleast_2d(np.asarray(item_words, dtype=np.uint64))
    if queries.shape[1] != items.shape[1]:
        raise ValueError(
            f"word widths differ: {queries.shape[1]} vs {items.shape[1]}"
        )
    num_queries, words = queries.shape
    num_items = items.shape[0]
    out = np.empty((num_queries, num_items), dtype=np.int64)
    per_row = max(1, num_items * words)
    chunk = max(1, _PACKED_CHUNK_WORDS // per_row)
    for start in range(0, num_queries, chunk):
        stop = min(start + chunk, num_queries)
        xored = queries[start:stop, None, :] ^ items[None, :, :]
        out[start:stop] = _popcount_rows(xored)
    return out


def hamming_distance(bits_a: np.ndarray, bits_b: np.ndarray) -> int:
    """Hamming distance between two equal-length 0/1 vectors."""
    first = np.asarray(bits_a, dtype=np.uint8)
    second = np.asarray(bits_b, dtype=np.uint8)
    if first.shape != second.shape:
        raise ValueError(f"shape mismatch: {first.shape} vs {second.shape}")
    return int((first != second).sum())


def pairwise_hamming(query_bits: np.ndarray, item_bits: np.ndarray) -> np.ndarray:
    """Distances from one query to each row of a bit matrix (XOR+popcount)."""
    query_packed = pack_bits(np.asarray(query_bits).reshape(1, -1))
    items_packed = pack_bits(item_bits)
    xored = np.bitwise_xor(items_packed, query_packed)
    return _POPCOUNT_TABLE[xored].sum(axis=1).astype(np.int64)


def hamming_matrix(bits_a: np.ndarray, bits_b: np.ndarray) -> np.ndarray:
    """Full (n, m) distance matrix between two bit matrices."""
    first = np.atleast_2d(np.asarray(bits_a, dtype=np.uint8))
    second = np.atleast_2d(np.asarray(bits_b, dtype=np.uint8))
    if first.shape[1] != second.shape[1]:
        raise ValueError("bit widths differ")
    # (n, 1, b) != (1, m, b) -> (n, m, b); fine for the table sizes used here.
    return (first[:, None, :] != second[None, :, :]).sum(axis=2).astype(np.int64)
