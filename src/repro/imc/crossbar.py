"""Analog crossbar array model for matrix-vector multiplication.

The DNN stacks of both RecSys stages run on FeFET crossbar banks
(Sec. III-A2); the paper evaluates them with NeuroSim [22] at a 45 nm FeFET
node.  This module reproduces the *functional* pipeline of such a crossbar:

1. weights are mapped to differential conductance pairs
   ``G+ - G-`` within ``[g_min, g_max]``;
2. the input vector is applied through DACs of ``dac_bits`` resolution
   (bit-serial input streaming for multi-bit activations);
3. the column currents realise the analog dot products, perturbed by
   device-to-device conductance variation (lognormal-ish Gaussian on G);
4. ADCs of ``adc_bits`` resolution quantise the column outputs.

A noiseless, full-precision configuration reduces exactly to ``W @ x``,
which the tests use as the ground truth; the noisy configurations feed the
accuracy ablations.  The per-MVM cost is the Table II crossbar FoM, scaled
by the number of array tiles a layer occupies (see
:mod:`repro.core.dnn_stack`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["CrossbarConfig", "CrossbarArray"]


@dataclass(frozen=True)
class CrossbarConfig:
    """Analog configuration of a crossbar tile.

    Attributes
    ----------
    rows / cols:
        Physical tile dimensions; the paper's DNN tile is 256 x 128.
    g_min_us / g_max_us:
        Conductance range in microsiemens.
    dac_bits / adc_bits:
        Converter resolutions; ``0`` disables quantisation (ideal
        converters), which the unit tests use for exactness checks.
    conductance_sigma:
        Relative (fractional) device-to-device conductance variation.
    """

    rows: int = 256
    cols: int = 128
    g_min_us: float = 0.1
    g_max_us: float = 10.0
    dac_bits: int = 8
    adc_bits: int = 8
    conductance_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("crossbar dimensions must be positive")
        if not 0.0 < self.g_min_us < self.g_max_us:
            raise ValueError("conductance range must satisfy 0 < g_min < g_max")
        if self.dac_bits < 0 or self.adc_bits < 0:
            raise ValueError("converter resolutions must be non-negative")
        if self.conductance_sigma < 0.0:
            raise ValueError("conductance sigma must be non-negative")


class CrossbarArray:
    """One analog crossbar tile programmed with a weight sub-matrix."""

    def __init__(self, config: Optional[CrossbarConfig] = None, rng: Optional[np.random.Generator] = None):
        self.config = config or CrossbarConfig()
        self._rng = rng or np.random.default_rng(0)
        self._g_pos: Optional[np.ndarray] = None
        self._g_neg: Optional[np.ndarray] = None
        self._weight_scale = 1.0

    @property
    def is_programmed(self) -> bool:
        return self._g_pos is not None

    # -- programming -------------------------------------------------------------
    def program(self, weights: np.ndarray) -> None:
        """Map *weights* (rows x cols) onto differential conductance pairs.

        Positive weights land on the G+ device, negative on G-; magnitudes
        are normalised so the largest |w| uses the full conductance range.
        Programming noise (``conductance_sigma``) is applied once here,
        modelling write-verify residual error.
        """
        matrix = np.asarray(weights, dtype=np.float64)
        config = self.config
        if matrix.shape != (config.rows, config.cols):
            raise ValueError(
                f"weights must be {config.rows}x{config.cols}, got {matrix.shape}"
            )
        max_abs = float(np.abs(matrix).max())
        self._weight_scale = max_abs if max_abs > 0.0 else 1.0
        normalised = matrix / self._weight_scale
        span = config.g_max_us - config.g_min_us
        g_pos = config.g_min_us + span * np.clip(normalised, 0.0, 1.0)
        g_neg = config.g_min_us + span * np.clip(-normalised, 0.0, 1.0)
        if config.conductance_sigma > 0.0:
            g_pos = g_pos * (1.0 + self._rng.normal(0.0, config.conductance_sigma, g_pos.shape))
            g_neg = g_neg * (1.0 + self._rng.normal(0.0, config.conductance_sigma, g_neg.shape))
            g_pos = np.clip(g_pos, 0.0, None)
            g_neg = np.clip(g_neg, 0.0, None)
        self._g_pos = g_pos
        self._g_neg = g_neg

    # -- compute ---------------------------------------------------------------
    def matvec(self, inputs: np.ndarray) -> np.ndarray:
        """Analog matrix-vector product ``W.T @ x`` through the tile.

        The input is quantised by the DACs, driven along the rows, and the
        differential column currents are quantised by the ADCs.  With ideal
        converters and zero noise this equals the exact product.
        """
        if not self.is_programmed:
            raise RuntimeError("crossbar must be programmed before matvec")
        vector = np.asarray(inputs, dtype=np.float64)
        config = self.config
        if vector.shape != (config.rows,):
            raise ValueError(f"input must have {config.rows} entries, got {vector.shape}")

        driven = self._quantise(vector, config.dac_bits)
        span = config.g_max_us - config.g_min_us
        differential = (self._g_pos - self._g_neg) / span  # back to weight scale
        currents = driven @ differential
        outputs = currents * self._weight_scale
        return self._quantise(outputs, config.adc_bits)

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _quantise(values: np.ndarray, bits: int) -> np.ndarray:
        """Uniform symmetric quantisation to ``bits`` (0 = ideal converter)."""
        if bits == 0:
            return values
        levels = (1 << (bits - 1)) - 1
        max_abs = float(np.abs(values).max())
        if max_abs == 0.0:
            return values
        step = max_abs / levels
        return np.round(values / step) * step
