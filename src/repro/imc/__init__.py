"""Functional in-memory-computing kernels: TCAM, GPCiM, analog crossbar."""

from repro.imc.tcam import TCAMArray, DONT_CARE
from repro.imc.gpcim import GPCiMArray, ripple_add_bits, pack_lanes, unpack_lanes
from repro.imc.crossbar import CrossbarArray, CrossbarConfig

__all__ = [
    "TCAMArray",
    "DONT_CARE",
    "GPCiMArray",
    "ripple_add_bits",
    "pack_lanes",
    "unpack_lanes",
    "CrossbarArray",
    "CrossbarConfig",
]
