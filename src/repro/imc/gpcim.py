"""General-purpose compute-in-memory (GPCiM) functional model.

GPCiM arrays (Sec. II-B, paper refs. [7], [15]) activate two wordlines
simultaneously; the bitline sense amplifier compares the combined current
against one or more references to produce Boolean logic, and a lightweight
peripheral accumulator composes those micro-ops into integer arithmetic.
iMARS uses the GPCiM mode for the *pooling* of embedding rows: "Pooling
operations are performed with in-memory additions (through an accumulator
placed next to the RAM SA)" (Sec. III-A1).

This module provides:

* :class:`GPCiMArray` -- a word-organised memory supporting dual-row
  bitwise AND / OR / XOR (the dual-reference sensing result) and row
  addition into a peripheral accumulator;
* :func:`ripple_add_bits` -- the bit-serial in-memory addition algorithm
  (XOR for sum, AND-then-shift for carry), used to validate that composing
  the Boolean micro-ops really yields binary addition, which is the
  correctness argument behind the single "Addition" FoM row in Table II.

Embedding words are *lane-structured*: a 256-bit row holds 32 int8 lanes
(Sec. III-A1).  The accumulator accumulates per-lane at a configurable
wider precision so multi-row pooling does not overflow, then requantises.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["GPCiMArray", "ripple_add_bits", "pack_lanes", "unpack_lanes"]


def ripple_add_bits(word_a: np.ndarray, word_b: np.ndarray) -> Tuple[np.ndarray, int]:
    """Bit-serial in-memory addition of two little-endian bit vectors.

    Implements addition purely from the Boolean micro-ops a GPCiM senses
    (XOR and AND): ``sum = a ^ b ^ carry``, ``carry' = majority(a, b,
    carry)``.  Returns the sum bits (same width, wrap-around) and the final
    carry-out.
    """
    bits_a = np.asarray(word_a, dtype=np.int8)
    bits_b = np.asarray(word_b, dtype=np.int8)
    if bits_a.shape != bits_b.shape or bits_a.ndim != 1:
        raise ValueError("operands must be 1-D bit vectors of equal length")
    if not (np.isin(bits_a, (0, 1)).all() and np.isin(bits_b, (0, 1)).all()):
        raise ValueError("operands must be bit vectors over {0, 1}")
    result = np.zeros_like(bits_a)
    carry = 0
    for position in range(bits_a.shape[0]):
        a_bit = int(bits_a[position])
        b_bit = int(bits_b[position])
        result[position] = a_bit ^ b_bit ^ carry
        carry = (a_bit & b_bit) | (a_bit & carry) | (b_bit & carry)
    return result, carry


def pack_lanes(values: Sequence[int], lane_bits: int = 8) -> np.ndarray:
    """Pack signed lane values into a little-endian bit vector.

    Each lane is stored two's-complement in ``lane_bits`` bits; a 32-lane
    int8 embedding therefore packs into the 256-bit row format used by the
    CMA and the adder trees.
    """
    lanes = np.asarray(values, dtype=np.int64)
    low, high = -(1 << (lane_bits - 1)), (1 << (lane_bits - 1)) - 1
    if lanes.min(initial=0) < low or lanes.max(initial=0) > high:
        raise ValueError(f"lane values out of int{lane_bits} range [{low}, {high}]")
    unsigned = np.where(lanes < 0, lanes + (1 << lane_bits), lanes)
    bits = np.zeros(lanes.shape[0] * lane_bits, dtype=np.int8)
    for lane_index, value in enumerate(unsigned):
        for bit_index in range(lane_bits):
            bits[lane_index * lane_bits + bit_index] = (int(value) >> bit_index) & 1
    return bits


def unpack_lanes(bits: np.ndarray, lane_bits: int = 8) -> np.ndarray:
    """Inverse of :func:`pack_lanes`: bit vector -> signed lane values."""
    word = np.asarray(bits, dtype=np.int64)
    if word.ndim != 1 or word.shape[0] % lane_bits != 0:
        raise ValueError(f"bit vector length must be a multiple of {lane_bits}")
    lanes = word.shape[0] // lane_bits
    values = np.zeros(lanes, dtype=np.int64)
    for lane_index in range(lanes):
        value = 0
        for bit_index in range(lane_bits):
            value |= int(word[lane_index * lane_bits + bit_index]) << bit_index
        if value >= 1 << (lane_bits - 1):
            value -= 1 << lane_bits
        values[lane_index] = value
    return values


class GPCiMArray:
    """Word-organised RAM with dual-row Boolean ops and lane-wise pooling.

    Rows store signed integer lanes (default: 32 lanes x int8 = one 256-bit
    embedding word).  Dual-row Boolean operations work on the packed bit
    representation, matching what the dual-reference sense amplifier
    produces; :meth:`accumulate_rows` models the peripheral accumulator
    used for pooling.
    """

    def __init__(self, rows: int, lanes: int = 32, lane_bits: int = 8):
        if rows < 1:
            raise ValueError(f"row count must be positive, got {rows}")
        if lanes < 1 or lane_bits < 2:
            raise ValueError("lanes must be >= 1 and lane_bits >= 2")
        self.rows = rows
        self.lanes = lanes
        self.lane_bits = lane_bits
        self._data = np.zeros((rows, lanes), dtype=np.int64)
        self._valid = np.zeros(rows, dtype=bool)

    @property
    def word_bits(self) -> int:
        """Width of one packed row in bits (256 for the default shape)."""
        return self.lanes * self.lane_bits

    # -- RAM path --------------------------------------------------------------
    def write_row(self, row: int, lanes: Sequence[int]) -> None:
        self._check_row(row)
        values = np.asarray(lanes, dtype=np.int64)
        if values.shape != (self.lanes,):
            raise ValueError(f"expected {self.lanes} lanes, got shape {values.shape}")
        low, high = self._lane_range()
        if values.min() < low or values.max() > high:
            raise ValueError(f"lane values out of int{self.lane_bits} range")
        self._data[row] = values
        self._valid[row] = True

    def read_row(self, row: int) -> np.ndarray:
        self._check_row(row)
        if not self._valid[row]:
            raise ValueError(f"row {row} has not been written")
        return self._data[row].copy()

    # -- Boolean micro-ops -------------------------------------------------------
    def bitwise(self, row_a: int, row_b: int, op: str) -> np.ndarray:
        """Dual-wordline Boolean operation over the packed bit vectors."""
        bits_a = pack_lanes(self.read_row(row_a), self.lane_bits)
        bits_b = pack_lanes(self.read_row(row_b), self.lane_bits)
        if op == "and":
            return bits_a & bits_b
        if op == "or":
            return bits_a | bits_b
        if op == "xor":
            return bits_a ^ bits_b
        raise ValueError(f"unsupported Boolean op: {op!r} (expected and/or/xor)")

    def add_rows(self, row_a: int, row_b: int) -> np.ndarray:
        """In-memory lane-wise addition of two rows (saturating per lane).

        Functionally the composition of the XOR/AND micro-ops per lane
        (see :func:`ripple_add_bits`); lanes saturate at the int range just
        like a fixed-width in-memory adder would.
        """
        total = self.read_row(row_a) + self.read_row(row_b)
        low, high = self._lane_range()
        return np.clip(total, low, high)

    # -- pooling accumulator --------------------------------------------------
    def accumulate_rows(
        self,
        row_indices: Sequence[int],
        saturate: bool = False,
    ) -> np.ndarray:
        """Pool (sum) several rows through the peripheral accumulator.

        With ``saturate=False`` (default) the accumulator is wide enough to
        hold the exact sum -- the configuration iMARS uses before the adder
        trees requantise.  With ``saturate=True`` each step clamps to the
        lane range, modelling a minimal-width accumulator.
        """
        indices = list(row_indices)
        if not indices:
            return np.zeros(self.lanes, dtype=np.int64)
        total = np.zeros(self.lanes, dtype=np.int64)
        low, high = self._lane_range()
        for row in indices:
            total = total + self.read_row(row)
            if saturate:
                total = np.clip(total, low, high)
        return total

    # -- helpers -----------------------------------------------------------------
    def _lane_range(self) -> Tuple[int, int]:
        return -(1 << (self.lane_bits - 1)), (1 << (self.lane_bits - 1)) - 1

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range for {self.rows}-row array")
