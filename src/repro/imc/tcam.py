"""Functional ternary CAM (TCAM) array model.

A TCAM array with ``r`` rows and ``c`` columns performs a parallel search of
a query against every stored row in O(1) array time (Sec. II-B): each cell
XORs its stored bit with the query bit and the matchline wire-ANDs the cells
of a row.  iMARS uses the *threshold-match* mode -- a row matches when its
Hamming distance to the query is at or below a programmable threshold set by
the dummy-cell reference current -- to realise fixed-radius nearest-
neighbour search over LSH signatures (Sec. III-B).

This module is the bit-accurate functional model; the per-search energy and
latency are charged at the CMA level from the Table II FoMs.  An optional
analog-noise knob perturbs the sensed distances to emulate matchline current
variation, which the robustness tests and the threshold-margin ablation use.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["TCAMArray", "DONT_CARE"]

#: Sentinel stored-cell value for don't-care (X).
DONT_CARE = 2


class TCAMArray:
    """A ternary CAM array storing ``rows`` words of ``cols`` ternary cells.

    Storage is an int8 matrix over {0, 1, DONT_CARE}; unwritten rows are
    tracked by a validity mask and never match.
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError(f"array dimensions must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self._cells = np.full((rows, cols), DONT_CARE, dtype=np.int8)
        self._valid = np.zeros(rows, dtype=bool)

    # -- write path ----------------------------------------------------------
    def write_row(self, row: int, bits: Sequence[int], care_mask: Optional[Sequence[bool]] = None) -> None:
        """Store *bits* at *row*; cells where ``care_mask`` is False become X."""
        self._check_row(row)
        word = np.asarray(bits, dtype=np.int8)
        if word.shape != (self.cols,):
            raise ValueError(f"expected {self.cols} bits, got shape {word.shape}")
        if not np.isin(word, (0, 1)).all():
            raise ValueError("stored bits must be 0 or 1 (use care_mask for X)")
        if care_mask is not None:
            mask = np.asarray(care_mask, dtype=bool)
            if mask.shape != (self.cols,):
                raise ValueError(f"care mask must have {self.cols} entries")
            word = np.where(mask, word, DONT_CARE).astype(np.int8)
        self._cells[row] = word
        self._valid[row] = True

    def write_rows(self, start_row: int, matrix: np.ndarray) -> None:
        """Bulk-store a (n, cols) bit matrix starting at *start_row*."""
        matrix = np.asarray(matrix, dtype=np.int8)
        if matrix.ndim != 2 or matrix.shape[1] != self.cols:
            raise ValueError(f"expected (n, {self.cols}) matrix, got {matrix.shape}")
        end = start_row + matrix.shape[0]
        if start_row < 0 or end > self.rows:
            raise ValueError(f"rows [{start_row}, {end}) out of range for {self.rows}-row array")
        if not np.isin(matrix, (0, 1)).all():
            raise ValueError("stored bits must be 0 or 1")
        self._cells[start_row:end] = matrix
        self._valid[start_row:end] = True

    def invalidate_row(self, row: int) -> None:
        """Mark a row empty; it will no longer participate in searches."""
        self._check_row(row)
        self._valid[row] = False
        self._cells[row] = DONT_CARE

    @property
    def valid_rows(self) -> np.ndarray:
        """Boolean mask of rows that currently hold data."""
        return self._valid.copy()

    def stored_row(self, row: int) -> np.ndarray:
        """Ternary contents of *row* (over {0, 1, DONT_CARE})."""
        self._check_row(row)
        return self._cells[row].copy()

    # -- search path ----------------------------------------------------------
    def hamming_distances(
        self,
        query: Sequence[int],
        noise_sigma: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Per-row Hamming distance to *query* (X cells never mismatch).

        With ``noise_sigma > 0`` a Gaussian perturbation is added to each
        row's analog distance before it is returned, emulating matchline
        current variation; invalid rows report ``cols + 1`` (worse than any
        possible distance) so they can never match.
        """
        word = self._check_query(query)
        mismatches = (self._cells != word[None, :]) & (self._cells != DONT_CARE)
        distances = mismatches.sum(axis=1).astype(np.float64)
        if noise_sigma > 0.0:
            generator = rng or np.random.default_rng(0)
            distances = distances + generator.normal(0.0, noise_sigma, size=self.rows)
        distances[~self._valid] = float(self.cols + 1)
        return distances

    def search_exact(self, query: Sequence[int]) -> np.ndarray:
        """Exact-match flags per row (threshold 0)."""
        return self.search_threshold(query, threshold=0)

    def search_threshold(
        self,
        query: Sequence[int],
        threshold: int,
        noise_sigma: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Threshold-match flags: distance(row, query) <= threshold.

        This is the CAM mode iMARS uses for fixed-radius NNS; the threshold
        corresponds to the dummy-cell reference current setting.
        """
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        distances = self.hamming_distances(query, noise_sigma=noise_sigma, rng=rng)
        return distances <= threshold + 0.5 if noise_sigma > 0.0 else distances <= threshold

    def matching_rows(self, query: Sequence[int], threshold: int = 0) -> List[int]:
        """Priority-encoded (ascending) indices of matching rows."""
        flags = self.search_threshold(query, threshold)
        return [int(index) for index in np.flatnonzero(flags)]

    def nearest_row(self, query: Sequence[int]) -> int:
        """Row index with the minimum Hamming distance (-1 if array empty).

        Realised in hardware by sweeping the threshold upward until the
        first match appears; functionally equivalent to an argmin over
        valid rows.
        """
        if not self._valid.any():
            return -1
        distances = self.hamming_distances(query)
        return int(np.argmin(distances))

    # -- helpers ---------------------------------------------------------------
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range for {self.rows}-row array")

    def _check_query(self, query: Sequence[int]) -> np.ndarray:
        word = np.asarray(query, dtype=np.int8)
        if word.shape != (self.cols,):
            raise ValueError(f"query must have {self.cols} bits, got shape {word.shape}")
        if not np.isin(word, (0, 1)).all():
            raise ValueError("query bits must be 0 or 1")
        return word
