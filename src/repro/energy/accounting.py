"""Energy/latency accounting primitives shared by every hardware model.

The whole evaluation methodology of the iMARS paper is *compositional*: the
authors simulate individual arrays (Table II figures of merit), then compose
those per-operation costs into mat-, bank- and system-level numbers
(Table III, Sec. IV-C).  This module provides the algebra used everywhere in
the repository for that composition:

* :class:`Cost` -- an (energy, latency) pair with explicit sequential and
  parallel composition rules.
* :class:`Ledger` -- a named, categorised accumulator used to produce the
  operation breakdowns of Fig. 2 and the per-stage tables.

Composition rules
-----------------
Sequential composition (``a + b`` or :meth:`Cost.then`) adds both energy and
latency: the second operation starts after the first finishes.

Parallel composition (``a | b`` or :meth:`Cost.alongside`) adds energy but
takes the *maximum* latency: both operations run concurrently on disjoint
hardware (e.g. the M mats of a bank performing intra-mat additions in
parallel, Sec. III-A1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

__all__ = ["Cost", "Ledger", "ZERO_COST"]


@dataclass(frozen=True)
class Cost:
    """An immutable (energy, latency) figure-of-merit pair.

    Units follow the paper's Table II: energy in picojoules, latency in
    nanoseconds.  Helper properties convert to the microjoule/microsecond
    units used by Table III and the end-to-end results.
    """

    energy_pj: float = 0.0
    latency_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.energy_pj < 0.0:
            raise ValueError(f"energy must be non-negative, got {self.energy_pj}")
        if self.latency_ns < 0.0:
            raise ValueError(f"latency must be non-negative, got {self.latency_ns}")

    # -- unit conversions ---------------------------------------------------
    @property
    def energy_uj(self) -> float:
        """Energy in microjoules (1 uJ = 1e6 pJ)."""
        return self.energy_pj * 1e-6

    @property
    def energy_mj(self) -> float:
        """Energy in millijoules (1 mJ = 1e9 pJ)."""
        return self.energy_pj * 1e-9

    @property
    def latency_us(self) -> float:
        """Latency in microseconds (1 us = 1e3 ns)."""
        return self.latency_ns * 1e-3

    @property
    def latency_s(self) -> float:
        """Latency in seconds."""
        return self.latency_ns * 1e-9

    @property
    def power_w(self) -> float:
        """Average power in watts (energy / latency); zero-latency -> 0."""
        if self.latency_ns == 0.0:
            return 0.0
        return (self.energy_pj * 1e-12) / (self.latency_ns * 1e-9)

    # -- composition --------------------------------------------------------
    def then(self, other: "Cost") -> "Cost":
        """Sequential composition: energies add, latencies add."""
        return Cost(self.energy_pj + other.energy_pj, self.latency_ns + other.latency_ns)

    def alongside(self, other: "Cost") -> "Cost":
        """Parallel composition: energies add, latency is the maximum."""
        return Cost(
            self.energy_pj + other.energy_pj,
            max(self.latency_ns, other.latency_ns),
        )

    def repeated(self, times: int) -> "Cost":
        """``times`` back-to-back serial repetitions of this operation."""
        if times < 0:
            raise ValueError(f"repetition count must be non-negative, got {times}")
        return Cost(self.energy_pj * times, self.latency_ns * times)

    def broadcast(self, copies: int) -> "Cost":
        """``copies`` concurrent instances on disjoint hardware.

        Energy scales with the copy count, latency does not (all copies run
        in lock-step, like the C CMAs of a mat performing the same lookup).
        """
        if copies < 0:
            raise ValueError(f"copy count must be non-negative, got {copies}")
        latency = self.latency_ns if copies > 0 else 0.0
        return Cost(self.energy_pj * copies, latency)

    def scaled(self, energy_factor: float = 1.0, latency_factor: float = 1.0) -> "Cost":
        """Scale energy and latency independently (used by ablation sweeps)."""
        return Cost(self.energy_pj * energy_factor, self.latency_ns * latency_factor)

    def __add__(self, other: "Cost") -> "Cost":
        if not isinstance(other, Cost):
            return NotImplemented
        return self.then(other)

    def __or__(self, other: "Cost") -> "Cost":
        if not isinstance(other, Cost):
            return NotImplemented
        return self.alongside(other)

    def __mul__(self, times: int) -> "Cost":
        if not isinstance(times, int):
            return NotImplemented
        return self.repeated(times)

    __rmul__ = __mul__

    @staticmethod
    def sequence(costs: Iterable["Cost"]) -> "Cost":
        """Fold an iterable of costs sequentially."""
        total = ZERO_COST
        for cost in costs:
            total = total.then(cost)
        return total

    @staticmethod
    def concurrent(costs: Iterable["Cost"]) -> "Cost":
        """Fold an iterable of costs in parallel."""
        total = ZERO_COST
        for cost in costs:
            total = total.alongside(cost)
        return total

    def speedup_over(self, baseline: "Cost") -> float:
        """Latency improvement factor of *self* relative to *baseline*."""
        if self.latency_ns == 0.0:
            return float("inf")
        return baseline.latency_ns / self.latency_ns

    def energy_reduction_over(self, baseline: "Cost") -> float:
        """Energy improvement factor of *self* relative to *baseline*."""
        if self.energy_pj == 0.0:
            return float("inf")
        return baseline.energy_pj / self.energy_pj


ZERO_COST = Cost(0.0, 0.0)


@dataclass
class Ledger:
    """A categorised accumulator of :class:`Cost` entries.

    Used to build the operation breakdowns of Fig. 2 (ET lookup vs DNN stack
    vs NNS vs top-k) and the per-component tables.  Entries within a category
    are composed sequentially; :meth:`total` composes categories sequentially
    as well, because a single query runs its pipeline steps one after the
    other (the parallelism *inside* a step is already folded into the step's
    cost by the hardware models).
    """

    name: str = "ledger"
    _entries: List[Tuple[str, Cost]] = field(default_factory=list)

    def charge(self, category: str, cost: Cost) -> None:
        """Record *cost* under *category*."""
        self._entries.append((category, cost))

    def extend(self, other: "Ledger") -> None:
        """Merge every entry of *other* into this ledger."""
        self._entries.extend(other._entries)

    def __iter__(self) -> Iterator[Tuple[str, Cost]]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def categories(self) -> List[str]:
        """Category names in first-seen order."""
        seen: Dict[str, None] = {}
        for category, _ in self._entries:
            seen.setdefault(category)
        return list(seen)

    def by_category(self) -> Dict[str, Cost]:
        """Sequentially-composed cost per category."""
        totals: Dict[str, Cost] = {}
        for category, cost in self._entries:
            totals[category] = totals.get(category, ZERO_COST).then(cost)
        return totals

    def total(self) -> Cost:
        """Sequential composition of every entry."""
        return Cost.sequence(cost for _, cost in self._entries)

    def latency_breakdown(self) -> Dict[str, float]:
        """Fraction of total latency per category (sums to 1.0)."""
        totals = self.by_category()
        grand = sum(cost.latency_ns for cost in totals.values())
        if grand == 0.0:
            return {category: 0.0 for category in totals}
        return {category: cost.latency_ns / grand for category, cost in totals.items()}

    def energy_breakdown(self) -> Dict[str, float]:
        """Fraction of total energy per category (sums to 1.0)."""
        totals = self.by_category()
        grand = sum(cost.energy_pj for cost in totals.values())
        if grand == 0.0:
            return {category: 0.0 for category in totals}
        return {category: cost.energy_pj / grand for category, cost in totals.items()}
