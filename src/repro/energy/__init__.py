"""Energy/latency accounting: the cost algebra shared by all hardware models."""

from repro.energy.accounting import Cost, Ledger, ZERO_COST
from repro.energy.report import format_breakdown, format_comparison, format_cost_table

__all__ = [
    "Cost",
    "Ledger",
    "ZERO_COST",
    "format_breakdown",
    "format_comparison",
    "format_cost_table",
]
