"""Plain-text report formatting for tables and breakdowns.

The benchmark harness regenerates the paper's tables as text; these helpers
keep the formatting consistent across experiments (fixed-width columns,
explicit units, percentage breakdowns like Fig. 2).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from repro.energy.accounting import Cost

__all__ = ["format_breakdown", "format_comparison", "format_cost_table"]


def format_breakdown(title: str, fractions: Mapping[str, float]) -> str:
    """Render a Fig.-2-style percentage breakdown.

    Parameters
    ----------
    title:
        Heading printed above the breakdown.
    fractions:
        Mapping of operation name to fraction (expected to sum to ~1.0).
    """
    lines = [title]
    for name, fraction in fractions.items():
        lines.append(f"  {name:<12s} {fraction * 100.0:5.1f}%")
    return "\n".join(lines)


def format_cost_table(title: str, rows: Mapping[str, Cost]) -> str:
    """Render a Table-II-style per-operation figure-of-merit table."""
    lines = [title, f"  {'Operation':<24s} {'Energy (pJ)':>12s} {'Latency (ns)':>13s}"]
    for name, cost in rows.items():
        lines.append(f"  {name:<24s} {cost.energy_pj:>12.1f} {cost.latency_ns:>13.1f}")
    return "\n".join(lines)


def format_comparison(
    title: str,
    rows: Sequence[Tuple[str, Cost, Cost]],
    baseline_name: str = "GPU",
    candidate_name: str = "iMARS",
) -> str:
    """Render a Table-III-style baseline-vs-candidate comparison.

    Each row is ``(label, baseline_cost, candidate_cost)``; the formatter
    computes and prints the latency speedup and energy reduction factors.
    """
    header = (
        f"  {'Workload':<22s}"
        f" {baseline_name + ' lat(us)':>14s} {candidate_name + ' lat(us)':>14s} {'Speedup':>9s}"
        f" {baseline_name + ' E(uJ)':>12s} {candidate_name + ' E(uJ)':>12s} {'E-reduc':>9s}"
    )
    lines = [title, header]
    for label, baseline, candidate in rows:
        speedup = candidate.speedup_over(baseline)
        reduction = candidate.energy_reduction_over(baseline)
        lines.append(
            f"  {label:<22s}"
            f" {baseline.latency_us:>14.3f} {candidate.latency_us:>14.3f} {speedup:>8.1f}x"
            f" {baseline.energy_uj:>12.3f} {candidate.energy_uj:>12.4f} {reduction:>8.1f}x"
        )
    return "\n".join(lines)


def merge_breakdowns(*parts: Mapping[str, float]) -> Dict[str, float]:
    """Average several fractional breakdowns (used for multi-run reports)."""
    if not parts:
        return {}
    keys = list(parts[0])
    return {key: sum(part.get(key, 0.0) for part in parts) / len(parts) for key in keys}
