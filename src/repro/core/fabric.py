"""Functional (bit-level) iMARS fabric for verification and flow tracing.

While :class:`repro.core.accelerator.IMARSCostModel` prices operations
analytically, this module actually *executes* them on CMA banks: embedding
words live in FeFET-cell bit matrices, pooling runs through in-memory adds
and the adder trees, and the NNS runs as a real TCAM threshold match.  The
integration tests use it to verify that the hardware dataflow computes the
same answers as the NumPy reference; the flow-trace experiment (E8) checks
that a query visits the Fig. 3 steps (1a)...(2e) in the published order.

It is sized for verification workloads (hundreds to thousands of entries);
the full-scale experiments use the analytic model.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bank import Bank
from repro.core.buffers import CTRBuffer, ItemBuffer
from repro.core.config import ArchitectureConfig
from repro.core.mapping import FILTERING, RANKING, WorkloadMapping
from repro.energy.accounting import Cost, ZERO_COST

__all__ = ["IMARSFabric", "FlowTrace"]


class FlowTrace:
    """Ordered record of the Fig. 3 computation-flow labels."""

    #: The publication's step ordering for a full query.
    EXPECTED_ORDER = (
        "1a", "1b*", "1b", "1c", "1d", "1d*",
        "2a", "2b", "2b*", "2c", "2d", "2e",
    )

    def __init__(self) -> None:
        self.steps: List[str] = []

    def mark(self, label: str) -> None:
        self.steps.append(label)

    def first_occurrences(self) -> List[str]:
        """Step labels in order of first appearance (2a..2d repeat per candidate)."""
        seen: Dict[str, None] = {}
        for label in self.steps:
            seen.setdefault(label)
        return list(seen)

    def follows_published_order(self) -> bool:
        """True when first occurrences respect the Fig. 3 ordering."""
        firsts = self.first_occurrences()
        expected = [label for label in self.EXPECTED_ORDER if label in firsts]
        return firsts == expected


class IMARSFabric:
    """Executable fabric: per-feature CMA banks + signature bank + buffers."""

    def __init__(self, mapping: WorkloadMapping, config: Optional[ArchitectureConfig] = None):
        self.mapping = mapping
        self.config = config or mapping.config
        self._banks: Dict[str, Bank] = {}
        self._signature_bank: Optional[Bank] = None
        self._signature_bits: Optional[np.ndarray] = None
        self.item_buffer = ItemBuffer(capacity=256, foms=self.config.foms)
        self.ctr_buffer = CTRBuffer(capacity=256, foms=self.config.foms)
        self.trace = FlowTrace()

    # -- loading -------------------------------------------------------------------
    def _bank_for_entries(self, num_entries: int) -> Bank:
        """A bank sized (mats/CMAs activated) for *num_entries* rows."""
        config = self.config
        cmas_needed = max(1, math.ceil(num_entries / config.cma_rows))
        mats_needed = max(1, math.ceil(cmas_needed / config.cmas_per_mat))
        if mats_needed > config.mats_per_bank:
            raise ValueError(
                f"{num_entries} entries need {mats_needed} mats; a bank has "
                f"{config.mats_per_bank}"
            )
        last_mat_cmas = cmas_needed - (mats_needed - 1) * config.cmas_per_mat
        return Bank(
            config,
            active_mats=mats_needed,
            active_cmas_last_mat=last_mat_cmas if last_mat_cmas < config.cmas_per_mat else None,
        )

    def load_table(self, name: str, table_int8: np.ndarray) -> Cost:
        """Load one embedding table into its bank (one entry per CMA row)."""
        specs = {mapping.spec.name: mapping for mapping in self.mapping.tables}
        if name not in specs:
            raise KeyError(f"unknown table {name!r}; mapped tables: {sorted(specs)}")
        matrix = np.asarray(table_int8)
        bank = self._bank_for_entries(matrix.shape[0])
        cost = bank.load_table(matrix)
        self._banks[name] = bank
        return cost

    def load_signatures(self, signature_bits: np.ndarray) -> Cost:
        """Load the ItET LSH signatures into the TCAM-mode signature arrays."""
        bits = np.asarray(signature_bits, dtype=np.uint8)
        if bits.ndim != 2 or bits.shape[1] != self.config.lsh_signature_bits:
            raise ValueError(
                f"signatures must be (n, {self.config.lsh_signature_bits}), got {bits.shape}"
            )
        bank = self._bank_for_entries(bits.shape[0])
        cost = ZERO_COST
        for entry, row in enumerate(bits):
            cost = cost.then(bank.write_signature_entry(entry, row))
        self._signature_bank = bank
        self._signature_bits = bits
        return cost

    def loaded_tables(self) -> List[str]:
        return sorted(self._banks)

    # -- stage operations ---------------------------------------------------------------
    def lookup_pool(self, name: str, entry_indices: Sequence[int]) -> Tuple[np.ndarray, Cost]:
        """Pooled embedding lookup in one table's bank (steps 1a / 2b)."""
        if name not in self._banks:
            raise KeyError(f"table {name!r} is not loaded")
        return self._banks[name].pooled_lookup(entry_indices)

    def stage_lookup(
        self,
        stage: str,
        requests: Dict[str, Sequence[int]],
    ) -> Tuple[Dict[str, np.ndarray], Cost]:
        """All of a stage's table lookups, banks in parallel.

        *requests* maps table name -> entry indices to pool.  Only tables
        active in *stage* may be requested.
        """
        active = {mapping.spec.name for mapping in self.mapping.tables_for_stage(stage)}
        unknown = set(requests) - active
        if unknown:
            raise ValueError(f"tables {sorted(unknown)} are not active in stage {stage!r}")
        label = "1a" if stage == FILTERING else "2b"
        self.trace.mark(label)
        results: Dict[str, np.ndarray] = {}
        cost = ZERO_COST
        for name, indices in requests.items():
            pooled, table_cost = self.lookup_pool(name, indices)
            results[name] = pooled
            cost = cost.alongside(table_cost)  # banks operate in parallel
        self.trace.mark("1b*" if stage == FILTERING else "2b*")
        return results, cost

    def nns_search(self, query_signature: np.ndarray, threshold: int) -> Tuple[List[int], Cost]:
        """Threshold TCAM search over the loaded signatures (step 1d)."""
        if self._signature_bank is None:
            raise RuntimeError("signatures have not been loaded")
        self.trace.mark("1d")
        matches, cost = self._signature_bank.search(
            np.asarray(query_signature, dtype=np.uint8), threshold
        )
        store_cost = self.item_buffer.store(matches)
        self.trace.mark("1d*")
        return self.item_buffer.peek(), cost.then(store_cost)

    def verify_signature_distances(self, query_signature: np.ndarray) -> np.ndarray:
        """Ground-truth Hamming distances for the loaded signatures."""
        if self._signature_bits is None:
            raise RuntimeError("signatures have not been loaded")
        query = np.asarray(query_signature, dtype=np.uint8)
        return (self._signature_bits != query[None, :]).sum(axis=1)

    # -- ranking-side buffers --------------------------------------------------------------
    def score_candidate(self, item_index: int, ctr: float) -> Cost:
        """Store one ranked candidate's CTR (step 2d)."""
        self.trace.mark("2d")
        return self.ctr_buffer.store(item_index, ctr)

    def select_topk(self, k: int) -> Tuple[List[int], Cost]:
        """Threshold-match top-k over the CTR buffer (step 2e)."""
        self.trace.mark("2e")
        return self.ctr_buffer.top_k(k)

    def mark_dnn(self, stage: str, phase: str) -> None:
        """Record the crossbar DNN steps (1b/1c filtering, 2c/2d ranking)."""
        labels = {
            (FILTERING, "dense"): "1b",
            (FILTERING, "main"): "1c",
            (RANKING, "dense"): "2c",
            (RANKING, "start"): "2a",
        }
        key = (stage, phase)
        if key not in labels:
            raise ValueError(f"unknown DNN phase {key}")
        self.trace.mark(labels[key])
