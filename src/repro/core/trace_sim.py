"""Trace-driven bank-utilisation simulation.

The iMARS mapping pins one sparse feature per bank (Sec. III-B), so a
query stream exercises the banks unevenly: every query touches every
active feature's bank once, but *within* the ItET bank, Zipfian item
popularity concentrates row accesses on a few CMAs.  This simulator
replays a query trace over a workload mapping and reports:

* per-bank access counts (schedule-level load);
* per-CMA access counts inside a chosen table (hot-row locality);
* utilisation-balance metrics used by the trace bench.

It complements the analytic cost model with the locality statistics an
architect would examine before trusting the worst-case numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.mapping import WorkloadMapping

__all__ = ["AccessTrace", "TraceSimulator"]


@dataclass
class AccessTrace:
    """Aggregated access statistics of one replayed query stream."""

    bank_accesses: Dict[str, int] = field(default_factory=dict)
    cma_accesses: Dict[str, np.ndarray] = field(default_factory=dict)
    num_queries: int = 0

    def bank_balance(self) -> float:
        """max/mean bank-access ratio (1.0 = perfectly balanced)."""
        counts = np.array(list(self.bank_accesses.values()), dtype=np.float64)
        if counts.size == 0 or counts.mean() == 0.0:
            return 1.0
        return float(counts.max() / counts.mean())

    def cma_skew(self, table: str) -> float:
        """Fraction of the table's accesses landing on its hottest CMA."""
        counts = self.cma_accesses.get(table)
        if counts is None or counts.sum() == 0:
            return 0.0
        return float(counts.max() / counts.sum())


class TraceSimulator:
    """Replays per-query lookup requests over a workload mapping."""

    def __init__(self, mapping: WorkloadMapping):
        self.mapping = mapping
        self._tables = {table.spec.name: table for table in mapping.tables}

    def _cma_of_entry(self, table_name: str, entry: int) -> int:
        """CMA index (table-local) holding *entry* (one entry per row)."""
        table = self._tables[table_name]
        if not 0 <= entry < table.spec.num_entries:
            raise IndexError(
                f"entry {entry} out of range for table {table_name!r} "
                f"({table.spec.num_entries} entries)"
            )
        return entry // self.mapping.config.cma_rows

    def replay(self, queries: Sequence[Dict[str, Sequence[int]]]) -> AccessTrace:
        """Replay *queries*; each query maps table name -> looked-up entries."""
        trace = AccessTrace(
            bank_accesses={name: 0 for name in self._tables},
            cma_accesses={
                name: np.zeros(table.embedding_cmas, dtype=np.int64)
                for name, table in self._tables.items()
            },
        )
        for query in queries:
            unknown = set(query) - set(self._tables)
            if unknown:
                raise KeyError(f"unknown tables in query: {sorted(unknown)}")
            for table_name, entries in query.items():
                if not entries:
                    continue
                trace.bank_accesses[table_name] += 1
                for entry in entries:
                    cma = self._cma_of_entry(table_name, entry)
                    trace.cma_accesses[table_name][cma] += 1
        trace.num_queries = len(queries)
        return trace

    def synthesize_stream(
        self,
        num_queries: int,
        itet_name: str,
        pooling: int = 10,
        zipf_exponent: float = 1.05,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Dict[str, List[int]]]:
        """Generate a Zipfian query stream over the mapped workload.

        Every query looks up one entry per UIET (uniform index) and pools
        ``pooling`` Zipf-popular entries from the ItET -- the access
        pattern the filtering stage produces.
        """
        if num_queries < 1 or pooling < 1:
            raise ValueError("query count and pooling must be >= 1")
        if itet_name not in self._tables:
            raise KeyError(f"unknown ItET {itet_name!r}")
        generator = rng or np.random.default_rng(0)
        itet_entries = self._tables[itet_name].spec.num_entries
        ranks = np.arange(1, itet_entries + 1, dtype=np.float64)
        weights = ranks ** (-zipf_exponent)
        popularity = weights / weights.sum()
        # Popularity assigned to a random permutation of items.
        item_order = generator.permutation(itet_entries)

        stream: List[Dict[str, List[int]]] = []
        for _ in range(num_queries):
            query: Dict[str, List[int]] = {}
            for name, table in self._tables.items():
                if name == itet_name:
                    drawn = generator.choice(itet_entries, size=pooling, p=popularity)
                    query[name] = [int(item_order[i]) for i in drawn]
                else:
                    query[name] = [int(generator.integers(0, table.spec.num_entries))]
            stream.append(query)
        return stream
