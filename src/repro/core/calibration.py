"""Peripheral-power calibration of the iMARS energy model.

The *latency* of iMARS operations composes directly from the Table II
array figures of merit (the worst-case pooling chain plus adder trees plus
serialised communication) and lands within a few percent of Table III with
no tuning.  The *energy* does not: the published ET-operation energies
(0.40 uJ MovieLens filtering, 0.46 uJ MovieLens ranking, 6.88 uJ Criteo
ranking) are two orders of magnitude above the summed dynamic array
energies, implying a substantial always-on peripheral component (wordline/
bitline/searchline drivers, clocking, sense-amplifier bias) across the
*active* arrays for the duration of the operation.

We model that component as

    E_peripheral = (a x active_CMAs + b x active_banks) x latency_ns

and fit (a, b) on exactly two of the three published points -- MovieLens
filtering and Criteo ranking -- leaving MovieLens ranking as a held-out
validation (the fitted model predicts it within ~2%; see EXPERIMENTS.md).
The fit is performed from the *model's own* dynamic numbers, so it stays
consistent if the underlying FoMs are swept.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.energy.accounting import Cost

__all__ = ["PeripheralModel", "ZERO_PERIPHERAL", "fit_peripheral_model", "default_peripheral"]

#: Published Table III iMARS ET-operation targets used for the fit (uJ).
TARGET_ML_FILTERING_UJ = 0.40
TARGET_CRITEO_RANKING_UJ = 6.88
#: Held-out validation target (uJ), not used in the fit.
TARGET_ML_RANKING_UJ = 0.46


@dataclass(frozen=True)
class PeripheralModel:
    """Always-on peripheral power charged per active CMA and per bank."""

    pj_per_cma_ns: float = 0.0
    pj_per_bank_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.pj_per_cma_ns < 0.0 or self.pj_per_bank_ns < 0.0:
            raise ValueError("peripheral power coefficients must be non-negative")

    def energy_pj(self, active_cmas: int, active_banks: int, latency_ns: float) -> float:
        """Peripheral energy for an operation spanning *latency_ns*."""
        if active_cmas < 0 or active_banks < 0:
            raise ValueError("active array counts must be non-negative")
        if latency_ns < 0.0:
            raise ValueError("latency must be non-negative")
        return (
            self.pj_per_cma_ns * active_cmas + self.pj_per_bank_ns * active_banks
        ) * latency_ns

    def charge(self, cost: Cost, active_cmas: int, active_banks: int) -> Cost:
        """Add the peripheral energy to an operation's dynamic cost."""
        extra = self.energy_pj(active_cmas, active_banks, cost.latency_ns)
        return Cost(cost.energy_pj + extra, cost.latency_ns)


#: Peripheral model that charges nothing (dynamic-only accounting).
ZERO_PERIPHERAL = PeripheralModel()


def fit_peripheral_model(
    target_a_uj: float = TARGET_ML_FILTERING_UJ,
    target_b_uj: float = TARGET_CRITEO_RANKING_UJ,
) -> PeripheralModel:
    """Fit (a, b) so the model lands on the two published anchor energies.

    Solves the 2x2 linear system

        (cmas_1 * a + banks_1 * b) * t_1 = target_1 - dynamic_1
        (cmas_2 * a + banks_2 * b) * t_2 = target_2 - dynamic_2

    where the dynamics/latencies come from the zero-peripheral cost model
    on the MovieLens filtering and Criteo ranking workloads.
    """
    # Imported here to avoid a circular import with the accelerator module.
    from repro.core.accelerator import IMARSCostModel
    from repro.core.mapping import FILTERING, RANKING, WorkloadMapping
    from repro.data.criteo import criteo_table_specs
    from repro.data.movielens import movielens_table_specs

    ml_mapping = WorkloadMapping(movielens_table_specs())
    ck_mapping = WorkloadMapping(criteo_table_specs())
    ml_model = IMARSCostModel(ml_mapping, peripheral=ZERO_PERIPHERAL)
    ck_model = IMARSCostModel(ck_mapping, peripheral=ZERO_PERIPHERAL)

    ml_dynamic = ml_model.et_operation(FILTERING)
    ck_dynamic = ck_model.et_operation(RANKING)
    ml_summary = ml_mapping.stage_summary(FILTERING)
    ck_summary = ck_mapping.stage_summary(RANKING)

    residual_ml = target_a_uj * 1e6 - ml_dynamic.energy_pj
    residual_ck = target_b_uj * 1e6 - ck_dynamic.energy_pj
    if residual_ml <= 0.0 or residual_ck <= 0.0:
        raise RuntimeError(
            "dynamic energy already exceeds the calibration targets; "
            "check the FoMs or the targets"
        )

    # Rows of the linear system: coefficients of (a, b).
    a11 = ml_summary["cmas"] * ml_dynamic.latency_ns
    a12 = ml_summary["banks"] * ml_dynamic.latency_ns
    a21 = ck_summary["cmas"] * ck_dynamic.latency_ns
    a22 = ck_summary["banks"] * ck_dynamic.latency_ns
    determinant = a11 * a22 - a12 * a21
    if abs(determinant) < 1e-12:
        raise RuntimeError("calibration system is singular")
    coeff_a = (residual_ml * a22 - a12 * residual_ck) / determinant
    coeff_b = (a11 * residual_ck - residual_ml * a21) / determinant
    if coeff_a < 0.0 or coeff_b < 0.0:
        raise RuntimeError(
            f"calibration produced a negative coefficient (a={coeff_a}, b={coeff_b})"
        )
    return PeripheralModel(pj_per_cma_ns=coeff_a, pj_per_bank_ns=coeff_b)


@lru_cache(maxsize=1)
def default_peripheral() -> PeripheralModel:
    """The fitted peripheral model, computed once per process."""
    return fit_peripheral_model()
