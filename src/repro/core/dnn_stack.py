"""Crossbar-bank DNN stacks (Sec. III-A2).

"Two dedicated crossbar banks are employed to execute the ranking and the
filtering DNN stack composed of fully connected layers.  Each crossbar bank
contains multiple crossbar arrays in order to accommodate the respective
DNN model."

A layer of shape (in, out) tiles onto ceil(in / rows) x ceil(out / cols)
crossbar arrays of 256 x 128 cells.  Column tiles operate in parallel
(disjoint outputs); row tiles produce partial sums that are accumulated
sequentially, so layer latency scales with the row-tile count while energy
scales with the total tile count.  Layers execute back to back, streaming
activations over the RSC bus.

Functionally the stack wraps a :class:`repro.nn.Sequential` MLP; an
optional analog mode routes every Linear layer through
:class:`repro.imc.crossbar.CrossbarArray` tiles to include DAC/ADC
quantisation and device noise.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import ArchitectureConfig, PAPER_CONFIG
from repro.core.interconnect import RSCBus
from repro.energy.accounting import Cost, ZERO_COST
from repro.imc.crossbar import CrossbarArray, CrossbarConfig
from repro.nn.layers import Linear
from repro.nn.module import Sequential

__all__ = ["CrossbarBank", "layer_tiles"]

#: Physical crossbar tile dimensions used in Table II.
TILE_ROWS = 256
TILE_COLS = 128


def layer_tiles(in_features: int, out_features: int) -> Tuple[int, int]:
    """(row_tiles, col_tiles) for a fully-connected layer on 256x128 tiles."""
    if in_features < 1 or out_features < 1:
        raise ValueError("layer dimensions must be positive")
    return math.ceil(in_features / TILE_ROWS), math.ceil(out_features / TILE_COLS)


class CrossbarBank:
    """One DNN stack (an MLP) mapped onto a bank of crossbar arrays."""

    def __init__(
        self,
        mlp: Sequential,
        config: ArchitectureConfig = PAPER_CONFIG,
        analog: bool = False,
        analog_config: Optional[CrossbarConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.mlp = mlp
        self.config = config
        self.analog = analog
        self.bus = RSCBus(width_bits=config.rsc_bus_bits)
        self._linears: List[Linear] = [
            layer for layer in mlp.layers if isinstance(layer, Linear)
        ]
        if not self._linears:
            raise ValueError("a crossbar bank needs at least one Linear layer")
        self._tiles: List[List[List[CrossbarArray]]] = []
        if analog:
            self._program_analog(analog_config, rng or np.random.default_rng(0))

    # -- geometry -------------------------------------------------------------------
    def tile_counts(self) -> List[Tuple[int, int]]:
        """(row_tiles, col_tiles) per Linear layer."""
        return [
            layer_tiles(layer.in_features, layer.out_features)
            for layer in self._linears
        ]

    @property
    def total_tiles(self) -> int:
        return sum(rows * cols for rows, cols in self.tile_counts())

    # -- analog programming -------------------------------------------------------------
    def _program_analog(self, analog_config: Optional[CrossbarConfig], rng: np.random.Generator) -> None:
        """Split every Linear's weights across physical crossbar tiles."""
        base = analog_config or CrossbarConfig(rows=TILE_ROWS, cols=TILE_COLS)
        for layer in self._linears:
            row_tiles, col_tiles = layer_tiles(layer.in_features, layer.out_features)
            grid: List[List[CrossbarArray]] = []
            for row_tile in range(row_tiles):
                row_list: List[CrossbarArray] = []
                for col_tile in range(col_tiles):
                    tile = CrossbarArray(base, rng=rng)
                    block = np.zeros((base.rows, base.cols))
                    row_lo = row_tile * base.rows
                    col_lo = col_tile * base.cols
                    sub = layer.weight.data[
                        row_lo : min(row_lo + base.rows, layer.in_features),
                        col_lo : min(col_lo + base.cols, layer.out_features),
                    ]
                    block[: sub.shape[0], : sub.shape[1]] = sub
                    tile.program(block)
                    row_list.append(tile)
                grid.append(row_list)
            self._tiles.append(grid)

    def _analog_linear(self, layer_index: int, inputs: np.ndarray) -> np.ndarray:
        """One Linear layer evaluated tile by tile through the analog model."""
        layer = self._linears[layer_index]
        grid = self._tiles[layer_index]
        base = grid[0][0].config
        batch = inputs.shape[0]
        outputs = np.zeros((batch, layer.out_features))
        for sample in range(batch):
            padded = np.zeros(len(grid) * base.rows)
            padded[: layer.in_features] = inputs[sample]
            for row_tile, row_list in enumerate(grid):
                chunk = padded[row_tile * base.rows : (row_tile + 1) * base.rows]
                for col_tile, tile in enumerate(row_list):
                    partial = tile.matvec(chunk)
                    col_lo = col_tile * base.cols
                    col_hi = min(col_lo + base.cols, layer.out_features)
                    outputs[sample, col_lo:col_hi] += partial[: col_hi - col_lo]
        if layer.bias is not None:
            outputs += layer.bias.data
        return outputs

    # -- compute ---------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> Tuple[np.ndarray, Cost]:
        """Run the MLP and return (outputs, hardware cost).

        In digital mode the functional result is the exact MLP output; in
        analog mode every Linear routes through its crossbar tiles
        (activations still apply digitally, as iMARS computes them in the
        crossbar-bank periphery).
        """
        activations = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        cost = ZERO_COST
        linear_index = 0
        for layer in self.mlp.layers:
            if isinstance(layer, Linear):
                if self.analog:
                    activations = self._analog_linear(linear_index, activations)
                else:
                    activations = layer(activations)
                cost = cost.then(self._layer_cost(linear_index))
                linear_index += 1
            else:
                activations = layer(activations)
        return activations, cost

    def _layer_cost(self, layer_index: int) -> Cost:
        """Cost of one Linear layer on its tile grid.

        Column tiles fire together; row tiles' partial sums accumulate
        sequentially; the layer output streams over the RSC bus to the next
        stage.
        """
        layer = self._linears[layer_index]
        row_tiles, col_tiles = layer_tiles(layer.in_features, layer.out_features)
        matmul = self.config.foms.crossbar_matmul
        compute = Cost(
            energy_pj=matmul.energy_pj * row_tiles * col_tiles,
            latency_ns=matmul.latency_ns * row_tiles,
        )
        transfer = self.bus.transfer(layer.out_features * self.config.embedding_bits)
        return compute.then(transfer)

    def stack_cost(self) -> Cost:
        """Cost of one forward pass without computing values."""
        cost = ZERO_COST
        for layer_index in range(len(self._linears)):
            cost = cost.then(self._layer_cost(layer_index))
        return cost
