"""Standby-power model: the FeFET non-volatility benefit.

Sec. II-B argues for emerging-technology CMAs over CMOS ones partly because
of "lower standby power (a result of the device's non-volatility)": an
idle FeFET array retains its contents with (near-)zero supply, while an
SRAM-based CMA must stay powered to hold the embedding tables between
queries.  Recommendation serving is bursty, so standby energy matters.

This module quantifies the claim with per-array leakage constants
representative of 45 nm (6T SRAM leaks ~10-50 nW/bit-cell-row scale; a
256x256 SRAM array lands in the low-mW range, FeFET arrays orders of
magnitude lower, limited by periphery gating).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ArchitectureConfig, PAPER_CONFIG
from repro.energy.accounting import Cost

__all__ = ["StandbyPowerModel", "standby_comparison"]


@dataclass(frozen=True)
class StandbyPowerModel:
    """Leakage constants for idle 256x256 arrays at 45 nm.

    Attributes
    ----------
    sram_cma_leakage_uw:
        Idle power of one SRAM-based CMA (cells + retention periphery).
    fefet_cma_leakage_uw:
        Idle power of one FeFET CMA (non-volatile cells; only gated
        periphery leaks).
    """

    sram_cma_leakage_uw: float = 1800.0
    fefet_cma_leakage_uw: float = 9.0

    def __post_init__(self) -> None:
        if self.sram_cma_leakage_uw <= 0.0 or self.fefet_cma_leakage_uw < 0.0:
            raise ValueError("leakage constants must be positive/non-negative")

    def standby_energy(
        self, num_cmas: int, idle_seconds: float, technology: str = "fefet"
    ) -> Cost:
        """Energy leaked by *num_cmas* idle arrays over *idle_seconds*."""
        if num_cmas < 0:
            raise ValueError("array count must be non-negative")
        if idle_seconds < 0.0:
            raise ValueError("idle time must be non-negative")
        if technology == "fefet":
            power_uw = self.fefet_cma_leakage_uw
        elif technology == "sram":
            power_uw = self.sram_cma_leakage_uw
        else:
            raise ValueError(f"unknown technology {technology!r} (fefet/sram)")
        energy_pj = power_uw * 1e-6 * idle_seconds * 1e12  # W x s -> pJ
        return Cost(energy_pj=energy_pj * num_cmas, latency_ns=idle_seconds * 1e9)

    def retention_advantage(self) -> float:
        """Standby-power ratio SRAM / FeFET (the non-volatility benefit)."""
        if self.fefet_cma_leakage_uw == 0.0:
            return float("inf")
        return self.sram_cma_leakage_uw / self.fefet_cma_leakage_uw


def standby_comparison(
    config: ArchitectureConfig = PAPER_CONFIG,
    idle_seconds: float = 1.0,
    model: StandbyPowerModel = StandbyPowerModel(),
) -> dict:
    """Fabric-level standby energies and the FeFET advantage factor."""
    cmas = config.total_cmas
    fefet = model.standby_energy(cmas, idle_seconds, "fefet")
    sram = model.standby_energy(cmas, idle_seconds, "sram")
    return {
        "num_cmas": cmas,
        "idle_seconds": idle_seconds,
        "fefet_energy_uj": fefet.energy_uj,
        "sram_energy_uj": sram.energy_uj,
        "advantage": model.retention_advantage(),
    }
