"""Embedding-table -> hardware mapping (Sec. III-B, Table I).

Mapping rules from the paper:

* each CMA row stores one ET entry; a table of ``n`` entries needs
  ``ceil(n / R)`` CMAs (R = 256 rows);
* the ItET additionally stores one LSH signature per entry, in a second
  set of CMAs kept in TCAM mode ("We use a 256 LSH signature length which
  requires 2 CMAs to store a single entry": each entry occupies one
  RAM-mode CMA row for its embedding word and one TCAM-mode CMA row for
  its signature);
* a table needs ``ceil(cmas / C)`` mats (RAM-mode and TCAM-mode CMAs of the
  ItET sit in separate mats, since the two peripheral configurations are
  active simultaneously during filtering);
* each sparse feature maps to its own bank, so active banks = number of
  distinct sparse features;
* for *capacity provisioning* the per-table CMA count is rounded up to the
  next power of two ("the number of arrays is rounded up to the nearest
  power-of-two value, i.e., 128"), which must fit within a bank (M x C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence

from repro.core.config import ArchitectureConfig, PAPER_CONFIG

__all__ = [
    "EmbeddingTableSpec",
    "TableMapping",
    "WorkloadMapping",
    "next_power_of_two",
]

#: Stage labels used throughout the repo.
FILTERING = "filtering"
RANKING = "ranking"


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= value (1 maps to 1)."""
    if value < 1:
        raise ValueError(f"value must be positive, got {value}")
    return 1 << (value - 1).bit_length()


@dataclass(frozen=True)
class EmbeddingTableSpec:
    """One embedding table of the workload.

    Attributes
    ----------
    name:
        Feature name (e.g. ``"user_id"``).
    num_entries:
        Table cardinality (rows).
    kind:
        ``"uiet"`` (user-item table) or ``"itet"`` (item table, which also
        stores LSH signatures and serves the NNS).
    stages:
        Which stages use the table; tables in both stages are the "shared"
        UIETs of Table I.
    pooling_factor:
        Typical number of rows pooled per query (bag size); 1 for one-hot
        features, >1 for multi-hot features such as watch history.
    """

    name: str
    num_entries: int
    kind: str = "uiet"
    stages: FrozenSet[str] = frozenset({FILTERING, RANKING})
    pooling_factor: int = 1

    def __post_init__(self) -> None:
        if self.num_entries < 1:
            raise ValueError(f"table {self.name!r} must have >= 1 entry")
        if self.kind not in ("uiet", "itet"):
            raise ValueError(f"table kind must be 'uiet' or 'itet', got {self.kind!r}")
        unknown = set(self.stages) - {FILTERING, RANKING}
        if unknown:
            raise ValueError(f"unknown stages for {self.name!r}: {sorted(unknown)}")
        if not self.stages:
            raise ValueError(f"table {self.name!r} must serve at least one stage")
        if self.pooling_factor < 1:
            raise ValueError("pooling factor must be >= 1")

    @property
    def is_shared(self) -> bool:
        """True when both stages use this table."""
        return FILTERING in self.stages and RANKING in self.stages


@dataclass(frozen=True)
class TableMapping:
    """Hardware placement of one embedding table."""

    spec: EmbeddingTableSpec
    bank_index: int
    embedding_cmas: int
    signature_cmas: int
    embedding_mats: int
    signature_mats: int
    provisioned_cmas: int

    @property
    def total_cmas(self) -> int:
        return self.embedding_cmas + self.signature_cmas

    @property
    def total_mats(self) -> int:
        return self.embedding_mats + self.signature_mats


class WorkloadMapping:
    """Full mapping of a workload's tables onto the iMARS fabric."""

    def __init__(
        self,
        specs: Sequence[EmbeddingTableSpec],
        config: ArchitectureConfig = PAPER_CONFIG,
    ):
        if not specs:
            raise ValueError("a workload needs at least one embedding table")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate table names in workload")
        if len(specs) > config.num_banks:
            raise ValueError(
                f"{len(specs)} sparse features exceed the {config.num_banks} banks"
            )
        self.config = config
        self.tables: List[TableMapping] = []
        for bank_index, spec in enumerate(specs):
            self.tables.append(self._map_table(spec, bank_index))

    # -- per-table mapping -----------------------------------------------------------
    def _map_table(self, spec: EmbeddingTableSpec, bank_index: int) -> TableMapping:
        config = self.config
        embedding_cmas = math.ceil(spec.num_entries / config.cma_rows)
        signature_cmas = embedding_cmas if spec.kind == "itet" else 0
        embedding_mats = math.ceil(embedding_cmas / config.cmas_per_mat)
        signature_mats = (
            math.ceil(signature_cmas / config.cmas_per_mat) if signature_cmas else 0
        )
        provisioned = next_power_of_two(embedding_cmas + signature_cmas)
        if provisioned > config.cmas_per_bank:
            raise ValueError(
                f"table {spec.name!r} needs {provisioned} provisioned CMAs; a bank "
                f"holds {config.cmas_per_bank}"
            )
        return TableMapping(
            spec=spec,
            bank_index=bank_index,
            embedding_cmas=embedding_cmas,
            signature_cmas=signature_cmas,
            embedding_mats=embedding_mats,
            signature_mats=signature_mats,
            provisioned_cmas=provisioned,
        )

    # -- stage filtering -------------------------------------------------------------
    def tables_for_stage(self, stage: str) -> List[TableMapping]:
        """Mappings of the tables active during *stage*."""
        if stage not in (FILTERING, RANKING):
            raise ValueError(f"unknown stage {stage!r}")
        return [table for table in self.tables if stage in table.spec.stages]

    def itet(self) -> TableMapping:
        """The item embedding table mapping (exactly one per workload)."""
        items = [table for table in self.tables if table.spec.kind == "itet"]
        if len(items) != 1:
            raise ValueError(f"expected exactly one ItET, found {len(items)}")
        return items[0]

    def has_itet(self) -> bool:
        return any(table.spec.kind == "itet" for table in self.tables)

    # -- Table I aggregates -------------------------------------------------------------
    @property
    def active_banks(self) -> int:
        """One bank per sparse feature."""
        return len(self.tables)

    @property
    def active_mats(self) -> int:
        return sum(table.total_mats for table in self.tables)

    @property
    def active_cmas(self) -> int:
        return sum(table.total_cmas for table in self.tables)

    def stage_summary(self, stage: str) -> Dict[str, int]:
        """Banks/mats/CMAs/UIET counts active during one stage."""
        active = self.tables_for_stage(stage)
        uiets = [table for table in active if table.spec.kind == "uiet"]
        shared = [table for table in uiets if table.spec.is_shared]
        return {
            "banks": len(active),
            "mats": sum(table.total_mats for table in active),
            "cmas": sum(table.total_cmas for table in active),
            "uiet_tables": len(uiets),
            "shared_uiet_tables": len(shared),
            "itet_tables": len(active) - len(uiets),
        }

    def table_one_row(self) -> Dict[str, int]:
        """The memory-mapping row of Table I for this workload."""
        return {
            "banks": self.active_banks,
            "mats": self.active_mats,
            "cmas": self.active_cmas,
        }
