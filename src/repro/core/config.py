"""iMARS architecture configuration (Sec. III-A, Table I dimensioning).

The paper dimensions the fabric once, for its largest workload (Criteo
Kaggle): CMAs of 256x256 cells, C=32 CMAs per mat, M=4 mats per bank,
B=32 banks, an intra-bank adder tree of fan-in 4, a 256-bit RSC bus and an
IBC network moving 128 bytes (four 256-bit words) per shot.  Workloads that
need less (MovieLens) keep the same fabric with idle arrays deactivated.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.circuits.foms import ArrayFoMs, TABLE_II

__all__ = ["ArchitectureConfig", "PAPER_CONFIG"]


@dataclass(frozen=True)
class ArchitectureConfig:
    """Static design parameters of the iMARS fabric.

    Attributes
    ----------
    cma_rows / cma_cols:
        Dimensions of one CMA array ("the optimal array-level CMA to be the
        size of 256x256 based on circuit-level simulations", Sec. III-B).
    cmas_per_mat:
        C -- CMAs aggregated by one intra-mat adder tree.
    mats_per_bank:
        M -- mats per bank.
    num_banks:
        B -- banks in the fabric ("we dimension iMARS with 32 banks").
    intra_bank_fan_in:
        Fan-in of the intra-bank adder tree (4; K > 4 needs extra rounds).
    rsc_bus_bits:
        Width of the RecSys communication bus (256).
    ibc_payload_bits:
        Bits moved per IBC shot (128 bytes = four 256-bit words).
    embedding_dim / embedding_bits:
        Embedding geometry: 32 dimensions at int8 -> one 256-bit row.
    lsh_signature_bits:
        LSH signature length stored per ItET entry (256).
    foms:
        Array-level figures of merit (defaults to Table II).
    """

    cma_rows: int = 256
    cma_cols: int = 256
    cmas_per_mat: int = 32
    mats_per_bank: int = 4
    num_banks: int = 32
    intra_bank_fan_in: int = 4
    rsc_bus_bits: int = 256
    ibc_payload_bits: int = 1024  # 128 bytes
    embedding_dim: int = 32
    embedding_bits: int = 8
    lsh_signature_bits: int = 256
    foms: ArrayFoMs = field(default_factory=lambda: TABLE_II)

    def __post_init__(self) -> None:
        positives = {
            "cma_rows": self.cma_rows,
            "cma_cols": self.cma_cols,
            "cmas_per_mat": self.cmas_per_mat,
            "mats_per_bank": self.mats_per_bank,
            "num_banks": self.num_banks,
            "rsc_bus_bits": self.rsc_bus_bits,
            "ibc_payload_bits": self.ibc_payload_bits,
            "embedding_dim": self.embedding_dim,
            "embedding_bits": self.embedding_bits,
            "lsh_signature_bits": self.lsh_signature_bits,
        }
        for name, value in positives.items():
            if value < 1:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.intra_bank_fan_in < 2:
            raise ValueError("intra-bank adder tree fan-in must be >= 2")
        if self.word_bits > self.cma_cols:
            raise ValueError(
                f"embedding word ({self.word_bits} bits) exceeds CMA row width"
            )

    # -- derived geometry --------------------------------------------------------
    @property
    def word_bits(self) -> int:
        """Width of one embedding word: dim x precision (256 for the paper)."""
        return self.embedding_dim * self.embedding_bits

    @property
    def cmas_per_bank(self) -> int:
        """Capacity of one bank in CMAs: M x C (128 for the paper)."""
        return self.mats_per_bank * self.cmas_per_mat

    @property
    def total_cmas(self) -> int:
        """Fabric-wide CMA count: B x M x C."""
        return self.num_banks * self.cmas_per_bank

    @property
    def rows_per_bank(self) -> int:
        """ET entries one bank can hold (one entry per CMA row)."""
        return self.cmas_per_bank * self.cma_rows

    def total_capacity_entries(self) -> int:
        """Fabric-wide ET entry capacity."""
        return self.num_banks * self.rows_per_bank

    def with_foms(self, foms: ArrayFoMs) -> "ArchitectureConfig":
        """Copy of this config with different array FoMs (ablation hook)."""
        return replace(self, foms=foms)


#: The configuration the paper evaluates (Sec. IV, dimensioned for Criteo).
PAPER_CONFIG = ArchitectureConfig()
