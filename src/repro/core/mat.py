"""The mat: C independent CMAs plus an intra-mat adder tree (Fig. 3(b)).

"Each mat is comprised of C CMAs that work independently as the IMC engines
in iMARS for performing lookups, searches and additions.  To accumulate the
outputs of the CMAs for each mat, iMARS sums up C 256-bit numbers leveraging
a near-memory 256-bit intra-mat adder tree placed in each mat."
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.circuits.sense_amp import PriorityEncoder
from repro.core.adder_tree import AdderTree
from repro.core.cma import CMA
from repro.core.config import ArchitectureConfig, PAPER_CONFIG
from repro.energy.accounting import Cost, ZERO_COST

__all__ = ["Mat", "RowLocation"]

#: A (cma_index, row_index) coordinate inside a mat.
RowLocation = Tuple[int, int]


class Mat:
    """C CMAs + one intra-mat adder tree + a shared priority encoder."""

    def __init__(self, config: ArchitectureConfig = PAPER_CONFIG, active_cmas: int = None):
        self.config = config
        count = config.cmas_per_mat if active_cmas is None else active_cmas
        if not 1 <= count <= config.cmas_per_mat:
            raise ValueError(
                f"active CMA count must be in [1, {config.cmas_per_mat}], got {count}"
            )
        self.cmas: List[CMA] = [
            CMA(
                rows=config.cma_rows,
                cols=config.cma_cols,
                lanes=config.embedding_dim,
                lane_bits=config.embedding_bits,
                foms=config.foms,
            )
            for _ in range(count)
        ]
        self.tree = AdderTree(
            fan_in=max(2, count),
            add_cost=config.foms.intra_mat_add,
            name="intra-mat",
        )
        self.encoder = PriorityEncoder()

    @property
    def num_cmas(self) -> int:
        return len(self.cmas)

    @property
    def capacity_rows(self) -> int:
        """Entries this mat can store (one per CMA row)."""
        return self.num_cmas * self.config.cma_rows

    # -- storage -------------------------------------------------------------------
    def locate(self, entry_index: int) -> RowLocation:
        """Map a mat-local entry index to its (cma, row) coordinate.

        Entries fill CMAs in order: entry e lives in CMA e // R, row e % R.
        """
        if not 0 <= entry_index < self.capacity_rows:
            raise IndexError(
                f"entry {entry_index} out of range for capacity {self.capacity_rows}"
            )
        rows = self.config.cma_rows
        return entry_index // rows, entry_index % rows

    def write_entry(self, entry_index: int, lane_values: Sequence[int]) -> Cost:
        """Store one embedding word at a mat-local entry index."""
        cma_index, row = self.locate(entry_index)
        return self.cmas[cma_index].write_word(row, lane_values)

    def write_signature_entry(self, entry_index: int, signature_bits: Sequence[int]) -> Cost:
        """Store one LSH signature at a mat-local entry index."""
        cma_index, row = self.locate(entry_index)
        return self.cmas[cma_index].write_signature(row, signature_bits)

    def read_entry(self, entry_index: int) -> Tuple[np.ndarray, Cost]:
        """RAM-mode lookup of one embedding word."""
        cma_index, row = self.locate(entry_index)
        return self.cmas[cma_index].read_word(row)

    # -- pooling ---------------------------------------------------------------------
    def pooled_lookup(self, entry_indices: Sequence[int]) -> Tuple[np.ndarray, Cost]:
        """Look up and pool several entries of this mat.

        Entries in the *same* CMA pool through that array's serial in-memory
        add chain; different CMAs run their chains concurrently; the
        intra-mat adder tree then reduces the per-CMA partial sums.
        """
        indices = list(entry_indices)
        if not indices:
            raise ValueError("pooled lookup needs at least one entry")
        by_cma: Dict[int, List[int]] = defaultdict(list)
        for entry in indices:
            cma_index, row = self.locate(entry)
            by_cma[cma_index].append(row)

        partials: List[np.ndarray] = []
        chain_cost = ZERO_COST
        for cma_index, rows in sorted(by_cma.items()):
            partial, cost = self.cmas[cma_index].pool_rows(rows)
            partials.append(partial)
            chain_cost = chain_cost.alongside(cost)  # CMAs work concurrently

        if len(partials) == 1:
            return partials[0], chain_cost
        total, tree_cost = self.tree.reduce(partials)
        return total, chain_cost.then(tree_cost)

    # -- search ---------------------------------------------------------------------
    def search(self, query_bits: Sequence[int], threshold: int) -> Tuple[List[int], Cost]:
        """Threshold search across every CMA of the mat, in parallel.

        Returns mat-local entry indices of matching rows in priority order
        (CMA-major, then row -- the predetermined drain order).
        """
        matches: List[int] = []
        cost = ZERO_COST
        rows = self.config.cma_rows
        for cma_index, cma in enumerate(self.cmas):
            flags, search_cost = cma.search(query_bits, threshold)
            cost = cost.alongside(search_cost)  # all arrays search at once
            for row in self.encoder.encode(flags):
                matches.append(cma_index * rows + row)
        encode_cost = Cost(
            energy_pj=self.encoder.energy_per_index_pj * len(matches),
            latency_ns=self.encoder.latency_per_index_ns * len(matches),
        )
        return matches, cost.then(encode_cost)
