"""Item buffer and CTR buffer (Fig. 3(a), steps (1d*), (2d), (2e)).

* The **item buffer** holds the candidate item indices produced by the
  filtering stage's threshold NNS; the ranking stage drains it one
  candidate at a time.
* The **CTR buffer** is "a CMA that stores the CTR for each candidate item
  and the item index which are used for selecting the final top-k items"
  (step (2d)); the top-k selection runs in the CMA's threshold-match mode
  "by searching a vector of all 1's (the maximum allowable CMA input)"
  (step (2e)) -- nearest-to-all-ones is the row with the largest stored
  magnitude, so lowering the match threshold step by step yields the items
  in descending CTR order.

Both buffers are CMA-backed, so their entries cost CMA writes/reads/searches
from the Table II FoMs.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.circuits.foms import ArrayFoMs, TABLE_II
from repro.energy.accounting import Cost, ZERO_COST

__all__ = ["ItemBuffer", "CTRBuffer"]


class ItemBuffer:
    """FIFO of candidate item indices, backed by one CMA."""

    def __init__(self, capacity: int = 256, foms: ArrayFoMs = TABLE_II):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.foms = foms
        self._items: List[int] = []

    def __len__(self) -> int:
        return len(self._items)

    def store(self, item_indices: List[int]) -> Cost:
        """Write the candidate set; truncates at capacity (buffer is finite)."""
        self._items = [int(index) for index in item_indices[: self.capacity]]
        return self.foms.cma_write.repeated(len(self._items))

    def drain(self) -> Tuple[List[int], Cost]:
        """Read all candidates out in stored order."""
        cost = self.foms.cma_read.repeated(len(self._items))
        items = list(self._items)
        return items, cost

    def peek(self) -> List[int]:
        """Contents without charging a hardware cost (verification helper)."""
        return list(self._items)


class CTRBuffer:
    """CTR + item-index store with in-CMA top-k selection."""

    def __init__(self, capacity: int = 256, score_bits: int = 8, foms: ArrayFoMs = TABLE_II):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if score_bits < 1:
            raise ValueError(f"score width must be positive, got {score_bits}")
        self.capacity = capacity
        self.score_bits = score_bits
        self.foms = foms
        self._entries: List[Tuple[int, float]] = []  # (item_index, ctr)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries = []

    def store(self, item_index: int, ctr: float) -> Cost:
        """Write one (item, CTR) row after the ranking DNN scores it."""
        if not 0.0 <= ctr <= 1.0:
            raise ValueError(f"CTR must be in [0, 1], got {ctr}")
        if len(self._entries) >= self.capacity:
            raise RuntimeError(f"CTR buffer full (capacity {self.capacity})")
        self._entries.append((int(item_index), float(ctr)))
        return self.foms.cma_write

    def _quantised_scores(self) -> np.ndarray:
        """CTRs quantised to the buffer's unsigned fixed-point width."""
        levels = (1 << self.score_bits) - 1
        scores = np.array([ctr for _, ctr in self._entries], dtype=np.float64)
        return np.round(scores * levels).astype(np.int64)

    def top_k(self, k: int) -> Tuple[List[int], Cost]:
        """Select the k items with the highest CTR via threshold matching.

        The hardware searches the all-ones vector and lowers the threshold
        until k rows match; each threshold step is one CMA search.  The
        returned items are ordered by descending quantised CTR (ties by
        insertion order, the priority-encoder behaviour).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not self._entries:
            return [], ZERO_COST
        scores = self._quantised_scores()
        # Hamming distance to all-ones decreases as the score grows, so the
        # threshold sweep admits rows in descending-score order.  Count the
        # distinct thresholds stepped through until >= k rows match.
        unique_scores = np.sort(np.unique(scores))[::-1]
        admitted = 0
        searches = 0
        cutoff = unique_scores[-1]
        for score in unique_scores:
            searches += 1
            admitted = int((scores >= score).sum())
            cutoff = score
            if admitted >= k:
                break
        order = sorted(
            range(len(self._entries)),
            key=lambda index: (-scores[index], index),
        )
        winners = [self._entries[index][0] for index in order[: min(k, len(order))]]
        cost = self.foms.cma_search.repeated(searches)
        del cutoff  # cutoff kept for clarity of the sweep; winners carry the result
        return winners, cost

    def entries(self) -> List[Tuple[int, float]]:
        """Stored (item, CTR) pairs (verification helper)."""
        return list(self._entries)
