"""The iMARS architecture: CMAs, mats, banks, mapping, cost model, pipeline."""

from repro.core.config import ArchitectureConfig, PAPER_CONFIG
from repro.core.cma import CMA, CMAMode
from repro.core.mat import Mat
from repro.core.bank import Bank
from repro.core.adder_tree import AdderTree, reduction_rounds
from repro.core.interconnect import IBCNetwork, RSCBus
from repro.core.controller import Controller, ScheduleEntry
from repro.core.mapping import (
    EmbeddingTableSpec,
    FILTERING,
    RANKING,
    TableMapping,
    WorkloadMapping,
    next_power_of_two,
)
from repro.core.buffers import CTRBuffer, ItemBuffer
from repro.core.dnn_stack import CrossbarBank, layer_tiles
from repro.core.calibration import (
    PeripheralModel,
    ZERO_PERIPHERAL,
    default_peripheral,
    fit_peripheral_model,
)
from repro.core.accelerator import IMARSCostModel
from repro.core.area import AreaModel, FabricArea, fabric_area, workload_area
from repro.core.power import StandbyPowerModel, standby_comparison
from repro.core.trace_sim import AccessTrace, TraceSimulator
from repro.core.fabric import FlowTrace, IMARSFabric
from repro.core.pipeline import (
    BatchResult,
    GPUReferenceEngine,
    IMARSEngine,
    QueryResult,
    ServeQuery,
)

__all__ = [
    "ArchitectureConfig",
    "PAPER_CONFIG",
    "CMA",
    "CMAMode",
    "Mat",
    "Bank",
    "AdderTree",
    "reduction_rounds",
    "IBCNetwork",
    "RSCBus",
    "Controller",
    "ScheduleEntry",
    "EmbeddingTableSpec",
    "FILTERING",
    "RANKING",
    "TableMapping",
    "WorkloadMapping",
    "next_power_of_two",
    "CTRBuffer",
    "ItemBuffer",
    "CrossbarBank",
    "layer_tiles",
    "PeripheralModel",
    "ZERO_PERIPHERAL",
    "default_peripheral",
    "fit_peripheral_model",
    "IMARSCostModel",
    "AreaModel",
    "FabricArea",
    "fabric_area",
    "workload_area",
    "StandbyPowerModel",
    "standby_comparison",
    "AccessTrace",
    "TraceSimulator",
    "FlowTrace",
    "IMARSFabric",
    "BatchResult",
    "GPUReferenceEngine",
    "IMARSEngine",
    "QueryResult",
    "ServeQuery",
]
