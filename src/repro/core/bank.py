"""The CMA bank: M mats + IBC network + intra-bank adder tree (Fig. 3(b)).

One bank stores one sparse feature's embedding table ("Each sparse feature
is mapped to a separate bank", Sec. III-B).  Mats perform intra-mat
additions in parallel; their outputs travel over the IBC network in groups
of four 256-bit words and are reduced by the fan-in-4 intra-bank adder
tree, with multiple serialised rounds when more than four mats contribute.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.adder_tree import AdderTree
from repro.core.config import ArchitectureConfig, PAPER_CONFIG
from repro.core.controller import Controller
from repro.core.interconnect import IBCNetwork
from repro.core.mat import Mat
from repro.energy.accounting import Cost, ZERO_COST

__all__ = ["Bank"]


class Bank:
    """M mats + intra-bank adder tree, drained in the predetermined order."""

    def __init__(
        self,
        config: ArchitectureConfig = PAPER_CONFIG,
        active_mats: int = None,
        active_cmas_last_mat: int = None,
    ):
        """Build a bank with ``active_mats`` mats powered on.

        ``active_cmas_last_mat`` deactivates trailing CMAs of the final mat
        ("some mats and CMAs deactivated in a bank according to the size of
        the ET", Sec. IV): a 110-CMA Criteo table activates 3 full mats
        plus one 14-CMA mat.
        """
        self.config = config
        mats = config.mats_per_bank if active_mats is None else active_mats
        if not 1 <= mats <= config.mats_per_bank:
            raise ValueError(
                f"active mat count must be in [1, {config.mats_per_bank}], got {mats}"
            )
        self.mats: List[Mat] = []
        for mat_index in range(mats):
            is_last = mat_index == mats - 1
            cmas = active_cmas_last_mat if (is_last and active_cmas_last_mat) else None
            self.mats.append(Mat(config, active_cmas=cmas))
        self.ibc = IBCNetwork(
            payload_bits=config.ibc_payload_bits,
            word_bits=config.word_bits,
        )
        self.tree = AdderTree(
            fan_in=config.intra_bank_fan_in,
            add_cost=config.foms.intra_bank_add,
            name="intra-bank",
        )
        self.controller = Controller(group_size=config.intra_bank_fan_in)

    @property
    def num_mats(self) -> int:
        return len(self.mats)

    @property
    def num_cmas(self) -> int:
        return sum(mat.num_cmas for mat in self.mats)

    @property
    def capacity_rows(self) -> int:
        return sum(mat.capacity_rows for mat in self.mats)

    # -- storage ------------------------------------------------------------------
    def locate(self, entry_index: int) -> Tuple[int, int]:
        """Map a bank-local entry index to (mat, mat-local entry)."""
        if entry_index < 0:
            raise IndexError(f"entry index must be non-negative, got {entry_index}")
        remaining = entry_index
        for mat_index, mat in enumerate(self.mats):
            if remaining < mat.capacity_rows:
                return mat_index, remaining
            remaining -= mat.capacity_rows
        raise IndexError(
            f"entry {entry_index} out of range for capacity {self.capacity_rows}"
        )

    def write_entry(self, entry_index: int, lane_values: Sequence[int]) -> Cost:
        mat_index, local = self.locate(entry_index)
        return self.mats[mat_index].write_entry(local, lane_values)

    def write_signature_entry(self, entry_index: int, signature_bits: Sequence[int]) -> Cost:
        mat_index, local = self.locate(entry_index)
        return self.mats[mat_index].write_signature_entry(local, signature_bits)

    def load_table(self, table: np.ndarray) -> Cost:
        """Bulk-load an int8 embedding table (one entry per row)."""
        matrix = np.asarray(table)
        if matrix.ndim != 2 or matrix.shape[1] != self.config.embedding_dim:
            raise ValueError(
                f"table must be (n, {self.config.embedding_dim}), got {matrix.shape}"
            )
        if matrix.shape[0] > self.capacity_rows:
            raise ValueError(
                f"table with {matrix.shape[0]} entries exceeds bank capacity "
                f"{self.capacity_rows}"
            )
        cost = ZERO_COST
        for entry_index, row in enumerate(matrix):
            cost = cost.then(self.write_entry(entry_index, row))
        return cost

    def read_entry(self, entry_index: int) -> Tuple[np.ndarray, Cost]:
        mat_index, local = self.locate(entry_index)
        return self.mats[mat_index].read_entry(local)

    # -- pooled lookup ---------------------------------------------------------------
    def pooled_lookup(self, entry_indices: Sequence[int]) -> Tuple[np.ndarray, Cost]:
        """Look up and pool entries across the bank's mats.

        Mats run their intra-mat chains concurrently; the IBC delivers
        their partial sums in controller-ordered groups of four; the
        intra-bank adder tree reduces them (multiple rounds when more than
        four mats contribute).
        """
        indices = list(entry_indices)
        if not indices:
            raise ValueError("pooled lookup needs at least one entry")
        by_mat: Dict[int, List[int]] = defaultdict(list)
        for entry in indices:
            mat_index, local = self.locate(entry)
            by_mat[mat_index].append(local)

        partials: List[np.ndarray] = []
        mat_cost = ZERO_COST
        for mat_index, locals_ in sorted(by_mat.items()):
            partial, cost = self.mats[mat_index].pooled_lookup(locals_)
            partials.append(partial)
            mat_cost = mat_cost.alongside(cost)  # mats work in parallel

        if len(partials) == 1:
            return partials[0], mat_cost

        delivery = self.ibc.deliver(len(partials))
        sequencing = self.controller.sequencing_cost(self.ibc.shots_for(len(partials)))
        total, tree_cost = self.tree.reduce(partials)
        return total, mat_cost.then(delivery).then(sequencing).then(tree_cost)

    # -- search ----------------------------------------------------------------------
    def search(self, query_bits: Sequence[int], threshold: int) -> Tuple[List[int], Cost]:
        """Threshold search across all mats; returns bank-local entry indices."""
        matches: List[int] = []
        cost = ZERO_COST
        offset = 0
        for mat in self.mats:
            local_matches, search_cost = mat.search(query_bits, threshold)
            cost = cost.alongside(search_cost)  # mats search concurrently
            matches.extend(offset + local for local in local_matches)
            offset += mat.capacity_rows
        return matches, cost
