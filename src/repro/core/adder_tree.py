"""Near-memory adder trees (Sec. III-A1).

Two trees exist per bank:

* the **intra-mat adder tree** (one per mat, fan-in C) sums the outputs of
  the mat's CMAs; different mats run in parallel;
* the **intra-bank adder tree** (one per bank, fan-in 4) sums mat outputs,
  four 256-bit inputs per shot; when K > 4 mats contribute, multiple
  serialised rounds through the same tree are needed.

Functionally the trees sum lane-structured integer words; their costs come
from the Table II FoMs (or the synthesis estimator for swept fan-ins).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.energy.accounting import Cost, ZERO_COST

__all__ = ["AdderTree", "reduction_rounds"]


def reduction_rounds(num_inputs: int, fan_in: int) -> int:
    """Number of serialised tree invocations to reduce *num_inputs* words.

    Each invocation replaces up to ``fan_in`` pending words with one
    partial sum.  One invocation handles ``fan_in`` inputs; every further
    invocation retires ``fan_in - 1`` more (the previous partial sum
    occupies one input port).  This models the paper's "multiple rounds of
    addition ... using the same Intra-bank Adder Tree" when K > 4.
    """
    if fan_in < 2:
        raise ValueError(f"fan-in must be >= 2, got {fan_in}")
    if num_inputs < 0:
        raise ValueError(f"input count must be non-negative, got {num_inputs}")
    if num_inputs <= 1:
        return 0
    return 1 + math.ceil((num_inputs - fan_in) / (fan_in - 1)) if num_inputs > fan_in else 1


class AdderTree:
    """A fixed-fan-in near-memory adder tree over lane-structured words."""

    def __init__(self, fan_in: int, add_cost: Cost, name: str = "adder-tree"):
        if fan_in < 2:
            raise ValueError(f"fan-in must be >= 2, got {fan_in}")
        self.fan_in = fan_in
        self.add_cost = add_cost
        self.name = name

    def reduce(self, words: Sequence[np.ndarray]) -> Tuple[np.ndarray, Cost]:
        """Sum *words*, serialising invocations beyond the fan-in.

        Returns the exact lane-wise sum and the accumulated cost of every
        invocation.  Zero or one input costs nothing (the tree is bypassed).
        """
        pending: List[np.ndarray] = [np.asarray(word, dtype=np.int64) for word in words]
        if not pending:
            raise ValueError("adder tree needs at least one input word")
        shapes = {word.shape for word in pending}
        if len(shapes) != 1:
            raise ValueError(f"all input words must share a shape, got {shapes}")
        cost = ZERO_COST
        while len(pending) > 1:
            batch = pending[: self.fan_in]
            remainder = pending[self.fan_in :]
            partial = np.sum(np.stack(batch, axis=0), axis=0)
            pending = [partial] + remainder
            cost = cost.then(self.add_cost)
        return pending[0], cost

    def rounds_for(self, num_inputs: int) -> int:
        """Invocations needed for *num_inputs* words (cost-only planning)."""
        return reduction_rounds(num_inputs, self.fan_in)

    def cost_for(self, num_inputs: int) -> Cost:
        """Cost of reducing *num_inputs* words without computing values."""
        return self.add_cost.repeated(self.rounds_for(num_inputs))
