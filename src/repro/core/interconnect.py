"""Communication fabric: the RSC bus and the IBC network (Sec. III-A3).

Two serialised channels move data inside iMARS:

* the **RecSys communication (RSC) bus** (256-bit) connects the functional
  blocks -- CMA banks, crossbar banks, item buffer, CTR buffer;
* the **intra-bank communication (IBC) network** moves mat outputs to the
  intra-bank adder tree, 128 bytes (four 256-bit words) per shot;
  transfers serialise when more than four mats contribute (K > 4).

Both are modelled as serialised buses with per-beat timing and per-bit wire
energy from the synthesis technology constants; the defaults place the RSC
bus across the die (longer span) and the IBC within a bank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.synthesis import SerialBusSynthesis, SynthesisTech, NANGATE45
from repro.energy.accounting import Cost, ZERO_COST

__all__ = ["RSCBus", "IBCNetwork"]


@dataclass(frozen=True)
class RSCBus:
    """The 256-bit serialised bus between iMARS functional blocks."""

    width_bits: int = 256
    length_mm: float = 2.0
    beat_ns: float = 0.7
    tech: SynthesisTech = NANGATE45

    def _bus(self) -> SerialBusSynthesis:
        return SerialBusSynthesis(
            width_bits=self.width_bits,
            length_mm=self.length_mm,
            beat_ns=self.beat_ns,
            tech=self.tech,
        )

    def transfer(self, payload_bits: int) -> Cost:
        """One block-to-block transfer of *payload_bits* (serialised)."""
        if payload_bits < 0:
            raise ValueError("payload must be non-negative")
        if payload_bits == 0:
            return ZERO_COST
        beats = math.ceil(payload_bits / self.width_bits)
        energy = payload_bits * self.length_mm * self.tech.wire_energy_pj_per_bit_mm
        return Cost(energy_pj=energy, latency_ns=beats * self.beat_ns)

    def gather(self, num_sources: int, payload_bits_each: int) -> Cost:
        """Collect one payload from each of *num_sources* blocks.

        The bus is shared, so source transfers serialise -- this is the term
        that makes the 26-bank Criteo ET operation slightly slower than the
        7-bank MovieLens one (Table III).
        """
        if num_sources < 0:
            raise ValueError("source count must be non-negative")
        return self.transfer(payload_bits_each).repeated(num_sources)


@dataclass(frozen=True)
class IBCNetwork:
    """Intra-bank network feeding the intra-bank adder tree."""

    payload_bits: int = 1024  # 128 bytes: four 256-bit words per shot
    word_bits: int = 256
    length_mm: float = 1.0
    beat_ns: float = 0.5
    tech: SynthesisTech = NANGATE45

    @property
    def words_per_shot(self) -> int:
        """Mat outputs delivered per IBC shot (4 for the paper's design)."""
        return self.payload_bits // self.word_bits

    def shots_for(self, num_words: int) -> int:
        """IBC transfers needed to deliver *num_words* mat outputs."""
        if num_words < 0:
            raise ValueError("word count must be non-negative")
        if num_words == 0:
            return 0
        return math.ceil(num_words / self.words_per_shot)

    def deliver(self, num_words: int) -> Cost:
        """Move *num_words* mat outputs to the intra-bank adder tree."""
        shots = self.shots_for(num_words)
        if shots == 0:
            return ZERO_COST
        bits_moved = num_words * self.word_bits
        energy = bits_moved * self.length_mm * self.tech.wire_energy_pj_per_bit_mm
        return Cost(energy_pj=energy, latency_ns=shots * self.beat_ns)
