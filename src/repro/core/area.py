"""Area model for the iMARS fabric.

The paper discusses area qualitatively: "area footprint increases
proportionally to B, M and C", the intra-bank adder tree's fan-in is "a
compromise between area footprint of the iMARS banks and performance", and
"extremely wide buses may be impractical as they require too much area"
(Sec. III-A).  This module quantifies those statements with a first-order
45 nm-class area model so the design-space benches can put numbers on the
trade-offs.

Constants are representative of the FeFET literature the paper builds on
(a 2-FeFET TCAM/CMA cell at 45 nm occupies ~0.3 um^2; peripheries add
~30-50% to a 256x256 array); totals land in the tens-of-mm^2 range typical
for accelerator proposals of this class.  The *relative* scaling with B, M,
C, fan-in and bus width is the load-bearing output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ArchitectureConfig, PAPER_CONFIG
from repro.core.mapping import WorkloadMapping

__all__ = ["AreaModel", "FabricArea"]

#: Full-adder-equivalent cell area at 45 nm (um^2), used for adder trees.
_FA_AREA_UM2 = 5.0


@dataclass(frozen=True)
class AreaModel:
    """45 nm-class area constants.

    Attributes
    ----------
    cma_cell_um2:
        One CMA bit cell (2-FeFET configurable cell).
    periphery_overhead:
        Fractional array overhead for drivers, SAs, priority encoder.
    crossbar_cell_um2:
        One crossbar cross-point (1FeFET differential pair amortised).
    bus_um2_per_bit_mm:
        Routed bus area per bit-lane per millimetre.
    """

    cma_cell_um2: float = 0.30
    periphery_overhead: float = 0.40
    crossbar_cell_um2: float = 0.05
    bus_um2_per_bit_mm: float = 1.2

    def __post_init__(self) -> None:
        if self.cma_cell_um2 <= 0.0 or self.crossbar_cell_um2 <= 0.0:
            raise ValueError("cell areas must be positive")
        if self.periphery_overhead < 0.0:
            raise ValueError("periphery overhead must be non-negative")

    # -- components ----------------------------------------------------------
    def cma_area_um2(self, rows: int = 256, cols: int = 256) -> float:
        """One CMA array including its reconfigurable periphery."""
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        cells = rows * cols * self.cma_cell_um2
        return cells * (1.0 + self.periphery_overhead)

    def adder_tree_area_um2(self, fan_in: int, width_bits: int = 256) -> float:
        """A fan-in-F adder tree over W-bit words: (F-1) x W full adders."""
        if fan_in < 2 or width_bits < 1:
            raise ValueError("fan-in must be >= 2 and width positive")
        return (fan_in - 1) * width_bits * _FA_AREA_UM2

    def crossbar_area_um2(self, rows: int = 256, cols: int = 128) -> float:
        """One crossbar tile including DAC/ADC periphery."""
        cells = rows * cols * self.crossbar_cell_um2
        return cells * (1.0 + 2.0 * self.periphery_overhead)  # converters dominate

    def bus_area_um2(self, width_bits: int, length_mm: float) -> float:
        """Routed serialised bus."""
        if width_bits < 1 or length_mm < 0.0:
            raise ValueError("bus width must be positive, length non-negative")
        return width_bits * length_mm * self.bus_um2_per_bit_mm


@dataclass
class FabricArea:
    """Aggregated area of a provisioned iMARS fabric."""

    cma_mm2: float
    intra_mat_trees_mm2: float
    intra_bank_trees_mm2: float
    crossbars_mm2: float
    interconnect_mm2: float

    @property
    def total_mm2(self) -> float:
        return (
            self.cma_mm2
            + self.intra_mat_trees_mm2
            + self.intra_bank_trees_mm2
            + self.crossbars_mm2
            + self.interconnect_mm2
        )

    def breakdown(self) -> dict:
        """Fraction of total per component."""
        total = self.total_mm2
        if total == 0.0:
            return {}
        return {
            "CMA arrays": self.cma_mm2 / total,
            "intra-mat trees": self.intra_mat_trees_mm2 / total,
            "intra-bank trees": self.intra_bank_trees_mm2 / total,
            "crossbars": self.crossbars_mm2 / total,
            "interconnect": self.interconnect_mm2 / total,
        }


def fabric_area(
    config: ArchitectureConfig = PAPER_CONFIG,
    num_crossbar_tiles: int = 16,
    model: AreaModel = AreaModel(),
) -> FabricArea:
    """Area of the *provisioned* fabric (all B x M x C arrays).

    ``num_crossbar_tiles`` covers the two DNN crossbar banks; 16 tiles is
    enough for both YouTubeDNN stacks and the DLRM MLPs.
    """
    um2_to_mm2 = 1e-6
    cma = config.total_cmas * model.cma_area_um2(config.cma_rows, config.cma_cols)
    mat_trees = (
        config.num_banks
        * config.mats_per_bank
        * model.adder_tree_area_um2(max(2, config.cmas_per_mat), config.word_bits)
    )
    bank_trees = config.num_banks * model.adder_tree_area_um2(
        config.intra_bank_fan_in, config.word_bits
    )
    crossbars = num_crossbar_tiles * model.crossbar_area_um2()
    interconnect = model.bus_area_um2(config.rsc_bus_bits, 2.0) + (
        config.num_banks * model.bus_area_um2(config.ibc_payload_bits, 1.0)
    )
    return FabricArea(
        cma_mm2=cma * um2_to_mm2,
        intra_mat_trees_mm2=mat_trees * um2_to_mm2,
        intra_bank_trees_mm2=bank_trees * um2_to_mm2,
        crossbars_mm2=crossbars * um2_to_mm2,
        interconnect_mm2=interconnect * um2_to_mm2,
    )


def workload_area(
    mapping: WorkloadMapping,
    num_crossbar_tiles: int = 16,
    model: AreaModel = AreaModel(),
) -> FabricArea:
    """Area of only the arrays a workload *activates* (Table I counts)."""
    config = mapping.config
    um2_to_mm2 = 1e-6
    cma = mapping.active_cmas * model.cma_area_um2(config.cma_rows, config.cma_cols)
    mat_trees = mapping.active_mats * model.adder_tree_area_um2(
        max(2, config.cmas_per_mat), config.word_bits
    )
    bank_trees = mapping.active_banks * model.adder_tree_area_um2(
        config.intra_bank_fan_in, config.word_bits
    )
    crossbars = num_crossbar_tiles * model.crossbar_area_um2()
    interconnect = model.bus_area_um2(config.rsc_bus_bits, 2.0) + (
        mapping.active_banks * model.bus_area_um2(config.ibc_payload_bits, 1.0)
    )
    return FabricArea(
        cma_mm2=cma * um2_to_mm2,
        intra_mat_trees_mm2=mat_trees * um2_to_mm2,
        intra_bank_trees_mm2=bank_trees * um2_to_mm2,
        crossbars_mm2=crossbars * um2_to_mm2,
        interconnect_mm2=interconnect * um2_to_mm2,
    )
