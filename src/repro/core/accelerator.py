"""The iMARS analytic cost model: operation mapping -> (energy, latency).

This module prices every iMARS operation of Sec. III-C from the array FoMs
(Table II), the workload's memory mapping (Table I) and the communication
model, reproducing the evaluation methodology of Sec. IV:

* :meth:`IMARSCostModel.et_operation` -- the Table III "ET operation": all
  of a stage's embedding tables perform a worst-case lookup+pooling, banks
  in parallel, results gathered over the RSC bus.  The paper's worst case
  assumes every pooled lookup of a table hits the *same* CMA, serialising
  ``L - 1`` in-memory add + write pairs, then the intra-mat and intra-bank
  adder trees run regardless of placement.
* :meth:`IMARSCostModel.nns_operation` -- the TCAM threshold search over
  the ItET's signature CMAs (all arrays search in parallel: O(1) array
  time).
* :meth:`IMARSCostModel.dnn_stack_cost` -- a crossbar-bank MLP pass.
* :meth:`IMARSCostModel.filtering_query` / :meth:`ranking_query` /
  :meth:`end_to_end` -- the composed per-query pipelines used by the
  end-to-end comparison (Sec. IV-C3).

Energy adds the fitted peripheral component (see
:mod:`repro.core.calibration`); pass ``peripheral=ZERO_PERIPHERAL`` for
dynamic-only accounting.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.adder_tree import reduction_rounds
from repro.core.calibration import PeripheralModel, default_peripheral
from repro.core.config import ArchitectureConfig
from repro.core.controller import Controller
from repro.core.dnn_stack import layer_tiles
from repro.core.interconnect import RSCBus
from repro.core.mapping import FILTERING, RANKING, TableMapping, WorkloadMapping
from repro.energy.accounting import Cost, Ledger, ZERO_COST
from repro.nn.mlp import parse_layer_spec

__all__ = ["IMARSCostModel"]

#: Peripheral reconfiguration cost when a CMA changes mode.
_MODE_SWITCH = Cost(energy_pj=1.0, latency_ns=0.5)


class IMARSCostModel:
    """Analytic energy/latency model of iMARS for one mapped workload."""

    def __init__(
        self,
        mapping: WorkloadMapping,
        config: Optional[ArchitectureConfig] = None,
        peripheral: Optional[PeripheralModel] = None,
        worst_case_pooling: int = 10,
    ):
        self.mapping = mapping
        self.config = config or mapping.config
        self._peripheral = peripheral  # None -> fitted default, resolved lazily
        if worst_case_pooling < 1:
            raise ValueError("worst-case pooling factor must be >= 1")
        self.worst_case_pooling = worst_case_pooling
        self.bus = RSCBus(width_bits=self.config.rsc_bus_bits)
        self.controller = Controller(group_size=self.config.intra_bank_fan_in)

    @property
    def peripheral(self) -> PeripheralModel:
        if self._peripheral is None:
            self._peripheral = default_peripheral()
        return self._peripheral

    # -- ET operations (Table III) ---------------------------------------------------
    def _pooling_chain(self, pooling: int) -> Cost:
        """Worst-case single-CMA pooling of *pooling* lookups.

        One lookup is a plain read; L > 1 lookups serialise L - 1
        (in-memory add + partial-sum write) pairs after a GPCiM mode
        switch (Sec. IV-C1's "multiple read, write and in-memory add
        operations").
        """
        foms = self.config.foms
        if pooling == 1:
            return foms.cma_read
        chain = _MODE_SWITCH
        step = foms.cma_add.then(foms.cma_write)
        return chain.then(step.repeated(pooling - 1))

    def table_lookup_cost(self, table: TableMapping, pooling: Optional[int] = None) -> Cost:
        """Worst-case lookup+pooling for one embedding table.

        The intra-mat and intra-bank adder-tree additions are always
        charged, matching the paper's accounting ("includes the multiple
        lookups of CMAs, the intra-mat addition and intra-bank addition").
        When the table spans more mats than the intra-bank tree's fan-in,
        the tree serialises extra rounds ("multiple rounds of addition are
        needed using the same Intra-bank Adder Tree", Sec. III-A1).
        """
        foms = self.config.foms
        effective = self.worst_case_pooling if pooling is None else pooling
        if effective < 1:
            raise ValueError("pooling factor must be >= 1")
        rounds = max(
            1,
            reduction_rounds(table.embedding_mats, self.config.intra_bank_fan_in),
        )
        return (
            self._pooling_chain(effective)
            .then(foms.intra_mat_add)
            .then(foms.intra_bank_add.repeated(rounds))
        )

    def et_operation(
        self,
        stage: str,
        ledger: Optional[Ledger] = None,
        combine: str = "concat",
    ) -> Cost:
        """One stage's full ET operation for a single input (Table III).

        Banks operate in parallel (latency is the slowest table's chain);
        the per-bank 256-bit results serialise over the shared RSC bus;
        the fitted peripheral energy covers the stage's active arrays for
        the operation's duration.

        ``combine`` selects how the per-feature embeddings merge (Fig. 1(c)
        / step (2b): "either by concatenation or by an ADD operation"):
        ``"concat"`` just gathers the words; ``"add"`` additionally reduces
        them through an inter-bank adder tree at the RSC hub (reusing the
        intra-bank tree design, so the same fan-in/rounds rules apply).
        """
        if combine not in ("concat", "add"):
            raise ValueError(f"combine must be 'concat' or 'add', got {combine!r}")
        tables = self.mapping.tables_for_stage(stage)
        if not tables:
            raise ValueError(f"no tables active in stage {stage!r}")
        parallel = Cost.concurrent(self.table_lookup_cost(table) for table in tables)
        gather = self.bus.gather(len(tables), self.config.word_bits)
        sequencing = self.controller.sequencing_cost(len(tables))
        # The controller sequences the drain concurrently with the bus.
        dynamic = parallel.then(gather).alongside(sequencing)
        if combine == "add" and len(tables) > 1:
            rounds = reduction_rounds(len(tables), self.config.intra_bank_fan_in)
            dynamic = dynamic.then(self.config.foms.intra_bank_add.repeated(rounds))
        summary = self.mapping.stage_summary(stage)
        total = self.peripheral.charge(dynamic, summary["cmas"], summary["banks"])
        if ledger is not None:
            ledger.charge("ET Lookup", total)
        return total

    # -- NNS (Sec. IV-C2) ---------------------------------------------------------------
    def nns_operation(self, include_drain: bool = False, num_candidates: int = 0) -> Cost:
        """TCAM threshold search over the ItET signature arrays.

        With ``include_drain=False`` this is the pure array search the
        paper quotes (all signature CMAs search in parallel: one search
        latency, energy scaled by the array count).  With
        ``include_drain=True`` the priority-encoded candidate indices also
        stream to the item buffer over the RSC bus.
        """
        itet = self.mapping.itet()
        foms = self.config.foms
        search = Cost(
            energy_pj=foms.cma_search.energy_pj * itet.signature_cmas,
            latency_ns=foms.cma_search.latency_ns,
        )
        if not include_drain:
            return search
        if num_candidates < 0:
            raise ValueError("candidate count must be non-negative")
        encode = Cost(energy_pj=0.05 * num_candidates, latency_ns=0.1 * num_candidates)
        index_bits = max(1, (itet.spec.num_entries - 1).bit_length())
        drain = self.bus.gather(num_candidates, index_bits)
        store = foms.cma_write.repeated(num_candidates)  # item buffer rows
        return search.then(encode).then(drain).then(store)

    def lsh_projection_cost(self) -> Cost:
        """Hashing a query embedding through a crossbar hyperplane tile.

        The random-hyperplane projection is a (dim x signature_bits)
        matrix-vector product, which iMARS executes on crossbar tiles like
        any other dense layer.
        """
        row_tiles, col_tiles = layer_tiles(
            self.config.embedding_dim, self.config.lsh_signature_bits
        )
        matmul = self.config.foms.crossbar_matmul
        return Cost(
            energy_pj=matmul.energy_pj * row_tiles * col_tiles,
            latency_ns=matmul.latency_ns * row_tiles,
        )

    # -- DNN stacks (Sec. III-A2) ----------------------------------------------------------
    def dnn_stack_cost(self, input_dim: int, spec: Union[str, Sequence[int]]) -> Cost:
        """One MLP forward pass on a crossbar bank.

        Column tiles fire in parallel; row tiles accumulate sequentially;
        each layer streams its activations over the RSC bus.
        """
        widths = parse_layer_spec(spec)
        matmul = self.config.foms.crossbar_matmul
        cost = ZERO_COST
        previous = input_dim
        for width in widths:
            row_tiles, col_tiles = layer_tiles(previous, width)
            layer = Cost(
                energy_pj=matmul.energy_pj * row_tiles * col_tiles,
                latency_ns=matmul.latency_ns * row_tiles,
            )
            transfer = self.bus.transfer(width * self.config.embedding_bits)
            cost = cost.then(layer).then(transfer)
            previous = width
        return cost

    # -- composed pipelines (Sec. III-C / IV-C3) ----------------------------------------------
    def filtering_query(
        self,
        dnn_input_dim: int,
        dnn_spec: Union[str, Sequence[int]],
        num_candidates: int,
        ledger: Optional[Ledger] = None,
    ) -> Cost:
        """One filtering query: steps (1a)-(1d*) of Fig. 3.

        ET lookups/pooling -> filtering DNN -> LSH projection of the user
        embedding -> TCAM threshold NNS -> candidate drain into the item
        buffer.
        """
        if num_candidates < 1:
            raise ValueError("candidate count must be >= 1")
        et = self.et_operation(FILTERING)
        dnn = self.dnn_stack_cost(dnn_input_dim, dnn_spec)
        projection = self.lsh_projection_cost()
        nns = self.nns_operation(include_drain=True, num_candidates=num_candidates)
        if ledger is not None:
            ledger.charge("ET Lookup", et)
            ledger.charge("DNN Stack", dnn)
            ledger.charge("NNS", projection.then(nns))
        return et.then(dnn).then(projection).then(nns)

    def ranking_candidate(
        self,
        dnn_input_dim: int,
        dnn_spec: Union[str, Sequence[int]],
        ledger: Optional[Ledger] = None,
    ) -> Cost:
        """Scoring one candidate: steps (2a)-(2d) of Fig. 3."""
        et = self.et_operation(RANKING)
        dnn = self.dnn_stack_cost(dnn_input_dim, dnn_spec)
        ctr_store = self.config.foms.cma_write  # CTR buffer row
        if ledger is not None:
            ledger.charge("ET Lookup", et)
            ledger.charge("DNN Stack", dnn.then(ctr_store))
        return et.then(dnn).then(ctr_store)

    def topk_operation(self, num_candidates: int, k: int, ledger: Optional[Ledger] = None) -> Cost:
        """Step (2e): CTR-buffer threshold-match top-k selection.

        The threshold sweep needs at most ~k distinct search steps (scores
        are admitted in descending order); each admitted item's index is
        read out.
        """
        if num_candidates < 1 or k < 1:
            raise ValueError("candidate count and k must be >= 1")
        foms = self.config.foms
        searches = foms.cma_search.repeated(min(k, num_candidates))
        reads = foms.cma_read.repeated(min(k, num_candidates))
        cost = searches.then(reads)
        if ledger is not None:
            ledger.charge("TopK", cost)
        return cost

    def end_to_end(
        self,
        filtering_input_dim: int,
        filtering_spec: Union[str, Sequence[int]],
        ranking_input_dim: int,
        ranking_spec: Union[str, Sequence[int]],
        num_candidates: int,
        k: int = 10,
        ledger: Optional[Ledger] = None,
    ) -> Cost:
        """Full query: filtering once, ranking per candidate, then top-k.

        "The end-to-end improvement is dominated by the ranking stage
        because each user only goes through the filtering stage once ...
        the CTR needs to be calculated for each candidate item."
        """
        filtering = self.filtering_query(
            filtering_input_dim, filtering_spec, num_candidates, ledger=ledger
        )
        per_candidate = self.ranking_candidate(ranking_input_dim, ranking_spec)
        ranking = per_candidate.repeated(num_candidates)
        if ledger is not None:
            ledger.charge("Ranking", ranking)
        topk = self.topk_operation(num_candidates, k, ledger=ledger)
        return filtering.then(ranking).then(topk)

    def ranking_only_query(
        self,
        dnn_input_dim: int,
        dnn_spec: Union[str, Sequence[int]],
        ledger: Optional[Ledger] = None,
    ) -> Cost:
        """A single ranking-stage inference (the Criteo/DLRM protocol)."""
        return self.ranking_candidate(dnn_input_dim, dnn_spec, ledger=ledger)
