"""The configurable memory array (CMA): RAM + TCAM + GPCiM in one array.

The CMA (Fig. 3(c), following paper ref. [9]) is the workhorse of iMARS's
embedding-table fabric.  One 256x256 FeFET array switches between:

* **RAM mode** -- wordline/bitline drivers + RAM sense amps: embedding-row
  lookups (one 256-bit word = 32 int8 lanes per row);
* **GPCiM mode** -- in-memory addition through the accumulator next to the
  RAM sense amps: pooling of embedding rows;
* **TCAM mode** -- searchline drivers + CAM sense amps with the dummy-cell
  threshold reference + priority encoder: threshold Hamming search over
  stored LSH signatures.

Every operation returns ``(functional result, Cost)`` where the cost comes
from the array FoMs (Table II).  The functional state is a plain bit
matrix, exactly what the FeFET cells hold; lane (int8) and signature views
are provided on top of it.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence, Tuple

import numpy as np

from repro.circuits.foms import ArrayFoMs, TABLE_II
from repro.energy.accounting import Cost, ZERO_COST
from repro.imc.gpcim import pack_lanes, unpack_lanes

__all__ = ["CMAMode", "CMA"]


class CMAMode(Enum):
    """Peripheral configuration of the array."""

    RAM = "ram"
    TCAM = "tcam"
    GPCIM = "gpcim"


#: Cost of reconfiguring the peripherals between modes (mux settling).
_MODE_SWITCH_COST = Cost(energy_pj=1.0, latency_ns=0.5)


class CMA:
    """One configurable memory array of ``rows`` x ``cols`` FeFET cells."""

    def __init__(
        self,
        rows: int = 256,
        cols: int = 256,
        lanes: int = 32,
        lane_bits: int = 8,
        foms: ArrayFoMs = TABLE_II,
    ):
        if rows < 1 or cols < 1:
            raise ValueError(f"array dimensions must be positive, got {rows}x{cols}")
        if lanes * lane_bits > cols:
            raise ValueError(
                f"lane word ({lanes}x{lane_bits} bits) does not fit {cols} columns"
            )
        self.rows = rows
        self.cols = cols
        self.lanes = lanes
        self.lane_bits = lane_bits
        self.foms = foms
        self._bits = np.zeros((rows, cols), dtype=np.uint8)
        self._valid = np.zeros(rows, dtype=bool)
        self._mode = CMAMode.RAM

    # -- mode handling -----------------------------------------------------------
    @property
    def mode(self) -> CMAMode:
        return self._mode

    def switch_mode(self, mode: CMAMode) -> Cost:
        """Reconfigure peripherals; free if already in the requested mode."""
        if mode is self._mode:
            return ZERO_COST
        self._mode = mode
        return _MODE_SWITCH_COST

    # -- RAM mode: word storage ---------------------------------------------------
    def write_word(self, row: int, lane_values: Sequence[int]) -> Cost:
        """Store an embedding word (int8 lanes) at *row*."""
        self._check_row(row)
        values = np.asarray(lane_values, dtype=np.int64)
        if values.shape != (self.lanes,):
            raise ValueError(f"expected {self.lanes} lanes, got shape {values.shape}")
        bits = pack_lanes(values, self.lane_bits)
        self._bits[row, : bits.shape[0]] = bits
        self._bits[row, bits.shape[0] :] = 0
        self._valid[row] = True
        return self.switch_mode(CMAMode.RAM).then(self.foms.cma_write)

    def read_word(self, row: int) -> Tuple[np.ndarray, Cost]:
        """Read the embedding word stored at *row*."""
        self._check_row(row)
        if not self._valid[row]:
            raise ValueError(f"row {row} has not been written")
        word_bits = self._bits[row, : self.lanes * self.lane_bits]
        values = unpack_lanes(word_bits.astype(np.int64), self.lane_bits)
        return values, self.switch_mode(CMAMode.RAM).then(self.foms.cma_read)

    # -- GPCiM mode: in-memory pooling --------------------------------------------
    def pool_rows(self, rows: Sequence[int]) -> Tuple[np.ndarray, Cost]:
        """Sum the embedding words at *rows* with in-memory additions.

        Models the paper's worst-case serial chain inside one array: each
        additional row costs one in-memory addition plus one write of the
        running partial sum back into the array ("Multiple lookups in one
        array requires multiple read, write and in-memory add operations",
        Sec. IV-C1).  Single-row pools are a plain read.
        """
        indices = list(rows)
        if not indices:
            raise ValueError("pooling needs at least one row")
        if len(indices) == 1:
            return self.read_word(indices[0])
        cost = self.switch_mode(CMAMode.GPCIM)
        total = np.zeros(self.lanes, dtype=np.int64)
        first_word, _ = self._peek_word(indices[0])
        total += first_word
        for row in indices[1:]:
            word, _ = self._peek_word(row)
            total += word
            cost = cost.then(self.foms.cma_add).then(self.foms.cma_write)
        return total, cost

    # -- TCAM mode: signature search ----------------------------------------------
    def write_signature(self, row: int, signature_bits: Sequence[int]) -> Cost:
        """Store an LSH signature (raw bits) at *row*."""
        self._check_row(row)
        bits = np.asarray(signature_bits, dtype=np.uint8)
        if bits.shape != (self.cols,):
            raise ValueError(f"signature must have {self.cols} bits, got {bits.shape}")
        if not np.isin(bits, (0, 1)).all():
            raise ValueError("signature bits must be 0 or 1")
        self._bits[row] = bits
        self._valid[row] = True
        return self.switch_mode(CMAMode.TCAM).then(self.foms.cma_write)

    def search(
        self,
        query_bits: Sequence[int],
        threshold: int,
    ) -> Tuple[np.ndarray, Cost]:
        """Threshold Hamming match of *query_bits* against all valid rows.

        One parallel array search (O(1) array time): returns the boolean
        match flags; the priority encoder at the mat level drains them.
        """
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        query = np.asarray(query_bits, dtype=np.uint8)
        if query.shape != (self.cols,):
            raise ValueError(f"query must have {self.cols} bits, got {query.shape}")
        if not np.isin(query, (0, 1)).all():
            raise ValueError("query bits must be 0 or 1")
        cost = self.switch_mode(CMAMode.TCAM).then(self.foms.cma_search)
        distances = (self._bits != query[None, :]).sum(axis=1)
        flags = (distances <= threshold) & self._valid
        return flags, cost

    def hamming_distances(self, query_bits: Sequence[int]) -> np.ndarray:
        """Exact distances (verification helper; no hardware cost charged)."""
        query = np.asarray(query_bits, dtype=np.uint8)
        distances = (self._bits != query[None, :]).sum(axis=1).astype(np.int64)
        distances[~self._valid] = self.cols + 1
        return distances

    # -- bookkeeping ---------------------------------------------------------------
    @property
    def valid_row_count(self) -> int:
        return int(self._valid.sum())

    def _peek_word(self, row: int) -> Tuple[np.ndarray, Cost]:
        """Internal word access without charging a cost (used inside pooling)."""
        self._check_row(row)
        if not self._valid[row]:
            raise ValueError(f"row {row} has not been written")
        word_bits = self._bits[row, : self.lanes * self.lane_bits]
        return unpack_lanes(word_bits.astype(np.int64), self.lane_bits), ZERO_COST

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range for {self.rows}-row array")
