"""The iMARS controller: clock generator plus two counters (Sec. III-A3).

"The controller circuit consists of a clock generator and two counters that
keep track of (i) the activated bank, and (ii) the mats inside the bank
that are sending outputs for accumulation ... Data packets always travel
through the IBC in a predetermined order, as defined by the counters (i.e.,
in Bank B, from Mat-1, Mat-2, ..., Mat-M in groups of four outputs)."

The controller therefore needs no routers; this module reproduces that
fixed schedule and exposes it for verification (the flow-trace bench E8
checks packet ordering) and for cost accounting (a small per-cycle energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.energy.accounting import Cost

__all__ = ["Controller", "ScheduleEntry"]


@dataclass(frozen=True)
class ScheduleEntry:
    """One IBC delivery: which bank, which group of mats."""

    bank: int
    mats: Tuple[int, ...]


class Controller:
    """Counter-based sequencer for bank activation and mat draining."""

    def __init__(
        self,
        group_size: int = 4,
        cycle_energy_pj: float = 0.35,
        cycle_ns: float = 0.5,
    ):
        if group_size < 1:
            raise ValueError(f"group size must be positive, got {group_size}")
        if cycle_energy_pj < 0.0 or cycle_ns <= 0.0:
            raise ValueError("cycle energy must be >= 0 and period > 0")
        self.group_size = group_size
        self.cycle_energy_pj = cycle_energy_pj
        self.cycle_ns = cycle_ns

    def mat_groups(self, num_mats: int) -> List[Tuple[int, ...]]:
        """Mat indices grouped in the predetermined order (Mat-1, Mat-2, ...)."""
        if num_mats < 0:
            raise ValueError("mat count must be non-negative")
        groups: List[Tuple[int, ...]] = []
        for start in range(0, num_mats, self.group_size):
            groups.append(tuple(range(start, min(start + self.group_size, num_mats))))
        return groups

    def schedule(self, active_mats_per_bank: List[int]) -> Iterator[ScheduleEntry]:
        """Full drain schedule: banks in order, each bank's mats in groups.

        ``active_mats_per_bank[b]`` is the number of mats bank *b* must
        drain; banks with zero active mats are skipped (deactivated).
        """
        for bank, num_mats in enumerate(active_mats_per_bank):
            if num_mats < 0:
                raise ValueError(f"bank {bank} has negative mat count")
            for group in self.mat_groups(num_mats):
                yield ScheduleEntry(bank=bank, mats=group)

    def sequencing_cost(self, num_entries: int) -> Cost:
        """Controller energy/latency for *num_entries* schedule steps.

        One counter update per entry; the controller runs concurrently with
        the data movement it orchestrates, so only its (small) energy and
        one cycle of decision latency per entry are charged.
        """
        if num_entries < 0:
            raise ValueError("entry count must be non-negative")
        return Cost(
            energy_pj=self.cycle_energy_pj * num_entries,
            latency_ns=self.cycle_ns * num_entries,
        )
