"""End-to-end RecSys pipelines: iMARS vs the GPU baseline (Sec. IV-C3).

Two engines produce *functionally comparable* recommendations while
charging their respective hardware cost models:

* :class:`GPUReferenceEngine` -- the baseline: FP32 embeddings, exact
  cosine NNS (the FAISS path), per-candidate ranking; costs from the
  calibrated GPU kernel models.
* :class:`IMARSEngine` -- the accelerated pipeline: int8-quantised tables,
  LSH signatures + fixed-radius Hamming NNS, CTR-buffer top-k; costs from
  the analytic iMARS model.

Both wrap the same trained YouTubeDNN models, so accuracy differences come
only from the IMC-friendly substitutions (quantisation, distance function,
fixed-radius selection) -- the comparison of Sec. IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.accelerator import IMARSCostModel
from repro.core.mapping import WorkloadMapping
from repro.energy.accounting import Cost, Ledger
from repro.gpu.device import GPUDeviceModel, GTX1080
from repro.gpu.kernels import (
    gpu_dnn_stack,
    gpu_et_operation,
    gpu_nns_cosine,
    gpu_topk,
)
from repro.lsh.hyperplane import RandomHyperplaneLSH
from repro.models.youtube_dnn import YouTubeDNNFiltering, YouTubeDNNRanking
from repro.nns.exact import cosine_topk
from repro.nns.fixed_radius import cap_candidates, fixed_radius_candidates
from repro.nns.lsh_search import LSHHammingIndex
from repro.quant.int8 import dequantize, quantize_symmetric

__all__ = ["QueryResult", "GPUReferenceEngine", "IMARSEngine"]


@dataclass
class QueryResult:
    """Outcome of one end-to-end query."""

    items: List[int]
    candidate_count: int
    cost: Cost
    ledger: Ledger = field(default_factory=Ledger)

    @property
    def qps(self) -> float:
        """Queries per second at this per-query latency."""
        if self.cost.latency_ns == 0.0:
            return float("inf")
        return 1e9 / self.cost.latency_ns


class _EngineBase:
    """Shared model plumbing for both engines."""

    def __init__(
        self,
        filtering_model: YouTubeDNNFiltering,
        ranking_model: YouTubeDNNRanking,
        num_candidates: int = 72,
        top_k: int = 10,
    ):
        if num_candidates < 1 or top_k < 1:
            raise ValueError("candidate count and top-k must be >= 1")
        self.filtering_model = filtering_model
        self.ranking_model = ranking_model
        self.num_candidates = num_candidates
        self.top_k = top_k
        config = filtering_model.config
        self.filtering_input_dim = config.embedding_dim * (
            1 + len(config.demographic_cardinalities)
        )
        ranking_features = len(config.demographic_cardinalities) + len(
            config.ranking_extra_cardinalities
        )
        self.ranking_input_dim = config.embedding_dim * (2 + ranking_features)

    def _user_embedding(
        self, history: Sequence[int], demographics: Sequence[int]
    ) -> np.ndarray:
        demo = np.asarray(demographics, dtype=np.int64).reshape(1, -1)
        return self.filtering_model.user_embedding([list(history)], demo)[0]

    def _score_candidates(
        self,
        user_embedding: np.ndarray,
        item_vectors: np.ndarray,
        context: Sequence[int],
    ) -> np.ndarray:
        count = item_vectors.shape[0]
        users = np.repeat(user_embedding[None, :], count, axis=0)
        ctx = np.repeat(
            np.asarray(context, dtype=np.int64).reshape(1, -1), count, axis=0
        )
        return self.ranking_model.predict_ctr(users, item_vectors, ctx)


class GPUReferenceEngine(_EngineBase):
    """FP32 + exact-cosine baseline with the calibrated GPU cost model."""

    def __init__(
        self,
        filtering_model: YouTubeDNNFiltering,
        ranking_model: YouTubeDNNRanking,
        num_candidates: int = 72,
        top_k: int = 10,
        device: GPUDeviceModel = GTX1080,
    ):
        super().__init__(filtering_model, ranking_model, num_candidates, top_k)
        self.device = device
        self.item_table = filtering_model.item_table()
        config = filtering_model.config
        self._filtering_tables = 1 + len(config.demographic_cardinalities)
        self._ranking_tables = (
            2
            + len(config.demographic_cardinalities)
            + len(config.ranking_extra_cardinalities)
        ) - 1  # user+demographics+extras+item = 7 tables for the paper layout

    def recommend(
        self,
        history: Sequence[int],
        demographics: Sequence[int],
        context: Sequence[int],
    ) -> QueryResult:
        ledger = Ledger(name="gpu-query")
        config = self.filtering_model.config

        # Filtering: ET op + DNN tower + exact cosine NNS.
        ledger.charge("ET Lookup", gpu_et_operation(self._filtering_tables, device=self.device))
        ledger.charge(
            "DNN Stack",
            gpu_dnn_stack(
                self.filtering_input_dim, config.filtering_spec, device=self.device
            ),
        )
        user = self._user_embedding(history, demographics)
        candidates, _ = cosine_topk(user, self.item_table, self.num_candidates)
        ledger.charge(
            "NNS",
            gpu_nns_cosine(config.num_items, config.embedding_dim, device=self.device),
        )

        # Ranking: per-candidate ET op + DNN (the unbatched serving loop).
        per_candidate = gpu_et_operation(self._ranking_tables, device=self.device).then(
            gpu_dnn_stack(self.ranking_input_dim, config.ranking_spec, device=self.device)
        )
        ledger.charge("Ranking", per_candidate.repeated(len(candidates)))
        ctrs = self._score_candidates(user, self.item_table[candidates], context)
        order = np.argsort(-ctrs, kind="stable")[: self.top_k]
        winners = [int(candidates[index]) for index in order]
        ledger.charge("TopK", gpu_topk(len(candidates), device=self.device))
        return QueryResult(
            items=winners,
            candidate_count=len(candidates),
            cost=ledger.total(),
            ledger=ledger,
        )


class IMARSEngine(_EngineBase):
    """The iMARS pipeline: int8 + LSH fixed-radius NNS + CTR-buffer top-k."""

    def __init__(
        self,
        filtering_model: YouTubeDNNFiltering,
        ranking_model: YouTubeDNNRanking,
        mapping: WorkloadMapping,
        num_candidates: int = 72,
        top_k: int = 10,
        signature_bits: Optional[int] = None,
        cost_model: Optional[IMARSCostModel] = None,
        analog_dnn: bool = False,
        seed: int = 0,
    ):
        """``analog_dnn=True`` routes the ranking MLP through the functional
        analog crossbar tiles (DAC/ADC quantisation + conductance noise)
        instead of exact arithmetic -- the full-fidelity simulation mode."""
        super().__init__(filtering_model, ranking_model, num_candidates, top_k)
        self.mapping = mapping
        self.cost_model = cost_model or IMARSCostModel(mapping)
        self.analog_dnn = analog_dnn
        self._analog_bank = None
        if analog_dnn:
            from repro.core.dnn_stack import CrossbarBank

            self._analog_bank = CrossbarBank(
                ranking_model.net,
                config=self.cost_model.config,
                analog=True,
                rng=np.random.default_rng(seed + 11),
            )
        bits = signature_bits or self.cost_model.config.lsh_signature_bits

        # Quantise the item table to int8 (the ItET contents) and hash it.
        float_table = filtering_model.item_table()
        self._quantized = quantize_symmetric(float_table, per_row=True)
        self.item_table = dequantize(self._quantized)
        hasher = RandomHyperplaneLSH(
            float_table.shape[1], signature_bits=bits, seed=seed
        )
        self.index = LSHHammingIndex(self.item_table, hasher=hasher)

        # Population-level fixed radius calibrated for the target candidate
        # count (the dummy-cell reference setting).
        rng = np.random.default_rng(seed)
        probes = rng.normal(0.0, 1.0, size=(32, float_table.shape[1]))
        radii = [
            self.index.calibrate_radius(probe, self.num_candidates)
            for probe in probes
        ]
        self.radius = int(round(float(np.median(radii))))

    def _score_candidates(
        self,
        user_embedding: np.ndarray,
        item_vectors: np.ndarray,
        context: Sequence[int],
    ) -> np.ndarray:
        if not self.analog_dnn:
            return super()._score_candidates(user_embedding, item_vectors, context)
        count = item_vectors.shape[0]
        users = np.repeat(user_embedding[None, :], count, axis=0)
        ctx = np.repeat(
            np.asarray(context, dtype=np.int64).reshape(1, -1), count, axis=0
        )
        features = self.ranking_model._features(users, item_vectors, ctx)
        logits, _ = self._analog_bank.forward(features)
        return 1.0 / (1.0 + np.exp(-np.clip(logits.reshape(-1), -60.0, 60.0)))

    def recommend(
        self,
        history: Sequence[int],
        demographics: Sequence[int],
        context: Sequence[int],
    ) -> QueryResult:
        ledger = Ledger(name="imars-query")
        config = self.filtering_model.config

        # Filtering (1a)-(1d*): cost charged analytically, functional result
        # from the quantised tables + LSH index.
        self.cost_model.filtering_query(
            self.filtering_input_dim,
            config.filtering_spec,
            self.num_candidates,
            ledger=ledger,
        )
        user = self._user_embedding(history, demographics)
        distances = self.index.distances(user)
        candidates = fixed_radius_candidates(distances, self.radius)
        if candidates.shape[0] == 0:
            # Fall back to the nearest signature (threshold raised one step).
            candidates = np.array([int(np.argmin(distances))])
        candidates = cap_candidates(candidates, distances, self.num_candidates)

        # Ranking (2a)-(2d): per-candidate ET + DNN + CTR store.
        per_candidate = self.cost_model.ranking_candidate(
            self.ranking_input_dim, config.ranking_spec
        )
        ledger.charge("Ranking", per_candidate.repeated(len(candidates)))
        ctrs = self._score_candidates(user, self.item_table[candidates], context)

        # Top-k (2e) through the CTR buffer's threshold sweep.
        self.cost_model.topk_operation(len(candidates), self.top_k, ledger=ledger)
        order = np.argsort(-ctrs, kind="stable")[: self.top_k]
        winners = [int(candidates[index]) for index in order]
        return QueryResult(
            items=winners,
            candidate_count=int(len(candidates)),
            cost=ledger.total(),
            ledger=ledger,
        )
