"""End-to-end RecSys pipelines: iMARS vs the GPU baseline (Sec. IV-C3).

Two engines produce *functionally comparable* recommendations while
charging their respective hardware cost models:

* :class:`GPUReferenceEngine` -- the baseline: FP32 embeddings, exact
  cosine NNS (the FAISS path), per-candidate ranking; costs from the
  calibrated GPU kernel models.
* :class:`IMARSEngine` -- the accelerated pipeline: int8-quantised tables,
  LSH signatures + fixed-radius Hamming NNS, CTR-buffer top-k; costs from
  the analytic iMARS model.
* :class:`GPUSpilloverEngine` -- the heterogeneous-fleet overflow backend:
  it serves the *iMARS functional pipeline* (same int8 tables, same LSH
  index, same fixed radius, same seed -- recommendations are bit-identical
  to the IMC replicas it stands beside) while charging the calibrated GPU
  kernel models (ET lookups, DNN GEMMs, an XOR+popcount Hamming scan, a
  top-k kernel).  This models a CUDA port of the *deployed* model rather
  than the FP32 exact-cosine baseline, which is what a production fleet
  spills to: routing a query to the GPU must never change what the user
  sees, only what the ledger pays.

Both wrap the same trained YouTubeDNN models, so accuracy differences come
only from the IMC-friendly substitutions (quantisation, distance function,
fixed-radius selection) -- the comparison of Sec. IV-B.

Serving interface
-----------------
Beyond the original single-query :meth:`recommend`, both engines expose the
uniform batch interface the online serving subsystem
(:mod:`repro.serving`) drives:

* :class:`ServeQuery` -- a hashable (history, demographics, context)
  triple, usable directly as a cache key;
* :meth:`serve_batch` -- serve a micro-batch, returning per-query results
  plus one engine-specific batched :class:`Cost`: the GPU amortises its
  kernel-launch/dispatch overheads across the batch, while iMARS pipelines
  queries through its fabric stages (bounded by the slowest stage); an
  empty batch is a legal no-op (a replica that received no queries in a
  dispatch round);
* :attr:`expected_query_latency_s` -- an EWMA of the engine's observed
  per-query occupancy, the work estimate replica routers
  (:class:`repro.serving.shard.ReplicaGroup`) use for
  least-outstanding-work dispatch;
* ``item_subset`` -- both engines can be built over a slice of the item
  corpus, the building block of the shard router
  (:class:`repro.serving.shard.ShardedEngine`); returned item ids are
  always *global* corpus ids;
* :meth:`merge_cost` -- the platform-appropriate cost of merging ``n``
  scored entries into a final top-k (scatter-gather reduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.accelerator import IMARSCostModel
from repro.core.mapping import WorkloadMapping
from repro.energy.accounting import Cost, Ledger
from repro.gpu.device import GPUDeviceModel, GTX1080
from repro.gpu.kernels import (
    gpu_dnn_stack,
    gpu_et_operation,
    gpu_nns_cosine,
    gpu_nns_lsh,
    gpu_topk,
)
from repro.lsh.hyperplane import RandomHyperplaneLSH
from repro.models.youtube_dnn import YouTubeDNNFiltering, YouTubeDNNRanking
from repro.nns.exact import cosine_topk, topk_indices_batch
from repro.nns.fixed_radius import (
    cap_candidates,
    fixed_radius_candidates,
    fixed_radius_candidates_batch,
)
from repro.nns.lsh_search import LSHHammingIndex
from repro.quant.int8 import dequantize, quantize_symmetric

__all__ = [
    "ServeQuery",
    "QueryResult",
    "BatchResult",
    "GPUReferenceEngine",
    "GPUSpilloverEngine",
    "IMARSEngine",
]


def _gpu_table_counts(config) -> Tuple[int, int]:
    """(filtering, ranking) embedding-table counts of the paper's layout."""
    filtering_tables = 1 + len(config.demographic_cardinalities)
    ranking_tables = (
        2
        + len(config.demographic_cardinalities)
        + len(config.ranking_extra_cardinalities)
    ) - 1  # user+demographics+extras+item = 7 tables for the paper layout
    return filtering_tables, ranking_tables


@dataclass(frozen=True)
class ServeQuery:
    """One serving request's model inputs, hashable for result caching."""

    history: Tuple[int, ...]
    demographics: Tuple[int, ...]
    context: Tuple[int, ...]

    @staticmethod
    def make(
        history: Sequence[int],
        demographics: Sequence[int],
        context: Sequence[int],
    ) -> "ServeQuery":
        """Coerce arbitrary int sequences (lists, numpy rows) to a query."""
        return ServeQuery(
            history=tuple(int(value) for value in history),
            demographics=tuple(int(value) for value in demographics),
            context=tuple(int(value) for value in context),
        )


@dataclass
class QueryResult:
    """Outcome of one end-to-end query.

    ``failed`` marks a query the fleet could not answer (all serving
    attempts exhausted under fault injection -- ``items`` is empty);
    ``partial`` marks a degraded answer merged from a subset of shards
    (some corpus slices were dark past their deadline, so recall is
    reduced).  Both default to the healthy fast path.
    """

    items: List[int]
    candidate_count: int
    cost: Cost
    ledger: Ledger = field(default_factory=Ledger)
    scores: List[float] = field(default_factory=list)
    failed: bool = False
    partial: bool = False

    @property
    def qps(self) -> float:
        """Queries per second at this per-query latency."""
        if self.cost.latency_ns == 0.0:
            return float("inf")
        return 1e9 / self.cost.latency_ns


@dataclass
class BatchResult:
    """Outcome of one micro-batch: per-query results + the batched cost.

    ``cost`` is *not* the sequential sum of the per-query costs: each
    engine applies its own batching model (launch-overhead amortisation on
    the GPU, stage pipelining on iMARS), so ``cost.latency_ns`` is the
    wall-clock occupancy of the engine while the batch is in flight.
    """

    results: List[QueryResult]
    cost: Cost

    def __len__(self) -> int:
        return len(self.results)


class _EngineBase:
    """Shared model plumbing for both engines."""

    #: Telemetry bundle planted by :func:`repro.obs.attach_telemetry`
    #: (None when the engine runs uninstrumented).  A class attribute so
    #: attachment is optional and costs nothing when absent; engines
    #: never import the obs package -- they only call methods on what
    #: was attached.
    _obs = None

    #: Failure hook planted by :func:`repro.serving.resilience.attach_faults`
    #: (None when no fault plane is attached).  Called with the computed
    #: batch cost and query count *after* costing but *before* the EWMA
    #: updates: it may raise :class:`repro.serving.faults.FaultError`
    #: (crash / outage / transient error windows) or return a
    #: latency-inflated cost (straggler windows).  With no active fault
    #: it returns the very same cost object, so the healthy path is
    #: bit-identical.  Same contract as ``_obs``: a class attribute, the
    #: engine never imports the serving package.
    _fault_hook = None

    def __init__(
        self,
        filtering_model: YouTubeDNNFiltering,
        ranking_model: YouTubeDNNRanking,
        num_candidates: int = 72,
        top_k: int = 10,
    ):
        if num_candidates < 1 or top_k < 1:
            raise ValueError("candidate count and top-k must be >= 1")
        self.filtering_model = filtering_model
        self.ranking_model = ranking_model
        self.num_candidates = num_candidates
        self.top_k = top_k
        config = filtering_model.config
        self.filtering_input_dim = config.embedding_dim * (
            1 + len(config.demographic_cardinalities)
        )
        ranking_features = len(config.demographic_cardinalities) + len(
            config.ranking_extra_cardinalities
        )
        self.ranking_input_dim = config.embedding_dim * (2 + ranking_features)
        self._ewma_query_latency_s: Optional[float] = None
        self._ewma_query_energy_pj: Optional[float] = None

    def _resolve_subset(
        self, num_items: int, item_subset: Optional[Sequence[int]]
    ) -> np.ndarray:
        """Global item ids this engine serves (the whole corpus by default)."""
        if item_subset is None:
            return np.arange(num_items, dtype=np.int64)
        ids = np.asarray(list(item_subset), dtype=np.int64)
        if ids.size == 0:
            raise ValueError("item subset must be non-empty")
        if ids.min() < 0 or ids.max() >= num_items:
            raise ValueError(
                f"item subset ids must be in [0, {num_items}), "
                f"got range [{ids.min()}, {ids.max()}]"
            )
        if np.unique(ids).size != ids.size:
            raise ValueError("item subset must not contain duplicates")
        return ids

    @property
    def corpus_size(self) -> int:
        """Number of items this engine (or shard) serves."""
        return int(self._global_ids.shape[0])

    def recommend(
        self,
        history: Sequence[int],
        demographics: Sequence[int],
        context: Sequence[int],
    ) -> QueryResult:
        raise NotImplementedError

    def recommend_query(self, query: ServeQuery) -> QueryResult:
        """Serve one :class:`ServeQuery` (the batch-of-one convenience)."""
        return self.recommend(query.history, query.demographics, query.context)

    @property
    def expected_query_latency_s(self) -> Optional[float]:
        """EWMA of observed per-query engine occupancy (None before any
        serve).  Replica routers use this as the work estimate when
        assigning queries to the least-loaded replica."""
        return self._ewma_query_latency_s

    @property
    def expected_query_energy_pj(self) -> Optional[float]:
        """EWMA of observed per-query energy (None before any serve).
        Spillover routers use this to rank a heterogeneous replica group
        cheapest-first, so overflow lands on the hungry backend only when
        the frugal one is saturated."""
        return self._ewma_query_energy_pj

    def serve_batch(self, queries: Sequence[ServeQuery]) -> BatchResult:
        """Serve a micro-batch through the engine.

        The functional results are exactly those of per-query
        :meth:`recommend` calls (batching never changes recommendations);
        the batched cost applies the engine's amortisation/pipelining
        model via :meth:`_batch_cost`.  An empty batch is a no-op, so a
        replica group can dispatch a round in which some replicas receive
        no work.
        """
        if not queries:
            return BatchResult(results=[], cost=Cost())
        results = self._serve_results(queries)
        cost = self._batch_cost(results)
        fault_hook = self._fault_hook
        if fault_hook is not None:
            # May raise FaultError (the attempt never completes: no EWMA
            # update, no kernel span) or inflate latency (straggler); the
            # EWMAs below then see the inflated occupancy, which is what
            # lets routers and hedging detect a slow replica.
            cost = fault_hook(cost, len(results))
        observed = cost.latency_s / len(results)
        if self._ewma_query_latency_s is None:
            self._ewma_query_latency_s = observed
        else:
            self._ewma_query_latency_s += 0.3 * (
                observed - self._ewma_query_latency_s
            )
        observed_energy = cost.energy_pj / len(results)
        if self._ewma_query_energy_pj is None:
            self._ewma_query_energy_pj = observed_energy
        else:
            self._ewma_query_energy_pj += 0.3 * (
                observed_energy - self._ewma_query_energy_pj
            )
        obs = self._obs
        if obs is not None and obs.tracer.active:
            # Trace-only: the span is derived from the already-computed
            # cost, so recommendations and ledgers are untouched.
            start_s = obs.tracer.cursor_s
            obs.tracer.add(
                "kernel",
                start_s,
                start_s + cost.latency_s,
                category="kernel",
                engine=type(self).__name__,
                kernel=(
                    "vector"
                    if getattr(self, "use_vector_kernels", False)
                    else "scalar"
                ),
                queries=len(results),
                candidates=sum(result.candidate_count for result in results),
                energy_pj=cost.energy_pj,
            )
        return BatchResult(results=results, cost=cost)

    def _serve_results(self, queries: Sequence[ServeQuery]) -> List[QueryResult]:
        """Per-query results for a batch; the base class loops
        :meth:`recommend_query` (engines with multi-query kernels
        override this -- results must stay bit-identical either way)."""
        return [self.recommend_query(query) for query in queries]

    def _batch_cost(self, results: Sequence[QueryResult]) -> Cost:
        """Engine occupancy for a batch; base class serialises queries."""
        return Cost.sequence(result.cost for result in results)

    def merge_cost(self, num_entries: int) -> Cost:
        """Cost of reducing ``num_entries`` scored rows to a final top-k."""
        raise NotImplementedError

    def _user_embedding(
        self, history: Sequence[int], demographics: Sequence[int]
    ) -> np.ndarray:
        demo = np.asarray(demographics, dtype=np.int64).reshape(1, -1)
        return self.filtering_model.user_embedding([list(history)], demo)[0]

    def _score_candidates(
        self,
        user_embedding: np.ndarray,
        item_vectors: np.ndarray,
        context: Sequence[int],
    ) -> np.ndarray:
        count = item_vectors.shape[0]
        users = np.repeat(user_embedding[None, :], count, axis=0)
        ctx = np.repeat(
            np.asarray(context, dtype=np.int64).reshape(1, -1), count, axis=0
        )
        return self.ranking_model.predict_ctr(users, item_vectors, ctx)


class _GPUBatchCostMixin:
    """GPU batch-amortisation model shared by every GPU-costed engine.

    Requires ``self.device``, ``self.filtering_model`` and the usual
    :class:`_EngineBase` attributes.  The batching model mirrors A4: the
    fixed per-query dispatch work (ET-stage overheads, per-layer kernel
    launches, the NNS base cost, the top-k launch) is paid once per
    *batch* instead of once per query, while the marginal (bytes/FLOPs)
    terms keep scaling with the queries served.
    """

    device: GPUDeviceModel

    def _nns_overhead_terms(self) -> Tuple[float, float]:
        """(base latency us, power W) of the engine's NNS kernel."""
        return self.device.nns_cosine_base_us, self.device.power_nns_cosine_w

    def _query_overhead(self, candidate_count: int) -> Cost:
        """Per-query fixed dispatch work amortised away in batched serving."""
        config = self.filtering_model.config
        filtering_layers = len(config.filtering_spec.split("-"))
        ranking_layers = len(config.ranking_spec.split("-"))
        et_us = self.device.et_base_us * (1 + candidate_count)
        launch_us = self.device.kernel_launch_us * (
            filtering_layers + candidate_count * ranking_layers + 1
        )
        nns_us, nns_power_w = self._nns_overhead_terms()
        energy_pj = (
            et_us * self.device.power_et_w
            + launch_us * self.device.power_dnn_w
            + nns_us * nns_power_w
        ) * 1e6  # W x us = uJ; 1 uJ = 1e6 pJ
        return Cost(energy_pj=energy_pj, latency_ns=(et_us + launch_us + nns_us) * 1e3)

    def _batch_cost(self, results: Sequence[QueryResult]) -> Cost:
        """Batched GPU serving: fixed overheads paid once, marginals summed."""
        total = Cost.sequence(result.cost for result in results)
        if len(results) <= 1:
            return total
        saved = Cost.sequence(
            self._query_overhead(result.candidate_count) for result in results[1:]
        )
        return Cost(
            energy_pj=max(total.energy_pj - saved.energy_pj, 0.0),
            latency_ns=max(total.latency_ns - saved.latency_ns, 0.0),
        )

    def merge_cost(self, num_entries: int) -> Cost:
        """Host-side top-k reduction over the gathered shard entries."""
        if num_entries < 1:
            return Cost()
        return gpu_topk(num_entries, device=self.device)


class GPUReferenceEngine(_GPUBatchCostMixin, _EngineBase):
    """FP32 + exact-cosine baseline with the calibrated GPU cost model."""

    def __init__(
        self,
        filtering_model: YouTubeDNNFiltering,
        ranking_model: YouTubeDNNRanking,
        num_candidates: int = 72,
        top_k: int = 10,
        device: GPUDeviceModel = GTX1080,
        item_subset: Optional[Sequence[int]] = None,
    ):
        super().__init__(filtering_model, ranking_model, num_candidates, top_k)
        self.device = device
        full_table = filtering_model.item_table()
        self._global_ids = self._resolve_subset(full_table.shape[0], item_subset)
        self.item_table = full_table[self._global_ids]
        config = filtering_model.config
        self._filtering_tables, self._ranking_tables = _gpu_table_counts(config)

    def recommend(
        self,
        history: Sequence[int],
        demographics: Sequence[int],
        context: Sequence[int],
    ) -> QueryResult:
        ledger = Ledger(name="gpu-query")
        config = self.filtering_model.config

        # Filtering: ET op + DNN tower + exact cosine NNS.
        ledger.charge("ET Lookup", gpu_et_operation(self._filtering_tables, device=self.device))
        ledger.charge(
            "DNN Stack",
            gpu_dnn_stack(
                self.filtering_input_dim, config.filtering_spec, device=self.device
            ),
        )
        user = self._user_embedding(history, demographics)
        count = min(self.num_candidates, self.corpus_size)
        candidates, _ = cosine_topk(user, self.item_table, count)
        ledger.charge(
            "NNS",
            gpu_nns_cosine(self.corpus_size, config.embedding_dim, device=self.device),
        )

        # Ranking: per-candidate ET op + DNN (the unbatched serving loop).
        per_candidate = gpu_et_operation(self._ranking_tables, device=self.device).then(
            gpu_dnn_stack(self.ranking_input_dim, config.ranking_spec, device=self.device)
        )
        ledger.charge("Ranking", per_candidate.repeated(len(candidates)))
        ctrs = self._score_candidates(user, self.item_table[candidates], context)
        order = np.argsort(-ctrs, kind="stable")[: self.top_k]
        winners = [int(self._global_ids[candidates[index]]) for index in order]
        ledger.charge("TopK", gpu_topk(len(candidates), device=self.device))
        return QueryResult(
            items=winners,
            candidate_count=len(candidates),
            cost=ledger.total(),
            ledger=ledger,
            scores=[float(ctrs[index]) for index in order],
        )


class IMARSEngine(_EngineBase):
    """The iMARS pipeline: int8 + LSH fixed-radius NNS + CTR-buffer top-k."""

    def __init__(
        self,
        filtering_model: YouTubeDNNFiltering,
        ranking_model: YouTubeDNNRanking,
        mapping: WorkloadMapping,
        num_candidates: int = 72,
        top_k: int = 10,
        signature_bits: Optional[int] = None,
        cost_model: Optional[IMARSCostModel] = None,
        analog_dnn: bool = False,
        seed: int = 0,
        item_subset: Optional[Sequence[int]] = None,
        use_vector_kernels: bool = True,
    ):
        """``analog_dnn=True`` routes the ranking MLP through the functional
        analog crossbar tiles (DAC/ADC quantisation + conductance noise)
        instead of exact arithmetic -- the full-fidelity simulation mode.

        ``use_vector_kernels=False`` pins :meth:`serve_batch` to the
        scalar per-query reference path -- the oracle the equivalence
        suite compares the multi-query kernels against (recommendations,
        scores and ledger energies are bit-identical either way).
        ``analog_dnn`` implies the scalar path: the batched kernels score
        candidates through the pre-projected digital table, which has no
        analog port -- ranking must route through the crossbar tiles."""
        super().__init__(filtering_model, ranking_model, num_candidates, top_k)
        self.mapping = mapping
        self.cost_model = cost_model or IMARSCostModel(mapping)
        self.analog_dnn = analog_dnn
        self.use_vector_kernels = use_vector_kernels and not analog_dnn
        self._filtering_entries_cache: Optional[List[Tuple[str, Cost]]] = None
        self._stage_entries_cache: dict = {}
        self._query_template_cache: dict = {}
        self._analog_bank = None
        if analog_dnn:
            from repro.core.dnn_stack import CrossbarBank

            self._analog_bank = CrossbarBank(
                ranking_model.net,
                config=self.cost_model.config,
                analog=True,
                rng=np.random.default_rng(seed + 11),
            )
        bits = signature_bits or self.cost_model.config.lsh_signature_bits
        self.signature_bits = bits

        # Quantise the item table to int8 (the ItET contents) and hash it.
        # With an ``item_subset`` the shard only stores (and searches) its
        # slice of the corpus; returned ids stay global.
        full_table = filtering_model.item_table()
        self._global_ids = self._resolve_subset(full_table.shape[0], item_subset)
        float_table = full_table[self._global_ids]
        self._quantized = quantize_symmetric(float_table, per_row=True)
        self.item_table = dequantize(self._quantized)
        hasher = RandomHyperplaneLSH(
            float_table.shape[1], signature_bits=bits, seed=seed
        )
        self.index = LSHHammingIndex(self.item_table, hasher=hasher)

        # First-layer-decomposed CTR scorer over the shard's (dequantised)
        # table: the scalar oracle and the multi-query kernels both score
        # through it, so recommendations stay bit-identical across batch
        # sizes.  The analog mode keeps the full per-candidate forward --
        # crossbar noise has no decomposable form.
        self._scorer = (
            None if analog_dnn else ranking_model.make_serving_scorer(self.item_table)
        )

        # Population-level fixed radius calibrated for the target candidate
        # count (the dummy-cell reference setting).
        rng = np.random.default_rng(seed)
        probes = rng.normal(0.0, 1.0, size=(32, float_table.shape[1]))
        target = min(self.num_candidates, self.corpus_size)
        radii = self.index.calibrate_radius_batch(probes, target)
        self.radius = int(round(float(np.median(radii))))

    def _score_candidates(
        self,
        user_embedding: np.ndarray,
        item_vectors: np.ndarray,
        context: Sequence[int],
    ) -> np.ndarray:
        if not self.analog_dnn:
            return super()._score_candidates(user_embedding, item_vectors, context)
        count = item_vectors.shape[0]
        users = np.repeat(user_embedding[None, :], count, axis=0)
        ctx = np.repeat(
            np.asarray(context, dtype=np.int64).reshape(1, -1), count, axis=0
        )
        features = self.ranking_model._features(users, item_vectors, ctx)
        logits, _ = self._analog_bank.forward(features)
        return 1.0 / (1.0 + np.exp(-np.clip(logits.reshape(-1), -60.0, 60.0)))

    # -- cost hooks (overridden by :class:`GPUSpilloverEngine`) ---------
    def _ledger_name(self) -> str:
        return "imars-query"

    def _charge_filtering(self, ledger: Ledger) -> None:
        """Filtering (1a)-(1d*): charged analytically against the fabric."""
        config = self.filtering_model.config
        self.cost_model.filtering_query(
            self.filtering_input_dim,
            config.filtering_spec,
            self.num_candidates,
            ledger=ledger,
        )

    def _charge_ranking(self, ledger: Ledger, candidate_count: int) -> None:
        """Ranking (2a)-(2d): per-candidate ET + DNN + CTR store."""
        per_candidate = self.cost_model.ranking_candidate(
            self.ranking_input_dim, self.filtering_model.config.ranking_spec
        )
        ledger.charge("Ranking", per_candidate.repeated(candidate_count))

    def _charge_topk(self, ledger: Ledger, candidate_count: int) -> None:
        """Top-k (2e) through the CTR buffer's threshold sweep."""
        self.cost_model.topk_operation(candidate_count, self.top_k, ledger=ledger)

    def recommend(
        self,
        history: Sequence[int],
        demographics: Sequence[int],
        context: Sequence[int],
    ) -> QueryResult:
        ledger = Ledger(name=self._ledger_name())

        # Functional result from the quantised tables + LSH index; the
        # platform's cost hooks charge the matching hardware bill.
        self._charge_filtering(ledger)
        user = self._user_embedding(history, demographics)
        distances = self.index.distances(user)
        candidates = fixed_radius_candidates(distances, self.radius)
        if candidates.shape[0] == 0:
            # Fall back to the nearest signature (threshold raised one step).
            candidates = np.array([int(np.argmin(distances))])
        candidates = cap_candidates(candidates, distances, self.num_candidates)

        self._charge_ranking(ledger, len(candidates))
        if self._scorer is None:
            ctrs = self._score_candidates(
                user, self.item_table[candidates], context
            )
        else:
            ctrs = self._scorer.score_query(user, candidates, context)

        self._charge_topk(ledger, len(candidates))
        order = np.argsort(-ctrs, kind="stable")[: self.top_k]
        winners = [int(self._global_ids[candidates[index]]) for index in order]
        return QueryResult(
            items=winners,
            candidate_count=int(len(candidates)),
            cost=ledger.total(),
            ledger=ledger,
            scores=[float(ctrs[index]) for index in order],
        )

    # -- cost templates (vectorised serving) ----------------------------
    #
    # Every charge the cost hooks make is a pure function of the engine's
    # configuration and the query's candidate count, so the vectorised
    # path evaluates each hook once (per distinct count) and replays the
    # cached entries into every query's ledger: identical categories,
    # identical Cost values, identical entry order -- hence bitwise the
    # same per-query totals as the scalar hooks recomputing them.

    def _filtering_entries(self) -> List[Tuple[str, Cost]]:
        """The (query-independent) filtering-stage ledger entries."""
        if self._filtering_entries_cache is None:
            probe = Ledger()
            self._charge_filtering(probe)
            self._filtering_entries_cache = list(probe)
        return self._filtering_entries_cache

    def _post_filter_entries(self, candidate_count: int) -> List[Tuple[str, Cost]]:
        """Ranking + top-k ledger entries for one candidate count."""
        cached = self._stage_entries_cache.get(candidate_count)
        if cached is None:
            probe = Ledger()
            self._charge_ranking(probe, candidate_count)
            self._charge_topk(probe, candidate_count)
            cached = list(probe)
            self._stage_entries_cache[candidate_count] = cached
        return cached

    def _query_cost_template(
        self, candidate_count: int
    ) -> Tuple[List[Tuple[str, Cost]], Cost]:
        """Full per-query ledger entries + their sequential total.

        The total is the same ``Cost.sequence`` fold ``Ledger.total()``
        performs over the same entries in the same order, computed once
        per distinct candidate count instead of once per query.
        """
        cached = self._query_template_cache.get(candidate_count)
        if cached is None:
            entries = self._filtering_entries() + self._post_filter_entries(
                candidate_count
            )
            cached = (entries, Cost.sequence(cost for _, cost in entries))
            self._query_template_cache[candidate_count] = cached
        return cached

    def _serve_results(self, queries: Sequence[ServeQuery]) -> List[QueryResult]:
        """Multi-query kernels for the whole batch (Sec. III's array view).

        One batched user-embedding pass, one packed XOR+popcount Hamming
        scan, one stable-argsort candidate selection, one flat ranking
        pass and one multi-query top-k serve every query at once;
        per-query ledgers replay the cached cost templates.  Bit-identical
        to the scalar loop by construction (pinned by the equivalence
        suite); ``use_vector_kernels=False`` or ``analog_dnn`` falls back
        to the per-query reference path.
        """
        if not self.use_vector_kernels:
            return super()._serve_results(queries)
        num_queries = len(queries)
        histories = [list(query.history) for query in queries]
        demographics = np.asarray(
            [query.demographics for query in queries], dtype=np.int64
        )
        contexts = np.asarray([query.context for query in queries], dtype=np.int64)

        users = self.filtering_model.user_embedding(histories, demographics)
        distances = self.index.distances_batch(users)
        padded, counts = fixed_radius_candidates_batch(
            distances, self.radius, self.num_candidates
        )
        width = padded.shape[1]
        valid = np.arange(width) < counts[:, None]

        # Flat ranking pass: candidate rows of all queries concatenated
        # (row-major over ``padded``, so each query's block keeps its
        # ascending-index candidate order); per-query first-layer
        # constants computed once, candidates gathered from the scorer's
        # pre-projected item table.
        flat_candidates = padded[valid]
        flat_query = np.repeat(np.arange(num_queries), counts)
        constants = self._scorer.query_constants(users, contexts)
        flat_ctrs = self._scorer.score_grouped(
            constants, flat_query, flat_candidates
        )

        # Multi-query top-k over the ragged score groups: CTRs are
        # sigmoid outputs (> 0), so -1 padding can never be selected.
        scores = np.full((num_queries, width), -1.0)
        scores[valid] = flat_ctrs
        order = topk_indices_batch(scores, self.top_k, valid_counts=counts)

        # One gather turns the ranked positions back into global item ids
        # and scores for every query at once; rows shorter than top-k are
        # clamped before the id lookup (the clamped tail is sliced away
        # below) so the sentinel column can never index out of range.
        ranked = np.take_along_axis(padded, order, axis=1)
        item_lists = self._global_ids[
            np.minimum(ranked, self.index.num_items - 1)
        ].tolist()
        score_lists = np.take_along_axis(scores, order, axis=1).tolist()

        ledger_name = self._ledger_name()
        results: List[QueryResult] = []
        for position, count in enumerate(counts.tolist()):
            take = min(self.top_k, count)
            entries, total = self._query_cost_template(count)
            results.append(
                QueryResult(
                    items=item_lists[position][:take],
                    candidate_count=count,
                    cost=total,
                    ledger=Ledger(name=ledger_name, _entries=list(entries)),
                    scores=score_lists[position][:take],
                )
            )
        return results

    def _batch_cost(self, results: Sequence[QueryResult]) -> Cost:
        """Pipelined iMARS serving: stages overlap across batched queries.

        The fabric's stages (ET banks, crossbar DNN tiles, TCAM NNS, CTR
        buffer) occupy disjoint hardware, so while query *i* is in its
        ranking loop, query *i+1* runs its filtering stage.  Steady-state
        occupancy per extra query is therefore the *slowest* stage of that
        query, with the first query paying the full fill latency.  Energy
        is unaffected by pipelining (every stage still runs).
        """
        if not results:
            return Cost()
        energy_pj = sum(result.cost.energy_pj for result in results)
        latency_ns = results[0].cost.latency_ns
        for result in results[1:]:
            stage_latencies = [
                cost.latency_ns for cost in result.ledger.by_category().values()
            ]
            latency_ns += max(stage_latencies) if stage_latencies else result.cost.latency_ns
        return Cost(energy_pj=energy_pj, latency_ns=latency_ns)

    def merge_cost(self, num_entries: int) -> Cost:
        """Merge via a CTR-buffer threshold sweep over the shard entries."""
        if num_entries < 1:
            return Cost()
        return self.cost_model.topk_operation(num_entries, min(self.top_k, num_entries))


class GPUSpilloverEngine(_GPUBatchCostMixin, IMARSEngine):
    """A GPU replica of the *deployed* iMARS model for spillover routing.

    Functionally this IS an :class:`IMARSEngine`: built with the same
    models, mapping, seed and ``item_subset`` it holds the same int8
    tables, the same LSH index and the same calibrated radius, so its
    recommendations (items *and* scores) are bit-identical -- the
    heterogeneous-fleet invariant that routing a query to the overflow
    backend never changes what the user sees.

    Only the bill differs: the cost hooks charge the calibrated GPU
    kernel models instead of the fabric's analytic ones -- ET lookups and
    DNN GEMMs per stage, an XOR+popcount Hamming scan over the signature
    table (:func:`~repro.gpu.kernels.gpu_nns_lsh`), a top-k kernel -- and
    batches amortise kernel-launch/dispatch overheads the GPU way rather
    than pipelining through fabric stages.  ``analog_dnn`` is rejected:
    a CUDA port has no analog crossbars to be non-ideal.
    """

    def __init__(
        self,
        filtering_model: YouTubeDNNFiltering,
        ranking_model: YouTubeDNNRanking,
        mapping: WorkloadMapping,
        num_candidates: int = 72,
        top_k: int = 10,
        signature_bits: Optional[int] = None,
        cost_model: Optional[IMARSCostModel] = None,
        seed: int = 0,
        item_subset: Optional[Sequence[int]] = None,
        device: GPUDeviceModel = GTX1080,
        use_vector_kernels: bool = True,
    ):
        super().__init__(
            filtering_model,
            ranking_model,
            mapping,
            num_candidates=num_candidates,
            top_k=top_k,
            signature_bits=signature_bits,
            cost_model=cost_model,
            analog_dnn=False,
            seed=seed,
            item_subset=item_subset,
            use_vector_kernels=use_vector_kernels,
        )
        self.device = device
        self._filtering_tables, self._ranking_tables = _gpu_table_counts(
            filtering_model.config
        )

    def _nns_overhead_terms(self) -> Tuple[float, float]:
        return self.device.nns_lsh_base_us, self.device.power_nns_lsh_w

    def _ledger_name(self) -> str:
        return "gpu-spillover-query"

    def _charge_filtering(self, ledger: Ledger) -> None:
        config = self.filtering_model.config
        ledger.charge(
            "ET Lookup", gpu_et_operation(self._filtering_tables, device=self.device)
        )
        ledger.charge(
            "DNN Stack",
            gpu_dnn_stack(
                self.filtering_input_dim, config.filtering_spec, device=self.device
            ),
        )
        ledger.charge(
            "NNS",
            gpu_nns_lsh(self.corpus_size, self.signature_bits, device=self.device),
        )

    def _charge_ranking(self, ledger: Ledger, candidate_count: int) -> None:
        config = self.filtering_model.config
        per_candidate = gpu_et_operation(
            self._ranking_tables, device=self.device
        ).then(
            gpu_dnn_stack(self.ranking_input_dim, config.ranking_spec, device=self.device)
        )
        ledger.charge("Ranking", per_candidate.repeated(candidate_count))

    def _charge_topk(self, ledger: Ledger, candidate_count: int) -> None:
        ledger.charge("TopK", gpu_topk(candidate_count, device=self.device))
