"""Command-line interface: regenerate any paper artefact from the shell.

Usage::

    python -m repro.cli list                 # show available experiments
    python -m repro.cli run E5               # regenerate Table III
    python -m repro.cli run all              # every experiment
    python -m repro.cli run E7 --save out/   # also write the report to disk

    # serving experiments can export telemetry (Chrome trace + Prometheus):
    python -m repro.cli run E-hetero --trace-out trace.json --metrics-out metrics.prom
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict

from repro.experiments import (
    run_accuracy_study,
    run_autoscale_study,
    run_chaos_study,
    run_cost_study,
    run_forecast_study,
    run_hetero_study,
    run_design_space,
    run_end_to_end,
    run_fig2,
    run_flow_trace,
    run_lsh_sweep,
    run_nns_comparison,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.analog_accuracy import run_analog_accuracy
from repro.experiments.area_study import run_area_study
from repro.experiments.batch_throughput import run_batch_throughput
from repro.experiments.common import ExperimentReport
from repro.experiments.scaling_study import run_scaling_study
from repro.experiments.serving_study import run_serving_study
from repro.experiments.standby_power import run_standby_power
from repro.experiments.trace_locality import run_trace_locality
from repro.experiments.variation_study import run_variation_study

#: Experiment id -> (description, runner).
EXPERIMENTS: Dict[str, tuple] = {
    "E1": ("Fig. 2 - GPU operation breakdown", run_fig2),
    "E2": ("Table I - memory mapping", run_table1),
    "E3": ("Table II - array-level FoMs", run_table2),
    "E4": ("Sec. IV-B - accuracy study (trains a model)", run_accuracy_study),
    "E5": ("Table III - ET operation comparison", run_table3),
    "E6": ("Sec. IV-C2 - NNS comparison", run_nns_comparison),
    "E7": ("Sec. IV-C3 - end-to-end comparison", run_end_to_end),
    "E8": ("Fig. 3 - computation-flow trace", run_flow_trace),
    "A1": ("Ablation - design space (fan-ins, bus width)", run_design_space),
    "A2": ("Ablation - LSH signature length", run_lsh_sweep),
    "A3": ("Ablation - process-variation robustness", run_variation_study),
    "A4": ("Extension - batching throughput trade-off", run_batch_throughput),
    "A5": ("Extension - area accounting", run_area_study),
    "A6": ("Ablation - crossbar non-idealities (analog CTR AUC)", run_analog_accuracy),
    "A7": ("Extension - standby power (non-volatility)", run_standby_power),
    "A8": ("Extension - trace-driven access locality", run_trace_locality),
    "A9": ("Extension - ET-operation scaling study", run_scaling_study),
    "E-SERVE": (
        "Extension - online serving study (traffic, sharding, caching)",
        run_serving_study,
    ),
    "E-AUTOSCALE": (
        "Extension - closed-loop autoscaler (shards x replicas vs p95 SLO)",
        run_autoscale_study,
    ),
    "E-HETERO": (
        "Extension - heterogeneous fleet (IMC+GPU spillover, live scaling, "
        "admission control)",
        run_hetero_study,
    ),
    "E-CHAOS": (
        "Extension - fault injection (crashes, outages, stragglers) vs "
        "the self-healing fleet",
        run_chaos_study,
    ),
    "E-COST": (
        "Extension - dollar-cost execution models (eager/lazy/hybrid) + "
        "workload analyzer",
        run_cost_study,
    ),
    "E-FORECAST": (
        "Extension - forecast-driven predictive autoscaling (reactive vs "
        "predictive vs oracle) + heterogeneous deployment search",
        run_forecast_study,
    ),
}

#: Experiments that drive the serving stack and accept telemetry exports.
SERVING_EXPERIMENTS = frozenset(
    {"E-SERVE", "E-AUTOSCALE", "E-HETERO", "E-CHAOS", "E-COST", "E-FORECAST"}
)


def _run_one(
    experiment_id: str,
    save_dir: pathlib.Path = None,
    trace_out: str = None,
    metrics_out: str = None,
) -> ExperimentReport:
    description, runner = EXPERIMENTS[experiment_id]
    print(f"== {experiment_id}: {description}")
    if trace_out or metrics_out:
        report = runner(trace_out=trace_out, metrics_out=metrics_out)
        for path in (trace_out, metrics_out):
            if path:
                print(f"   telemetry -> {path}")
    else:
        report = runner()
    print(report.format())
    print()
    if save_dir is not None:
        save_dir.mkdir(parents=True, exist_ok=True)
        path = save_dir / f"{experiment_id}.txt"
        path.write_text(report.format() + "\n")
        print(f"   saved -> {path}")
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the iMARS paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="experiment id (E1..E8, A1..A9, E-serve, E-autoscale, "
        "E-hetero, E-chaos, E-cost, E-forecast) or 'all'",
    )
    run_parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="directory to write the report text into",
    )
    run_parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON (or JSONL for a .jsonl path) "
        "of the serving timeline; serving experiments only",
    )
    run_parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a Prometheus text-exposition metrics file; "
        "serving experiments only",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, (description, _) in EXPERIMENTS.items():
            print(f"  {experiment_id}  {description}")
        return 0

    save_dir = pathlib.Path(args.save) if args.save else None
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    target = args.experiment.upper()
    if (trace_out or metrics_out) and target not in SERVING_EXPERIMENTS:
        print(
            "--trace-out/--metrics-out require a serving experiment "
            f"({', '.join(sorted(SERVING_EXPERIMENTS))}), got {args.experiment!r}",
            file=sys.stderr,
        )
        return 2
    if target == "ALL":
        for experiment_id in EXPERIMENTS:
            _run_one(experiment_id, save_dir)
        return 0
    if target not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    _run_one(target, save_dir, trace_out=trace_out, metrics_out=metrics_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
