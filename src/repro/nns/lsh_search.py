"""LSH-Hamming nearest-neighbour search index.

This is the software-reference version of what iMARS executes in hardware:
item embeddings are hashed once to LSH signatures (stored alongside the
ItET rows, Sec. III-B); a query embedding is hashed and compared by Hamming
distance.  Both the top-k and the fixed-radius ("threshold match") query
styles are provided; iMARS uses the latter because it maps directly onto
the TCAM threshold-match mode.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.lsh.hyperplane import RandomHyperplaneLSH
from repro.lsh.hamming import pairwise_hamming
from repro.nns.exact import topk_indices

__all__ = ["LSHHammingIndex"]


class LSHHammingIndex:
    """An immutable LSH index over a fixed item-embedding matrix."""

    def __init__(
        self,
        item_embeddings: np.ndarray,
        signature_bits: int = 256,
        seed: int = 0,
        hasher: Optional[RandomHyperplaneLSH] = None,
    ):
        items = np.asarray(item_embeddings, dtype=np.float64)
        if items.ndim != 2 or items.shape[0] < 1:
            raise ValueError(f"item embeddings must be a non-empty 2-D matrix, got {items.shape}")
        self.num_items, self.dim = items.shape
        self.hasher = hasher or RandomHyperplaneLSH(self.dim, signature_bits, seed=seed)
        if self.hasher.input_dim != self.dim:
            raise ValueError("hasher input dimension does not match item embeddings")
        self.signature_bits = self.hasher.signature_bits
        self._item_signatures = self.hasher.signatures(items)

    @property
    def item_signatures(self) -> np.ndarray:
        """The stored (n, bits) signature matrix (what the ItET rows hold)."""
        return self._item_signatures.copy()

    def query_signature(self, query_embedding: np.ndarray) -> np.ndarray:
        """Hash a query embedding to its signature."""
        return self.hasher.signature(query_embedding)

    def distances(self, query_embedding: np.ndarray) -> np.ndarray:
        """Hamming distances from the hashed query to every stored item."""
        signature = self.query_signature(query_embedding)
        return pairwise_hamming(signature, self._item_signatures)

    def search_topk(self, query_embedding: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """k items with the smallest Hamming distance: (indices, distances)."""
        distances = self.distances(query_embedding)
        winners = topk_indices(-distances.astype(np.float64), k)
        return winners, distances[winners]

    def search_radius(self, query_embedding: np.ndarray, radius: int) -> np.ndarray:
        """Fixed-radius search: indices with distance <= radius (ascending).

        This matches the TCAM threshold-match semantics: all rows whose
        mismatch count is within the programmed threshold flag
        simultaneously; the priority encoder then drains them in row order.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        distances = self.distances(query_embedding)
        return np.flatnonzero(distances <= radius)

    def calibrate_radius(self, query_embedding: np.ndarray, target_count: int) -> int:
        """Smallest radius returning at least *target_count* candidates.

        The paper sets the dummy-cell reference so the filtering stage
        yields O(100) candidates; this helper performs that calibration for
        a given query (and the experiments calibrate on a validation set).
        """
        if target_count < 1:
            raise ValueError("target count must be >= 1")
        distances = np.sort(self.distances(query_embedding))
        cutoff = min(target_count, distances.shape[0]) - 1
        return int(distances[cutoff])
