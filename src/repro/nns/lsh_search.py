"""LSH-Hamming nearest-neighbour search index.

This is the software-reference version of what iMARS executes in hardware:
item embeddings are hashed once to LSH signatures (stored alongside the
ItET rows, Sec. III-B); a query embedding is hashed and compared by Hamming
distance.  Both the top-k and the fixed-radius ("threshold match") query
styles are provided; iMARS uses the latter because it maps directly onto
the TCAM threshold-match mode.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.lsh.hyperplane import RandomHyperplaneLSH
from repro.lsh.hamming import hamming_matrix_packed, pack_bits_u64
from repro.nns.exact import topk_indices

__all__ = ["LSHHammingIndex"]


class LSHHammingIndex:
    """An immutable LSH index over a fixed item-embedding matrix."""

    def __init__(
        self,
        item_embeddings: np.ndarray,
        signature_bits: int = 256,
        seed: int = 0,
        hasher: Optional[RandomHyperplaneLSH] = None,
    ):
        items = np.asarray(item_embeddings, dtype=np.float64)
        if items.ndim != 2 or items.shape[0] < 1:
            raise ValueError(f"item embeddings must be a non-empty 2-D matrix, got {items.shape}")
        self.num_items, self.dim = items.shape
        self.hasher = hasher or RandomHyperplaneLSH(self.dim, signature_bits, seed=seed)
        if self.hasher.input_dim != self.dim:
            raise ValueError("hasher input dimension does not match item embeddings")
        self.signature_bits = self.hasher.signature_bits
        self._item_signatures = self.hasher.signatures(items)
        # uint64 bitplanes of the same signatures: what the multi-query
        # XOR+popcount kernel scans (exact integer distances either way).
        self._item_words = pack_bits_u64(self._item_signatures)

    @property
    def item_signatures(self) -> np.ndarray:
        """The stored (n, bits) signature matrix (what the ItET rows hold)."""
        return self._item_signatures.copy()

    def query_signature(self, query_embedding: np.ndarray) -> np.ndarray:
        """Hash a query embedding to its signature."""
        return self.hasher.signature(query_embedding)

    def distances(self, query_embedding: np.ndarray) -> np.ndarray:
        """Hamming distances from the hashed query to every stored item."""
        return self.distances_batch(
            np.asarray(query_embedding).reshape(1, -1)
        )[0]

    def distances_batch(self, query_embeddings: np.ndarray) -> np.ndarray:
        """(Q, n) Hamming distances for a whole query batch at once.

        Queries are hashed in one projection and scanned against the
        packed item bitplanes in one XOR+popcount kernel -- the TCAM-like
        multi-query scan the serving hot path runs.  Row ``q`` equals
        ``distances(query_embeddings[q])`` exactly (integer counts).
        """
        matrix = np.atleast_2d(np.asarray(query_embeddings, dtype=np.float64))
        signatures = self.hasher.signatures(matrix)
        return hamming_matrix_packed(pack_bits_u64(signatures), self._item_words)

    def search_topk(self, query_embedding: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """k items with the smallest Hamming distance: (indices, distances)."""
        distances = self.distances(query_embedding)
        winners = topk_indices(-distances.astype(np.float64), k)
        return winners, distances[winners]

    def search_radius(self, query_embedding: np.ndarray, radius: int) -> np.ndarray:
        """Fixed-radius search: indices with distance <= radius (ascending).

        This matches the TCAM threshold-match semantics: all rows whose
        mismatch count is within the programmed threshold flag
        simultaneously; the priority encoder then drains them in row order.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        distances = self.distances(query_embedding)
        return np.flatnonzero(distances <= radius)

    def calibrate_radius(self, query_embedding: np.ndarray, target_count: int) -> int:
        """Smallest radius returning at least *target_count* candidates.

        The paper sets the dummy-cell reference so the filtering stage
        yields O(100) candidates; this helper performs that calibration for
        a given query (and the experiments calibrate on a validation set).
        """
        if target_count < 1:
            raise ValueError("target count must be >= 1")
        distances = np.sort(self.distances(query_embedding))
        cutoff = min(target_count, distances.shape[0]) - 1
        return int(distances[cutoff])

    def calibrate_radius_batch(
        self, query_embeddings: np.ndarray, target_count: int
    ) -> np.ndarray:
        """Per-probe :meth:`calibrate_radius` for a whole probe batch.

        One hashed projection, one packed scan and one row-sorted cutoff
        replace the per-probe loop; entry ``q`` equals
        ``calibrate_radius(query_embeddings[q], target_count)`` exactly.
        """
        if target_count < 1:
            raise ValueError("target count must be >= 1")
        distances = np.sort(self.distances_batch(query_embeddings), axis=1)
        cutoff = min(target_count, distances.shape[1]) - 1
        return distances[:, cutoff].astype(np.int64)
