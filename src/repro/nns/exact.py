"""Exact nearest-neighbour search (the FAISS IndexFlat substitute).

The paper's baseline filtering stage uses "a FAISS-based distance search"
(Sec. IV-B) over the item embedding table.  FAISS's flat indexes compute
exact brute-force distances; this module reimplements that semantics in
NumPy for the two metrics the paper uses: cosine distance and inner
product.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "cosine_similarities",
    "cosine_topk",
    "inner_product_topk",
    "topk_indices",
    "topk_indices_batch",
]


def topk_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest scores, sorted descending by score.

    Uses argpartition for O(n) selection then sorts only the k winners --
    the same strategy a GPU top-k kernel uses.
    """
    flat = np.asarray(scores, dtype=np.float64).reshape(-1)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, flat.shape[0])
    partitioned = np.argpartition(-flat, k - 1)[:k]
    return partitioned[np.argsort(-flat[partitioned], kind="stable")]


def topk_indices_batch(
    scores: np.ndarray,
    k: int,
    valid_counts: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Multi-query top-k: one argpartition over a (Q, N) score matrix.

    Returns a (Q, min(k, N)) index matrix whose row ``q`` equals
    ``np.argsort(-scores[q], kind="stable")[:k]`` -- descending score,
    ties broken by ascending index -- which is the deterministic order
    every serving engine's final top-k uses.  The O(N) argpartition does
    the selection; only rows with a tie *straddling* the k-th place fall
    back to a full sort, so the common case never sorts the corpus.

    ``valid_counts`` marks ragged rows: entries at column >= count are
    padding and never selected (rows with fewer than ``k`` valid entries
    return their valid indices first; callers slice by count).
    """
    matrix = np.asarray(scores, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"scores must be (Q, N), got {matrix.shape}")
    num_queries, width = matrix.shape
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if valid_counts is not None:
        counts = np.asarray(valid_counts, dtype=np.int64)
        if counts.shape != (num_queries,):
            raise ValueError("valid_counts must have one entry per row")
        # Padding sinks below every finite score and keeps row order.
        matrix = np.where(np.arange(width) < counts[:, None], matrix, -np.inf)
    k = min(k, width)
    if num_queries == 0:
        return np.empty((0, k), dtype=np.int64)
    if k == width:
        chosen = np.broadcast_to(np.arange(width), (num_queries, width)).copy()
    else:
        chosen = np.argpartition(-matrix, k - 1, axis=1)[:, :k]
        chosen_scores = np.take_along_axis(matrix, chosen, axis=1)
        # A tie straddles the boundary when the k-th value occurs more
        # often in the row than in the selected set; those rows need the
        # full (-score, index) order to pick the lowest-index ties.
        kth = chosen_scores.min(axis=1, keepdims=True)
        total_at_kth = (matrix == kth).sum(axis=1)
        chosen_at_kth = (chosen_scores == kth).sum(axis=1)
        for row in np.flatnonzero(total_at_kth > chosen_at_kth):
            chosen[row] = np.argsort(-matrix[row], kind="stable")[:k]
    row_scores = np.take_along_axis(matrix, chosen, axis=1)
    # lexsort keys are least-significant first: order by descending score,
    # then ascending index -- exactly the stable-argsort tie rule.
    order = np.lexsort((chosen, -row_scores), axis=1)
    return np.take_along_axis(chosen, order, axis=1)


def cosine_similarities(query: np.ndarray, items: np.ndarray) -> np.ndarray:
    """Cosine similarity from one query vector to each item row."""
    vector = np.asarray(query, dtype=np.float64).reshape(-1)
    matrix = np.asarray(items, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != vector.shape[0]:
        raise ValueError(f"items must be (n, {vector.shape[0]}), got {matrix.shape}")
    query_norm = np.linalg.norm(vector)
    item_norms = np.linalg.norm(matrix, axis=1)
    denominator = item_norms * query_norm
    # Zero-norm rows get similarity 0 (they can never be nearest).
    with np.errstate(divide="ignore", invalid="ignore"):
        similarities = np.where(denominator > 0.0, matrix @ vector / denominator, 0.0)
    return similarities


def cosine_topk(query: np.ndarray, items: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k items by cosine similarity: (indices, similarities)."""
    similarities = cosine_similarities(query, items)
    winners = topk_indices(similarities, k)
    return winners, similarities[winners]


def inner_product_topk(query: np.ndarray, items: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k items by inner product: (indices, scores)."""
    vector = np.asarray(query, dtype=np.float64).reshape(-1)
    matrix = np.asarray(items, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != vector.shape[0]:
        raise ValueError(f"items must be (n, {vector.shape[0]}), got {matrix.shape}")
    scores = matrix @ vector
    winners = topk_indices(scores, k)
    return winners, scores[winners]
